"""Setuptools shim.

The canonical metadata lives in pyproject.toml; this file exists so that
``python setup.py develop`` works on environments without the ``wheel``
package (PEP 660 editable installs need it, offline boxes may lack it).
"""

from setuptools import setup

setup()
