#!/usr/bin/env python3
"""Quickstart: run one stand-alone MapReduce micro-benchmark.

Runs MR-AVG — the even-distribution micro-benchmark — at 8 GB of
intermediate shuffle data on the paper's Cluster A (4 Westmere slaves)
over IPoIB QDR, with resource monitoring enabled, and prints the
paper-style report: configuration echo, phase breakdown, per-reducer
statistics, utilization peaks, and the job execution time.

Usage::

    python examples/quickstart.py
"""

from repro import MicroBenchmarkSuite, cluster_a, render_report


def main() -> None:
    suite = MicroBenchmarkSuite(cluster=cluster_a(4))
    result = suite.run(
        "MR-AVG",
        shuffle_gb=8,
        network="ipoib-qdr",
        num_maps=16,
        num_reduces=8,
        key_size=512,
        value_size=512,
        data_type="BytesWritable",
        monitor_interval=2.0,
    )
    print(render_report(result))

    print("\nEvent log (first 12 milestones):")
    for event in list(result.events)[:12]:
        print(f"  {event}")


if __name__ == "__main__":
    main()
