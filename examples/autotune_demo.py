#!/usr/bin/env python3
"""Auto-tuning: find the best JobConf for a workload, per network.

The paper's pitch is that a stand-alone benchmark lets users "tune and
optimize these factors, based on cluster and workload characteristics".
With a simulator underneath, the whole tuning loop runs in seconds:
this demo grid-searches three Hadoop knobs for an 8 GB MR-AVG job on
two networks and reports what tuning is worth on each.

Usage::

    python examples/autotune_demo.py
"""

from repro import BenchmarkConfig, JobConf, cluster_a
from repro.hadoop.autotune import grid_search

MB = 1e6
SPACE = {
    "io_sort_mb": (50 * MB, 100 * MB, 200 * MB),
    "parallel_copies": (2, 5, 10),
    "reduce_slowstart": (0.05, 0.5, 1.0),
}


def main() -> None:
    for network in ("1GigE", "ipoib-qdr"):
        config = BenchmarkConfig.from_shuffle_size(
            8e9, num_maps=16, num_reduces=8, key_size=512, value_size=512,
            network=network)
        result = grid_search(
            config, space=SPACE, cluster=cluster_a(4),
            base_jobconf=JobConf(map_slots_per_node=2),  # two map waves
        )
        print(f"=== {network}: {len(result.trials)} configurations ===")
        print("top 5:")
        print(result.table(top=5))
        best = result.best_jobconf()
        print(f"winner: io.sort.mb={best.io_sort_mb / MB:.0f}MB, "
              f"copies={best.parallel_copies}, "
              f"slowstart={best.reduce_slowstart}")
        print(f"tuning is worth {result.spread_pct:.1f}% "
              f"(worst -> best) on {network}\n")


if __name__ == "__main__":
    main()
