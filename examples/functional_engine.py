#!/usr/bin/env python3
"""The functional engine: really executing a micro-benchmark job.

Everything in the other examples is *simulated* for performance; this
one runs the same benchmark semantics on real bytes through the local
MapReduce engine — generate, partition, serialize, sort, shuffle,
merge, group, reduce — and cross-checks the observed shuffle matrix
against the analytic one the simulator uses.

Usage::

    python examples/functional_engine.py
"""

import numpy as np

from repro.core import BenchmarkConfig, compute_shuffle_matrix
from repro.engine import Counters, LocalJobRunner


def main() -> None:
    config = BenchmarkConfig(
        pattern="skew",
        num_pairs=20_000,
        num_maps=4,
        num_reduces=8,
        key_size=32,
        value_size=96,
        data_type="Text",
    )
    print(f"executing MR-SKEW for real: {config.num_pairs:,} Text pairs, "
          f"{config.num_maps} maps -> {config.num_reduces} reduces")

    result = LocalJobRunner(config).run()
    c = result.counters

    print(f"\n  map output records : {c.value(Counters.MAP_OUTPUT_RECORDS):,}")
    print(f"  reduce input records: {c.value(Counters.REDUCE_INPUT_RECORDS):,}")
    print(f"  reduce input groups : {c.value(Counters.REDUCE_INPUT_GROUPS):,}")
    print(f"  shuffled bytes      : {result.total_shuffled_bytes:,}")

    print("\n  per-reducer record loads (the skew signature):")
    total = sum(result.reducer_loads())
    for r, load in enumerate(result.reducer_loads()):
        print(f"    reduce{r}: {load:6,} ({100 * load / total:4.1f}%)")

    analytic = compute_shuffle_matrix(config)
    if np.array_equal(result.shuffle_records, analytic.records):
        print("\n  observed shuffle matrix == analytic matrix "
              "(simulator cross-validated)")
    else:  # pragma: no cover - guarded by the test suite
        raise SystemExit("matrix mismatch: simulator out of sync!")


if __name__ == "__main__":
    main()
