#!/usr/bin/env python3
"""Fault tolerance: failure injection and speculative execution.

The simulated framework models Hadoop's fault-tolerance machinery:
task attempts whose output is lost are re-executed (up to
``max_task_attempts``), and with speculative execution enabled the
JobTracker launches backup attempts for stragglers — the winner's
output counts, the loser is killed.

This example injects a 25 % per-attempt failure rate into a job and
shows (a) the job still completes with every record accounted for,
(b) what the failures cost, and (c) how much speculation claws back.

Usage::

    python examples/fault_tolerance.py
"""

from repro import BenchmarkConfig, JobConf, cluster_a, run_simulated_job
from repro.analysis import format_table
from repro.hadoop import JobEventLog

CONFIG = BenchmarkConfig(
    num_pairs=1_000_000, num_maps=12, num_reduces=4,
    key_size=512, value_size=512, network="ipoib-qdr",
)


def run(jobconf: JobConf):
    return run_simulated_job(CONFIG, cluster=cluster_a(2), jobconf=jobconf)


def main() -> None:
    # Two map waves (12 maps, 2 slaves x 2 slots) make stragglers visible.
    base = JobConf(map_slots_per_node=2)
    flaky = JobConf(map_slots_per_node=2,
                    task_failure_probability=0.25, max_task_attempts=8)
    rescued = JobConf(map_slots_per_node=2,
                      task_failure_probability=0.25, max_task_attempts=8,
                      speculative_execution=True)

    rows = []
    for label, jobconf in (("no failures", base),
                           ("25% attempt failures", flaky),
                           ("failures + speculation", rescued)):
        result = run(jobconf)
        failures = len(result.events.of_kind(JobEventLog.TASK_FAILED))
        backups = len(result.events.of_kind(JobEventLog.SPECULATIVE))
        records = sum(s.records for s in result.reduce_stats)
        rows.append([label, round(result.execution_time, 1), failures,
                     backups, f"{records:,}"])
    print(format_table(
        ["scenario", "time (s)", "failed attempts", "backups",
         "records reduced"],
        rows,
        title="Fault tolerance on a 1 GB MR-AVG job (12 maps, 2 slaves)",
    ))

    print("\nEvent log of the flaky run (failures and retries):")
    result = run(flaky)
    interesting = (JobEventLog.TASK_FAILED, JobEventLog.SPECULATIVE)
    shown = 0
    for event in result.events:
        if event.kind in interesting and shown < 10:
            print(f"  {event}")
            shown += 1


if __name__ == "__main__":
    main()
