#!/usr/bin/env python3
"""Network comparison: the paper's core experiment, end to end.

Sweeps MR-AVG across shuffle sizes on every TCP-reachable interconnect
the paper evaluates (1 GigE, 10 GigE, IPoIB QDR), prints the Fig. 2(a)
style table, and summarizes the improvement each network upgrade buys —
the question the suite was built to answer.

Usage::

    python examples/network_comparison.py
"""

from repro import MicroBenchmarkSuite, cluster_a
from repro.analysis import improvement_pct

NETWORKS = ("1GigE", "10GigE", "ipoib-qdr")
SIZES_GB = (4.0, 8.0, 16.0)


def main() -> None:
    suite = MicroBenchmarkSuite(cluster=cluster_a(4))
    sweep = suite.sweep(
        "MR-AVG", SIZES_GB, NETWORKS,
        num_maps=16, num_reduces=8, key_size=512, value_size=512,
    )

    print(sweep.to_table(title="MR-AVG job execution time by network (s)"))
    print()

    baseline = "1GigE"
    for network in sweep.networks():
        if network == baseline:
            continue
        print(f"upgrading {baseline} -> {network}: "
              f"{sweep.improvement(baseline, network):.1f}% faster on average")

    # Per-size detail: the paper notes IPoIB's advantage grows with the
    # shuffle volume.
    print("\nIPoIB QDR improvement by shuffle size:")
    ib = "IPoIB-QDR(32Gbps)"
    for size in SIZES_GB:
        pct = improvement_pct(sweep.time(baseline, size), sweep.time(ib, size))
        print(f"  {size:5.1f} GB: {pct:5.1f}%")


if __name__ == "__main__":
    main()
