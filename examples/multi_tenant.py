#!/usr/bin/env python3
"""Multi-tenant interference: concurrent jobs on one cluster.

Submits pairs of micro-benchmark jobs to a shared simulated cluster
(same slots, same NICs, same disks) and measures what co-location
costs — including the worst-case neighbour, an MR-SKEW job whose
straggler reducer camps on a reduce slot.

Usage::

    python examples/multi_tenant.py
"""

from repro import BenchmarkConfig, cluster_a
from repro.analysis import format_table
from repro.hadoop.multijob import JobRequest, run_concurrent_jobs

VICTIM = BenchmarkConfig(
    num_pairs=1_500_000, num_maps=8, num_reduces=4,
    key_size=512, value_size=512, network="ipoib-qdr",
)


def neighbour(pattern: str) -> BenchmarkConfig:
    return BenchmarkConfig(
        pattern=pattern, num_pairs=1_500_000, num_maps=8, num_reduces=4,
        key_size=512, value_size=512, network="ipoib-qdr",
    )


def main() -> None:
    cluster = cluster_a(2)
    alone = run_concurrent_jobs([JobRequest(VICTIM)], cluster=cluster)
    baseline = alone[0].execution_time

    rows = [["(runs alone)", round(baseline, 1), "-"]]
    for pattern in ("avg", "rand", "skew"):
        results = run_concurrent_jobs(
            [JobRequest(neighbour(pattern)),        # neighbour first...
             JobRequest(VICTIM, submit_at=1.0)],    # ...victim queues behind
            cluster=cluster,
        )
        victim = results[1]
        slowdown = victim.execution_time / baseline
        rows.append([
            f"behind MR-{pattern.upper()}",
            round(victim.execution_time, 1),
            f"{slowdown:.2f}x",
        ])
    print(format_table(
        ["victim scenario", "victim time (s)", "slowdown"],
        rows,
        title="MR-AVG victim job sharing 2 Westmere slaves (IPoIB QDR)",
    ))

    print("\nStaggered arrivals (second job 30s later):")
    results = run_concurrent_jobs(
        [JobRequest(VICTIM), JobRequest(VICTIM, submit_at=30.0)],
        cluster=cluster,
    )
    for i, r in enumerate(results):
        print(f"  job{i}: submit={r.submit_at:5.1f}s "
              f"finish={r.finished_at:6.1f}s latency={r.execution_time:.1f}s")


if __name__ == "__main__":
    main()
