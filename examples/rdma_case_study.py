#!/usr/bin/env python3
"""The Sect. 6 case study: evaluating an RDMA-enhanced MapReduce.

Uses the micro-benchmark suite the way the paper's authors did — to
evaluate an alternative MapReduce design (MRoIB, "RDMA for Apache
Hadoop") against stock Hadoop over IPoIB on an FDR InfiniBand cluster,
then decomposes where the gain comes from (zero-copy transport vs
SEDA pipeline overlap).

Usage::

    python examples/rdma_case_study.py
"""

from repro import MicroBenchmarkSuite, cluster_b
from repro.analysis import format_table, improvement_pct
from repro.hadoop import overlap_only_transport, zero_copy_only_transport
from repro.net import IPOIB_FDR, RDMA_FDR

PARAMS = dict(num_maps=32, num_reduces=16, key_size=512, value_size=512)
SHUFFLE_GB = 32.0


def main() -> None:
    for slaves in (8, 16):
        suite = MicroBenchmarkSuite(cluster=cluster_b(slaves))
        stock = suite.run("MR-AVG", shuffle_gb=SHUFFLE_GB,
                          network="ipoib-fdr", **PARAMS).execution_time
        mroib = suite.run("MR-AVG", shuffle_gb=SHUFFLE_GB,
                          network="rdma", **PARAMS).execution_time
        print(f"Cluster B, {slaves} slaves, {SHUFFLE_GB:.0f} GB MR-AVG: "
              f"IPoIB FDR {stock:.1f}s -> MRoIB {mroib:.1f}s "
              f"({improvement_pct(stock, mroib):.1f}% faster)")

    print("\nGain decomposition (8 slaves):")
    suite = MicroBenchmarkSuite(cluster=cluster_b(8))
    stock = suite.run("MR-AVG", shuffle_gb=SHUFFLE_GB,
                      network="ipoib-fdr", **PARAMS).execution_time
    variants = [
        ("overlap only (SEDA pipeline over IPoIB)",
         suite.run("MR-AVG", shuffle_gb=SHUFFLE_GB, network="ipoib-fdr",
                   transport=overlap_only_transport(IPOIB_FDR),
                   **PARAMS).execution_time),
        ("zero-copy only (RDMA reads, stock pipeline)",
         suite.run("MR-AVG", shuffle_gb=SHUFFLE_GB, network="rdma",
                   transport=zero_copy_only_transport(RDMA_FDR),
                   **PARAMS).execution_time),
        ("full MRoIB",
         suite.run("MR-AVG", shuffle_gb=SHUFFLE_GB, network="rdma",
                   **PARAMS).execution_time),
    ]
    rows = [["stock over IPoIB FDR", round(stock, 1), "-"]]
    for name, t in variants:
        rows.append([name, round(t, 1),
                     f"{improvement_pct(stock, t):+.1f}%"])
    print(format_table(["design", "time (s)", "vs stock"], rows))


if __name__ == "__main__":
    main()
