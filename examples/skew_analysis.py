#!/usr/bin/env python3
"""Skew analysis: what an imbalanced intermediate distribution costs.

Compares all three distribution patterns (MR-AVG, MR-RAND, MR-SKEW) at
the same shuffle volume, shows the per-reducer load imbalance MR-SKEW's
partitioner produces, and quantifies the straggler effect: the job ends
when the 50 %-load reducer does. This is the experiment the paper uses
to argue for load-balancing research ("we can determine if it is
worthwhile to find alternative techniques that can mitigate load
imbalances").

Usage::

    python examples/skew_analysis.py
"""

from repro import MicroBenchmarkSuite, cluster_a
from repro.analysis import format_table
from repro.core.partitioners import distribution_stats

SHUFFLE_GB = 8.0
PARAMS = dict(num_maps=16, num_reduces=8, key_size=512, value_size=512,
              network="ipoib-qdr")


def main() -> None:
    suite = MicroBenchmarkSuite(cluster=cluster_a(4))

    rows = []
    results = {}
    for name in ("MR-AVG", "MR-RAND", "MR-SKEW"):
        result = suite.run(name, shuffle_gb=SHUFFLE_GB, **PARAMS)
        results[name] = result
        stats = distribution_stats(result.matrix.reducer_loads())
        rows.append([
            name,
            round(result.execution_time, 1),
            f"{stats['top_share'] * 100:.1f}%",
            f"{stats['imbalance']:.2f}x",
        ])
    print(format_table(
        ["benchmark", "time (s)", "top reducer share", "imbalance"],
        rows,
        title=f"Distribution patterns at {SHUFFLE_GB:.0f} GB over IPoIB QDR",
    ))

    skew = results["MR-SKEW"]
    avg = results["MR-AVG"]
    print(f"\nskew/avg job time ratio: "
          f"{skew.execution_time / avg.execution_time:.2f}x")

    print("\nPer-reducer finish times under MR-SKEW (the straggler):")
    for s in sorted(skew.reduce_stats, key=lambda s: -s.finished_at):
        bar = "#" * int(40 * s.finished_at / skew.execution_time)
        print(f"  reduce{s.reduce_id:<2} {s.finished_at:7.1f}s "
              f"({s.bytes_fetched / 1e9:4.2f} GB) {bar}")


if __name__ == "__main__":
    main()
