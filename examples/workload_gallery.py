#!/usr/bin/env python3
"""Workload gallery: real-world shuffle signatures on two networks.

Maps five application classes (word count, TeraSort, inverted index,
session aggregation, hash join) onto their micro-benchmark equivalents
and runs each at the same shuffle volume over 1 GigE and IPoIB QDR —
showing that *what* you shuffle (pair size, skew) matters as much as
the wire you shuffle it over. Finishes with an ASCII rendition of the
Fig. 2(a)-style sweep.

Usage::

    python examples/workload_gallery.py
"""

from repro import MicroBenchmarkSuite, cluster_a, run_simulated_job
from repro.analysis import bar_chart, format_table, improvement_pct, sweep_chart
from repro.core.workloads import WORKLOADS

SHUFFLE_GB = 4.0


def main() -> None:
    rows = []
    ipoib_times = {}
    for name, profile in sorted(WORKLOADS.items()):
        times = {}
        for network in ("1GigE", "ipoib-qdr"):
            config = profile.configure(
                shuffle_gb=SHUFFLE_GB, num_maps=8, num_reduces=8,
                network=network)
            times[network] = run_simulated_job(
                config, cluster=cluster_a(4)).execution_time
        ipoib_times[name] = times["ipoib-qdr"]
        rows.append([
            name,
            f"{profile.key_size + profile.value_size}B/{profile.pattern}",
            round(times["1GigE"], 1),
            round(times["ipoib-qdr"], 1),
            f"{improvement_pct(times['1GigE'], times['ipoib-qdr']):+.1f}%",
        ])
    print(format_table(
        ["workload", "pair/pattern", "1GigE (s)", "IPoIB QDR (s)",
         "IPoIB gain"],
        rows,
        title=f"Real-world shuffle signatures at {SHUFFLE_GB:.0f} GB "
              f"(Cluster A, 8M/8R)",
    ))

    print("\nIPoIB job time by workload (same shuffle volume!):")
    labels = sorted(ipoib_times)
    print(bar_chart(labels, [ipoib_times[w] for w in labels], unit="s"))

    print("\nAnd the classic Fig. 2(a) sweep, as a terminal chart:")
    suite = MicroBenchmarkSuite(cluster=cluster_a(4))
    sweep = suite.sweep("MR-AVG", [4, 8, 16], ["1GigE", "10GigE", "ipoib-qdr"],
                        num_maps=16, num_reduces=8)
    print(sweep_chart(sweep))


if __name__ == "__main__":
    main()
