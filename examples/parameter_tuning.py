#!/usr/bin/env python3
"""Parameter tuning with the suite — the developer workflow.

The paper pitches the suite as the tool for "tuning different internal
parameters to obtain optimal performance". This example sweeps three
Hadoop knobs on a fixed workload and reports which settings matter on
which network — the kind of study that needs a stand-alone benchmark
(no HDFS noise).

Usage::

    python examples/parameter_tuning.py
"""

from repro import JobConf, MicroBenchmarkSuite, cluster_a
from repro.analysis import format_table

MB = 1e6
WORKLOAD = dict(shuffle_gb=8, num_maps=16, num_reduces=8,
                key_size=512, value_size=512)


def time_with(jobconf: JobConf, network: str) -> float:
    suite = MicroBenchmarkSuite(cluster=cluster_a(4), jobconf=jobconf)
    return suite.run("MR-AVG", network=network, **WORKLOAD).execution_time


def main() -> None:
    networks = ("1GigE", "ipoib-qdr")

    print("Sweep 1: reduce-side parallel copies "
          "(mapred.reduce.parallel.copies)")
    rows = []
    for copies in (1, 2, 5, 10):
        rows.append([copies] + [
            round(time_with(JobConf(parallel_copies=copies), net), 1)
            for net in networks
        ])
    print(format_table(["copies"] + list(networks), rows))

    print("\nSweep 2: map-side sort buffer (io.sort.mb)")
    rows = []
    for mb in (50, 100, 200):
        rows.append([mb] + [
            round(time_with(JobConf(io_sort_mb=mb * MB), net), 1)
            for net in networks
        ])
    print(format_table(["io.sort.mb"] + list(networks), rows))

    print("\nSweep 3: reducer slow start "
          "(mapred.reduce.slowstart.completed.maps, 2 map waves)")
    rows = []
    for slowstart in (0.05, 0.5, 1.0):
        jc = JobConf(reduce_slowstart=slowstart, map_slots_per_node=2)
        rows.append([slowstart] + [
            round(time_with(jc, net), 1) for net in networks
        ])
    print(format_table(["slowstart"] + list(networks), rows))


if __name__ == "__main__":
    main()
