"""Inter-process store locking: exclusion and exact concurrent counts.

The headline hardening bug this file pins: store counter updates were
once read-modify-write with no inter-process exclusion, so two
concurrent ``campaign run`` processes lost puts/hits/misses
increments. The :class:`~repro.store.FileLock` unit tests assert the
lock actually excludes; the multiprocess stress class runs against
*both* backends (sharded counter-file locks on the filesystem,
transactional upserts on sqlite) and must land on the exact final
count either way.
"""

import json
import multiprocessing

import pytest

from repro.store import FileLock, ResultStore, store_lock

from tests.store.conftest import store_root

pytestmark = pytest.mark.filterwarnings("error::UserWarning")


class TestFileLock:
    def test_basic_acquire_release(self, tmp_path):
        lock = FileLock(tmp_path / "l.lock")
        assert lock.acquire() is True
        assert lock.acquired
        lock.release()
        assert not lock.acquired

    def test_context_manager(self, tmp_path):
        with FileLock(tmp_path / "l.lock") as lock:
            assert lock.acquired
        assert not lock.acquired

    def test_second_holder_times_out(self, tmp_path):
        path = tmp_path / "l.lock"
        with FileLock(path):
            contender = FileLock(path, timeout=0.1, poll_interval=0.01)
            assert contender.acquire() is False
            assert not contender.acquired

    def test_reacquirable_after_release(self, tmp_path):
        path = tmp_path / "l.lock"
        with FileLock(path):
            pass
        with FileLock(path, timeout=0.5) as second:
            assert second.acquired

    def test_unwritable_root_degrades_without_raising(self, tmp_path,
                                                      monkeypatch):
        def deny(self, *a, **kw):
            raise OSError(30, "Read-only file system")

        monkeypatch.setattr("pathlib.Path.mkdir", deny)
        lock = FileLock(tmp_path / "no" / "l.lock")
        assert lock.acquire() is False  # degraded, not crashed

    def test_store_lock_names_the_lockfile(self, tmp_path):
        lock = store_lock(tmp_path)
        assert lock.path == tmp_path / "store.lock"


class TestThreadAwareness:
    """Two *threads* on one lock path hand off without flock polling.

    flock conflicts between file descriptors even inside one process,
    so before the in-process guard this scenario fell into the
    inter-process sleep/poll loop — with a pathological poll_interval
    (bigger than the whole timeout), a guaranteed timeout. The
    ``threading.Lock`` hand-off makes the wake-up immediate, which is
    what these tests pin: they use poll intervals far beyond their
    deadlines, so any regression back into polling cannot pass.
    """

    def test_contending_thread_wakes_on_release(self, tmp_path):
        import threading
        import time

        path = tmp_path / "l.lock"
        held = threading.Event()
        release = threading.Event()
        outcome = {}

        def holder():
            with FileLock(path):
                held.set()
                release.wait(30)

        def contender():
            lock = FileLock(path, timeout=10.0, poll_interval=120.0)
            start = time.monotonic()
            outcome["acquired"] = lock.acquire()
            outcome["elapsed"] = time.monotonic() - start
            lock.release()

        holder_thread = threading.Thread(target=holder)
        holder_thread.start()
        assert held.wait(30)
        contender_thread = threading.Thread(target=contender)
        contender_thread.start()
        time.sleep(0.2)  # let the contender actually block
        release.set()
        contender_thread.join(timeout=30)
        holder_thread.join(timeout=30)
        assert not contender_thread.is_alive()
        assert outcome["acquired"] is True
        assert outcome["elapsed"] < 10.0  # woke, didn't poll or time out

    def test_eight_threads_serialize_exactly(self, tmp_path):
        import threading
        import time

        path = tmp_path / "l.lock"
        counter = {"n": 0}
        failures = []

        def worker():
            lock = FileLock(path, timeout=60.0, poll_interval=120.0)
            if not lock.acquire():
                failures.append("timed out")
                return
            try:  # classic lost-update window without exclusion
                value = counter["n"]
                time.sleep(0.002)
                counter["n"] = value + 1
            finally:
                lock.release()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert failures == []
        assert counter["n"] == 8

    def test_same_thread_second_instance_still_times_out(self, tmp_path):
        """The in-process guard keeps FileLock's timeout semantics."""
        path = tmp_path / "l.lock"
        with FileLock(path):
            contender = FileLock(path, timeout=0.1, poll_interval=0.01)
            assert contender.acquire() is False


def _miss_worker(args):
    """Stress worker: each miss is one counted lookup."""
    root, worker_id, count = args
    store = ResultStore(root)
    for i in range(count):
        store.get(f"{i % 16:02x}missing-{worker_id}-{i}")


def _put_worker(args):
    """Stress worker for puts: records + counter, concurrently."""
    import warnings

    from repro.store import StoredResult

    root, worker_id, count, payload = args
    store = ResultStore(root)
    result = StoredResult.from_dict(payload)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        for i in range(count):
            store.put(f"{i % 16:02x}{worker_id}{i:04d}" + "f" * 48, result)


def _tag_worker(args):
    """Stress worker for tags: concurrent campaigns tag shared records."""
    root, worker_id, keys = args
    store = ResultStore(root)
    for key in keys:
        store.tag(key, f"campaign-{worker_id}", {"w": worker_id})


class TestConcurrentCounters:
    """ISSUE: concurrent campaigns must not lose increments — on
    either backend."""

    WORKERS = 4
    PER_WORKER = 25

    def test_concurrent_misses_count_exactly(self, tmp_path, backend_name):
        root = store_root(tmp_path, backend_name)
        with multiprocessing.Pool(self.WORKERS) as pool:
            pool.map(_miss_worker,
                     [(root, w, self.PER_WORKER)
                      for w in range(self.WORKERS)])
        stats = ResultStore(root).stats()
        assert stats["misses"] == self.WORKERS * self.PER_WORKER
        assert stats["hits"] == 0
        assert stats["puts"] == 0

    def test_concurrent_puts_count_exactly(self, tmp_path, backend_name,
                                           sim_result):
        from repro.store import StoredResult

        root = store_root(tmp_path, backend_name)
        payload = StoredResult.from_sim_result(sim_result).to_dict()
        with multiprocessing.Pool(self.WORKERS) as pool:
            pool.map(_put_worker,
                     [(root, w, self.PER_WORKER, payload)
                      for w in range(self.WORKERS)])
        store = ResultStore(root)
        assert store.stats()["puts"] == self.WORKERS * self.PER_WORKER
        assert len(list(store.keys())) == self.WORKERS * self.PER_WORKER

    def test_concurrent_tags_never_drop_each_other(self, tmp_path,
                                                   backend_name,
                                                   sim_result):
        """Four campaigns tag the same records; all four tags survive."""
        from repro.store import StoredResult

        root = store_root(tmp_path, backend_name)
        store = ResultStore(root)
        result = StoredResult.from_sim_result(sim_result)
        keys = [f"{i:02x}" + "a" * 62 for i in range(8)]
        for key in keys:
            store.put(key, result)
        with multiprocessing.Pool(self.WORKERS) as pool:
            pool.map(_tag_worker,
                     [(root, w, keys) for w in range(self.WORKERS)])
        expected = {f"campaign-{w}" for w in range(self.WORKERS)}
        for _key, record in ResultStore(root).records():
            assert set(record["tags"]) == expected

    def test_counter_files_are_never_torn(self, tmp_path):
        """After a stress run every counter shard is whole, parsable
        JSON summing to the exact total (filesystem layout check)."""
        root = store_root(tmp_path, "filesystem")
        with multiprocessing.Pool(2) as pool:
            pool.map(_miss_worker, [(root, w, 10) for w in range(2)])
        store = ResultStore(root)
        shards = sorted(store.backend.counters_dir.glob("shard-*.json"))
        assert shards  # the sharded layout actually engaged
        total = 0
        for shard in shards:
            data = json.loads(shard.read_text())  # parses = not torn
            total += data["misses"]
        assert total == 20


@pytest.fixture(scope="module")
def sim_result():
    """One real (tiny) simulation to serialize in stress puts."""
    from repro.core.config import BenchmarkConfig
    from repro.core.suite import MicroBenchmarkSuite
    from repro.hadoop.cluster import cluster_a

    config = BenchmarkConfig.from_shuffle_size(
        2e7, pattern="avg", network="1GigE", num_maps=4, num_reduces=2,
        key_size=256, value_size=256)
    return MicroBenchmarkSuite(cluster=cluster_a(2)).run_config(
        config, memoize=False)


class TestSqliteBusyRetry:
    """Transient ``SQLITE_BUSY`` is contention, not unwritability.

    SQLite returns it without consulting the busy handler in a few
    windows (fresh-database journal-mode transition, deadlock-avoidance
    lock upgrades); the backend must retry instead of silently
    degrading to read-only and dropping the write.
    """

    @staticmethod
    def _flaky_execute(monkeypatch, failures):
        import sqlite3

        import repro.store.sqlite as sqlite_mod

        real_execute = sqlite_mod._execute

        def flaky(db, sql, params=()):
            head = sql.lstrip().split(None, 1)[0].upper()
            if head not in ("SELECT", "PRAGMA") and failures["left"]:
                failures["left"] -= 1
                raise sqlite3.OperationalError("database is locked")
            return real_execute(db, sql, params)

        monkeypatch.setattr(sqlite_mod, "_execute", flaky)

    def test_transient_busy_retries_instead_of_degrading(
            self, tmp_path, monkeypatch):
        store = ResultStore(store_root(tmp_path, "sqlite"))
        failures = {"left": 3}
        self._flaky_execute(monkeypatch, failures)
        # error::UserWarning module filter: a degrade warning would
        # raise here instead of being swallowed.
        store.backend.bump_counters({"puts": 5})
        assert failures["left"] == 0  # the busy window was actually hit
        assert store.backend.read_only is False
        assert store.backend.counters()["puts"] == 5

    def test_persistent_busy_eventually_degrades(self, tmp_path,
                                                 monkeypatch):
        from repro.store import ResultStoreWarning

        store = ResultStore(store_root(tmp_path, "sqlite"))
        failures = {"left": 10 ** 9}
        self._flaky_execute(monkeypatch, failures)
        with pytest.warns(ResultStoreWarning, match="read-only"):
            store.backend.bump_counters({"puts": 1})
        assert store.backend.read_only is True
