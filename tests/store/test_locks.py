"""Inter-process store locking: exclusion and exact concurrent counts.

The headline satellite bug: ``ResultStore`` counter updates were
read-modify-write with no inter-process lock, so two concurrent
``campaign run`` processes lost puts/hits/misses increments. These
tests assert the :class:`~repro.store.FileLock` actually excludes and
that a multiprocess stress run lands on the *exact* final count.
"""

import json
import multiprocessing

import pytest

from repro.store import FileLock, ResultStore, store_lock

pytestmark = pytest.mark.filterwarnings("error::UserWarning")


class TestFileLock:
    def test_basic_acquire_release(self, tmp_path):
        lock = FileLock(tmp_path / "l.lock")
        assert lock.acquire() is True
        assert lock.acquired
        lock.release()
        assert not lock.acquired

    def test_context_manager(self, tmp_path):
        with FileLock(tmp_path / "l.lock") as lock:
            assert lock.acquired
        assert not lock.acquired

    def test_second_holder_times_out(self, tmp_path):
        path = tmp_path / "l.lock"
        with FileLock(path):
            contender = FileLock(path, timeout=0.1, poll_interval=0.01)
            assert contender.acquire() is False
            assert not contender.acquired

    def test_reacquirable_after_release(self, tmp_path):
        path = tmp_path / "l.lock"
        with FileLock(path):
            pass
        with FileLock(path, timeout=0.5) as second:
            assert second.acquired

    def test_unwritable_root_degrades_without_raising(self, tmp_path,
                                                      monkeypatch):
        def deny(self, *a, **kw):
            raise OSError(30, "Read-only file system")

        monkeypatch.setattr("pathlib.Path.mkdir", deny)
        lock = FileLock(tmp_path / "no" / "l.lock")
        assert lock.acquire() is False  # degraded, not crashed

    def test_store_lock_names_the_lockfile(self, tmp_path):
        lock = store_lock(tmp_path)
        assert lock.path == tmp_path / "store.lock"


def _miss_worker(args):
    """Stress worker: each miss is one locked counter increment."""
    root, worker_id, count = args
    store = ResultStore(root)
    for i in range(count):
        store.get(f"{i % 16:02x}missing-{worker_id}-{i}")


def _put_worker(args):
    """Stress worker for puts: records + counter, concurrently."""
    import warnings

    from repro.store import StoredResult

    root, worker_id, count, payload = args
    store = ResultStore(root)
    result = StoredResult.from_dict(payload)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        for i in range(count):
            store.put(f"{i % 16:02x}{worker_id}{i:04d}" + "f" * 48, result)


class TestConcurrentCounters:
    """ISSUE satellite: concurrent campaigns must not lose increments."""

    WORKERS = 4
    PER_WORKER = 25

    def test_concurrent_misses_count_exactly(self, tmp_path):
        root = str(tmp_path / "store")
        with multiprocessing.Pool(self.WORKERS) as pool:
            pool.map(_miss_worker,
                     [(root, w, self.PER_WORKER)
                      for w in range(self.WORKERS)])
        stats = ResultStore(root).stats()
        assert stats["misses"] == self.WORKERS * self.PER_WORKER
        assert stats["hits"] == 0
        assert stats["puts"] == 0

    def test_concurrent_puts_count_exactly(self, tmp_path, sim_result):
        from repro.store import StoredResult

        root = str(tmp_path / "store")
        payload = StoredResult.from_sim_result(sim_result).to_dict()
        with multiprocessing.Pool(self.WORKERS) as pool:
            pool.map(_put_worker,
                     [(root, w, self.PER_WORKER, payload)
                      for w in range(self.WORKERS)])
        store = ResultStore(root)
        assert store.stats()["puts"] == self.WORKERS * self.PER_WORKER
        assert len(list(store.keys())) == self.WORKERS * self.PER_WORKER

    def test_metadata_is_never_torn(self, tmp_path):
        """After the stress run store.json is whole, parsable JSON."""
        root = str(tmp_path / "store")
        with multiprocessing.Pool(2) as pool:
            pool.map(_miss_worker, [(root, w, 10) for w in range(2)])
        data = json.loads((tmp_path / "store" / "store.json").read_text())
        assert data["misses"] == 20


@pytest.fixture(scope="module")
def sim_result():
    """One real (tiny) simulation to serialize in stress puts."""
    from repro.core.config import BenchmarkConfig
    from repro.core.suite import MicroBenchmarkSuite
    from repro.hadoop.cluster import cluster_a

    config = BenchmarkConfig.from_shuffle_size(
        2e7, pattern="avg", network="1GigE", num_maps=4, num_reduces=2,
        key_size=256, value_size=256)
    return MicroBenchmarkSuite(cluster=cluster_a(2)).run_config(
        config, memoize=False)
