"""Stable content addressing: the store key contract.

The same logical point must map to the same key in every process —
regardless of ``PYTHONHASHSEED``, dict construction order, or the
alias used for the interconnect — and any change to the configuration,
the fault plan, the cluster, the runtime or the key schema must change
the key.
"""

import dataclasses
import os
import subprocess
import sys

import pytest

from repro.core.config import BenchmarkConfig
from repro.faults import FaultPlan, NodeCrash
from repro.hadoop.cluster import cluster_a, cluster_b
from repro.hadoop.job import JobConf
from repro.store import canonical, canonical_json, point_key, stable_digest


def tiny_config(network="1GigE", **overrides):
    kwargs = dict(num_maps=4, num_reduces=2, key_size=256, value_size=256)
    kwargs.update(overrides)
    return BenchmarkConfig.from_shuffle_size(2e7, pattern="avg",
                                             network=network, **kwargs)


class TestCanonical:
    def test_dataclass_envelope(self):
        doc = canonical(JobConf(version="yarn"))
        assert doc["__type__"] == "JobConf"
        assert doc["version"] == "yarn"

    def test_json_is_key_order_independent(self):
        assert (canonical_json({"b": 1, "a": 2})
                == canonical_json({"a": 2, "b": 1}))

    def test_rejects_unserializable(self):
        with pytest.raises(TypeError):
            canonical(object())

    def test_digest_is_hex_sha256(self):
        digest = stable_digest({"x": 1})
        assert len(digest) == 64
        int(digest, 16)  # raises if not hex


class TestPointKey:
    def test_same_point_same_key(self):
        a = point_key(tiny_config(), cluster_a(2))
        b = point_key(tiny_config(), cluster_a(2))
        assert a == b

    def test_network_alias_resolves_to_same_key(self):
        # "ipoib-qdr" and the canonical catalog name address the same
        # interconnect, so they must address the same stored result.
        a = point_key(tiny_config(network="ipoib-qdr"), cluster_a(2))
        b = point_key(tiny_config(network="IPoIB-QDR(32Gbps)"), cluster_a(2))
        assert a == b

    def test_config_changes_key(self):
        base = point_key(tiny_config(), cluster_a(2))
        assert point_key(tiny_config(seed=7), cluster_a(2)) != base
        assert point_key(tiny_config(num_reduces=4), cluster_a(2)) != base
        assert point_key(tiny_config(network="10GigE"), cluster_a(2)) != base

    def test_cluster_changes_key(self):
        config = tiny_config()
        assert (point_key(config, cluster_a(2))
                != point_key(config, cluster_a(4)))
        assert (point_key(config, cluster_a(2))
                != point_key(config, cluster_b(2)))

    def test_runtime_changes_key(self):
        config = tiny_config()
        assert (point_key(config, cluster_a(2),
                          jobconf=JobConf(version="mrv1"))
                != point_key(config, cluster_a(2),
                             jobconf=JobConf(version="yarn")))

    def test_fault_plan_changes_key(self):
        config = tiny_config()
        plan = FaultPlan(node_crashes=(NodeCrash("slave1", at_time=5.0),))
        assert (point_key(config, cluster_a(2))
                != point_key(config, cluster_a(2), fault_plan=plan))

    def test_schema_version_changes_key(self):
        config = tiny_config()
        assert (point_key(config, cluster_a(2), schema_version=1)
                != point_key(config, cluster_a(2), schema_version=2))

    def test_key_ignores_dataclass_field_identity(self):
        # replace() round-trip produces an equal config; key must match.
        config = tiny_config()
        clone = dataclasses.replace(config)
        assert point_key(config, cluster_a(2)) == point_key(clone,
                                                            cluster_a(2))


class TestCrossProcessStability:
    def test_key_survives_hash_randomization(self):
        """The key must be identical across interpreter launches with
        different PYTHONHASHSEED values (the whole point of content
        addressing: a warm store must hit from any process)."""
        script = (
            "from repro.core.config import BenchmarkConfig\n"
            "from repro.hadoop.cluster import cluster_a\n"
            "from repro.store import point_key\n"
            "config = BenchmarkConfig.from_shuffle_size(\n"
            "    2e7, pattern='avg', network='ipoib-qdr',\n"
            "    num_maps=4, num_reduces=2, key_size=256, value_size=256)\n"
            "print(point_key(config, cluster_a(2)))\n"
        )
        import repro

        src_dir = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        outputs = []
        for seed in ("0", "31337"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = os.pathsep.join(
                filter(None, [src_dir, env.get("PYTHONPATH")]))
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, env=env, check=True,
            )
            outputs.append(proc.stdout.strip())
        assert outputs[0] == outputs[1]
        assert len(outputs[0]) == 64

    def test_stable_hash_matches_point_free_functions(self):
        config = tiny_config()
        assert len(config.stable_hash()) == 64
        assert config.canonical_dict()["network"] == "1GigE"
