"""Lease-ledger contract tests, run against both store backends.

The lease ledger is the distributed pool's liveness bookkeeping: while
a ``PoolBackend`` coordinator has a unit out on a worker, the store
records who holds it and until when; completion, failure, abandonment
or worker loss releases it. The ledger mirrors the quarantine ledger's
shape (key → entry dict) and, like it, is advisory metadata — records
are never touched through it.
"""

import pytest

from repro.store import ResultStore, migrate_store

from tests.store.conftest import store_root


@pytest.fixture
def root(tmp_path, backend_name):
    return store_root(tmp_path, backend_name)


@pytest.fixture
def store(root):
    return ResultStore(root)


ENTRY = {"campaign": "c", "label": "1GB 1GigE", "worker": "host:1",
         "attempt": 1, "dispatch": 0, "acquired_at": 1.0,
         "expires_at": 16.0}


class TestLeaseLedger:
    def test_empty_by_default(self, store):
        assert store.leases() == {}
        assert store.stats()["leases"] == 0

    def test_update_read_release_roundtrip(self, store):
        store.lease_update("k1", ENTRY)
        store.lease_update("k2", dict(ENTRY, worker="host:2"))
        leases = store.leases()
        assert set(leases) == {"k1", "k2"}
        assert leases["k1"] == ENTRY
        assert store.stats()["leases"] == 2

        # Renewal overwrites in place (same key, fresher expiry).
        store.lease_update("k1", dict(ENTRY, expires_at=31.0))
        assert store.leases()["k1"]["expires_at"] == 31.0

        assert store.lease_release(["k1"]) == 1
        assert set(store.leases()) == {"k2"}
        assert store.lease_release(["nope"]) == 0

    def test_release_all(self, store):
        store.lease_update("k1", ENTRY)
        store.lease_update("k2", ENTRY)
        assert store.lease_release() == 2
        assert store.leases() == {}

    def test_survives_reopen(self, store, root):
        store.lease_update("k1", ENTRY)
        store.close()
        assert ResultStore(root).leases() == {"k1": ENTRY}

    def test_migrate_copies_leases(self, tmp_path, backend_name):
        src_root = store_root(tmp_path, backend_name, "src")
        ResultStore(src_root).lease_update("k1", ENTRY)
        other = ("sqlite" if backend_name == "filesystem"
                 else "filesystem")
        dst_root = store_root(tmp_path, other, "dst")
        report = migrate_store(src_root, dst_root)
        assert report.leases == 1
        assert "leases" in report.render()
        assert ResultStore(dst_root).leases() == {"k1": ENTRY}
