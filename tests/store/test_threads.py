"""One store instance shared across threads — the service's shape.

The benchmark service hands a single :class:`ResultStore` to its HTTP
worker threads and its scheduler thread simultaneously. That shape
used to break on sqlite: the backend cached one connection per
*process*, so the first cross-thread call died with sqlite3's
``objects created in a thread can only be used in that same thread``.
These tests hammer one backend instance from eight threads on BOTH
backends and assert the exact final counts — no exceptions, no lost
increments, no torn records.
"""

import threading

import pytest

from repro.core.config import BenchmarkConfig
from repro.core.suite import MicroBenchmarkSuite
from repro.hadoop.cluster import cluster_a
from repro.store import ResultStore, StoredResult

THREADS = 8
OPS = 25


@pytest.fixture(scope="module")
def stored_result():
    """One real (tiny) simulation result to write from every thread."""
    config = BenchmarkConfig.from_shuffle_size(
        2e7, pattern="avg", network="1GigE",
        num_maps=4, num_reduces=2, key_size=256, value_size=256)
    suite = MicroBenchmarkSuite(cluster=cluster_a(2))
    return StoredResult.from_sim_result(suite.run_config(config))


class TestSharedInstanceAcrossThreads:
    def test_eight_threads_hammer_one_instance(self, make_store,
                                               stored_result):
        """Regression: puts+hits+misses from 8 threads, one backend."""
        store = make_store()
        errors = []
        barrier = threading.Barrier(THREADS)

        def worker(worker_id):
            barrier.wait()
            try:
                for i in range(OPS):
                    key = f"{i % 16:02x}thread-{worker_id}-{i}"
                    store.put(key, stored_result)
                    assert store.get(key) is not None
                    store.get(f"{i % 16:02x}gone-{worker_id}-{i}")
                    store.stats()
            except Exception as exc:  # collected, not swallowed
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(worker_id,))
                   for worker_id in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert errors == []
        stats = store.stats()
        assert stats["puts"] == THREADS * OPS
        assert stats["hits"] == THREADS * OPS
        assert stats["misses"] == THREADS * OPS
        assert stats["records"] == THREADS * OPS
        assert store.verify().clean

    def test_close_then_reuse_reacquires(self, make_store, stored_result):
        """close() ends handles; the next call transparently reopens."""
        store = make_store()
        store.put("00close-key", stored_result)
        store.close()
        assert store.get("00close-key") is not None

    def test_close_from_another_thread(self, make_store, stored_result):
        """Cross-thread close (the service's shutdown path) is safe."""
        store = make_store()
        store.put("00cross-key", stored_result)
        closer = threading.Thread(target=store.close)
        closer.start()
        closer.join(timeout=30)
        assert store.get("00cross-key") is not None


class TestSqliteConnectionCache:
    def test_each_thread_gets_its_own_connection(self, tmp_path):
        backend = ResultStore(f"sqlite:{tmp_path / 's.sqlite'}").backend
        conn_ids = {}
        barrier = threading.Barrier(4)

        def grab(worker_id):
            barrier.wait()
            conn_ids[worker_id] = id(backend._db())

        threads = [threading.Thread(target=grab, args=(worker_id,))
                   for worker_id in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert len(conn_ids) == 4
        assert len(set(conn_ids.values())) == 4

    def test_connection_is_reused_within_a_thread(self, tmp_path):
        backend = ResultStore(f"sqlite:{tmp_path / 's.sqlite'}").backend
        assert backend._db() is backend._db()

    def test_close_invalidates_every_thread_cache(self, tmp_path):
        backend = ResultStore(f"sqlite:{tmp_path / 's.sqlite'}").backend
        first = backend._db()
        backend.close()
        second = backend._db()
        assert second is not first
