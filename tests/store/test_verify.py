"""Store hardening: verify fsck, degradation, truncation, quarantine.

The contract classes run against both backends; the two classes pinned
to one backend (``TestTruncatedMetadata``, sharded counter files;
``TestUnreadableLedgerFile``, the quarantine JSON file) exercise
filesystem-layout failure modes that have no sqlite equivalent.
"""

import json

import pytest

from repro.core.config import BenchmarkConfig
from repro.core.suite import MicroBenchmarkSuite, clear_result_cache
from repro.hadoop.cluster import cluster_a
from repro.store import (
    ResultStore,
    ResultStoreWarning,
    StoredResult,
    point_key,
)

from tests.store.conftest import (
    break_writes,
    corrupt_checkpoint,
    corrupt_metadata,
    load_record,
    rewrite_record,
    store_root,
)


def tiny_config(network="1GigE", **overrides):
    kwargs = dict(num_maps=4, num_reduces=2, key_size=256, value_size=256)
    kwargs.update(overrides)
    return BenchmarkConfig.from_shuffle_size(2e7, pattern="avg",
                                             network=network, **kwargs)


@pytest.fixture(scope="module")
def sim_result():
    suite = MicroBenchmarkSuite(cluster=cluster_a(2))
    return suite.run_config(tiny_config(), memoize=False)


def _fill(tmp_path, backend_name, n=2):
    """A store with n records written the real way (with provenance)."""
    root = store_root(tmp_path, backend_name)
    clear_result_cache()
    suite = MicroBenchmarkSuite(cluster=cluster_a(2), store=root)
    keys = []
    for seed in range(n):
        config = tiny_config(seed=seed + 1)
        suite.run_config(config)
        keys.append(suite.store_key(config))
    clear_result_cache()
    return ResultStore(root), keys


class TestVerify:
    def test_clean_store_verifies(self, tmp_path, backend_name):
        store, _keys = _fill(tmp_path, backend_name)
        report = store.verify()
        assert report.clean
        assert report.checked == 2 and report.ok == 2
        assert report.problems == []

    def test_unparsable_record_is_reported(self, tmp_path, backend_name):
        store, keys = _fill(tmp_path, backend_name)
        rewrite_record(store, keys[0], "{ nope")
        report = store.verify()
        assert not report.clean
        assert len(report.problems) == 1
        assert "unparsable" in report.problems[0].problem

    def test_key_mismatch_is_reported(self, tmp_path, backend_name):
        store, keys = _fill(tmp_path, backend_name)
        record = load_record(store, keys[0])
        record["key"] = "f" * 64
        rewrite_record(store, keys[0], json.dumps(record))
        report = store.verify()
        assert any("key mismatch" in p.problem for p in report.problems)

    def test_stale_schema_is_reported(self, tmp_path, backend_name):
        store, keys = _fill(tmp_path, backend_name)
        record = load_record(store, keys[0])
        record["schema"] = 999
        rewrite_record(store, keys[0], json.dumps(record))
        report = store.verify()
        assert any("stale schema" in p.problem for p in report.problems)

    def test_malformed_payload_is_reported(self, tmp_path, backend_name):
        store, keys = _fill(tmp_path, backend_name)
        record = load_record(store, keys[0])
        del record["result"]["execution_time"]
        rewrite_record(store, keys[0], json.dumps(record))
        report = store.verify()
        assert any("malformed result" in p.problem for p in report.problems)

    def test_tampered_provenance_is_reported(self, tmp_path, backend_name):
        """The content-address must actually address the content."""
        store, keys = _fill(tmp_path, backend_name)
        record = load_record(store, keys[0])
        record["provenance"]["config"]["seed"] = 424242
        rewrite_record(store, keys[0], json.dumps(record))
        report = store.verify()
        assert any("provenance does not hash" in p.problem
                   for p in report.problems)

    def test_verify_gc_sweeps_only_problems(self, tmp_path, backend_name):
        store, keys = _fill(tmp_path, backend_name)
        rewrite_record(store, keys[0], "garbage")
        report = store.verify(gc=True)
        assert report.swept == 1
        assert list(store.keys()) == sorted(keys[1:])
        assert store.verify().clean

    def test_corrupt_metadata_flagged(self, tmp_path, backend_name):
        store, _keys = _fill(tmp_path, backend_name)
        corrupt_metadata(store)
        # A fresh handle, as a later inspection process would open.
        fresh = ResultStore(store_root(tmp_path, backend_name))
        with pytest.warns(ResultStoreWarning) if backend_name == "sqlite" \
                else _no_warning_needed():
            report = fresh.verify()
        assert report.meta_ok is False


def _no_warning_needed():
    """Placeholder context for the branch that warns nothing."""
    import contextlib

    return contextlib.nullcontext()


class TestTruncatedMetadata:
    """Truncated counter files must warn + reinit, not raise.

    Filesystem-backend specific: counters live in sharded JSON files
    (``counters/shard-NN.json``); this pins the truncation tolerance of
    that layout. (SQLite metadata corruption is covered by
    ``test_corrupt_metadata_flagged``.)
    """

    def _shard_path(self, store):
        """The counter shard this process's bumps land in."""
        backend = store.backend
        return backend.shard_path(backend._counter_shard())

    def test_truncated_shard_reinitializes_counters(self, tmp_path):
        store, _keys = _fill(tmp_path, "filesystem")
        shard = self._shard_path(store)
        assert json.loads(shard.read_text())["puts"] == 2
        shard.write_text('{"puts": 2, "hi')  # killed mid-write
        fresh = ResultStore(store_root(tmp_path, "filesystem"))
        with pytest.warns(ResultStoreWarning, match="reinitializing"):
            stats = fresh.stats()
        assert stats["puts"] == 0  # reinitialized

    def test_truncated_legacy_meta_reinitializes(self, tmp_path):
        """A corrupt pre-shard ``store.json`` is tolerated the same way."""
        store, _keys = _fill(tmp_path, "filesystem")
        store.meta_path.write_text('{"puts": 2, "hi')
        fresh = ResultStore(store_root(tmp_path, "filesystem"))
        with pytest.warns(ResultStoreWarning, match="reinitializing"):
            stats = fresh.stats()
        assert stats["puts"] == 2  # legacy file zeroed, shards intact

    def test_next_write_repairs_the_file(self, tmp_path):
        store, _keys = _fill(tmp_path, "filesystem")
        shard = self._shard_path(store)
        shard.write_text("")
        fresh = ResultStore(store_root(tmp_path, "filesystem"))
        with pytest.warns(ResultStoreWarning, match="reinitializing"):
            fresh.get("ab" * 32)  # miss -> locked bump rewrites the shard
        data = json.loads(shard.read_text())
        assert data["misses"] == 1

    def test_legacy_counters_aggregate_with_shards(self, tmp_path):
        """A pre-shard store upgrades in place: totals include both."""
        store, _keys = _fill(tmp_path, "filesystem")
        store.meta_path.write_text(
            json.dumps({"schema": 1, "puts": 5, "hits": 1, "misses": 0}))
        stats = ResultStore(store_root(tmp_path, "filesystem")).stats()
        assert stats["puts"] == 7  # 5 legacy + 2 sharded
        assert stats["hits"] == 1


class TestReadOnlyDegradation:
    """Unwritable/full roots degrade to read-only; simulation goes on."""

    def test_put_degrades_with_one_warning(self, make_store, backend_name,
                                           sim_result, monkeypatch):
        store = make_store()
        break_writes(backend_name, monkeypatch)
        stored = StoredResult.from_sim_result(sim_result)
        with pytest.warns(ResultStoreWarning, match="read-only"):
            store.put("ab" * 32, stored)
        assert store.read_only
        # Further writes are silently dropped, not re-warned.
        import warnings as warnings_mod
        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            store.put("cd" * 32, stored)
            store.quarantine_add("ef" * 32, {"error": "x"})
            assert store.write_checkpoint("c", {}) is None

    def test_degraded_store_still_serves_reads(self, make_store,
                                               backend_name, sim_result,
                                               monkeypatch):
        key = point_key(sim_result.config, cluster_a(2))
        store = make_store()
        store.put(key, StoredResult.from_sim_result(sim_result))
        break_writes(backend_name, monkeypatch)
        with pytest.warns(ResultStoreWarning, match="read-only"):
            store.get("ab" * 32)  # miss-bump write fails -> degrade
        assert store.contains(key)
        assert store.get(key) is not None  # hit served, bump dropped

    def test_suite_keeps_simulating_on_degraded_store(self, tmp_path,
                                                      backend_name,
                                                      monkeypatch):
        """ISSUE: warn, keep simulating, don't crash."""
        clear_result_cache()
        suite = MicroBenchmarkSuite(
            cluster=cluster_a(2),
            store=store_root(tmp_path, backend_name))
        break_writes(backend_name, monkeypatch)
        with pytest.warns(ResultStoreWarning, match="read-only"):
            result = suite.run_config(tiny_config())
        assert result.execution_time > 0
        clear_result_cache()


class TestQuarantineLedger:
    def test_add_read_clear_round_trip(self, make_store):
        store = make_store()
        assert store.quarantine() == {}
        store.quarantine_add("aa" * 32, {"error": "boom", "attempts": 2})
        store.quarantine_add("bb" * 32, {"error": "bang", "attempts": 1})
        ledger = store.quarantine()
        assert set(ledger) == {"aa" * 32, "bb" * 32}
        assert ledger["aa" * 32]["error"] == "boom"
        assert store.quarantine_clear(["aa" * 32, "zz" * 32]) == 1
        assert set(store.quarantine()) == {"bb" * 32}
        assert store.quarantine_clear() == 1
        assert store.quarantine() == {}

    def test_quarantined_count_in_stats(self, make_store):
        store = make_store()
        store.quarantine_add("aa" * 32, {"error": "boom"})
        assert store.stats()["quarantined"] == 1

    def test_quarantine_location_is_reported(self, make_store):
        assert "quarantine" in make_store().quarantine_location


class TestUnreadableLedgerFile:
    """Filesystem-specific: a garbage quarantine.json is empty + warned."""

    def test_unreadable_ledger_is_empty_with_warning(self, tmp_path):
        store = ResultStore(store_root(tmp_path, "filesystem"))
        store.quarantine_path.parent.mkdir(parents=True, exist_ok=True)
        store.quarantine_path.write_text("{ nope")
        with pytest.warns(ResultStoreWarning, match="quarantine"):
            assert store.quarantine() == {}


class TestCheckpoints:
    def test_checkpoint_round_trip(self, make_store):
        store = make_store()
        path = store.write_checkpoint("fig2", {"total": 4,
                                               "completed": ["a"]})
        assert path is not None and path.exists()
        data = store.read_checkpoint("fig2")
        assert data["total"] == 4 and data["completed"] == ["a"]

    def test_missing_checkpoint_is_none(self, make_store):
        assert make_store().read_checkpoint("x") is None

    def test_corrupt_checkpoint_warns(self, make_store):
        store = make_store()
        corrupt_checkpoint(store, "fig2")
        with pytest.warns(ResultStoreWarning, match="checkpoint"):
            assert store.read_checkpoint("fig2") is None
