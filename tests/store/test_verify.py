"""Store hardening: verify fsck, degradation, truncation, quarantine."""

import json

import pytest

from repro.core.config import BenchmarkConfig
from repro.core.suite import MicroBenchmarkSuite, clear_result_cache
from repro.hadoop.cluster import cluster_a
from repro.store import (
    ResultStore,
    ResultStoreWarning,
    StoredResult,
    point_key,
)


def tiny_config(network="1GigE", **overrides):
    kwargs = dict(num_maps=4, num_reduces=2, key_size=256, value_size=256)
    kwargs.update(overrides)
    return BenchmarkConfig.from_shuffle_size(2e7, pattern="avg",
                                             network=network, **kwargs)


@pytest.fixture(scope="module")
def sim_result():
    suite = MicroBenchmarkSuite(cluster=cluster_a(2))
    return suite.run_config(tiny_config(), memoize=False)


def _fill(tmp_path, sim_result, n=2):
    """A store with n records written the real way (with provenance)."""
    clear_result_cache()
    suite = MicroBenchmarkSuite(cluster=cluster_a(2),
                                store=tmp_path / "store")
    keys = []
    for seed in range(n):
        config = tiny_config(seed=seed + 1)
        suite.run_config(config)
        keys.append(suite.store_key(config))
    clear_result_cache()
    return ResultStore(tmp_path / "store"), keys


class TestVerify:
    def test_clean_store_verifies(self, tmp_path, sim_result):
        store, _keys = _fill(tmp_path, sim_result)
        report = store.verify()
        assert report.clean
        assert report.checked == 2 and report.ok == 2
        assert report.problems == []

    def test_unparsable_record_is_reported(self, tmp_path, sim_result):
        store, keys = _fill(tmp_path, sim_result)
        store.record_path(keys[0]).write_text("{ nope")
        report = store.verify()
        assert not report.clean
        assert len(report.problems) == 1
        assert "unparsable" in report.problems[0].problem

    def test_key_mismatch_is_reported(self, tmp_path, sim_result):
        store, keys = _fill(tmp_path, sim_result)
        record = json.loads(store.record_path(keys[0]).read_text())
        record["key"] = "f" * 64
        store.record_path(keys[0]).write_text(json.dumps(record))
        report = store.verify()
        assert any("key mismatch" in p.problem for p in report.problems)

    def test_stale_schema_is_reported(self, tmp_path, sim_result):
        store, keys = _fill(tmp_path, sim_result)
        record = json.loads(store.record_path(keys[0]).read_text())
        record["schema"] = 999
        store.record_path(keys[0]).write_text(json.dumps(record))
        report = store.verify()
        assert any("stale schema" in p.problem for p in report.problems)

    def test_malformed_payload_is_reported(self, tmp_path, sim_result):
        store, keys = _fill(tmp_path, sim_result)
        record = json.loads(store.record_path(keys[0]).read_text())
        del record["result"]["execution_time"]
        store.record_path(keys[0]).write_text(json.dumps(record))
        report = store.verify()
        assert any("malformed result" in p.problem for p in report.problems)

    def test_tampered_provenance_is_reported(self, tmp_path, sim_result):
        """The content-address must actually address the content."""
        store, keys = _fill(tmp_path, sim_result)
        record = json.loads(store.record_path(keys[0]).read_text())
        record["provenance"]["config"]["seed"] = 424242
        store.record_path(keys[0]).write_text(json.dumps(record))
        report = store.verify()
        assert any("provenance does not hash" in p.problem
                   for p in report.problems)

    def test_verify_gc_sweeps_only_problems(self, tmp_path, sim_result):
        store, keys = _fill(tmp_path, sim_result)
        store.record_path(keys[0]).write_text("garbage")
        report = store.verify(gc=True)
        assert report.swept == 1
        assert list(store.keys()) == sorted(keys[1:])
        assert store.verify().clean

    def test_corrupt_metadata_flagged(self, tmp_path, sim_result):
        store, _keys = _fill(tmp_path, sim_result)
        store.meta_path.write_text('{"puts": 2, "hi')  # killed mid-write
        report = store.verify()
        assert report.meta_ok is False


class TestTruncatedMetadata:
    """Satellite: truncated store.json must warn + reinit, not raise."""

    def test_truncated_meta_reinitializes_counters(self, tmp_path,
                                                   sim_result):
        store, _keys = _fill(tmp_path, sim_result)
        store.meta_path.write_text('{"puts": 2, "hi')
        fresh = ResultStore(store.root)
        with pytest.warns(ResultStoreWarning, match="reinitializing"):
            stats = fresh.stats()
        assert stats["puts"] == 0  # reinitialized

    def test_next_write_repairs_the_file(self, tmp_path, sim_result):
        store, _keys = _fill(tmp_path, sim_result)
        store.meta_path.write_text("")
        fresh = ResultStore(store.root)
        with pytest.warns(ResultStoreWarning, match="reinitializing"):
            fresh.get("ab" * 32)  # miss -> locked bump rewrites meta
        data = json.loads(store.meta_path.read_text())
        assert data["misses"] == 1


class TestReadOnlyDegradation:
    """Unwritable/full roots degrade to read-only; simulation goes on."""

    def _break_writes(self, monkeypatch):
        import repro.store.store as store_mod

        def disk_full(path, payload):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(store_mod, "atomic_write_json", disk_full)

    def test_put_degrades_with_one_warning(self, tmp_path, sim_result,
                                           monkeypatch):
        store = ResultStore(tmp_path / "store")
        self._break_writes(monkeypatch)
        stored = StoredResult.from_sim_result(sim_result)
        with pytest.warns(ResultStoreWarning, match="read-only"):
            store.put("ab" * 32, stored)
        assert store.read_only
        # Further writes are silently dropped, not re-warned.
        import warnings as warnings_mod
        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            store.put("cd" * 32, stored)
            store.quarantine_add("ef" * 32, {"error": "x"})
            assert store.write_checkpoint("c", {}) is None

    def test_degraded_store_still_serves_reads(self, tmp_path, sim_result,
                                               monkeypatch):
        key = point_key(sim_result.config, cluster_a(2))
        store = ResultStore(tmp_path / "store")
        store.put(key, StoredResult.from_sim_result(sim_result))
        self._break_writes(monkeypatch)
        with pytest.warns(ResultStoreWarning, match="read-only"):
            store.get("ab" * 32)  # miss-bump write fails -> degrade
        assert store.contains(key)
        assert store.get(key) is not None  # hit served, bump dropped

    def test_suite_keeps_simulating_on_degraded_store(self, tmp_path,
                                                      monkeypatch):
        """ISSUE: warn, keep simulating, don't crash."""
        clear_result_cache()
        suite = MicroBenchmarkSuite(cluster=cluster_a(2),
                                    store=tmp_path / "store")
        self._break_writes(monkeypatch)
        with pytest.warns(ResultStoreWarning, match="read-only"):
            result = suite.run_config(tiny_config())
        assert result.execution_time > 0
        clear_result_cache()


class TestQuarantineLedger:
    def test_add_read_clear_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        assert store.quarantine() == {}
        store.quarantine_add("aa" * 32, {"error": "boom", "attempts": 2})
        store.quarantine_add("bb" * 32, {"error": "bang", "attempts": 1})
        ledger = store.quarantine()
        assert set(ledger) == {"aa" * 32, "bb" * 32}
        assert ledger["aa" * 32]["error"] == "boom"
        assert store.quarantine_clear(["aa" * 32, "zz" * 32]) == 1
        assert set(store.quarantine()) == {"bb" * 32}
        assert store.quarantine_clear() == 1
        assert store.quarantine() == {}

    def test_unreadable_ledger_is_empty_with_warning(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.quarantine_path.parent.mkdir(parents=True, exist_ok=True)
        store.quarantine_path.write_text("{ nope")
        with pytest.warns(ResultStoreWarning, match="quarantine"):
            assert store.quarantine() == {}

    def test_quarantined_count_in_stats(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.quarantine_add("aa" * 32, {"error": "boom"})
        assert store.stats()["quarantined"] == 1


class TestCheckpoints:
    def test_checkpoint_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        path = store.write_checkpoint("fig2", {"total": 4,
                                               "completed": ["a"]})
        assert path is not None and path.exists()
        data = store.read_checkpoint("fig2")
        assert data["total"] == 4 and data["completed"] == ["a"]

    def test_missing_checkpoint_is_none(self, tmp_path):
        assert ResultStore(tmp_path / "store").read_checkpoint("x") is None

    def test_corrupt_checkpoint_warns(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        path = store.checkpoint_path("fig2")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{ nope")
        with pytest.warns(ResultStoreWarning, match="checkpoint"):
            assert store.read_checkpoint("fig2") is None
