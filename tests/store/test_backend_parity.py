"""Cross-backend parity: golden warm starts and lossless migration.

The acceptance bar for the pluggable-backend refactor: all 40 golden
points warm-start hex-exact through *each* backend, and ``repro store
migrate`` moves a corpus between backends key-for-key with
byte-identical record text and exact counter totals — in both
directions, including a full round trip back onto the original
backend.
"""

import json
from pathlib import Path

import pytest

from repro.core.config import BenchmarkConfig
from repro.core.suite import MicroBenchmarkSuite, clear_result_cache
from repro.hadoop.cluster import cluster_a
from repro.hadoop.job import JobConf
from repro.store import ResultStore, StoredResult, migrate_store

from tests.store.conftest import record_text, store_root

GOLDEN_PATH = Path(__file__).parent.parent / "data" / "golden_times.json"

with GOLDEN_PATH.open() as _handle:
    GOLDEN = json.load(_handle)

POINTS = GOLDEN["points"]

assert len(POINTS) == 40, "golden file must pin exactly 40 points"


def golden_config(point):
    """The BenchmarkConfig of one golden point."""
    return BenchmarkConfig.from_shuffle_size(
        point["shuffle_gb"] * 1e9,
        pattern=point["pattern"],
        network=point["network"],
        num_maps=GOLDEN["num_maps"],
        num_reduces=GOLDEN["num_reduces"],
        key_size=GOLDEN["key_size"],
        value_size=GOLDEN["value_size"],
    )


def _suites(root):
    """One suite per framework version, all sharing one store root."""
    versions = sorted({p["version"] for p in POINTS})
    return {
        version: MicroBenchmarkSuite(cluster=cluster_a(2),
                                     jobconf=JobConf(version=version),
                                     store=root)
        for version in versions
    }


@pytest.fixture(autouse=True)
def fresh_memo():
    clear_result_cache()
    yield
    clear_result_cache()


class TestGoldenWarmStarts:
    """ISSUE acceptance: 40/40 golden points hex-exact per backend."""

    def test_all_40_points_warm_start_hex_exact(self, tmp_path,
                                                backend_name):
        root = store_root(tmp_path, backend_name)

        # Cold pass: simulate and record every golden point.
        cold = _suites(root)
        for point in POINTS:
            result = cold[point["version"]].run_config(golden_config(point))
            assert (result.execution_time.hex()
                    == point["execution_time_hex"])
        puts_after_cold = ResultStore(root).stats()["puts"]
        assert puts_after_cold == 40

        # Warm pass, fresh process (memo cleared): every point must be
        # served from the store, hex-exact, with zero new simulations.
        clear_result_cache()
        warm = _suites(root)
        for point in POINTS:
            stored = warm[point["version"]].run_config(golden_config(point))
            assert isinstance(stored, StoredResult)
            assert stored.cached is True
            assert (stored.execution_time.hex()
                    == point["execution_time_hex"])
        assert ResultStore(root).stats()["puts"] == puts_after_cold


def _populate(root, n=4):
    """A store with n golden records, tags, quarantine, checkpoint."""
    suites = _suites(root)
    keys = []
    for point in POINTS[:n]:
        suite = suites[point["version"]]
        config = golden_config(point)
        suite.run_config(config)
        keys.append(suite.store_key(config))
    clear_result_cache()
    store = ResultStore(root)
    store.tag(keys[0], "mig-camp", {"trial": 0})
    store.tag(keys[1], "mig-camp", {"trial": 1})
    store.quarantine_add("ab" * 32, {"error": "boom", "attempts": 3})
    store.write_checkpoint("mig-camp", {"total": n,
                                        "completed": keys[:2]})
    return store, keys


class TestMigration:
    """`repro store migrate` is lossless across backends, both ways."""

    def test_round_trip_is_byte_identical(self, tmp_path, backend_name):
        other = "sqlite" if backend_name == "filesystem" else "filesystem"
        root_a = store_root(tmp_path, backend_name, "a")
        root_b = store_root(tmp_path, other, "b")
        root_c = store_root(tmp_path, backend_name, "c")
        source, keys = _populate(root_a)

        first = migrate_store(root_a, root_b)
        second = migrate_store(root_b, root_c)
        assert first.records == len(keys) == second.records
        assert first.quarantined == 1 == second.quarantined
        assert first.checkpoints == 1 == second.checkpoints

        stores = [source, ResultStore(root_b), ResultStore(root_c)]
        expected_keys = sorted(keys)
        for store in stores:
            assert list(store.keys()) == expected_keys
        # Key-for-key byte-identical record text across every hop.
        for key in keys:
            texts = {record_text(store, key) for store in stores}
            assert len(texts) == 1
        # Exact counter totals, quarantine and checkpoints preserved.
        reference = stores[0].backend.counters()
        assert any(reference.values())  # the comparison is non-vacuous
        for store in stores[1:]:
            assert store.backend.counters() == reference
            assert store.quarantine() == stores[0].quarantine()
            assert (store.backend.checkpoints()
                    == stores[0].backend.checkpoints())

    def test_round_trip_reproduces_record_files(self, tmp_path):
        """fs -> sqlite -> fs ends with byte-identical record *files*."""
        root_a = store_root(tmp_path, "filesystem", "a")
        root_b = store_root(tmp_path, "sqlite", "b")
        root_c = store_root(tmp_path, "filesystem", "c")
        source, keys = _populate(root_a, n=2)
        migrate_store(root_a, root_b)
        migrate_store(root_b, root_c)
        copy = ResultStore(root_c)
        for key in keys:
            assert (copy.backend.record_path(key).read_bytes()
                    == source.backend.record_path(key).read_bytes())

    def test_warm_start_through_migrated_copy(self, tmp_path,
                                              backend_name):
        other = "sqlite" if backend_name == "filesystem" else "filesystem"
        root_a = store_root(tmp_path, backend_name, "a")
        root_b = store_root(tmp_path, other, "b")
        _populate(root_a, n=2)
        migrate_store(root_a, root_b)

        clear_result_cache()
        warm = _suites(root_b)
        puts_before = ResultStore(root_b).stats()["puts"]
        for point in POINTS[:2]:
            stored = warm[point["version"]].run_config(golden_config(point))
            assert isinstance(stored, StoredResult)
            assert (stored.execution_time.hex()
                    == point["execution_time_hex"])
        assert ResultStore(root_b).stats()["puts"] == puts_before

    def test_migrating_onto_itself_is_refused(self, tmp_path,
                                              backend_name):
        root = store_root(tmp_path, backend_name)
        ResultStore(root).quarantine_add("aa" * 32, {"error": "x"})
        with pytest.raises(ValueError, match="same store"):
            migrate_store(root, root)
