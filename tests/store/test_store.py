"""ResultStore behavior: round-trips, counters, corruption, gc.

Every class here runs against both backends (``backend_name`` /
``make_store`` from ``conftest.py``): the facade contract — not the
backing — is what these tests pin down.
"""

import json

import pytest

from repro.core.config import BenchmarkConfig
from repro.core.suite import MicroBenchmarkSuite, clear_result_cache
from repro.hadoop.cluster import cluster_a
from repro.store import (
    ResultStore,
    ResultStoreWarning,
    StoredResult,
    point_key,
)

from tests.store.conftest import load_record, rewrite_record, store_root


def tiny_config(network="1GigE", **overrides):
    kwargs = dict(num_maps=4, num_reduces=2, key_size=256, value_size=256)
    kwargs.update(overrides)
    return BenchmarkConfig.from_shuffle_size(2e7, pattern="avg",
                                             network=network, **kwargs)


@pytest.fixture(scope="module")
def sim_result():
    """One real (tiny) simulation to serialize."""
    suite = MicroBenchmarkSuite(cluster=cluster_a(2))
    return suite.run_config(tiny_config())


class TestRoundTrip:
    def test_put_get_round_trip(self, make_store, sim_result):
        store = make_store()
        key = point_key(sim_result.config, cluster_a(2))
        store.put(key, StoredResult.from_sim_result(sim_result))
        loaded = store.get(key)
        assert loaded is not None
        assert loaded.cached is True
        # Bit-identical: JSON round-trips repr(float) exactly.
        assert (loaded.execution_time.hex()
                == sim_result.execution_time.hex())
        assert loaded.interconnect_name == sim_result.interconnect_name
        assert loaded.config == sim_result.config

    def test_phase_breakdown_survives(self, make_store, sim_result):
        store = make_store()
        key = point_key(sim_result.config, cluster_a(2))
        store.put(key, StoredResult.from_sim_result(sim_result))
        loaded = store.get(key)
        original = sim_result.phase_breakdown().totals()
        restored = loaded.phase_breakdown().totals()
        for phase, seconds in original.items():
            assert restored[phase].hex() == seconds.hex()

    def test_summary_shape_matches_sim_result(self, tmp_path, sim_result):
        stored = StoredResult.from_sim_result(sim_result)
        live = sim_result.summary()
        warm = stored.summary()
        assert warm == live


class TestCounters:
    def test_stats_progression(self, make_store, sim_result):
        store = make_store()
        key = point_key(sim_result.config, cluster_a(2))
        assert store.get(key) is None
        store.put(key, StoredResult.from_sim_result(sim_result))
        assert store.get(key) is not None
        stats = store.stats()
        assert stats["puts"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["records"] == 1

    def test_counters_persist_across_instances(self, make_store,
                                               sim_result):
        store = make_store()
        key = point_key(sim_result.config, cluster_a(2))
        store.put(key, StoredResult.from_sim_result(sim_result))
        assert make_store().stats()["puts"] == 1

    def test_contains_does_not_bump_counters(self, make_store, sim_result):
        store = make_store()
        key = point_key(sim_result.config, cluster_a(2))
        assert not store.contains(key)
        store.put(key, StoredResult.from_sim_result(sim_result))
        assert store.contains(key)
        stats = store.stats()
        assert stats["hits"] == 0
        assert stats["misses"] == 0

    def test_stats_name_the_backend(self, make_store, backend_name):
        assert make_store().stats()["backend"] == backend_name


class TestCorruption:
    def test_corrupted_record_warns_and_misses(self, make_store,
                                               sim_result):
        store = make_store()
        key = point_key(sim_result.config, cluster_a(2))
        store.put(key, StoredResult.from_sim_result(sim_result))
        rewrite_record(store, key, "{ not json")
        with pytest.warns(ResultStoreWarning):
            assert store.get(key) is None

    def test_malformed_payload_warns_and_misses(self, make_store,
                                                sim_result):
        store = make_store()
        key = point_key(sim_result.config, cluster_a(2))
        store.put(key, StoredResult.from_sim_result(sim_result))
        record = load_record(store, key)
        del record["result"]["execution_time"]
        rewrite_record(store, key, json.dumps(record))
        with pytest.warns(ResultStoreWarning):
            assert store.get(key) is None

    def test_corruption_never_poisons_the_suite(self, tmp_path,
                                                backend_name):
        """A bad record re-simulates instead of crashing the run."""
        root = store_root(tmp_path, backend_name)
        config = tiny_config()
        clear_result_cache()
        suite = MicroBenchmarkSuite(cluster=cluster_a(2), store=root)
        result = suite.run_config(config)
        rewrite_record(ResultStore(root), suite.store_key(config),
                       "garbage")
        clear_result_cache()
        suite = MicroBenchmarkSuite(cluster=cluster_a(2), store=root)
        with pytest.warns(ResultStoreWarning):
            again = suite.run_config(config)
        assert again.execution_time.hex() == result.execution_time.hex()
        clear_result_cache()

    def test_wrong_schema_is_a_clean_miss(self, make_store, sim_result):
        store = make_store()
        key = point_key(sim_result.config, cluster_a(2))
        store.put(key, StoredResult.from_sim_result(sim_result))
        record = load_record(store, key)
        record["schema"] = 999
        rewrite_record(store, key, json.dumps(record))
        assert store.get(key) is None  # no warning: just stale
        assert store.stats()["stale_records"] == 1


class TestMaintenance:
    def _fill(self, make_store, sim_result, n=2):
        store = make_store()
        keys = []
        for seed in range(n):
            config = tiny_config(seed=seed + 1)
            key = point_key(config, cluster_a(2))
            store.put(key, StoredResult.from_sim_result(sim_result))
            keys.append(key)
        return store, keys

    def test_keys_and_records(self, make_store, sim_result):
        store, keys = self._fill(make_store, sim_result)
        assert list(store.keys()) == sorted(keys)
        assert {k for k, _rec in store.records()} == set(keys)

    def test_gc_removes_only_stale(self, make_store, sim_result):
        store, keys = self._fill(make_store, sim_result)
        record = load_record(store, keys[0])
        record["schema"] = 999
        rewrite_record(store, keys[0], json.dumps(record))
        assert store.gc() == 1
        assert list(store.keys()) == sorted(keys[1:])

    def test_gc_all(self, make_store, sim_result):
        store, _keys = self._fill(make_store, sim_result)
        assert store.gc(remove_all=True) == 2
        assert list(store.keys()) == []

    def test_export_jsonl(self, make_store, sim_result):
        store, keys = self._fill(make_store, sim_result)
        lines = list(store.export())
        assert len(lines) == 2
        exported = {json.loads(line)["key"] for line in lines}
        assert exported == set(keys)

    def test_tag_merges(self, make_store, sim_result):
        store, keys = self._fill(make_store, sim_result, n=1)
        store.tag(keys[0], "camp-a", {"trial": 0})
        store.tag(keys[0], "camp-b", {"trial": 1})
        record = dict(store.records())[keys[0]]
        assert set(record["tags"]) == {"camp-a", "camp-b"}

    def test_campaign_keys_filters(self, make_store, sim_result):
        store, keys = self._fill(make_store, sim_result, n=2)
        store.tag(keys[0], "camp-a", {"trial": 0})
        assert store.campaign_keys("camp-a") == [keys[0]]
        assert store.campaign_keys("camp-b") == []


class TestStatsCache:
    """stats() caching: explicit snapshot vs explicit refresh.

    The service's /v1/stats endpoint serves the cached snapshot so a
    hot stats path never walks the store per request; correctness of
    the snapshot/refresh contract is pinned here, on both backends.
    """

    def test_default_stats_recompute_and_cache(self, make_store,
                                               sim_result):
        store = make_store()
        key = point_key(sim_result.config, cluster_a(2))
        store.put(key, StoredResult.from_sim_result(sim_result))
        assert store.stats()["puts"] == 1
        store.put("00extra" + key[:8],
                  StoredResult.from_sim_result(sim_result))
        assert store.stats()["puts"] == 2  # default path re-reads

    def test_cached_stats_are_a_stable_snapshot(self, make_store,
                                                sim_result):
        store = make_store()
        key = point_key(sim_result.config, cluster_a(2))
        store.put(key, StoredResult.from_sim_result(sim_result))
        snapshot = store.stats()
        store.put("00extra" + key[:8],
                  StoredResult.from_sim_result(sim_result))
        assert store.stats(cached=True) == snapshot  # stale by design
        store.refresh_stats()
        assert store.stats(cached=True)["puts"] == 2

    def test_cached_without_snapshot_computes_one(self, make_store):
        assert make_store().stats(cached=True)["puts"] == 0

    def test_returned_dict_is_a_copy(self, make_store):
        store = make_store()
        stats = store.stats()
        stats["puts"] = 999
        assert store.stats(cached=True)["puts"] == 0


class TestHitRate:
    def test_no_lookups_is_none_not_zero(self):
        from repro.store import hit_rate

        assert hit_rate({"hits": 0, "misses": 0}) is None

    def test_percentage_of_lookups(self):
        from repro.store import hit_rate

        assert hit_rate({"hits": 3, "misses": 1}) == 75.0
        assert hit_rate({"hits": 0, "misses": 5}) == 0.0
