"""The suite ↔ store contract: warm starts across processes.

The disk store backs the in-process memo cache: a fresh process (here
simulated with ``clear_result_cache``, and proven for real processes by
the PYTHONHASHSEED subprocess test in ``test_keys.py`` plus the CLI
acceptance test) serves previously-simulated points from disk,
bit-identically, executing zero simulations. Every test runs against
both store backends.
"""

import pytest

from repro.core.config import BenchmarkConfig
from repro.core.suite import MicroBenchmarkSuite, clear_result_cache
from repro.hadoop.cluster import cluster_a
from repro.hadoop.result import SimJobResult
from repro.store import ResultStore, StoredResult

from tests.store.conftest import store_root


def tiny_config(network="1GigE", **overrides):
    kwargs = dict(num_maps=4, num_reduces=2, key_size=256, value_size=256)
    kwargs.update(overrides)
    return BenchmarkConfig.from_shuffle_size(2e7, pattern="avg",
                                             network=network, **kwargs)


@pytest.fixture(autouse=True)
def fresh_memo():
    clear_result_cache()
    yield
    clear_result_cache()


class TestWarmStart:
    def test_cold_run_is_live_then_warm_run_is_stored(self, tmp_path,
                                                      backend_name):
        root = store_root(tmp_path, backend_name)
        cold = MicroBenchmarkSuite(cluster=cluster_a(2), store=root)
        live = cold.run_config(tiny_config())
        assert isinstance(live, SimJobResult)

        clear_result_cache()  # simulate a fresh process
        warm = MicroBenchmarkSuite(cluster=cluster_a(2), store=root)
        stored = warm.run_config(tiny_config())
        assert isinstance(stored, StoredResult)
        assert stored.cached is True
        assert stored.execution_time.hex() == live.execution_time.hex()

    def test_warm_run_executes_zero_simulations(self, tmp_path,
                                                backend_name):
        root = store_root(tmp_path, backend_name)
        configs = [tiny_config(), tiny_config(network="ipoib-qdr")]
        cold = MicroBenchmarkSuite(cluster=cluster_a(2), store=root)
        for config in configs:
            cold.run_config(config)
        puts_after_cold = ResultStore(root).stats()["puts"]
        assert puts_after_cold == 2

        clear_result_cache()
        warm = MicroBenchmarkSuite(cluster=cluster_a(2), store=root)
        for config in configs:
            warm.run_config(config)
        # puts unmoved = nothing was simulated on the warm pass.
        assert ResultStore(root).stats()["puts"] == puts_after_cold

    def test_alias_network_hits_canonical_record(self, tmp_path,
                                                 backend_name):
        root = store_root(tmp_path, backend_name)
        cold = MicroBenchmarkSuite(cluster=cluster_a(2), store=root)
        live = cold.run_config(tiny_config(network="IPoIB-QDR(32Gbps)"))

        clear_result_cache()
        warm = MicroBenchmarkSuite(cluster=cluster_a(2), store=root)
        stored = warm.run_config(tiny_config(network="ipoib-qdr"))
        assert isinstance(stored, StoredResult)
        assert stored.execution_time.hex() == live.execution_time.hex()

    def test_store_path_is_coerced(self, tmp_path, backend_name):
        suite = MicroBenchmarkSuite(
            cluster=cluster_a(2),
            store=store_root(tmp_path, backend_name))
        assert isinstance(suite.store, ResultStore)
        assert suite.store.stats()["backend"] == backend_name

    def test_memo_hit_short_circuits_the_store(self, tmp_path,
                                               backend_name):
        root = store_root(tmp_path, backend_name)
        suite = MicroBenchmarkSuite(cluster=cluster_a(2), store=root)
        suite.run_config(tiny_config())
        suite.run_config(tiny_config())  # memo hit, no store read
        assert ResultStore(root).stats()["hits"] == 0


class TestBypasses:
    def test_memoize_false_bypasses_the_store(self, tmp_path,
                                              backend_name):
        root = store_root(tmp_path, backend_name)
        suite = MicroBenchmarkSuite(cluster=cluster_a(2), store=root)
        result = suite.run_config(tiny_config(), memoize=False)
        assert isinstance(result, SimJobResult)
        assert ResultStore(root).stats()["puts"] == 0

    def test_monitored_runs_are_never_stored(self, tmp_path,
                                             backend_name):
        root = store_root(tmp_path, backend_name)
        suite = MicroBenchmarkSuite(cluster=cluster_a(2), store=root)
        result = suite.run_config(tiny_config(), monitor_interval=1.0)
        assert isinstance(result, SimJobResult)
        assert ResultStore(root).stats()["puts"] == 0


class TestSweepThroughStore:
    def test_sweep_warm_start_is_bit_identical(self, tmp_path,
                                               backend_name):
        root = store_root(tmp_path, backend_name)
        kwargs = dict(num_maps=4, num_reduces=2,
                      key_size=256, value_size=256)
        cold = MicroBenchmarkSuite(cluster=cluster_a(2), store=root)
        first = cold.sweep("MR-AVG", [0.02, 0.04], ["1GigE", "ipoib-qdr"],
                           **kwargs)
        puts = ResultStore(root).stats()["puts"]
        assert puts == 4

        clear_result_cache()
        warm = MicroBenchmarkSuite(cluster=cluster_a(2), store=root)
        second = warm.sweep("MR-AVG", [0.02, 0.04], ["1GigE", "ipoib-qdr"],
                            jobs=2, **kwargs)
        assert ResultStore(root).stats()["puts"] == puts
        for a, b in zip(first.rows, second.rows):
            assert a.execution_time.hex() == b.execution_time.hex()
            assert isinstance(b.result, StoredResult)
