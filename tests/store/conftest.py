"""Cross-backend parity fixtures for the store test suite.

Most store tests run twice — once per backend (``filesystem`` and
``sqlite``) — via the ``backend_name`` fixture. Roots are built with
explicit ``file:`` / ``sqlite:`` prefixes so the parameterization holds
even when ``$REPRO_STORE_BACKEND`` forces a default (the CI sqlite
matrix leg sets it for the whole run).

The raw-tampering helpers (``record_text`` / ``rewrite_record`` /
``break_writes`` / ``corrupt_checkpoint``) hide where a backend
actually keeps a record, so corruption and degradation tests state the
*contract* once and exercise both backings.
"""

import json
import sqlite3

import pytest

from repro.store import ResultStore

#: The backends every parity test must pass on.
BACKENDS = ("filesystem", "sqlite")


@pytest.fixture(params=BACKENDS)
def backend_name(request):
    """Parameterizes a test over both store backends."""
    return request.param


def store_root(tmp_path, backend_name, name="store"):
    """An explicit-backend store root string under ``tmp_path``."""
    if backend_name == "sqlite":
        return f"sqlite:{tmp_path / (name + '.sqlite')}"
    return f"file:{tmp_path / name}"


@pytest.fixture
def make_store(tmp_path, backend_name):
    """Factory for stores of the current backend under ``tmp_path``."""
    def make(name="store"):
        return ResultStore(store_root(tmp_path, backend_name, name))
    return make


@pytest.fixture
def store_root_str(tmp_path, backend_name):
    """One ready-made root string for the current backend."""
    return store_root(tmp_path, backend_name)


def record_text(store, key):
    """The raw stored text of one record, wherever the backend keeps it."""
    backend = store.backend
    if backend.scheme == "filesystem":
        return backend.record_path(key).read_text()
    rows = backend._db().execute(
        "SELECT record FROM records WHERE key = ?", (key,)).fetchall()
    return rows[0][0]


def load_record(store, key):
    """One record parsed from its raw stored text."""
    return json.loads(record_text(store, key))


def rewrite_record(store, key, text):
    """Overwrite one record's raw stored text (simulates corruption).

    Mirrors what a real (possibly buggy or interrupted) writer would
    leave behind: the filesystem backend gets the bytes in the record
    file, the sqlite backend gets them in the record column (with the
    schema index column kept consistent, as any real writer would).
    """
    backend = store.backend
    if backend.scheme == "filesystem":
        backend.record_path(key).write_text(text)
        return
    try:
        schema = json.loads(text).get("schema")
    except (ValueError, AttributeError):
        schema = None
    db = backend._db()
    with db:
        db.execute(
            "INSERT INTO records (key, schema, record) VALUES (?, ?, ?) "
            "ON CONFLICT(key) DO UPDATE SET schema = excluded.schema, "
            "record = excluded.record",
            (key, schema, text))


def break_writes(store_or_backend_name, monkeypatch):
    """Make every write of one backend fail like a full disk.

    Accepts a store, a backend instance, or a backend name. The
    container runs as root, so chmod tricks can't produce EACCES —
    instead the write seams are patched: ``atomic_write_json`` for the
    filesystem backend, the ``_execute`` statement funnel (non-SELECT
    statements only) for sqlite.
    """
    name = store_or_backend_name
    if not isinstance(name, str):
        name = getattr(name, "backend", name).scheme
    if name == "filesystem":
        import repro.store.fs as fs_mod

        def disk_full(path, payload, durable=True):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(fs_mod, "atomic_write_json", disk_full)
        return
    import repro.store.sqlite as sqlite_mod

    real_execute = sqlite_mod._execute

    def failing_execute(db, sql, params=()):
        head = sql.lstrip().split(None, 1)[0].upper()
        if head in ("SELECT", "PRAGMA"):
            return real_execute(db, sql, params)
        raise sqlite3.OperationalError("database or disk is full")

    monkeypatch.setattr(sqlite_mod, "_execute", failing_execute)


def corrupt_checkpoint(store, campaign):
    """Leave one campaign's checkpoint unparsable, backend-appropriately."""
    backend = store.backend
    if backend.scheme == "filesystem":
        path = backend.checkpoint_path(campaign)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{ nope")
        return
    db = backend._db()
    with db:
        db.execute(
            "INSERT INTO checkpoints (campaign, payload) VALUES (?, ?) "
            "ON CONFLICT(campaign) DO UPDATE SET payload = excluded.payload",
            (campaign, "{ nope"))


def corrupt_metadata(store):
    """Corrupt the backend's metadata (counter file / database header)."""
    backend = store.backend
    if backend.scheme == "filesystem":
        backend.meta_path.write_text('{"puts": 2, "hi')  # killed mid-write
        return
    # Fold the WAL back into the main file first, or a fresh reader
    # would transparently recover page 1 from it and mask the damage.
    backend._db().execute("PRAGMA wal_checkpoint(TRUNCATE)")
    backend.close()
    with open(backend.location, "r+b") as handle:
        handle.write(b"this is not a sqlite database header")
    for suffix in ("-wal", "-shm"):
        sidecar = backend.location.with_name(backend.location.name + suffix)
        if sidecar.exists():
            sidecar.unlink()
