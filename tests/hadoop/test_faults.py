"""Tests for the fault-injection subsystem (``repro.faults``).

Plan validation and (de)serialization, the no-op discipline, every
fault class's observable effect on a small job, determinism of seeded
injection, and the shared injector on concurrent-job batches.
"""

import pickle

import pytest

from repro.core import BenchmarkConfig
from repro.faults import (
    FaultInjector,
    FaultPlan,
    LinkFault,
    NodeCrash,
    SlowNode,
)
from repro.hadoop import JobConf, cluster_a, run_simulated_job
from repro.hadoop.multijob import JobRequest, run_concurrent_jobs
from repro.hadoop.simulation import TaskFailedError
from repro.sim.trace import CAT_FAULT, Tracer


def cfg(**kw):
    defaults = dict(num_pairs=200_000, num_maps=8, num_reduces=4,
                    key_size=512, value_size=512, network="ipoib-qdr")
    defaults.update(kw)
    return BenchmarkConfig(**defaults)


def run(config, **kw):
    kw.setdefault("cluster", cluster_a(2))
    return run_simulated_job(config, **kw)


class TestPlanValidation:
    def test_node_crash_needs_exactly_one_trigger(self):
        with pytest.raises(ValueError, match="exactly one"):
            NodeCrash("slave1")
        with pytest.raises(ValueError, match="exactly one"):
            NodeCrash("slave1", at_time=3.0, after_tasks=2)
        NodeCrash("slave1", at_time=0.0)
        NodeCrash("slave1", after_tasks=1)

    def test_node_crash_rejects_bad_values(self):
        with pytest.raises(ValueError):
            NodeCrash("slave1", at_time=-1.0)
        with pytest.raises(ValueError):
            NodeCrash("slave1", after_tasks=0)

    def test_slow_node_factors_are_slowdowns(self):
        with pytest.raises(ValueError, match=">= 1.0"):
            SlowNode("slave0", cpu_factor=0.5)
        with pytest.raises(ValueError, match=">= 1.0"):
            SlowNode("slave0", nic_factor=0.0)

    def test_link_fault_bounds(self):
        with pytest.raises(ValueError, match="factor"):
            LinkFault("slave0", factor=0.0)
        with pytest.raises(ValueError, match="factor"):
            LinkFault("slave0", factor=1.5)
        with pytest.raises(ValueError, match="direction"):
            LinkFault("slave0", factor=0.5, direction="sideways")
        with pytest.raises(ValueError, match="after start"):
            LinkFault("slave0", factor=0.5, start=5.0, end=5.0)

    def test_link_fault_links(self):
        assert LinkFault("n", 0.5, direction="in").links() == (("in", "n"),)
        assert LinkFault("n", 0.5, direction="out").links() == (("out", "n"),)
        assert set(LinkFault("n", 0.5).links()) == {("in", "n"), ("out", "n")}

    def test_plan_probability_bounds(self):
        with pytest.raises(ValueError):
            FaultPlan(task_failure_probability=1.0)
        with pytest.raises(ValueError):
            FaultPlan(fetch_failure_probability=-0.1)

    def test_plan_rejects_duplicate_nodes(self):
        with pytest.raises(ValueError, match="duplicate"):
            FaultPlan(node_crashes=(NodeCrash("a", at_time=1.0),
                                    NodeCrash("a", after_tasks=2)))
        with pytest.raises(ValueError, match="duplicate"):
            FaultPlan(slow_nodes=(SlowNode("a", cpu_factor=2.0),
                                  SlowNode("a", nic_factor=2.0)))

    def test_noop_detection(self):
        assert FaultPlan().is_noop()
        assert not FaultPlan(task_failure_probability=0.1).is_noop()
        assert not FaultPlan(
            slow_nodes=(SlowNode("a", cpu_factor=2.0),)).is_noop()

    def test_plan_is_hashable_and_picklable(self):
        plan = FaultPlan(
            task_failure_probability=0.1,
            node_crashes=(NodeCrash("slave1", at_time=3.0),),
            slow_nodes=(SlowNode("slave0", cpu_factor=2.0),),
            link_faults=(LinkFault("slave0", 0.5, end=4.0, start=1.0),),
        )
        assert hash(plan) == hash(pickle.loads(pickle.dumps(plan)))
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_injector_rejects_unknown_nodes(self):
        from repro.net.fabric import NetworkFabric
        from repro.net.interconnect import get_interconnect
        from repro.hadoop.node import SimNode
        from repro.sim.kernel import Simulator

        sim = Simulator()
        cluster = cluster_a(2)
        fabric = NetworkFabric(sim, get_interconnect("ipoib-qdr"))
        nodes = [SimNode(sim, name, cluster.node, fabric)
                 for name in cluster.slave_names()]
        plan = FaultPlan(node_crashes=(NodeCrash("slave99", at_time=1.0),))
        with pytest.raises(ValueError, match="unknown nodes"):
            FaultInjector(plan, sim, fabric, nodes)


class TestPlanSerialization:
    PLAN = FaultPlan(
        seed=7,
        task_failure_probability=0.05,
        fetch_failure_probability=0.01,
        node_crashes=(NodeCrash("slave1", at_time=30.0),),
        slow_nodes=(SlowNode("slave0", cpu_factor=2.0, nic_factor=4.0),),
        link_faults=(LinkFault("slave0", 0.25, direction="in",
                               start=5.0, end=10.0),),
    )

    def test_round_trip(self):
        assert FaultPlan.from_dict(self.PLAN.to_dict()) == self.PLAN

    def test_load_from_file(self, tmp_path):
        import json

        path = tmp_path / "plan.json"
        path.write_text(json.dumps(self.PLAN.to_dict()))
        assert FaultPlan.load(str(path)) == self.PLAN

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown fault plan keys"):
            FaultPlan.from_dict({"task_failure_prob": 0.1})

    def test_malformed_entries_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            FaultPlan.from_dict({"node_crashes": [{"nodename": "x"}]})

    def test_invalid_json_rejected(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            FaultPlan.from_json("{nope")

    def test_with_overrides_layers(self):
        plan = FaultPlan(slow_nodes=(SlowNode("a", cpu_factor=2.0),))
        out = plan.with_overrides(
            task_failure_probability=0.2,
            node_crashes=[NodeCrash("b", at_time=1.0)],
        )
        assert out.task_failure_probability == 0.2
        assert out.slow_nodes == plan.slow_nodes
        assert out.node_crashes == (NodeCrash("b", at_time=1.0),)


class TestNoopDiscipline:
    def test_empty_plan_is_bit_identical_to_no_plan(self):
        base = run(cfg())
        empty = run(cfg(), fault_plan=FaultPlan())
        assert empty.execution_time.hex() == base.execution_time.hex()
        assert empty.resilience is None
        assert base.resilience is None


class TestNodeCrash:
    PLAN = FaultPlan(node_crashes=(NodeCrash("slave1", at_time=3.0),))

    def test_crash_slows_job_and_is_reported(self):
        clean = run(cfg())
        crashed = run(cfg(), fault_plan=self.PLAN)
        assert crashed.execution_time > clean.execution_time
        report = crashed.resilience
        assert report is not None
        assert len(report.crashes) == 1
        crash = report.crashes[0]
        assert crash.node == "slave1"
        assert crash.time == 3.0
        # All displaced work eventually reran elsewhere.
        assert crash.recovered_at is not None
        assert report.wasted_task_seconds > 0.0

    def test_crash_is_deterministic(self):
        a = run(cfg(), fault_plan=self.PLAN)
        b = run(cfg(), fault_plan=self.PLAN)
        assert a.execution_time.hex() == b.execution_time.hex()
        assert a.resilience.summary() == b.resilience.summary()

    def test_crash_after_tasks_trigger(self):
        plan = FaultPlan(node_crashes=(NodeCrash("slave1", after_tasks=2),))
        result = run(cfg(), fault_plan=plan)
        report = result.resilience
        assert len(report.crashes) == 1
        assert report.crashes[0].time > 0.0

    def test_crash_emits_trace_markers(self):
        tracer = Tracer()
        run(cfg(), fault_plan=self.PLAN, tracer=tracer)
        names = {ev.name for ev in tracer.events if ev.cat == CAT_FAULT}
        assert "node-crash" in names
        assert "crash-recovered" in names

    def test_all_nodes_dead_fails_the_job(self):
        plan = FaultPlan(node_crashes=(NodeCrash("slave0", at_time=1.0),
                                       NodeCrash("slave1", at_time=1.0)))
        with pytest.raises(TaskFailedError):
            run(cfg(), fault_plan=plan)

    def test_results_record_every_pair_despite_crash(self):
        result = run(cfg(), fault_plan=self.PLAN)
        assert sum(s.records for s in result.reduce_stats) == (
            result.config.num_pairs
        )


class TestSlowNode:
    def test_cpu_straggler_slows_job(self):
        clean = run(cfg())
        slow = run(cfg(), fault_plan=FaultPlan(
            slow_nodes=(SlowNode("slave1", cpu_factor=4.0),)))
        assert slow.execution_time > clean.execution_time

    def test_nic_straggler_slows_job(self):
        clean = run(cfg())
        slow = run(cfg(), fault_plan=FaultPlan(
            slow_nodes=(SlowNode("slave1", nic_factor=8.0),)))
        assert slow.execution_time > clean.execution_time


class TestLinkFault:
    def test_permanent_cut_slows_job(self):
        clean = run(cfg())
        cut = run(cfg(), fault_plan=FaultPlan(
            link_faults=(LinkFault("slave1", 0.1),)))
        assert cut.execution_time > clean.execution_time

    def test_flaky_window_recovers(self):
        clean = run(cfg())
        permanent = run(cfg(), fault_plan=FaultPlan(
            link_faults=(LinkFault("slave1", 0.02),)))
        # This config's fetch burst runs ~3.84-4.3 s (all maps finish in
        # one wave); the window must bisect it so the restore matters.
        windowed = run(cfg(), fault_plan=FaultPlan(
            link_faults=(LinkFault("slave1", 0.02, start=3.5, end=4.2),)))
        assert clean.execution_time < windowed.execution_time
        assert windowed.execution_time < permanent.execution_time


class TestSeededCoins:
    def test_task_failures_counted_as_injected(self):
        plan = FaultPlan(task_failure_probability=0.3)
        result = run(cfg(), jobconf=JobConf(max_task_attempts=8),
                     fault_plan=plan)
        report = result.resilience
        assert report.injected_task_failures > 0
        assert report.task_failures >= report.injected_task_failures

    def test_fetch_failures_are_retried(self):
        plan = FaultPlan(fetch_failure_probability=0.3)
        result = run(cfg(), fault_plan=plan)
        report = result.resilience
        assert report.fetch_retries > 0
        assert report.refetched_bytes > 0.0
        assert sum(s.records for s in result.reduce_stats) == (
            result.config.num_pairs
        )

    def test_coins_are_seed_dependent(self):
        a = run(cfg(), fault_plan=FaultPlan(task_failure_probability=0.3),
                jobconf=JobConf(max_task_attempts=8))
        b = run(cfg(), fault_plan=FaultPlan(seed=99,
                                            task_failure_probability=0.3),
                jobconf=JobConf(max_task_attempts=8))
        # Different seeds flip different coins (times may or may not
        # coincide, but the failure pattern is overwhelmingly distinct).
        assert (a.resilience.summary() != b.resilience.summary()
                or a.execution_time != b.execution_time)

    def test_coins_are_reproducible(self):
        plan = FaultPlan(task_failure_probability=0.3,
                         fetch_failure_probability=0.05)
        jc = JobConf(max_task_attempts=8)
        a = run(cfg(), jobconf=jc, fault_plan=plan)
        b = run(cfg(), jobconf=jc, fault_plan=plan)
        assert a.execution_time.hex() == b.execution_time.hex()
        assert a.resilience.summary() == b.resilience.summary()


class TestConcurrentJobs:
    def test_shared_injector_spans_the_batch(self):
        plan = FaultPlan(node_crashes=(NodeCrash("slave1", at_time=3.0),))
        requests = [JobRequest(cfg(num_pairs=100_000)),
                    JobRequest(cfg(num_pairs=100_000), submit_at=1.0)]
        results = run_concurrent_jobs(requests, cluster=cluster_a(2),
                                      fault_plan=plan)
        assert len(results) == 2
        # One report object shared by the whole batch.
        assert results[0].resilience is results[1].resilience
        assert len(results[0].resilience.crashes) == 1

    def test_batch_is_deterministic_under_faults(self):
        plan = FaultPlan(task_failure_probability=0.2)
        jc = JobConf(max_task_attempts=8)

        def go():
            requests = [JobRequest(cfg(num_pairs=100_000)),
                        JobRequest(cfg(num_pairs=100_000), submit_at=1.0)]
            return run_concurrent_jobs(requests, cluster=cluster_a(2),
                                       jobconf=jc, fault_plan=plan)

        a, b = go(), go()
        for ra, rb in zip(a, b):
            assert ra.finished_at.hex() == rb.finished_at.hex()

    def test_noop_plan_matches_no_plan_batch(self):
        def go(fault_plan):
            requests = [JobRequest(cfg(num_pairs=100_000)),
                        JobRequest(cfg(num_pairs=100_000), submit_at=1.0)]
            return run_concurrent_jobs(requests, cluster=cluster_a(2),
                                       fault_plan=fault_plan)

        base, empty = go(None), go(FaultPlan())
        for rb, re_ in zip(base, empty):
            assert rb.finished_at.hex() == re_.finished_at.hex()
            assert re_.resilience is None
