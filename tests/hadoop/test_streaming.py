"""Tests for the Hadoop Streaming overhead model."""

import pytest

from repro.core import BenchmarkConfig
from repro.hadoop import JobConf, cluster_a, run_simulated_job
from repro.analysis import improvement_pct


def cfg(key_size=512, value_size=512, **kw):
    defaults = dict(num_pairs=400_000, num_maps=8, num_reduces=4,
                    key_size=key_size, value_size=value_size,
                    network="ipoib-qdr")
    defaults.update(kw)
    return BenchmarkConfig(**defaults)


def test_streaming_is_slower():
    native = run_simulated_job(cfg(), cluster=cluster_a(2)).execution_time
    streaming = run_simulated_job(
        cfg(), cluster=cluster_a(2), jobconf=JobConf(streaming=True)
    ).execution_time
    assert streaming > native * 1.05


def test_streaming_penalty_scales_with_record_count():
    """At fixed bytes, smaller pairs mean more pipe crossings — the
    streaming penalty grows, which is exactly why a streaming-based
    reproduction of this paper would distort the Fig. 4 sweep."""

    def penalty(key_size, value_size):
        base = BenchmarkConfig.from_shuffle_size(
            1e9, key_size=key_size, value_size=value_size,
            num_maps=8, num_reduces=4, network="ipoib-qdr")
        native = run_simulated_job(base, cluster=cluster_a(2)).execution_time
        piped = run_simulated_job(
            base, cluster=cluster_a(2), jobconf=JobConf(streaming=True)
        ).execution_time
        return piped / native

    assert penalty(50, 50) > penalty(2048, 2048)


def test_streaming_shrinks_apparent_network_gains():
    """Streaming inflates the CPU share, so the measured network
    improvement drops — quantifying the 'less faithful' caveat of
    streaming-based suites."""

    def gain(jobconf):
        t1 = run_simulated_job(cfg(network="1GigE"), cluster=cluster_a(2),
                               jobconf=jobconf).execution_time
        tib = run_simulated_job(cfg(network="ipoib-qdr"),
                                cluster=cluster_a(2),
                                jobconf=jobconf).execution_time
        return improvement_pct(t1, tib)

    assert gain(JobConf(streaming=True)) < gain(JobConf())


def test_streaming_moves_no_extra_bytes():
    native = run_simulated_job(cfg(), cluster=cluster_a(2))
    piped = run_simulated_job(cfg(), cluster=cluster_a(2),
                              jobconf=JobConf(streaming=True))
    assert sum(s.bytes_fetched for s in piped.reduce_stats) == (
        pytest.approx(sum(s.bytes_fetched for s in native.reduce_stats))
    )
