"""Tests for JobConf."""

import pytest

from repro.hadoop import DEFAULT_JOB_CONF, JobConf, MRV1, YARN


def test_defaults_match_hadoop_121():
    jc = DEFAULT_JOB_CONF
    assert jc.io_sort_mb == pytest.approx(100e6)
    assert jc.sort_spill_percent == pytest.approx(0.80)
    assert jc.sort_factor == 10
    assert jc.parallel_copies == 5
    assert jc.reduce_slowstart == pytest.approx(0.05)
    assert jc.version == MRV1


def test_spill_threshold():
    jc = JobConf(io_sort_mb=100e6, sort_spill_percent=0.8)
    assert jc.spill_threshold_bytes == pytest.approx(80e6)


def test_derived_slots_for_westmere():
    jc = DEFAULT_JOB_CONF
    assert jc.map_slots(8) == 4
    assert jc.reduce_slots(8) == 2
    assert jc.containers(8) == 7


def test_explicit_slots_override():
    jc = JobConf(map_slots_per_node=6, reduce_slots_per_node=3,
                 containers_per_node=10)
    assert jc.map_slots(8) == 6
    assert jc.reduce_slots(8) == 3
    assert jc.containers(8) == 10


def test_minimum_slots_on_small_nodes():
    jc = DEFAULT_JOB_CONF
    assert jc.map_slots(2) == 2
    assert jc.reduce_slots(2) == 1
    assert jc.containers(2) == 2


def test_for_yarn_and_back():
    jc = DEFAULT_JOB_CONF.for_yarn()
    assert jc.version == YARN
    assert jc.for_mrv1().version == MRV1


@pytest.mark.parametrize("kwargs", [
    {"version": "mrv3"},
    {"io_sort_mb": 0},
    {"sort_spill_percent": 0},
    {"sort_spill_percent": 1.5},
    {"sort_factor": 1},
    {"parallel_copies": 0},
    {"reduce_slowstart": -0.1},
    {"shuffle_memory_bytes": 0},
    {"map_slots_per_node": 0},
])
def test_validation(kwargs):
    with pytest.raises(ValueError):
        JobConf(**kwargs)
