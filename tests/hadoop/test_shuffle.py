"""Tests for the shuffle service: registry, fetchers, merge."""

import numpy as np
import pytest

from repro.hadoop import (
    DEFAULT_COST_MODEL,
    JobConf,
    MapOutput,
    MapOutputRegistry,
    ReducerShuffle,
    SimNode,
    WESTMERE_NODE,
)
from repro.net import NetworkFabric, ONE_GIGE, RDMA_FDR
from repro.net.transport import transport_for
from repro.sim import Simulator


def build_world(num_nodes=2, interconnect=ONE_GIGE):
    sim = Simulator()
    fabric = NetworkFabric(sim, interconnect)
    nodes = [SimNode(sim, f"n{i}", WESTMERE_NODE, fabric) for i in range(num_nodes)]
    return sim, fabric, nodes


def make_output(map_id, node, seg_bytes, seg_records):
    return MapOutput(
        map_id=map_id,
        node=node,
        segment_bytes=np.asarray(seg_bytes, dtype=float),
        segment_records=np.asarray(seg_records, dtype=np.int64),
    )


class TestMapOutputRegistry:
    def test_register_and_complete(self):
        sim, _f, nodes = build_world()
        reg = MapOutputRegistry(sim, num_maps=2)
        assert not reg.complete
        reg.register(make_output(0, nodes[0], [10.0], [1]))
        reg.register(make_output(1, nodes[1], [10.0], [1]))
        assert reg.complete

    def test_too_many_registrations(self):
        sim, _f, nodes = build_world()
        reg = MapOutputRegistry(sim, num_maps=1)
        reg.register(make_output(0, nodes[0], [10.0], [1]))
        with pytest.raises(RuntimeError):
            reg.register(make_output(1, nodes[0], [10.0], [1]))

    def test_waiters_notified(self):
        sim, _f, nodes = build_world()
        reg = MapOutputRegistry(sim, num_maps=1)
        ev = reg.wait_for_more()
        reg.register(make_output(0, nodes[0], [10.0], [1]))
        sim.run()
        assert ev.processed and ev.ok


def run_shuffle(seg_mb_per_map=50.0, records_per_map=50_000,
                interconnect=ONE_GIGE, num_maps=4, jobconf=None):
    sim, fabric, nodes = build_world(2, interconnect)
    reg = MapOutputRegistry(sim, num_maps=num_maps)
    costs = DEFAULT_COST_MODEL.scaled(WESTMERE_NODE.clock_ghz)
    jc = jobconf or JobConf()
    shuffle = ReducerShuffle(
        reduce_id=0,
        node=nodes[0],
        registry=reg,
        fabric=fabric,
        transport=transport_for(interconnect),
        jobconf=jc,
        costs=costs,
    )
    proc = sim.process(shuffle.run())
    for m in range(num_maps):
        reg.register(
            make_output(m, nodes[m % 2], [seg_mb_per_map * 1e6],
                        [records_per_map])
        )
    stats = sim.run_until_event(proc)
    return sim, shuffle, stats


def test_fetches_everything():
    _sim, _sh, stats = run_shuffle()
    assert stats.bytes_fetched == pytest.approx(4 * 50e6)
    assert stats.records_fetched == 4 * 50_000


def test_local_vs_remote_fetch_counting():
    _sim, _sh, stats = run_shuffle()
    assert stats.local_fetches == 2
    assert stats.remote_fetches == 2


def test_spills_beyond_memory_budget():
    """200MB fetched vs a 140MB budget -> ~60MB spilled."""
    _sim, _sh, stats = run_shuffle()
    assert stats.bytes_spilled == pytest.approx(200e6 - 140e6)


def test_no_spill_when_in_memory():
    _sim, _sh, stats = run_shuffle(seg_mb_per_map=10.0)
    assert stats.bytes_spilled == 0.0


def test_zero_byte_segments_are_free():
    sim, _sh, stats = run_shuffle(seg_mb_per_map=0.0, records_per_map=0)
    assert stats.bytes_fetched == 0.0
    assert sim.now < 1.0


def test_merge_exposed_decreases_with_slower_network():
    """On a slow network the fetch window hides the incremental merge."""
    _s1, _sh1, slow = run_shuffle(interconnect=ONE_GIGE)
    _s2, _sh2, fast = run_shuffle(interconnect=RDMA_FDR)
    assert slow.merge_work_exposed <= fast.merge_work_exposed + 1e-9


def test_rdma_shuffle_faster_than_tcp():
    s1, _a, _x = run_shuffle(interconnect=ONE_GIGE)
    s2, _b, _y = run_shuffle(interconnect=RDMA_FDR)
    assert s2.now < s1.now


def test_fetch_order_is_deterministic_per_reducer():
    _s1, _sh1, a = run_shuffle()
    _s2, _sh2, b = run_shuffle()
    assert a.bytes_fetched == b.bytes_fetched
    assert _s1.now == _s2.now


def test_parallel_copies_limits_concurrent_fetches():
    """With 1 fetcher, fetches serialize -> longer shuffle."""
    one = JobConf(parallel_copies=1)
    five = JobConf(parallel_copies=5)
    s1, _sh1, _a = run_shuffle(jobconf=one, num_maps=8)
    s5, _sh5, _b = run_shuffle(jobconf=five, num_maps=8)
    assert s1.now >= s5.now
