"""Integration tests for the simulated-job driver."""

import pytest

from repro.core import BenchmarkConfig
from repro.hadoop import (
    JOB_OVERHEAD,
    JobConf,
    JobEventLog,
    cluster_a,
    cluster_b,
    run_simulated_job,
)


def cfg(**kw):
    defaults = dict(num_pairs=200_000, num_maps=8, num_reduces=4,
                    key_size=512, value_size=512, network="1GigE")
    defaults.update(kw)
    return BenchmarkConfig(**defaults)


def run(config, **kw):
    kw.setdefault("cluster", cluster_a(2))
    return run_simulated_job(config, **kw)


class TestDriverBasics:
    def test_returns_result_with_positive_time(self):
        result = run(cfg())
        assert result.execution_time > JOB_OVERHEAD
        assert result.map_phase_end > 0

    def test_all_tasks_have_stats(self):
        config = cfg()
        result = run(config)
        assert len(result.map_stats) == config.num_maps
        assert len(result.reduce_stats) == config.num_reduces
        for s in result.reduce_stats:
            assert s.finished_at >= s.shuffle_finished_at >= s.started_at

    def test_all_bytes_are_fetched(self):
        config = cfg()
        result = run(config)
        fetched = sum(s.bytes_fetched for s in result.reduce_stats)
        assert fetched == pytest.approx(result.matrix.total_bytes)

    def test_event_log_ordering(self):
        result = run(cfg())
        events = result.events
        assert len(events.of_kind(JobEventLog.MAP_START)) == 8
        assert len(events.of_kind(JobEventLog.MAP_FINISH)) == 8
        assert len(events.of_kind(JobEventLog.REDUCE_FINISH)) == 4
        first_reduce = events.first(JobEventLog.REDUCE_START)
        slowstart = events.first(JobEventLog.SLOWSTART)
        assert slowstart.time <= first_reduce.time
        assert events.last(JobEventLog.JOB_FINISH) is not None

    def test_deterministic(self):
        a = run(cfg())
        b = run(cfg())
        assert a.execution_time == b.execution_time

    def test_mismatched_matrix_rejected(self):
        from repro.core import compute_shuffle_matrix

        other = compute_shuffle_matrix(cfg(num_pairs=999))
        with pytest.raises(ValueError):
            run(cfg(), matrix=other)

    def test_summary_fields(self):
        result = run(cfg())
        s = result.summary()
        assert s["benchmark"] == "MR-AVG"
        assert s["network"] == "1GigE"
        assert s["execution_time_s"] > 0


class TestPaperShapes:
    """The orderings the paper's evaluation section reports."""

    def test_network_ordering(self):
        """1 GigE slowest, IPoIB QDR fastest (Fig. 2)."""
        times = {
            net: run(cfg(network=net)).execution_time
            for net in ("1GigE", "10GigE", "ipoib-qdr")
        }
        assert times["1GigE"] > times["10GigE"] > times["ipoib-qdr"]

    def test_skew_slower_than_avg(self):
        """Fig. 2(c): skew roughly doubles the job time vs avg at the
        paper's own scale (16 maps / 8 reduces on 4 slaves)."""

        def paper_cfg(pattern):
            return BenchmarkConfig.from_shuffle_size(
                8e9, pattern=pattern, num_maps=16, num_reduces=8,
                network="1GigE")

        avg = run_simulated_job(paper_cfg("avg"),
                                cluster=cluster_a(4)).execution_time
        skew = run_simulated_job(paper_cfg("skew"),
                                 cluster=cluster_a(4)).execution_time
        assert skew > 1.6 * avg
        assert skew < 3.0 * avg

    def test_rand_close_to_avg(self):
        avg = run(cfg(pattern="avg")).execution_time
        rand = run(cfg(pattern="rand")).execution_time
        assert rand == pytest.approx(avg, rel=0.1)

    def test_monotone_in_data_size(self):
        small = run(cfg(num_pairs=100_000)).execution_time
        large = run(cfg(num_pairs=400_000)).execution_time
        assert large > small

    def test_smaller_kv_pairs_slower_for_same_volume(self):
        """Fig. 4: same shuffle bytes, smaller pairs -> slower."""
        big_kv = BenchmarkConfig.from_shuffle_size(
            1e9, key_size=5120, value_size=5120, num_maps=8, num_reduces=4)
        small_kv = BenchmarkConfig.from_shuffle_size(
            1e9, key_size=50, value_size=50, num_maps=8, num_reduces=4)
        t_big = run(big_kv).execution_time
        t_small = run(small_kv).execution_time
        assert t_small > 2 * t_big

    def test_more_tasks_faster(self):
        """Fig. 5: more maps/reduces exploit the cluster better."""
        few = cfg(num_maps=4, num_reduces=2)
        many = cfg(num_maps=8, num_reduces=4)
        assert run(many).execution_time < run(few).execution_time

    def test_rdma_beats_ipoib_fdr(self):
        """Fig. 8 on Cluster B."""
        b = cluster_b(4)
        t_ib = run_simulated_job(cfg(network="ipoib-fdr"), cluster=b)
        t_rd = run_simulated_job(cfg(network="rdma"), cluster=b)
        assert t_rd.execution_time < t_ib.execution_time

    def test_text_and_bytes_writable_both_run(self):
        """Fig. 6: both data types benefit from faster networks."""
        for dtype in ("BytesWritable", "Text"):
            slow = run(cfg(data_type=dtype, network="1GigE")).execution_time
            fast = run(cfg(data_type=dtype, network="ipoib-qdr")).execution_time
            assert fast < slow


class TestYarn:
    def test_yarn_runs(self):
        result = run(cfg(), jobconf=JobConf(version="yarn"))
        assert result.execution_time > 0
        assert result.jobconf.version == "yarn"

    def test_yarn_slower_start_but_works(self):
        v1 = run(cfg())
        v2 = run(cfg(), jobconf=JobConf(version="yarn"))
        # YARN pays container-launch overhead on this small job.
        assert v2.execution_time >= v1.execution_time * 0.9

    def test_yarn_network_ordering_preserved(self):
        jc = JobConf(version="yarn")
        times = {
            net: run(cfg(network=net), jobconf=jc).execution_time
            for net in ("1GigE", "ipoib-qdr")
        }
        assert times["1GigE"] > times["ipoib-qdr"]


class TestMonitoring:
    def test_monitor_collects_traces(self):
        result = run(cfg(), monitor_interval=1.0)
        assert result.monitor is not None
        times, cpu = result.monitor.series("cpu_pct")
        assert len(times) > 3
        assert max(cpu) > 0
        _t, rx = result.monitor.series("net_rx_mb_s")
        assert max(rx) > 0

    def test_monitor_peak_bounded_by_interconnect(self):
        from repro.net import get_interconnect

        result = run(cfg(network="1GigE"), monitor_interval=0.5)
        peak = result.monitor.peak("net_rx_mb_s")
        cap = get_interconnect("1GigE").sustained_bandwidth / 1e6
        assert peak <= cap * 1.01

    def test_no_monitor_by_default(self):
        assert run(cfg()).monitor is None
