"""Tests for the framework cost model."""

import pytest

from repro.hadoop import CostModel, DEFAULT_COST_MODEL


def test_scaled_preserves_total_work_ratio():
    """A 2x faster clock halves all per-record/byte CPU costs."""
    cm = DEFAULT_COST_MODEL
    fast = cm.scaled(cm.base_clock_ghz * 2)
    assert fast.cpu_per_record_generate == pytest.approx(
        cm.cpu_per_record_generate / 2
    )
    assert fast.cpu_per_record_reduce == pytest.approx(
        cm.cpu_per_record_reduce / 2
    )
    assert fast.cpu_per_record_final_merge == pytest.approx(
        cm.cpu_per_record_final_merge / 2
    )


def test_scaled_identity():
    cm = DEFAULT_COST_MODEL
    same = cm.scaled(cm.base_clock_ghz)
    assert same.cpu_per_record_generate == pytest.approx(cm.cpu_per_record_generate)


def test_scaled_invalid_clock():
    with pytest.raises(ValueError):
        DEFAULT_COST_MODEL.scaled(0)


def test_scaled_does_not_change_fixed_overheads():
    fast = DEFAULT_COST_MODEL.scaled(10.0)
    assert fast.map_task_start == DEFAULT_COST_MODEL.map_task_start
    assert fast.heartbeat_interval == DEFAULT_COST_MODEL.heartbeat_interval


def test_map_generate_time_linear():
    cm = DEFAULT_COST_MODEL
    t1 = cm.map_generate_time(1000, 1e6)
    t2 = cm.map_generate_time(2000, 2e6)
    assert t2 == pytest.approx(2 * t1)


def test_sort_time_nlogn():
    cm = DEFAULT_COST_MODEL
    assert cm.sort_time(0) == 0.0
    assert cm.sort_time(1) == 0.0
    # 2n log(2n) > 2 * n log n
    assert cm.sort_time(2000) > 2 * cm.sort_time(1000)


def test_reduce_and_merge_times_positive():
    cm = DEFAULT_COST_MODEL
    assert cm.reduce_time(100, 1e5) > 0
    assert cm.shuffle_merge_time(100, 1e5) > 0
    assert cm.final_merge_time(100, 1e5) > 0
    assert cm.map_merge_time(100) > 0


def test_generate_dominates_reduce_per_record():
    """Map-side object churn is the most expensive per-record path."""
    cm = DEFAULT_COST_MODEL
    assert cm.cpu_per_record_generate > cm.cpu_per_record_reduce
    assert cm.cpu_per_record_generate > cm.cpu_per_record_final_merge
