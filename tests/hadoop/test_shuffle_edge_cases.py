"""Edge cases of the shuffle service and reduce pipeline."""

import numpy as np
import pytest

from repro.core import BenchmarkConfig
from repro.hadoop import (
    DEFAULT_COST_MODEL,
    JobConf,
    MapOutput,
    MapOutputRegistry,
    ReducerShuffle,
    SimNode,
    WESTMERE_NODE,
    cluster_a,
    run_simulated_job,
)
from repro.net import NetworkFabric, ONE_GIGE
from repro.net.transport import transport_for
from repro.sim import Simulator


def test_single_reducer_receives_everything():
    config = BenchmarkConfig(num_pairs=100_000, num_maps=4, num_reduces=1,
                             key_size=512, value_size=512)
    result = run_simulated_job(config, cluster=cluster_a(2))
    assert len(result.reduce_stats) == 1
    assert result.reduce_stats[0].records == config.num_pairs


def test_many_reducers_queue_on_slots():
    """More reducers than reduce slots -> reduce waves."""
    config = BenchmarkConfig(num_pairs=100_000, num_maps=4, num_reduces=8,
                             key_size=512, value_size=512)
    jc = JobConf(reduce_slots_per_node=1)  # 2 slots total on 2 slaves
    result = run_simulated_job(config, cluster=cluster_a(2), jobconf=jc)
    starts = sorted(s.started_at for s in result.reduce_stats)
    assert starts[-1] > starts[0] + 1.0  # later waves demonstrably queue


def test_reducer_with_zero_byte_segments():
    """A reducer whose segments are all empty finishes fast and clean."""
    sim = Simulator()
    fabric = NetworkFabric(sim, ONE_GIGE)
    node = SimNode(sim, "n0", WESTMERE_NODE, fabric)
    registry = MapOutputRegistry(sim, num_maps=2)
    costs = DEFAULT_COST_MODEL.scaled(WESTMERE_NODE.clock_ghz)
    shuffle = ReducerShuffle(
        reduce_id=0, node=node, registry=registry, fabric=fabric,
        transport=transport_for(ONE_GIGE), jobconf=JobConf(), costs=costs)
    proc = sim.process(shuffle.run())
    for m in range(2):
        registry.register(MapOutput(
            map_id=m, node=node,
            segment_bytes=np.zeros(1), segment_records=np.zeros(1, np.int64)))
    stats = sim.run_until_event(proc)
    assert stats.bytes_fetched == 0.0
    assert stats.records_fetched == 0
    assert sim.now < 0.5


def test_incremental_fetch_as_maps_trickle_in():
    """Reducers fetch outputs as they are registered, not in one batch."""
    sim = Simulator()
    fabric = NetworkFabric(sim, ONE_GIGE)
    n0 = SimNode(sim, "n0", WESTMERE_NODE, fabric)
    n1 = SimNode(sim, "n1", WESTMERE_NODE, fabric)
    registry = MapOutputRegistry(sim, num_maps=2)
    costs = DEFAULT_COST_MODEL.scaled(WESTMERE_NODE.clock_ghz)
    shuffle = ReducerShuffle(
        reduce_id=0, node=n0, registry=registry, fabric=fabric,
        transport=transport_for(ONE_GIGE), jobconf=JobConf(), costs=costs)
    proc = sim.process(shuffle.run())

    def trickler():
        registry.register(MapOutput(
            map_id=0, node=n1,
            segment_bytes=np.array([50e6]),
            segment_records=np.array([50_000], np.int64)))
        yield sim.timeout(10.0)
        registry.register(MapOutput(
            map_id=1, node=n1,
            segment_bytes=np.array([50e6]),
            segment_records=np.array([50_000], np.int64)))

    sim.process(trickler())
    stats = sim.run_until_event(proc)
    assert stats.bytes_fetched == pytest.approx(100e6)
    # The second segment could not even start before t=10.
    assert stats.fetch_finished_at > 10.0
    # ...but the first was already done by then (fetch overlap).
    assert stats.fetch_finished_at < 10.0 + 2 * (50e6 / 112e6) + 1.0


def test_pipelined_transport_skips_serial_merge():
    """RDMA-style pipelines expose no merge work in the shuffle stats."""
    from repro.net import RDMA_FDR

    config = BenchmarkConfig(num_pairs=200_000, num_maps=4, num_reduces=2,
                             key_size=512, value_size=512, network="rdma")
    result = run_simulated_job(config, cluster=cluster_a(2))
    for s in result.reduce_stats:
        assert s.merge_work_exposed == 0.0


def test_stock_transport_exposes_final_merge():
    config = BenchmarkConfig(num_pairs=200_000, num_maps=4, num_reduces=2,
                             key_size=512, value_size=512,
                             network="ipoib-qdr")
    result = run_simulated_job(config, cluster=cluster_a(2))
    # The serial gap between fetch end and reduce start is visible as
    # shuffle_duration exceeding the pure transfer time.
    s = result.reduce_stats[0]
    assert s.shuffle_duration > 0


def test_reduce_slowstart_one_respects_single_map():
    """slowstart=1.0 -> reducers launch only after every map."""
    config = BenchmarkConfig(num_pairs=100_000, num_maps=4, num_reduces=2,
                             key_size=512, value_size=512)
    jc = JobConf(reduce_slowstart=1.0)
    result = run_simulated_job(config, cluster=cluster_a(2), jobconf=jc)
    assert result.first_reduce_start >= result.map_phase_end - 1e-6
