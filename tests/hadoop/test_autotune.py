"""Tests for the JobConf auto-tuner."""

import pytest

from repro.core import BenchmarkConfig
from repro.hadoop import JobConf, cluster_a, run_simulated_job
from repro.hadoop.autotune import TuningResult, Trial, grid_search

MB = 1e6


def cfg():
    return BenchmarkConfig(num_pairs=200_000, num_maps=8, num_reduces=4,
                           key_size=512, value_size=512,
                           network="ipoib-qdr")


@pytest.fixture(scope="module")
def search():
    return grid_search(
        cfg(),
        space={"parallel_copies": (1, 5), "reduce_slowstart": (0.05, 1.0)},
        cluster=cluster_a(2),
        base_jobconf=JobConf(map_slots_per_node=2),  # 2 map waves
    )


def test_full_grid_evaluated(search):
    assert len(search.trials) == 4


def test_best_is_minimum(search):
    assert search.best.execution_time == min(
        t.execution_time for t in search.trials)
    assert search.worst.execution_time == max(
        t.execution_time for t in search.trials)


def test_best_jobconf_applies_params(search):
    jc = search.best_jobconf()
    assert jc.parallel_copies == search.best.params["parallel_copies"]
    assert jc.map_slots_per_node == 2  # base conf preserved


def test_best_jobconf_reproduces_best_time(search):
    rerun = run_simulated_job(cfg(), cluster=cluster_a(2),
                              jobconf=search.best_jobconf())
    assert rerun.execution_time == pytest.approx(
        search.best.execution_time)


def test_spread_pct(search):
    assert 0.0 <= search.spread_pct < 100.0


def test_table_orders_by_time(search):
    lines = search.table().splitlines()
    times = [float(line.split("s")[0]) for line in lines]
    assert times == sorted(times)
    assert len(search.table(top=2).splitlines()) == 2


def test_unknown_field_rejected():
    with pytest.raises(ValueError, match="unknown JobConf field"):
        grid_search(cfg(), space={"warp_speed": (9,)}, cluster=cluster_a(2))


def test_empty_result_guards():
    empty = TuningResult()
    with pytest.raises(ValueError):
        _ = empty.best


def test_slowstart_early_wins_with_map_waves(search):
    """With two map waves, launching reducers early (0.05) beats
    waiting for all maps (1.0) at equal parallel_copies."""
    by_params = {
        (t.params["parallel_copies"], t.params["reduce_slowstart"]):
            t.execution_time
        for t in search.trials
    }
    assert by_params[(5, 0.05)] <= by_params[(5, 1.0)]
