"""Tests for concurrent multi-job execution."""

import pytest

from repro.core import BenchmarkConfig
from repro.hadoop import JobConf, cluster_a, run_simulated_job
from repro.hadoop.multijob import (
    ConcurrentJobResult,
    JobRequest,
    run_concurrent_jobs,
)


def cfg(**kw):
    defaults = dict(num_pairs=300_000, num_maps=8, num_reduces=4,
                    key_size=512, value_size=512, network="ipoib-qdr")
    defaults.update(kw)
    return BenchmarkConfig(**defaults)


class TestValidation:
    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            run_concurrent_jobs([])

    def test_negative_submit_rejected(self):
        with pytest.raises(ValueError):
            JobRequest(cfg(), submit_at=-1.0)

    def test_mixed_networks_rejected(self):
        with pytest.raises(ValueError, match="share one network"):
            run_concurrent_jobs([
                JobRequest(cfg(network="1GigE")),
                JobRequest(cfg(network="rdma")),
            ], cluster=cluster_a(2))


class TestSingleJobParity:
    def test_alone_close_to_dedicated_driver(self):
        """A lone job in the shared world lands near the dedicated
        driver's time (minor bookkeeping differences allowed)."""
        dedicated = run_simulated_job(cfg(), cluster=cluster_a(2))
        [shared] = run_concurrent_jobs([JobRequest(cfg())],
                                       cluster=cluster_a(2))
        assert shared.execution_time == pytest.approx(
            dedicated.execution_time, rel=0.1)


class TestInterference:
    def test_second_job_pays_the_interference(self):
        """FIFO slots: the first job runs as if alone; the later one
        queues behind it and finishes strictly later."""
        alone = run_concurrent_jobs([JobRequest(cfg())],
                                    cluster=cluster_a(2))[0].execution_time
        together = run_concurrent_jobs(
            [JobRequest(cfg()), JobRequest(cfg())], cluster=cluster_a(2))
        assert together[0].execution_time == pytest.approx(alone, rel=0.02)
        assert together[1].execution_time > alone * 1.1

    def test_two_jobs_faster_than_serial(self):
        """Sharing beats strict serialization (the cluster has slack)."""
        alone = run_concurrent_jobs([JobRequest(cfg())],
                                    cluster=cluster_a(2))[0].execution_time
        together = run_concurrent_jobs(
            [JobRequest(cfg()), JobRequest(cfg())], cluster=cluster_a(2))
        makespan = max(r.finished_at for r in together)
        assert makespan < 2 * alone

    def test_staggered_submission(self):
        first, second = run_concurrent_jobs(
            [JobRequest(cfg()), JobRequest(cfg(), submit_at=30.0)],
            cluster=cluster_a(2),
        )
        assert second.started_at >= 30.0
        assert first.finished_at > 0

    def test_late_job_on_idle_cluster_runs_clean(self):
        alone = run_concurrent_jobs([JobRequest(cfg())],
                                    cluster=cluster_a(2))[0].execution_time
        first, late = run_concurrent_jobs(
            [JobRequest(cfg()), JobRequest(cfg(), submit_at=10_000.0)],
            cluster=cluster_a(2),
        )
        assert late.execution_time == pytest.approx(alone, rel=0.05)

    def test_skewed_neighbour_hurts_more(self):
        """A skewed co-tenant occupies reduce slots longer than an even
        one, delaying the victim more."""
        even_pair = run_concurrent_jobs(
            [JobRequest(cfg()), JobRequest(cfg(pattern="avg"))],
            cluster=cluster_a(2))
        skew_pair = run_concurrent_jobs(
            [JobRequest(cfg()), JobRequest(cfg(pattern="skew"))],
            cluster=cluster_a(2))
        assert skew_pair[0].execution_time >= even_pair[0].execution_time * 0.99

    def test_yarn_batch(self):
        results = run_concurrent_jobs(
            [JobRequest(cfg()), JobRequest(cfg())],
            cluster=cluster_a(2), jobconf=JobConf(version="yarn"))
        assert all(r.execution_time > 0 for r in results)

    def test_deterministic(self):
        a = run_concurrent_jobs(
            [JobRequest(cfg()), JobRequest(cfg(), submit_at=5.0)],
            cluster=cluster_a(2))
        b = run_concurrent_jobs(
            [JobRequest(cfg()), JobRequest(cfg(), submit_at=5.0)],
            cluster=cluster_a(2))
        for ra, rb in zip(a, b):
            assert ra.execution_time == rb.execution_time

    def test_queueing_delay_reported(self):
        results = run_concurrent_jobs(
            [JobRequest(cfg(), submit_at=2.0)], cluster=cluster_a(2))
        assert results[0].queueing_delay == pytest.approx(0.0, abs=0.01)
