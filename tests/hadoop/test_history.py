"""Tests for job history records and timelines."""

import json

import pytest

from repro.core import BenchmarkConfig
from repro.hadoop import cluster_a, run_simulated_job
from repro.hadoop.history import history_json, job_history, render_timeline


@pytest.fixture(scope="module")
def result():
    config = BenchmarkConfig(num_pairs=200_000, num_maps=6, num_reduces=3,
                             key_size=512, value_size=512,
                             network="ipoib-qdr")
    return run_simulated_job(config, cluster=cluster_a(2))


class TestJobHistory:
    def test_structure(self, result):
        h = job_history(result)
        assert h["job"]["benchmark"] == "MR-AVG"
        assert h["job"]["network"] == "IPoIB-QDR(32Gbps)"
        assert len(h["maps"]) == 6
        assert len(h["reduces"]) == 3
        assert h["counters"]["MAP_OUTPUT_RECORDS"] == 200_000

    def test_task_times_consistent(self, result):
        h = job_history(result)
        for task in h["maps"]:
            assert task["finish_s"] >= task["start_s"]
        for task in h["reduces"]:
            assert task["start_s"] <= task["shuffle_end_s"] <= task["finish_s"]
            assert task["finish_s"] <= h["job"]["execution_time_s"]

    def test_events_included_in_order(self, result):
        h = job_history(result)
        times = [ev["t"] for ev in h["events"]]
        assert times == sorted(times)
        kinds = {ev["kind"] for ev in h["events"]}
        assert "MAP_START" in kinds and "JOB_FINISH" in kinds

    def test_json_round_trip(self, result):
        text = history_json(result)
        parsed = json.loads(text)
        assert parsed == job_history(result)


class TestTimeline:
    def test_renders_every_task(self, result):
        chart = render_timeline(result)
        for m in range(6):
            assert f"map{m}@" in chart
        for r in range(3):
            assert f"reduce{r}@" in chart

    def test_phases_marked(self, result):
        chart = render_timeline(result)
        assert "m" in chart and "s" in chart and "r" in chart
        assert "m=map" in chart  # legend

    def test_reduces_outlast_maps(self, result):
        """In the Gantt, the reduce tail ends after the last map bar —
        the job always finishes in the reduce phase."""
        chart = render_timeline(result).splitlines()
        map_lines = [l for l in chart if l.lstrip().startswith("map")]
        reduce_lines = [l for l in chart if l.lstrip().startswith("reduce")]

        def bar_end(line):
            return len(line.split("|", 1)[1].rstrip())

        last_map = max(bar_end(l) for l in map_lines)
        last_reduce = max(bar_end(l) for l in reduce_lines)
        assert last_reduce >= last_map
