"""Tests for cluster hardware specifications."""

import pytest

from repro.hadoop import NodeSpec, STAMPEDE_NODE, WESTMERE_NODE, cluster_a, cluster_b


def test_cluster_a_matches_paper():
    """Sect 5.1: Xeon dual quad-core @2.67GHz, 24GB, two 1TB HDDs."""
    spec = cluster_a().node
    assert spec.cores == 8
    assert spec.clock_ghz == pytest.approx(2.67)
    assert spec.ram_bytes == pytest.approx(24e9)
    assert spec.disks == 2


def test_cluster_b_matches_paper():
    """Sect 5.1: dual octa-core E5-2680 @2.7GHz, 32GB, single HDD."""
    spec = cluster_b().node
    assert spec.cores == 16
    assert spec.clock_ghz == pytest.approx(2.7)
    assert spec.ram_bytes == pytest.approx(32e9)
    assert spec.disks == 1


def test_default_slave_counts():
    assert cluster_a().num_slaves == 4
    assert cluster_b().num_slaves == 8


def test_with_slaves():
    c = cluster_a().with_slaves(8)
    assert c.num_slaves == 8
    assert c.node is WESTMERE_NODE


def test_slave_names_unique():
    names = cluster_b(16).slave_names()
    assert len(names) == 16
    assert len(set(names)) == 16


def test_aggregate_disk_bandwidth():
    assert WESTMERE_NODE.aggregate_disk_bandwidth == pytest.approx(
        2 * WESTMERE_NODE.disk_bandwidth
    )


def test_page_cache_bytes():
    assert STAMPEDE_NODE.page_cache_bytes == pytest.approx(
        STAMPEDE_NODE.ram_bytes * STAMPEDE_NODE.page_cache_fraction
    )


@pytest.mark.parametrize("kwargs", [
    {"cores": 0}, {"disks": 0}, {"clock_ghz": 0},
    {"ram_bytes": 0}, {"disk_bandwidth": 0}, {"page_cache_fraction": 1.5},
])
def test_node_spec_validation(kwargs):
    base = dict(cores=8, clock_ghz=2.67, ram_bytes=24e9, disks=2,
                disk_bandwidth=120e6)
    base.update(kwargs)
    with pytest.raises(ValueError):
        NodeSpec(**base)


def test_cluster_validation():
    with pytest.raises(ValueError):
        cluster_a(0)
