"""Tests for the job event log."""

import pytest

from repro.hadoop import JobEventLog


def test_record_and_query():
    log = JobEventLog()
    log.record(0.0, JobEventLog.MAP_START, "map0")
    log.record(1.0, JobEventLog.MAP_FINISH, "map0")
    log.record(1.0, JobEventLog.SLOWSTART)
    assert len(log) == 3
    assert log.first(JobEventLog.MAP_START).detail == "map0"
    assert log.last(JobEventLog.MAP_FINISH).time == 1.0
    assert log.first("NOPE") is None


def test_out_of_order_rejected():
    log = JobEventLog()
    log.record(5.0, JobEventLog.MAP_START)
    with pytest.raises(ValueError):
        log.record(4.0, JobEventLog.MAP_FINISH)


def test_dump_format():
    log = JobEventLog()
    log.record(1.5, JobEventLog.JOB_FINISH, "done")
    text = log.dump()
    assert "JOB_FINISH" in text
    assert "1.500" in text


def test_iteration():
    log = JobEventLog()
    log.record(0.0, "A")
    log.record(1.0, "B")
    assert [ev.kind for ev in log] == ["A", "B"]
