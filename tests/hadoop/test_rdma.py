"""Tests for the MRoIB case study and its ablation transports."""

import pytest

from repro.core import BenchmarkConfig
from repro.hadoop import (
    cluster_b,
    mroib_transport,
    overlap_only_transport,
    run_simulated_job,
    zero_copy_only_transport,
)
from repro.net import IPOIB_FDR, ONE_GIGE, RDMA_FDR


def cfg(network="ipoib-fdr"):
    return BenchmarkConfig(num_pairs=400_000, num_maps=8, num_reduces=4,
                           key_size=512, value_size=512, network=network)


def test_mroib_transport_properties():
    t = mroib_transport()
    assert t.merge_overlap == 1.0
    assert t.pipelined_final_merge
    assert not t.reads_map_output_from_disk


def test_mroib_requires_rdma():
    with pytest.raises(ValueError):
        mroib_transport(ONE_GIGE)


def test_overlap_only_keeps_sockets():
    t = overlap_only_transport(IPOIB_FDR)
    assert t.pipelined_final_merge
    assert t.reads_map_output_from_disk  # still the HTTP data path


def test_zero_copy_only_keeps_stock_pipeline():
    t = zero_copy_only_transport(RDMA_FDR)
    assert not t.pipelined_final_merge
    assert not t.reads_map_output_from_disk


def test_zero_copy_requires_rdma():
    with pytest.raises(ValueError):
        zero_copy_only_transport(IPOIB_FDR)


def test_full_mroib_beats_both_ablations():
    """The Sect. 6 decomposition: zero-copy + overlap > either alone."""
    cluster = cluster_b(4)
    stock = run_simulated_job(cfg("ipoib-fdr"), cluster=cluster).execution_time
    full = run_simulated_job(cfg("rdma"), cluster=cluster).execution_time
    overlap = run_simulated_job(
        cfg("ipoib-fdr"), cluster=cluster,
        transport=overlap_only_transport(IPOIB_FDR),
    ).execution_time
    zero_copy = run_simulated_job(
        cfg("rdma"), cluster=cluster,
        transport=zero_copy_only_transport(RDMA_FDR),
    ).execution_time
    assert full < overlap < stock
    assert full < zero_copy < stock


def test_rdma_gain_grows_with_shuffle_size():
    cluster = cluster_b(4)
    gains = []
    for pairs in (100_000, 800_000):
        c_ib = BenchmarkConfig(num_pairs=pairs, num_maps=8, num_reduces=4,
                               network="ipoib-fdr")
        c_rd = BenchmarkConfig(num_pairs=pairs, num_maps=8, num_reduces=4,
                               network="rdma")
        t_ib = run_simulated_job(c_ib, cluster=cluster).execution_time
        t_rd = run_simulated_job(c_rd, cluster=cluster).execution_time
        gains.append((t_ib - t_rd) / t_ib)
    assert gains[1] > gains[0]
