"""Tests for the simulated map task."""

import numpy as np
import pytest

from repro.hadoop import DEFAULT_COST_MODEL, JobConf, MapTask, SimNode, WESTMERE_NODE
from repro.net import NetworkFabric, ONE_GIGE
from repro.sim import Simulator


def make_task(nbytes=200e6, records=200_000, reduces=4, jobconf=None,
              costs=None):
    sim = Simulator()
    fabric = NetworkFabric(sim, ONE_GIGE)
    node = SimNode(sim, "n0", WESTMERE_NODE, fabric)
    seg_bytes = np.full(reduces, nbytes / reduces)
    seg_records = np.full(reduces, records // reduces, dtype=np.int64)
    task = MapTask(
        map_id=0,
        node=node,
        segment_bytes=seg_bytes,
        segment_records=seg_records,
        jobconf=jobconf or JobConf(),
        costs=(costs or DEFAULT_COST_MODEL).scaled(WESTMERE_NODE.clock_ghz),
    )
    return sim, node, task


def test_map_task_produces_output():
    sim, _node, task = make_task()
    proc = sim.process(task.run())
    output = sim.run_until_event(proc)
    assert output is task.output
    assert output.map_id == 0
    assert output.total_bytes == pytest.approx(200e6)
    assert output.finished_at == sim.now


def test_spill_count_matches_io_sort_mb():
    """200MB output with an 80MB spill threshold -> 3 spills."""
    sim, _node, task = make_task(nbytes=200e6)
    sim.run_until_event(sim.process(task.run()))
    assert task.stats.spills == 3


def test_single_spill_job_has_no_merge():
    sim, _node, task = make_task(nbytes=50e6)
    sim.run_until_event(sim.process(task.run()))
    assert task.stats.spills == 1
    assert task.stats.merge_passes == 0


def test_duration_grows_with_data():
    _s1, _n1, small = make_task(nbytes=100e6, records=100_000)
    _s2, _n2, big = make_task(nbytes=400e6, records=400_000)
    sim1 = small.node.sim
    sim2 = big.node.sim
    sim1.run_until_event(sim1.process(small.run()))
    sim2.run_until_event(sim2.process(big.run()))
    assert big.stats.duration > small.stats.duration * 2


def test_duration_grows_with_record_count_at_fixed_bytes():
    """Smaller kv pairs (more records, same bytes) cost more CPU —
    the Fig. 4 effect at the map level."""
    _s1, _n1, few = make_task(nbytes=200e6, records=50_000)
    _s2, _n2, many = make_task(nbytes=200e6, records=2_000_000)
    few.node.sim.run_until_event(few.node.sim.process(few.run()))
    many.node.sim.run_until_event(many.node.sim.process(many.run()))
    assert many.stats.duration > few.stats.duration * 2


def test_cpu_time_is_tracked():
    sim, node, task = make_task()
    sim.run_until_event(sim.process(task.run()))
    assert node.cpu.integral() > 0


def test_faster_clock_runs_faster():
    fast_costs = DEFAULT_COST_MODEL  # scaled() applied inside make_task
    _s1, _n1, base = make_task()
    sim, fabric = Simulator(), None
    # Build a task on a node twice as fast.
    from repro.hadoop.cluster import NodeSpec

    fast_node_spec = NodeSpec(cores=8, clock_ghz=5.34, ram_bytes=24e9,
                              disks=2, disk_bandwidth=120e6)
    fabric = NetworkFabric(sim, ONE_GIGE)
    node = SimNode(sim, "n0", fast_node_spec, fabric)
    import numpy as np

    task = MapTask(0, node, np.full(4, 50e6), np.full(4, 50_000, dtype=np.int64),
                   JobConf(), DEFAULT_COST_MODEL.scaled(5.34))
    base.node.sim.run_until_event(base.node.sim.process(base.run()))
    sim.run_until_event(sim.process(task.run()))
    assert task.stats.duration < base.stats.duration
