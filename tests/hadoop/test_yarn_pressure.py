"""YARN under container pressure: tasks queue when the pool is tight."""

import pytest

from repro.core import BenchmarkConfig
from repro.hadoop import JobConf, JobEventLog, cluster_a, run_simulated_job


def cfg(**kw):
    defaults = dict(num_pairs=100_000, num_maps=8, num_reduces=4,
                    key_size=256, value_size=256)
    defaults.update(kw)
    return BenchmarkConfig(**defaults)


def test_tight_container_pool_serializes_tasks():
    """With 2 containers per node (1 eaten by the AppMaster on node0),
    the 8 maps run in several waves."""
    jc = JobConf(version="yarn", containers_per_node=2)
    result = run_simulated_job(cfg(), cluster=cluster_a(2), jobconf=jc)
    starts = sorted(ev.time for ev in
                    result.events.of_kind(JobEventLog.MAP_START))
    # 3 free containers -> at least 3 waves for 8 maps.
    assert starts[-1] > starts[0] + 2.0


def test_tight_pool_slower_than_roomy_pool():
    tight = run_simulated_job(
        cfg(), cluster=cluster_a(2),
        jobconf=JobConf(version="yarn", containers_per_node=2),
    ).execution_time
    roomy = run_simulated_job(
        cfg(), cluster=cluster_a(2),
        jobconf=JobConf(version="yarn", containers_per_node=8),
    ).execution_time
    assert tight > roomy


def test_reducers_wait_for_containers_behind_maps():
    """Reducers share the container pool with maps: under pressure the
    first reducer starts only after map containers free up."""
    jc = JobConf(version="yarn", containers_per_node=2,
                 reduce_slowstart=0.05)
    result = run_simulated_job(cfg(), cluster=cluster_a(2), jobconf=jc)
    first_reduce = result.events.first(JobEventLog.REDUCE_START).time
    first_map_finish = result.events.first(JobEventLog.MAP_FINISH).time
    assert first_reduce >= first_map_finish - 1e-6


def test_job_completes_under_extreme_pressure():
    """Even 2 containers on one node (1 left after the AppMaster)
    eventually drains the whole job."""
    jc = JobConf(version="yarn", containers_per_node=2)
    result = run_simulated_job(cfg(num_maps=6, num_reduces=2),
                               cluster=cluster_a(1), jobconf=jc)
    assert sum(s.records for s in result.reduce_stats) == 100_000
