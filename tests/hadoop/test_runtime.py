"""Tests for the Runtime protocol, registry, and JobExecution engine."""

import pytest

from repro.core.config import BenchmarkConfig
from repro.hadoop import (
    JobConf,
    Runtime,
    available_runtimes,
    cluster_a,
    create_runtime,
    run_simulated_job,
)
from repro.hadoop.costmodel import DEFAULT_COST_MODEL
from repro.hadoop.jobtracker import JobTrackerScheduler
from repro.hadoop.node import SimNode
from repro.hadoop.runtime import RUNTIMES, register_runtime
from repro.hadoop.yarn import YarnScheduler
from repro.net.fabric import NetworkFabric
from repro.net.interconnect import get_interconnect
from repro.sim.kernel import Simulator
from repro.sim.trace import CAT_PHASE, CAT_SCHED, CAT_TASK, Tracer


def make_world(num_nodes=2):
    sim = Simulator()
    cluster = cluster_a(num_nodes)
    fabric = NetworkFabric(sim, get_interconnect("ipoib-qdr"))
    nodes = [
        SimNode(sim, name, cluster.node, fabric)
        for name in cluster.slave_names()
    ]
    return sim, nodes


def cfg(**kw):
    defaults = dict(num_pairs=200_000, num_maps=8, num_reduces=4,
                    key_size=256, value_size=256, network="ipoib-qdr")
    defaults.update(kw)
    return BenchmarkConfig(**defaults)


class TestRegistry:
    def test_builtins_registered(self):
        assert available_runtimes() == ["mrv1", "yarn"]

    def test_create_by_name(self):
        sim, nodes = make_world()
        costs = DEFAULT_COST_MODEL.scaled(nodes[0].spec.clock_ghz)
        rt = create_runtime("mrv1", sim, nodes, JobConf(), costs)
        assert isinstance(rt, JobTrackerScheduler)
        rt = create_runtime("yarn", sim, nodes, JobConf(version="yarn"),
                            costs)
        assert isinstance(rt, YarnScheduler)

    def test_unknown_name_rejected(self):
        sim, nodes = make_world()
        with pytest.raises(ValueError, match="unknown runtime"):
            create_runtime("spark", sim, nodes, JobConf(),
                           DEFAULT_COST_MODEL)

    def test_register_requires_name(self):
        with pytest.raises(ValueError, match="non-empty name"):
            @register_runtime
            class Anonymous(Runtime):
                pass

    def test_register_custom_runtime(self):
        @register_runtime
        class Custom(JobTrackerScheduler):
            name = "custom-mrv1"

        try:
            sim, nodes = make_world()
            rt = create_runtime(
                "custom-mrv1", sim, nodes, JobConf(),
                DEFAULT_COST_MODEL.scaled(nodes[0].spec.clock_ghz))
            assert rt.version == "custom-mrv1"
            assert "custom-mrv1" in available_runtimes()
        finally:
            del RUNTIMES["custom-mrv1"]


class TestRuntimeProtocol:
    def test_version_aliases_name(self):
        sim, nodes = make_world()
        costs = DEFAULT_COST_MODEL.scaled(nodes[0].spec.clock_ghz)
        assert create_runtime("mrv1", sim, nodes, JobConf(), costs).version == "mrv1"

    def test_mrv1_separate_pools_yarn_shared(self):
        sim, nodes = make_world()
        costs = DEFAULT_COST_MODEL.scaled(nodes[0].spec.clock_ghz)
        mrv1 = create_runtime("mrv1", sim, nodes, JobConf(), costs)
        assert mrv1.map_pool(nodes[0]) is not mrv1.reduce_pool(nodes[0])
        yarn = create_runtime("yarn", sim, nodes, JobConf(version="yarn"),
                              costs)
        assert yarn.map_pool(nodes[0]) is yarn.reduce_pool(nodes[0])

    def test_task_start_extra(self):
        sim, nodes = make_world()
        costs = DEFAULT_COST_MODEL.scaled(nodes[0].spec.clock_ghz)
        assert create_runtime("mrv1", sim, nodes, JobConf(),
                              costs).task_start_extra == 0.0
        assert create_runtime("yarn", sim, nodes, JobConf(version="yarn"),
                              costs).task_start_extra > 0.0

    def test_base_hooks_are_abstract_or_noop(self):
        class Bare(Runtime):
            name = "bare"

            def _build_pools(self):
                pass

        sim, nodes = make_world()
        rt = Bare(sim, nodes, JobConf(), DEFAULT_COST_MODEL)
        rt.job_started()
        rt.job_finished()
        with pytest.raises(NotImplementedError):
            rt.map_pool(nodes[0])
        with pytest.raises(NotImplementedError):
            rt.reduce_pool(nodes[0])


class TestPhaseBreakdown:
    def test_phases_sum_to_task_durations(self):
        result = run_simulated_job(cfg(), cluster=cluster_a(2))
        breakdown = result.phase_breakdown()
        assert breakdown.consistent(result.task_durations())
        assert len(breakdown.rows) == 8 + 4

    def test_totals_and_by_node(self):
        result = run_simulated_job(cfg(), cluster=cluster_a(2))
        breakdown = result.phase_breakdown()
        totals = breakdown.totals()
        assert totals["map"] > 0 and totals["shuffle"] > 0
        by_node = breakdown.by_node()
        assert set(by_node) == {s.node for s in result.map_stats} | {
            s.node for s in result.reduce_stats}
        for phase, total in totals.items():
            assert sum(n[phase] for n in by_node.values()) == pytest.approx(
                total)

    def test_map_rows_have_no_reduce_phases(self):
        result = run_simulated_job(cfg(), cluster=cluster_a(2))
        for row in result.phase_breakdown().rows:
            if row.task.startswith("map"):
                assert row.phases["shuffle"] == 0.0
                assert row.phases["reduce"] == 0.0
            else:
                assert row.phases["map"] == 0.0


class TestTracedExecution:
    def test_trace_carried_on_result(self):
        tracer = Tracer()
        result = run_simulated_job(cfg(), cluster=cluster_a(2),
                                   tracer=tracer)
        assert result.trace is tracer
        assert len(tracer) > 0

    def test_task_spans_cover_all_tasks(self):
        tracer = Tracer()
        run_simulated_job(cfg(), cluster=cluster_a(2), tracer=tracer)
        tasks = tracer.spans(CAT_TASK)
        names = sorted(ev.name for ev in tasks)
        assert names.count("map-task") == 8
        assert names.count("reduce-task") == 4

    def test_sched_and_phase_spans_present(self):
        tracer = Tracer()
        run_simulated_job(cfg(), cluster=cluster_a(2), tracer=tracer)
        # Grant waits are recorded even when the wait was zero-length
        # (spans() filters zero-duration records; check the raw events).
        sched = [ev for ev in tracer.events if ev.cat == CAT_SCHED]
        assert sum(1 for ev in sched if ev.name == "grant-wait") == 8 + 4
        phase_names = {ev.name for ev in tracer.spans(CAT_PHASE)}
        assert {"collect-spill", "shuffle-fetch",
                "shuffle-merge"} <= phase_names

    def test_untraced_result_has_no_trace(self):
        result = run_simulated_job(cfg(), cluster=cluster_a(2))
        assert result.trace is None
