"""Retry / registry invariants: attempt exhaustion, the map-output
registry's over-registration guard, and speculation composing with
failure injection without ever double-registering a map output."""

import numpy as np
import pytest

from repro.core import BenchmarkConfig
from repro.faults import FaultPlan, SlowNode
from repro.hadoop import JobConf, JobEventLog, cluster_a, run_simulated_job
from repro.hadoop.maptask import MapOutput
from repro.hadoop.node import SimNode
from repro.hadoop.shuffle import MapOutputRegistry
from repro.hadoop.simulation import TaskFailedError
from repro.net.fabric import NetworkFabric
from repro.net.interconnect import get_interconnect
from repro.sim.kernel import Simulator


def cfg(**kw):
    defaults = dict(num_pairs=200_000, num_maps=8, num_reduces=4,
                    key_size=512, value_size=512, network="ipoib-qdr")
    defaults.update(kw)
    return BenchmarkConfig(**defaults)


def run(config, **kw):
    kw.setdefault("cluster", cluster_a(2))
    return run_simulated_job(config, **kw)


class TestAttemptExhaustion:
    def test_map_exhaustion_names_task_and_budget(self):
        jc = JobConf(task_failure_probability=0.97, max_task_attempts=2)
        with pytest.raises(TaskFailedError, match=r"failed 2 attempts"):
            run(cfg(), jobconf=jc)

    def test_exhaustion_is_a_runtime_error(self):
        # Callers that guard framework errors with RuntimeError must
        # catch task exhaustion too.
        assert issubclass(TaskFailedError, RuntimeError)

    def test_single_attempt_budget_still_completes_clean_jobs(self):
        result = run(cfg(), jobconf=JobConf(max_task_attempts=1))
        assert sum(s.records for s in result.reduce_stats) == (
            result.config.num_pairs
        )

    def test_injected_coin_exhaustion(self):
        """The fault-plan coin must respect the same attempt budget as
        the legacy JobConf knob."""
        plan = FaultPlan(task_failure_probability=0.97)
        with pytest.raises(TaskFailedError, match=r"failed 2 attempts"):
            run(cfg(), jobconf=JobConf(max_task_attempts=2),
                fault_plan=plan)


class TestMapOutputRegistryGuard:
    def _world(self):
        sim = Simulator()
        cluster = cluster_a(2)
        fabric = NetworkFabric(sim, get_interconnect("ipoib-qdr"))
        node = SimNode(sim, "slave0", cluster.node, fabric)
        return sim, node

    def _output(self, map_id, node):
        return MapOutput(
            map_id=map_id, node=node,
            segment_bytes=np.array([100.0]),
            segment_records=np.array([1]),
        )

    def test_rejects_more_outputs_than_maps(self):
        sim, node = self._world()
        registry = MapOutputRegistry(sim, num_maps=2)
        registry.register(self._output(0, node))
        registry.register(self._output(1, node))
        assert registry.complete
        with pytest.raises(RuntimeError, match="more map outputs"):
            registry.register(self._output(0, node))

    def test_waiters_fire_per_registration(self):
        sim, node = self._world()
        registry = MapOutputRegistry(sim, num_maps=2)
        ev = registry.wait_for_more()
        assert not ev.triggered
        registry.register(self._output(0, node))
        assert ev.triggered
        assert not registry.complete


class TestSpeculationNeverDoubleRegisters:
    def _map_finishes(self, result):
        return result.events.of_kind(JobEventLog.MAP_FINISH)

    def test_flaky_maps_with_speculation(self):
        """Failure retries + speculative backups racing the originals:
        every map must be registered exactly once (a duplicate would
        trip the registry's RuntimeError and abort the run)."""
        jc = JobConf(task_failure_probability=0.25, max_task_attempts=8,
                     speculative_execution=True, map_slots_per_node=2)
        result = run(cfg(num_maps=12), jobconf=jc)
        assert len(self._map_finishes(result)) == 12
        assert sum(s.records for s in result.reduce_stats) == (
            result.config.num_pairs
        )

    def test_slow_node_backup_wins_once(self):
        """A fault-injected straggler node forces the speculation path;
        the backup winning must not re-register the loser's output."""
        plan = FaultPlan(slow_nodes=(SlowNode("slave1", cpu_factor=6.0),))
        jc = JobConf(speculative_execution=True)
        result = run(cfg(), jobconf=jc, fault_plan=plan)
        assert len(self._map_finishes(result)) == result.config.num_maps
        report = result.resilience
        assert report is not None
        if report.speculative_launched:
            assert report.speculative_won <= report.speculative_launched

    def test_failures_and_speculation_compose_deterministically(self):
        jc = JobConf(task_failure_probability=0.25, max_task_attempts=8,
                     speculative_execution=True, map_slots_per_node=2)
        a = run(cfg(num_maps=12), jobconf=jc)
        b = run(cfg(num_maps=12), jobconf=jc)
        assert a.execution_time.hex() == b.execution_time.hex()
        assert len(self._map_finishes(a)) == len(self._map_finishes(b))
