"""Tests for SimJobResult convenience accessors."""

import pytest

from repro.core import BenchmarkConfig
from repro.hadoop import cluster_a, run_simulated_job


@pytest.fixture(scope="module")
def result():
    config = BenchmarkConfig(pattern="skew", num_pairs=300_000,
                             num_maps=6, num_reduces=4,
                             key_size=512, value_size=512,
                             network="1GigE")
    return run_simulated_job(config, cluster=cluster_a(2))


def test_slowest_reduce_is_the_skewed_one(result):
    slowest = result.slowest_reduce
    assert slowest.finished_at == max(
        s.finished_at for s in result.reduce_stats)
    # Under MR-SKEW the heavy reducer (id 0) finishes last.
    assert slowest.reduce_id == 0


def test_reduce_phase_time_positive_and_bounded(result):
    assert 0 < result.reduce_phase_time < result.execution_time


def test_breakdown_keys_and_consistency(result):
    b = result.breakdown()
    assert set(b) == {"execution_time", "map_phase", "slowest_shuffle",
                      "slowest_reduce_fn"}
    assert b["execution_time"] == result.execution_time
    assert b["map_phase"] == result.map_phase_end
    assert b["slowest_shuffle"] == max(
        s.shuffle_duration for s in result.reduce_stats)


def test_total_shuffle_bytes_matches_config(result):
    assert result.total_shuffle_bytes == result.config.shuffle_bytes


def test_summary_round_numbers(result):
    s = result.summary()
    assert s["benchmark"] == "MR-SKEW"
    assert s["slaves"] == 2
    assert s["shuffle_gb"] == pytest.approx(
        result.config.shuffle_bytes / 1e9)
    assert isinstance(s["execution_time_s"], float)


def test_map_stats_sorted_by_id(result):
    assert [m.map_id for m in result.map_stats] == list(range(6))
    for m in result.map_stats:
        assert m.duration > 0
