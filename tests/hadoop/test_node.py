"""Tests for the slave-node runtime: storage (page cache) and CPU."""

import pytest

from repro.hadoop import SimNode, WESTMERE_NODE
from repro.hadoop.cluster import NodeSpec
from repro.net import NetworkFabric, ONE_GIGE
from repro.sim import Simulator

SMALL_NODE = NodeSpec(
    cores=4, clock_ghz=2.0, ram_bytes=1000.0, disks=1,
    disk_bandwidth=10.0, page_cache_fraction=0.5, cache_bandwidth=100.0,
)  # cache budget: 500 bytes; cache 100 B/s; disk 10 B/s


def make_node(spec=SMALL_NODE):
    sim = Simulator()
    fabric = NetworkFabric(sim, ONE_GIGE)
    return sim, SimNode(sim, "n0", spec, fabric)


class TestStorage:
    def test_cached_write_is_fast(self):
        sim, node = make_node()
        done = node.storage.write(100.0)
        sim.run_until_event(done)
        # 100 B at cache speed (100 B/s) = 1s; the background writeback
        # continues but the foreground is done.
        assert sim.now == pytest.approx(1.0)

    def test_transient_write_never_touches_disk(self):
        sim, node = make_node()
        done = node.storage.write(400.0, transient=True)
        sim.run_until_event(done)
        assert sim.now == pytest.approx(4.0)
        sim.run()
        assert node.storage.disk.bytes_served.total == pytest.approx(0.0)

    def test_persistent_write_is_flushed_to_disk(self):
        sim, node = make_node()
        node.storage.write(100.0)
        sim.run()
        assert node.storage.disk.bytes_served.total == pytest.approx(100.0)
        assert node.storage.dirty_bytes == pytest.approx(0.0)

    def test_overflow_write_throttles_to_disk(self):
        """Writes beyond the dirty budget block on platter bandwidth."""
        sim, node = make_node()
        done = node.storage.write(600.0)  # budget 500
        sim.run_until_event(done)
        # 500 cached (5s at 100 B/s) but 100 direct at ~disk speed,
        # sharing the disk with the 500-byte writeback.
        assert sim.now > 10.0

    def test_transient_read_hits_cache(self):
        sim, node = make_node()
        done = node.storage.read(200.0, transient=True)
        sim.run_until_event(done)
        assert sim.now == pytest.approx(2.0)

    def test_read_of_small_working_set_is_cached(self):
        sim, node = make_node()
        sim.run_until_event(node.storage.write(100.0))
        start = sim.now
        sim.run_until_event(node.storage.read(100.0))
        assert sim.now - start == pytest.approx(1.0, rel=0.2)

    def test_read_miss_fraction_grows_with_working_set(self):
        """Once total_written >> cache, reads mostly hit the platter."""
        sim, node = make_node()
        node.storage._total_written = 5000.0  # 10x the cache budget
        done = node.storage.read(100.0)
        sim.run_until_event(done)
        # 90 bytes from disk at 10 B/s ~ 9s dominates.
        assert sim.now > 5.0

    def test_zero_byte_ops_complete_instantly(self):
        sim, node = make_node()
        sim.run_until_event(node.storage.write(0.0))
        sim.run_until_event(node.storage.read(0.0))
        assert sim.now == 0.0

    def test_negative_sizes_rejected(self):
        _sim, node = make_node()
        with pytest.raises(ValueError):
            node.storage.write(-1.0)
        with pytest.raises(ValueError):
            node.storage.read(-1.0)


class TestSimNodeCpu:
    def test_cpu_burst_tracks_busy_time(self):
        sim, node = make_node()

        def work():
            yield from node.cpu_burst(5.0)

        sim.process(work())
        sim.run()
        assert sim.now == pytest.approx(5.0)
        assert node.cpu.integral() == pytest.approx(5.0)

    def test_zero_burst_is_noop(self):
        sim, node = make_node()

        def work():
            yield from node.cpu_burst(0.0)
            yield sim.timeout(1.0)

        sim.process(work())
        sim.run()
        assert node.cpu.integral() == pytest.approx(0.0)

    def test_total_cpu_level_includes_protocol(self):
        sim, node = make_node(WESTMERE_NODE)
        node.cpu.adjust(+2)
        node.fabric_node.protocol_cpu.set_level(1.5)
        assert node.total_cpu_level() == pytest.approx(3.5)

    def test_total_cpu_level_capped_at_cores(self):
        _sim, node = make_node()
        node.cpu.adjust(+4)
        node.fabric_node.protocol_cpu.set_level(3.0)
        assert node.total_cpu_level() == pytest.approx(4.0)
