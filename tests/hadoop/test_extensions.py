"""Tests for the framework extensions: combiner, compression,
failure injection, speculative execution."""

import pytest

from repro.core import BenchmarkConfig
from repro.hadoop import JobConf, JobEventLog, cluster_a, run_simulated_job
from repro.hadoop.simulation import TaskFailedError


def cfg(**kw):
    defaults = dict(num_pairs=400_000, num_maps=8, num_reduces=4,
                    key_size=512, value_size=512, network="1GigE")
    defaults.update(kw)
    return BenchmarkConfig(**defaults)


def run(config, **kw):
    kw.setdefault("cluster", cluster_a(2))
    return run_simulated_job(config, **kw)


class TestCompression:
    def test_compression_reduces_wire_bytes(self):
        plain = run(cfg())
        packed = run(cfg(), jobconf=JobConf(compress_map_output=True))
        fetched_plain = sum(s.bytes_fetched for s in plain.reduce_stats)
        fetched_packed = sum(s.bytes_fetched for s in packed.reduce_stats)
        assert fetched_packed == pytest.approx(
            fetched_plain * 0.45, rel=0.01)

    def test_compression_helps_on_slow_network(self):
        """On 1 GigE, shrinking the wire bytes outweighs codec CPU."""
        plain = run(cfg(network="1GigE")).execution_time
        packed = run(cfg(network="1GigE"),
                     jobconf=JobConf(compress_map_output=True)).execution_time
        assert packed < plain

    def test_compression_costs_cpu_on_fast_network(self):
        """On RDMA the wire is nearly free; codec CPU is pure overhead
        (or at best a wash)."""
        from repro.hadoop import cluster_b

        plain = run_simulated_job(
            cfg(network="rdma"), cluster=cluster_b(2)).execution_time
        packed = run_simulated_job(
            cfg(network="rdma"), cluster=cluster_b(2),
            jobconf=JobConf(compress_map_output=True)).execution_time
        assert packed >= plain * 0.98

    def test_logical_bytes_preserved(self):
        packed = run(cfg(), jobconf=JobConf(compress_map_output=True))
        total_logical = packed.matrix.total_bytes
        # reduce functions still see the uncompressed volume
        assert sum(
            s.records for s in packed.reduce_stats
        ) == packed.config.num_pairs
        assert total_logical > sum(s.bytes_fetched for s in packed.reduce_stats)

    def test_validation(self):
        with pytest.raises(ValueError):
            JobConf(compression_ratio=0.0)


class TestCombiner:
    def test_combiner_reduces_shuffle_volume(self):
        plain = run(cfg())
        combined = run(cfg(), jobconf=JobConf(combiner_reduction=0.25))
        assert sum(s.bytes_fetched for s in combined.reduce_stats) == (
            pytest.approx(
                0.25 * sum(s.bytes_fetched for s in plain.reduce_stats),
                rel=0.01,
            )
        )

    def test_combiner_speeds_up_slow_network(self):
        plain = run(cfg(network="1GigE")).execution_time
        combined = run(
            cfg(network="1GigE"),
            jobconf=JobConf(combiner_reduction=0.25),
        ).execution_time
        assert combined < plain

    def test_validation(self):
        with pytest.raises(ValueError):
            JobConf(combiner_reduction=0.0)
        with pytest.raises(ValueError):
            JobConf(combiner_reduction=1.5)


class TestFailureInjection:
    def test_no_failures_by_default(self):
        result = run(cfg())
        assert not result.events.of_kind(JobEventLog.TASK_FAILED)

    def test_failures_are_retried_and_job_completes(self):
        jc = JobConf(task_failure_probability=0.3, max_task_attempts=8)
        result = run(cfg(), jobconf=jc)
        failed = result.events.of_kind(JobEventLog.TASK_FAILED)
        assert failed  # at p=0.3 over 12 tasks some attempt fails
        # ...but the job still finishes with every record accounted for.
        assert sum(s.records for s in result.reduce_stats) == (
            result.config.num_pairs
        )

    def test_failures_slow_the_job_down(self):
        clean = run(cfg()).execution_time
        flaky = run(
            cfg(),
            jobconf=JobConf(task_failure_probability=0.3,
                            max_task_attempts=8),
        ).execution_time
        assert flaky > clean

    def test_job_fails_after_max_attempts(self):
        jc = JobConf(task_failure_probability=0.95, max_task_attempts=2)
        with pytest.raises(TaskFailedError):
            run(cfg(), jobconf=jc)

    def test_failure_injection_is_deterministic(self):
        jc = JobConf(task_failure_probability=0.3, max_task_attempts=8)
        a = run(cfg(), jobconf=jc)
        b = run(cfg(), jobconf=jc)
        assert a.execution_time == b.execution_time
        assert len(a.events.of_kind(JobEventLog.TASK_FAILED)) == len(
            b.events.of_kind(JobEventLog.TASK_FAILED)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            JobConf(task_failure_probability=1.0)
        with pytest.raises(ValueError):
            JobConf(max_task_attempts=0)


class TestSpeculativeExecution:
    def test_speculation_off_by_default(self):
        result = run(cfg())
        assert not result.events.of_kind(JobEventLog.SPECULATIVE)

    def test_speculation_rescues_straggler(self):
        """With failures making one map wave slow and speculation on,
        backups launch and the job still completes correctly."""
        jc = JobConf(task_failure_probability=0.25, max_task_attempts=8,
                     speculative_execution=True, map_slots_per_node=2)
        result = run(cfg(num_maps=12), jobconf=jc)
        assert sum(s.records for s in result.reduce_stats) == (
            result.config.num_pairs
        )

    def test_speculation_never_slower_without_failures(self):
        base = run(cfg()).execution_time
        spec = run(
            cfg(), jobconf=JobConf(speculative_execution=True)
        ).execution_time
        assert spec == pytest.approx(base, rel=0.01)

    def test_speculation_helps_with_flaky_maps(self):
        """Failures create stragglers (retried maps); speculation should
        not make things worse and usually helps."""
        flaky = JobConf(task_failure_probability=0.25, max_task_attempts=8,
                        map_slots_per_node=2)
        spec = JobConf(task_failure_probability=0.25, max_task_attempts=8,
                       map_slots_per_node=2, speculative_execution=True)
        t_flaky = run(cfg(num_maps=12), jobconf=flaky).execution_time
        t_spec = run(cfg(num_maps=12), jobconf=spec).execution_time
        assert t_spec <= t_flaky * 1.05
