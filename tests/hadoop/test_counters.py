"""Tests for Hadoop-style job counters."""

import pytest

from repro.core import BenchmarkConfig
from repro.engine.context import Counters
from repro.hadoop import JobConf, cluster_a, run_simulated_job
from repro.hadoop.counters import (
    MAP_SPILLS,
    REDUCE_SPILLED_BYTES,
    SHUFFLE_WIRE_BYTES,
    counters_dict,
    format_counters,
    job_counters,
)


@pytest.fixture(scope="module")
def result():
    config = BenchmarkConfig(num_pairs=400_000, num_maps=8, num_reduces=4,
                             key_size=512, value_size=512)
    return run_simulated_job(config, cluster=cluster_a(2))


def test_record_counters(result):
    c = job_counters(result)
    assert c.value(Counters.MAP_INPUT_RECORDS) == 8
    assert c.value(Counters.MAP_OUTPUT_RECORDS) == 400_000
    assert c.value(Counters.REDUCE_INPUT_RECORDS) == 400_000
    assert c.value(Counters.REDUCE_OUTPUT_RECORDS) == 0  # NullOutputFormat


def test_byte_counters(result):
    c = job_counters(result)
    assert c.value(Counters.MAP_OUTPUT_BYTES) == result.config.shuffle_bytes
    assert c.value(Counters.REDUCE_SHUFFLE_BYTES) == pytest.approx(
        result.config.shuffle_bytes, rel=0.001)


def test_spill_counters(result):
    c = job_counters(result)
    assert c.value(MAP_SPILLS) >= 8  # at least one spill per map
    assert c.value(REDUCE_SPILLED_BYTES) >= 0


def test_wire_bytes_shrink_with_compression():
    config = BenchmarkConfig(num_pairs=400_000, num_maps=8, num_reduces=4,
                             key_size=512, value_size=512)
    plain = job_counters(run_simulated_job(config, cluster=cluster_a(2)))
    packed = job_counters(run_simulated_job(
        config, cluster=cluster_a(2),
        jobconf=JobConf(compress_map_output=True)))
    assert packed.value(SHUFFLE_WIRE_BYTES) < plain.value(SHUFFLE_WIRE_BYTES)


def test_format_counters(result):
    text = format_counters(job_counters(result))
    assert text.startswith("Counters:")
    assert "MAP_OUTPUT_RECORDS=400,000" in text


def test_counters_dict(result):
    d = counters_dict(result)
    assert d[Counters.MAP_OUTPUT_RECORDS] == 400_000
