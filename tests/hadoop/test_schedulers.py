"""Tests for the MRv1 and YARN schedulers."""

import pytest

from repro.core import BenchmarkConfig
from repro.hadoop import (
    DEFAULT_COST_MODEL,
    JobConf,
    JobEventLog,
    JobTrackerScheduler,
    SimNode,
    WESTMERE_NODE,
    YarnScheduler,
    cluster_a,
    run_simulated_job,
)
from repro.net import NetworkFabric, ONE_GIGE
from repro.sim import Simulator


def make_nodes(n=2):
    sim = Simulator()
    fabric = NetworkFabric(sim, ONE_GIGE)
    nodes = [SimNode(sim, f"n{i}", WESTMERE_NODE, fabric) for i in range(n)]
    return sim, nodes


class TestJobTrackerScheduler:
    def test_slot_counts(self):
        sim, nodes = make_nodes()
        sched = JobTrackerScheduler(sim, nodes, JobConf(), DEFAULT_COST_MODEL)
        # Westmere: 4 map slots, 2 reduce slots per node
        assert sched.map_wave_count(8) == 1
        assert sched.map_wave_count(9) == 2
        assert sched.map_wave_count(16) == 2

    def test_round_robin_placement(self):
        sim, nodes = make_nodes()
        sched = JobTrackerScheduler(sim, nodes, JobConf(), DEFAULT_COST_MODEL)
        assert sched.map_node(0) is nodes[0]
        assert sched.map_node(1) is nodes[1]
        assert sched.map_node(2) is nodes[0]
        assert sched.reduce_node(3) is nodes[1]

    def test_no_extra_start_latency(self):
        sim, nodes = make_nodes()
        sched = JobTrackerScheduler(sim, nodes, JobConf(), DEFAULT_COST_MODEL)
        assert sched.task_start_extra == 0.0

    def test_slots_block_when_full(self):
        sim, nodes = make_nodes(1)
        jc = JobConf(map_slots_per_node=1)
        sched = JobTrackerScheduler(sim, nodes, jc, DEFAULT_COST_MODEL)
        g1 = sched.acquire_map(nodes[0])
        g2 = sched.acquire_map(nodes[0])
        sim.run()
        assert g1.processed and not g2.triggered
        sched.release_map(nodes[0])
        sim.run()
        assert g2.processed


class TestYarnScheduler:
    def test_appmaster_takes_a_container(self):
        sim, nodes = make_nodes()
        sched = YarnScheduler(sim, nodes, JobConf(version="yarn"),
                              DEFAULT_COST_MODEL)
        before = sched.containers_available(nodes[0])
        sched.job_started()
        assert sched.containers_available(nodes[0]) == before - 1
        sched.job_finished()
        assert sched.containers_available(nodes[0]) == before

    def test_extra_start_latency(self):
        sim, nodes = make_nodes()
        sched = YarnScheduler(sim, nodes, JobConf(version="yarn"),
                              DEFAULT_COST_MODEL)
        assert sched.task_start_extra == DEFAULT_COST_MODEL.yarn_container_start_extra

    def test_maps_and_reduces_share_containers(self):
        sim, nodes = make_nodes(1)
        jc = JobConf(version="yarn", containers_per_node=2)
        sched = YarnScheduler(sim, nodes, jc, DEFAULT_COST_MODEL)
        g1 = sched.acquire_map(nodes[0])
        g2 = sched.acquire_reduce(nodes[0])
        g3 = sched.acquire_map(nodes[0])
        sim.run()
        assert g1.processed and g2.processed and not g3.triggered


class TestWaveScheduling:
    def test_two_map_waves_when_slots_scarce(self):
        """More maps than slots -> maps run in waves (visible in the
        event log as staggered MAP_START times)."""
        config = BenchmarkConfig(num_pairs=50_000, num_maps=8, num_reduces=2)
        jc = JobConf(map_slots_per_node=2)
        result = run_simulated_job(config, cluster=cluster_a(2), jobconf=jc)
        starts = sorted(ev.time for ev in
                        result.events.of_kind(JobEventLog.MAP_START))
        # first wave of 4 together, second wave later
        assert starts[4] > starts[3] + 1.0

    def test_single_wave_when_slots_ample(self):
        config = BenchmarkConfig(num_pairs=50_000, num_maps=8, num_reduces=2)
        jc = JobConf(map_slots_per_node=4)
        result = run_simulated_job(config, cluster=cluster_a(2), jobconf=jc)
        starts = [ev.time for ev in result.events.of_kind(JobEventLog.MAP_START)]
        assert max(starts) - min(starts) < 1.0
