"""HTTP front-end tests: routes, status codes, keep-alive, polling.

These drive a real socket — :class:`BackgroundServer` on an ephemeral
port, ``http.client`` as the client — so the request parser, the
``asyncio.to_thread`` dispatch and the byte-verbatim warm path are all
exercised end to end. The filesystem backend is enough here: backend
parity is the core suite's job, the transport doesn't touch it.
"""

import http.client
import json
import time

import pytest

from repro.service import BackgroundServer, BenchmarkService

from tests.service.conftest import tiny_query


@pytest.fixture
def server(tmp_path):
    service = BenchmarkService(f"file:{tmp_path / 'store'}")
    with BackgroundServer(service) as running:
        yield running


@pytest.fixture
def client(server):
    conn = http.client.HTTPConnection(*server.address, timeout=30)
    yield conn
    conn.close()


def request(conn, method, target, body=None):
    """One request; returns (status, raw bytes, parsed JSON)."""
    payload = json.dumps(body) if body is not None else None
    conn.request(method, target, body=payload)
    response = conn.getresponse()
    raw = response.read()
    return response.status, raw, json.loads(raw)


class TestRoutes:
    def test_healthz(self, client):
        status, _, doc = request(client, "GET", "/healthz")
        assert status == 200
        assert doc["status"] == "ok"

    def test_cold_query_waits_to_200_then_warm_is_byte_identical(
            self, client):
        status, cold_raw, _ = request(client, "POST", "/v1/points",
                                      tiny_query(wait=True))
        assert status == 200
        status, warm_raw, _ = request(client, "POST", "/v1/points",
                                      tiny_query(wait=True))
        assert status == 200
        assert warm_raw == cold_raw

    def test_async_query_202_then_poll_to_200(self, client, server):
        status, _, ticket = request(client, "POST", "/v1/points",
                                    tiny_query())
        assert status == 202
        assert ticket["state"] in ("queued", "running")
        key = ticket["key"]
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            status, raw, doc = request(client, "GET", f"/v1/points/{key}")
            if status == 200:
                break
            assert status == 202
            time.sleep(0.02)
        assert status == 200
        assert doc["key"] == key

    def test_stats_document(self, client):
        request(client, "POST", "/v1/points", tiny_query(wait=True))
        request(client, "POST", "/v1/points", tiny_query(wait=True))
        status, _, doc = request(client, "GET", "/v1/stats?refresh=1")
        assert status == 200
        assert doc["puts"] == 1
        assert isinstance(doc["hit_rate"], float)
        assert doc["service"]["requests"] == 2

    def test_stats_hit_rate_null_before_any_lookup(self, client):
        status, _, doc = request(client, "GET", "/v1/stats")
        assert status == 200
        assert doc["hit_rate"] is None

    def test_unknown_key_404(self, client):
        status, _, doc = request(client, "GET", "/v1/points/" + "ab" * 32)
        assert status == 404
        assert "unknown point key" in doc["error"]

    def test_unknown_route_404(self, client):
        status, _, _ = request(client, "GET", "/v2/nothing")
        assert status == 404

    @pytest.mark.parametrize("method, target", [
        ("POST", "/healthz"),
        ("POST", "/v1/stats"),
        ("GET", "/v1/points"),
        ("DELETE", "/v1/points/abc"),
    ])
    def test_wrong_method_405(self, client, method, target):
        status, _, _ = request(client, method, target)
        assert status == 405

    def test_invalid_json_body_400(self, client):
        client.request("POST", "/v1/points", body="{ nope")
        response = client.getresponse()
        doc = json.loads(response.read())
        assert response.status == 400
        assert "invalid JSON" in doc["error"]

    def test_bad_query_400(self, client):
        status, _, doc = request(client, "POST", "/v1/points",
                                 {"network": "1GigE"})
        assert status == 400
        assert "shuffle_gb" in doc["error"]


class TestProtocol:
    def test_keep_alive_serves_many_requests_per_connection(self, client):
        for _ in range(5):
            status, _, _ = request(client, "GET", "/healthz")
            assert status == 200

    def test_connection_close_is_honored(self, server):
        conn = http.client.HTTPConnection(*server.address, timeout=30)
        conn.request("GET", "/healthz", headers={"Connection": "close"})
        response = conn.getresponse()
        assert response.status == 200
        assert response.headers["Connection"] == "close"
        response.read()
        conn.close()

    def test_malformed_request_line_gets_400(self, server):
        import socket

        with socket.create_connection(server.address, timeout=30) as sock:
            sock.sendall(b"WHAT\r\n\r\n")
            data = sock.recv(4096)
        assert data.startswith(b"HTTP/1.1 400 ")

    def test_content_length_and_type_headers(self, server):
        conn = http.client.HTTPConnection(*server.address, timeout=30)
        conn.request("GET", "/healthz")
        response = conn.getresponse()
        raw = response.read()
        assert int(response.headers["Content-Length"]) == len(raw)
        assert response.headers["Content-Type"] == "application/json"
        conn.close()
