"""Query parsing: vocabulary, validation and store-key parity.

The whole point of :func:`repro.service.parse_point_query` is that a
service query resolves to *exactly* the key a campaign run computes
for the same coordinates — that parity is what makes the store a
shared cache between ``repro serve`` and ``repro campaign run``.
"""

import pytest

from repro.campaign import Campaign
from repro.service import parse_point_query
from repro.store import point_key

from tests.service.conftest import TINY_POINT, tiny_query


def campaign_key(trial=0, **campaign_kwargs):
    """The key a campaign run would compute for the tiny point."""
    kwargs = dict(name="reference", benchmark=TINY_POINT["benchmark"],
                  shuffle_gbs=(TINY_POINT["shuffle_gb"],),
                  networks=(TINY_POINT["network"],),
                  slaves=TINY_POINT["slaves"],
                  params=dict(TINY_POINT["params"]),
                  trials=trial + 1)
    kwargs.update(campaign_kwargs)
    campaign = Campaign(**kwargs)
    point = campaign.points()[trial]
    return point_key(point.config, campaign.cluster_spec(),
                     jobconf=campaign.jobconf(),
                     fault_plan=campaign.fault_plan)


class TestKeyParity:
    def test_key_matches_campaign_run_key(self):
        assert parse_point_query(tiny_query()).key == campaign_key()

    def test_trial_changes_the_key(self):
        base = parse_point_query(tiny_query())
        trial1 = parse_point_query(tiny_query(trial=1))
        assert trial1.key != base.key
        assert trial1.key == campaign_key(trial=1)

    def test_runtime_changes_the_key(self):
        yarn = parse_point_query(tiny_query(runtime="yarn"))
        assert yarn.key != parse_point_query(tiny_query()).key
        assert yarn.key == campaign_key(runtime="yarn")

    def test_defaults_match_campaign_defaults(self):
        """benchmark/cluster/runtime/trial defaults mirror Campaign's."""
        explicit = parse_point_query(tiny_query(
            benchmark="MR-AVG", cluster="a", runtime="mrv1", trial=0))
        minimal = parse_point_query({
            "shuffle_gb": TINY_POINT["shuffle_gb"],
            "network": TINY_POINT["network"],
            "slaves": TINY_POINT["slaves"],
            "params": dict(TINY_POINT["params"]),
        })
        assert minimal.key == explicit.key


class TestValidation:
    @pytest.mark.parametrize("body, fragment", [
        ("not a dict", "JSON object"),
        ([1, 2], "JSON object"),
        ({"network": "1GigE"}, "shuffle_gb"),
        ({"shuffle_gb": 1.0}, "network"),
        (tiny_query(flavor="spicy"), "unknown query keys"),
        (tiny_query(shuffle_gb=0), "> 0"),
        (tiny_query(shuffle_gb="four"), "must be a number"),
        (tiny_query(trial=-1), ">= 0"),
        (tiny_query(trial=True), "integer"),
        (tiny_query(trial="two"), "integer"),
        (tiny_query(params=[1]), "params must be an object"),
        (tiny_query(fault_plan="break stuff"), "fault_plan"),
    ])
    def test_malformed_bodies_raise_value_error(self, body, fragment):
        with pytest.raises(ValueError) as excinfo:
            parse_point_query(body)
        assert fragment in str(excinfo.value)

    @pytest.mark.parametrize("overrides", [
        {"benchmark": "MR-BOGUS"},
        {"network": "carrier-pigeon"},
        {"cluster": "z"},
        {"runtime": "mrv9"},
    ])
    def test_unknown_vocabulary_raises_value_error(self, overrides):
        """Campaign's own vocabulary checks surface as ValueError."""
        with pytest.raises(ValueError):
            parse_point_query(tiny_query(**overrides))


class TestDescribe:
    def test_describe_names_the_coordinates(self):
        query = parse_point_query(tiny_query(trial=2))
        doc = query.describe()
        assert doc["benchmark"] == "MR-AVG"
        assert doc["shuffle_gb"] == pytest.approx(0.02)
        assert doc["network"] == "1GigE"
        assert doc["slaves"] == 2
        assert doc["trial"] == 2
        assert "faulty" not in doc

    def test_signature_groups_compatible_queries(self):
        a = parse_point_query(tiny_query())
        b = parse_point_query(tiny_query(shuffle_gb=0.03, trial=1))
        other = parse_point_query(tiny_query(runtime="yarn"))
        assert a.signature == b.signature
        assert a.signature != other.signature
