"""Fixtures for the service test suite.

Service tests run the full stack — query parsing, single-flight,
scheduler, campaign executor, store — against BOTH store backends via
``backend_name`` (re-exported from the store suite's conftest). The
point memo cache is process-global state, so every test starts and
ends with it cleared: a warm *memo* would otherwise mask exactly the
store behavior these tests pin down.
"""

import pytest

from repro.core.suite import clear_result_cache

from tests.store.conftest import backend_name, store_root  # noqa: F401

#: One tiny, fast point (~2 ms simulated) in query coordinates —
#: the same point the chaos tests use, one size.
TINY_POINT = {
    "benchmark": "MR-AVG",
    "shuffle_gb": 0.02,
    "network": "1GigE",
    "slaves": 2,
    "params": {"num_maps": 4, "num_reduces": 2,
               "key_size": 256, "value_size": 256},
}


def tiny_query(**overrides):
    """A fresh tiny-point query body, with overrides."""
    body = {key: (dict(value) if isinstance(value, dict) else value)
            for key, value in TINY_POINT.items()}
    body.update(overrides)
    return body


@pytest.fixture(autouse=True)
def fresh_memo():
    """Clear the global point memo around every test."""
    clear_result_cache()
    yield
    clear_result_cache()
