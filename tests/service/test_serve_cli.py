"""`repro serve`: the real CLI process, interrupted like an operator.

Mirrors the campaign chaos SIGINT test: spawn the actual CLI, wait for
the ready line, talk HTTP to it, SIGINT it, and assert the graceful-
shutdown contract — exit code 130 (parity with an interrupted
``repro campaign run``) and every completed point durable in the store.
"""

import http.client
import json
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.store import ResultStore

from tests.service.conftest import tiny_query
from tests.store.conftest import store_root

#: Child body: run the real CLI on an ephemeral port.
SERVE_CHILD = """\
import sys
from repro.core.cli import repro_main
sys.exit(repro_main(["serve", "--store", sys.argv[1], "--port", "0"]))
"""


def start_server(root):
    """Spawn `repro serve` and return (process, port) once it's ready."""
    env = dict(__import__("os").environ, PYTHONPATH="src")
    proc = subprocess.Popen(
        [sys.executable, "-u", "-c", SERVE_CHILD, root],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env, cwd="/root/repo")
    line = proc.stdout.readline()
    match = re.search(r"http://[^:]+:(\d+)", line)
    if not match:  # pragma: no cover - diagnostics only
        proc.kill()
        out, _ = proc.communicate()
        pytest.fail(f"no ready line: {line!r} + {out!r}")
    return proc, int(match.group(1))


def finish(proc, timeout=30):
    out, _ = proc.communicate(timeout=timeout)
    return proc.returncode, out


class TestServeCli:
    def test_serve_answers_then_sigint_exits_130(
            self, tmp_path, backend_name):
        root = store_root(tmp_path, backend_name)
        proc, port = start_server(root)
        try:
            conn = http.client.HTTPConnection("127.0.0.1", port,
                                              timeout=60)
            conn.request("GET", "/healthz")
            health = conn.getresponse()
            assert health.status == 200
            assert json.loads(health.read())["status"] == "ok"

            body = json.dumps(tiny_query(wait=True))
            conn.request("POST", "/v1/points", body=body)
            cold = conn.getresponse()
            assert cold.status == 200
            record = json.loads(cold.read())
            assert record["result"]["execution_time"] > 0
            conn.close()

            time.sleep(0.1)
            proc.send_signal(signal.SIGINT)
            returncode, out = finish(proc)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup
                proc.kill()
                proc.communicate()
        assert returncode == 130, out
        # The point served before the interrupt is durable.
        store = ResultStore(root)
        assert store.stats()["puts"] == 1
        assert store.verify().clean

    def test_sigterm_also_shuts_down_gracefully(self, tmp_path):
        proc, port = start_server(f"file:{tmp_path / 'store'}")
        try:
            proc.send_signal(signal.SIGTERM)
            returncode, out = finish(proc)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup
                proc.kill()
                proc.communicate()
        assert returncode == 130, out
