"""BenchmarkService contract tests (transport-independent core).

The headline acceptance check lives here: 32 concurrent identical
cold-point queries against an empty store end with store ``puts == 1``
and all 32 clients holding hex-identical job times — on both backends.
Around it: warm-hit byte-identity with the store untouched, sticky
quarantine verdicts, graceful-shutdown draining, and the small 4xx/5xx
edges.
"""

import json
import threading

import pytest

import repro.core.suite as suite_mod
from repro.campaign.executor import RetryPolicy
from repro.service import (
    CANCELLED,
    DONE,
    FAILED,
    BenchmarkService,
    parse_point_query,
)
from repro.store import ResultStore, dump_record_text

from tests.service.conftest import tiny_query
from tests.store.conftest import store_root


def payload_time_hex(response):
    """The job time in a 200 payload, as an exact hex float."""
    record = json.loads(response.payload)
    return float(record["result"]["execution_time"]).hex()


@pytest.fixture
def service(tmp_path, backend_name):
    """A started service on a fresh store of the current backend."""
    svc = BenchmarkService(store_root(tmp_path, backend_name),
                           policy=RetryPolicy(retries=0, backoff=0.0))
    svc.start()
    yield svc
    svc.stop()


class TestWarmAndCold:
    def test_cold_then_warm_byte_identical_puts_unmoved(
            self, service, tmp_path, backend_name):
        cold = service.query_point(tiny_query(wait=True))
        assert cold.status == 200 and isinstance(cold.payload, bytes)
        root = store_root(tmp_path, backend_name)
        assert ResultStore(root).stats()["puts"] == 1

        warm = service.query_point(tiny_query(wait=True))
        assert warm.status == 200
        assert warm.payload == cold.payload
        # The warm hit re-served stored bytes; nothing new was written.
        store = ResultStore(root)
        assert store.stats()["puts"] == 1
        assert service._counters["warm_hits"] == 1

        # Byte-identity with the store's own canonical serialization.
        key = parse_point_query(tiny_query()).key
        record = store.backend.read_record(key)
        assert warm.payload == dump_record_text(record).encode("utf-8")

    def test_lookup_by_key_matches_query_payload(self, service):
        posted = service.query_point(tiny_query(wait=True))
        key = parse_point_query(tiny_query()).key
        polled = service.lookup(key)
        assert polled.status == 200
        assert polled.payload == posted.payload

    def test_service_point_is_warm_for_a_campaign_run(
            self, service, tmp_path, backend_name):
        """A point the service simulated is `0 simulated` later."""
        from repro.campaign import Campaign, run_campaign
        from repro.core.suite import clear_result_cache

        assert service.query_point(tiny_query(wait=True)).status == 200
        clear_result_cache()
        campaign = Campaign(
            name="after-service", shuffle_gbs=(0.02,),
            networks=("1GigE",), slaves=2,
            params={"num_maps": 4, "num_reduces": 2,
                    "key_size": 256, "value_size": 256})
        store = ResultStore(store_root(tmp_path, backend_name))
        result = run_campaign(campaign, store=store)
        assert result.executed == 0
        assert result.from_store == 1
        assert store.stats()["puts"] == 1


class TestSingleFlight:
    def test_32_concurrent_cold_queries_simulate_once(
            self, tmp_path, backend_name):
        """ISSUE acceptance: puts == 1, 32 hex-identical job times."""
        root = store_root(tmp_path, backend_name)
        service = BenchmarkService(root)
        service.start()
        responses = [None] * 32
        barrier = threading.Barrier(len(responses))

        def client(i):
            barrier.wait()
            responses[i] = service.query_point(tiny_query(wait=True))

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(len(responses))]
        try:
            for thread in threads:
                thread.start()
        finally:
            for thread in threads:
                thread.join(timeout=60)
        service.stop()

        assert {r.status for r in responses} == {200}
        assert len({r.payload for r in responses}) == 1
        assert len({payload_time_hex(r) for r in responses}) == 1
        stats = ResultStore(root).stats()
        assert stats["puts"] == 1
        # Every request is accounted: one miss (by the executor's store
        # lookup), the rest split between coalesced joins and warm hits
        # for stragglers that arrived after resolution.
        counters = service._counters
        assert counters["requests"] == 32
        assert counters["cold_misses"] == 1
        assert (counters["coalesced"] + counters["warm_hits"]
                == len(responses) - 1)

    def test_done_ticket_leaves_the_table(self, service):
        service.query_point(tiny_query(wait=True))
        assert service.flight.in_flight() == 0
        assert service.flight.failed() == 0


class TestFailures:
    @pytest.fixture
    def broken_simulator(self, monkeypatch):
        """Every simulation raises, as if the point were chaos-killed."""
        def boom(*args, **kwargs):
            raise RuntimeError("injected simulator fault")
        monkeypatch.setattr(suite_mod, "_run_point", boom)

    def test_failed_point_answers_5xx_with_sticky_ticket(
            self, service, broken_simulator):
        response = service.query_point(tiny_query(wait=True))
        assert response.status == 500
        assert response.payload["state"] == FAILED
        assert "injected simulator fault" in response.payload["error"]
        # The verdict is sticky: re-querying must not re-simulate.
        again = service.query_point(tiny_query(wait=True))
        assert again.status == 500
        assert service.flight.failed() == 1
        assert service.scheduler.resolved[FAILED] == 1
        key = parse_point_query(tiny_query()).key
        assert service.lookup(key).status == 500
        assert service.stats()["service"]["failed_tickets"] == 1

    def test_queue_overflow_rejects_with_503(self, tmp_path, backend_name):
        """An unstarted scheduler with a 1-slot queue fills instantly."""
        service = BenchmarkService(store_root(tmp_path, backend_name),
                                   max_queue=1)
        try:
            first = service.query_point(tiny_query())
            assert first.status == 202
            second = service.query_point(tiny_query(shuffle_gb=0.03))
            assert second.status == 503
            assert second.payload["state"] == CANCELLED
            assert service._counters["rejected"] == 1
        finally:
            service.stop(drain=False, timeout=1.0)

    def test_wait_timeout_returns_the_ticket(self, tmp_path, backend_name):
        service = BenchmarkService(store_root(tmp_path, backend_name))
        try:  # scheduler never started: the ticket cannot resolve
            response = service.query_point(tiny_query(wait=0.05))
            assert response.status == 202
            assert response.payload["state"] == "queued"
            assert response.payload["key"]
        finally:
            service.stop(drain=False, timeout=1.0)

    @pytest.mark.parametrize("body, fragment", [
        ("nope", "JSON object"),
        (tiny_query(wait="soonish"), "wait"),
        (tiny_query(wait=-2), "> 0"),
        (tiny_query(network="carrier-pigeon"), "unknown interconnect"),
    ])
    def test_bad_requests_answer_400(self, service, body, fragment):
        response = service.query_point(body)
        assert response.status == 400
        assert fragment in response.payload["error"]
        assert service._counters["bad_requests"] == 1

    def test_unknown_key_lookup_is_404(self, service):
        response = service.lookup("deadbeef" * 8)
        assert response.status == 404
        assert service._counters["not_found"] == 1


class TestShutdown:
    def test_drain_finishes_queued_points(self, tmp_path, backend_name):
        root = store_root(tmp_path, backend_name)
        service = BenchmarkService(root)
        tickets = []
        for gb in (0.02, 0.03, 0.04):  # queued; scheduler not running
            response = service.query_point(tiny_query(shuffle_gb=gb))
            assert response.status == 202
            tickets.append(service.flight.get(response.payload["key"]))
        service.start()
        service.stop(drain=True, timeout=60)
        assert [t.state for t in tickets] == [DONE, DONE, DONE]
        assert service.scheduler.resolved[DONE] == 3
        store = ResultStore(root)
        assert store.stats()["puts"] == 3
        assert store.verify().clean

    def test_interrupt_keeps_completed_points_durable(
            self, tmp_path, backend_name, monkeypatch):
        """The SIGINT path: in-flight unit lands, the rest cancel."""
        started = threading.Event()
        release = threading.Event()
        real_run_point = suite_mod._run_point

        def gated_run_point(*args, **kwargs):
            started.set()
            assert release.wait(30)
            return real_run_point(*args, **kwargs)

        monkeypatch.setattr(suite_mod, "_run_point", gated_run_point)
        root = store_root(tmp_path, backend_name)
        service = BenchmarkService(root)
        service.start()
        first = service.query_point(tiny_query())
        assert first.status == 202
        assert started.wait(30)  # the worker is inside point one
        later = [service.flight.get(
            service.query_point(tiny_query(shuffle_gb=gb)).payload["key"])
            for gb in (0.03, 0.04)]

        stopper = threading.Thread(
            target=service.stop, kwargs={"drain": False})
        stopper.start()
        release.set()
        stopper.join(timeout=30)
        assert not stopper.is_alive()

        ticket = service.flight.get(first.payload["key"])
        assert ticket is None  # resolved done, dropped from the table
        assert {t.state for t in later} == {CANCELLED}
        store = ResultStore(root)
        assert store.stats()["puts"] == 1  # the in-flight unit landed
        assert store.verify().clean


class TestIntrospection:
    def test_stats_carry_store_shape_and_service_counters(self, service):
        fresh = service.stats()
        assert fresh["hit_rate"] is None  # no lookups yet: null, not 0.0
        service.query_point(tiny_query(wait=True))
        service.query_point(tiny_query(wait=True))
        stats = service.stats(refresh=True)
        for key in ("backend", "records", "puts", "hits", "misses"):
            assert key in stats
        assert stats["puts"] == 1
        assert isinstance(stats["hit_rate"], float)
        servicepart = stats["service"]
        assert servicepart["requests"] == 2
        assert servicepart["warm_hits"] == 1
        assert servicepart["cold_misses"] == 1
        assert servicepart["in_flight"] == 0
        assert servicepart["resolved"][DONE] == 1
        assert servicepart["uptime_seconds"] >= 0

    def test_warm_hits_flush_into_store_counters(
            self, service, tmp_path, backend_name):
        service.query_point(tiny_query(wait=True))
        for _ in range(5):
            assert service.query_point(tiny_query()).status == 200
        stats = service.stats(refresh=True)  # flushes pending hits
        assert stats["hits"] == 5
        # And they are durable, visible to a fresh store handle.
        assert ResultStore(
            store_root(tmp_path, backend_name)).stats()["hits"] == 5

    def test_healthz_reports_ok_when_running(self, service):
        doc = service.healthz()
        assert doc["status"] == "ok"
        assert doc["scheduler_alive"] is True
        assert doc["backend"] in ("filesystem", "sqlite")
