"""Scheduler execution-depth stats and pluggable service backends.

``BenchmarkService.stats()`` must expose how deep the cold pipeline is
(queued / running / lifetime cold units) and which execution backend
is simulating — ``local`` by default, ``pool`` when the service was
started with a ``PoolBackend`` — so operators can see a distributed
service working without scraping logs.
"""

from repro.campaign import PoolBackend
from repro.service import BenchmarkService

from tests.service.conftest import tiny_query


def test_stats_expose_scheduler_depth_local(tmp_path):
    service = BenchmarkService(str(tmp_path / "store"))
    try:
        service.start()
        response = service.query_point(tiny_query(wait=True))
        assert response.status == 200
        sched = service.stats()["service"]["scheduler"]
    finally:
        service.stop()
    assert sched["backend"] == "local"
    assert sched["queued"] == 0 and sched["running"] == 0
    assert sched["cold_units"] == 1


def test_pool_backed_service_resolves_cold_points(tmp_path):
    backend = PoolBackend(workers=1, lease=5.0)
    service = BenchmarkService(str(tmp_path / "store"),
                               execution_backend=backend)
    try:
        service.start()
        response = service.query_point(tiny_query(wait=True))
        assert response.status == 200
        sched = service.stats()["service"]["scheduler"]
        assert sched["backend"] == "pool"
        assert sched["cold_units"] == 1
        # Warm re-query: identical bytes, straight from the store.
        assert service.query_point(tiny_query(wait=True)
                                   ).payload == response.payload
    finally:
        service.stop()
        backend.close()
