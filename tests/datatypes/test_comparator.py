"""Tests for raw and deserializing comparators."""

from repro.datatypes import (
    BytesWritable,
    RawBytesComparator,
    Text,
    WritableComparator,
    compare_bytes,
)


def test_compare_bytes_semantics():
    assert compare_bytes(b"a", b"a") == 0
    assert compare_bytes(b"a", b"b") < 0
    assert compare_bytes(b"b", b"a") > 0
    assert compare_bytes(b"a", b"aa") < 0


def test_raw_comparator_sort_key():
    comp = RawBytesComparator()
    items = [b"pear", b"apple", b"fig"]
    assert sorted(items, key=comp.sort_key) == [b"apple", b"fig", b"pear"]


def test_writable_comparator_text():
    comp = WritableComparator(Text)
    a = Text("alpha").to_bytes()
    b = Text("beta").to_bytes()
    assert comp.compare(a, b) < 0
    assert comp.compare(b, a) > 0
    assert comp.compare(a, a) == 0


def test_raw_order_equals_deserialized_order_for_bytes_writable():
    """Raw payload comparison agrees with BytesWritable ordering (the
    reason Hadoop can sort without deserializing)."""
    payloads = [b"zz", b"a", b"mn", b"mnop", b"", b"a\x00b"]
    raw_sorted = sorted(payloads)
    writable_sorted = [
        w.payload for w in sorted(BytesWritable(p) for p in payloads)
    ]
    assert raw_sorted == writable_sorted
