"""Tests for the Hadoop vint/vlong codec."""

import pytest

from repro.datatypes import read_vint, read_vlong, vint_size, write_vint, write_vlong


def roundtrip(value):
    buf = bytearray()
    written = write_vlong(buf, value)
    decoded, consumed = read_vlong(bytes(buf))
    assert consumed == written == len(buf)
    return decoded


@pytest.mark.parametrize(
    "value",
    [0, 1, -1, 127, -112, 128, -113, 255, 256, 10_000, -10_000,
     2**31 - 1, -(2**31), 2**62, -(2**62), 2**63 - 1, -(2**63)],
)
def test_vlong_roundtrip(value):
    assert roundtrip(value) == value


@pytest.mark.parametrize("value", list(range(-112, 128)))
def test_single_byte_range(value):
    """Hadoop encodes [-112, 127] in exactly one byte."""
    buf = bytearray()
    assert write_vlong(buf, value) == 1


def test_128_takes_two_bytes():
    buf = bytearray()
    assert write_vlong(buf, 128) == 2


def test_known_encoding_of_300():
    """300 = 0x012C -> tag for 2 positive bytes is -114 (0x8E)."""
    buf = bytearray()
    write_vlong(buf, 300)
    assert list(buf) == [0x8E, 0x01, 0x2C]


def test_known_encoding_of_negative():
    """-300: ~(-300) = 299 = 0x012B, tag -122 (0x86)."""
    buf = bytearray()
    write_vlong(buf, -300)
    assert list(buf) == [0x86, 0x01, 0x2B]


def test_vint_range_check():
    buf = bytearray()
    with pytest.raises(OverflowError):
        write_vint(buf, 2**31)
    with pytest.raises(OverflowError):
        write_vint(buf, -(2**31) - 1)


def test_read_vint_rejects_long_values():
    buf = bytearray()
    write_vlong(buf, 2**40)
    with pytest.raises(OverflowError):
        read_vint(bytes(buf))


def test_read_past_end_raises():
    with pytest.raises(EOFError):
        read_vlong(b"")


def test_truncated_multibyte_raises():
    buf = bytearray()
    write_vlong(buf, 100_000)
    with pytest.raises(EOFError):
        read_vlong(bytes(buf[:-1]))


@pytest.mark.parametrize(
    "value", [0, 127, -112, 128, -113, 2**16, -(2**16), 2**31 - 1, 2**62]
)
def test_vint_size_matches_actual(value):
    buf = bytearray()
    written = write_vlong(buf, value)
    assert vint_size(value) == written


def test_offset_reads():
    buf = bytearray(b"\x00\x00")
    write_vlong(buf, 500)
    value, consumed = read_vlong(bytes(buf), offset=2)
    assert value == 500
    assert consumed == len(buf) - 2
