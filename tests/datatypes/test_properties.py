"""Property-based tests (hypothesis) for the datatype substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datatypes import (
    BytesWritable,
    IFileReader,
    IFileWriter,
    IntWritable,
    LongWritable,
    Text,
    read_vlong,
    record_wire_size,
    vint_size,
    write_vlong,
)

vlongs = st.integers(min_value=-(2**63), max_value=2**63 - 1)


@given(vlongs)
def test_vlong_roundtrip(value):
    buf = bytearray()
    written = write_vlong(buf, value)
    decoded, consumed = read_vlong(bytes(buf))
    assert decoded == value
    assert consumed == written == vint_size(value)


@given(vlongs, vlongs)
def test_vlong_streams_concatenate(a, b):
    """Two encoded values decode back-to-back without framing help."""
    buf = bytearray()
    write_vlong(buf, a)
    write_vlong(buf, b)
    da, ca = read_vlong(bytes(buf))
    db, _cb = read_vlong(bytes(buf), offset=ca)
    assert (da, db) == (a, b)


@given(st.binary(max_size=2048))
def test_bytes_writable_roundtrip(payload):
    data = BytesWritable(payload).to_bytes()
    decoded, consumed = BytesWritable.read(data)
    assert decoded.payload == payload
    assert consumed == len(data) == BytesWritable.wire_size(len(payload))


@given(st.text(max_size=512))
def test_text_roundtrip(value):
    data = Text(value).to_bytes()
    decoded, consumed = Text.read(data)
    assert str(decoded) == value
    assert consumed == len(data)


@given(st.text(max_size=64), st.text(max_size=64))
def test_text_order_matches_utf8_byte_order(a, b):
    """Hadoop sorts Text by raw UTF-8 bytes; our __lt__ must agree."""
    assert (Text(a) < Text(b)) == (a.encode("utf-8") < b.encode("utf-8"))


@given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
def test_int_writable_roundtrip(value):
    decoded, _ = IntWritable.read(IntWritable(value).to_bytes())
    assert decoded.value == value


@given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
def test_long_writable_roundtrip(value):
    decoded, _ = LongWritable.read(LongWritable(value).to_bytes())
    assert decoded.value == value


@settings(max_examples=25)
@given(
    st.lists(
        st.tuples(st.binary(max_size=64), st.binary(max_size=256)), max_size=50
    )
)
def test_ifile_roundtrip_preserves_all_records(pairs):
    """Record conservation through serialize/deserialize."""
    writer = IFileWriter()
    for k, v in pairs:
        writer.append(BytesWritable(k), BytesWritable(v))
    segment = writer.close()
    out = list(IFileReader(segment, BytesWritable, BytesWritable))
    assert [(k.payload, v.payload) for k, v in out] == pairs


@given(
    st.sampled_from([BytesWritable, Text]),
    st.integers(min_value=0, max_value=20_000),
    st.integers(min_value=0, max_value=20_000),
)
def test_record_wire_size_matches_real_writer(datatype, ksize, vsize):
    """Analytic size accounting equals actual serialized bytes."""
    if datatype is BytesWritable:
        key, value = BytesWritable(b"k" * ksize), BytesWritable(b"v" * vsize)
    else:
        key, value = Text("k" * ksize), Text("v" * vsize)
    writer = IFileWriter()
    appended = writer.append(key, value)
    assert appended == record_wire_size(datatype, ksize, vsize)
