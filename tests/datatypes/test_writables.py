"""Tests for Writable scalar types, BytesWritable and Text."""

import pytest

from repro.datatypes import (
    BytesWritable,
    IntWritable,
    LongWritable,
    NullWritable,
    Text,
    writable_class,
)


class TestRegistry:
    def test_lookup_by_name(self):
        assert writable_class("BytesWritable") is BytesWritable
        assert writable_class("Text") is Text
        assert writable_class("IntWritable") is IntWritable
        assert writable_class("LongWritable") is LongWritable
        assert writable_class("NullWritable") is NullWritable

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown Writable"):
            writable_class("FloatWritable")


class TestNullWritable:
    def test_singleton(self):
        assert NullWritable() is NullWritable()

    def test_zero_size(self):
        assert NullWritable().serialized_size() == 0
        assert NullWritable().to_bytes() == b""

    def test_read(self):
        value, consumed = NullWritable.read(b"anything", 3)
        assert value is NullWritable()
        assert consumed == 0


class TestIntWritable:
    def test_roundtrip(self):
        for v in (0, 1, -1, 2**31 - 1, -(2**31)):
            data = IntWritable(v).to_bytes()
            assert len(data) == 4
            decoded, consumed = IntWritable.read(data)
            assert consumed == 4 and decoded.value == v

    def test_big_endian(self):
        assert IntWritable(1).to_bytes() == b"\x00\x00\x00\x01"

    def test_range_check(self):
        with pytest.raises(OverflowError):
            IntWritable(2**31)

    def test_ordering(self):
        assert IntWritable(1) < IntWritable(2)
        assert sorted([IntWritable(3), IntWritable(1)])[0].value == 1


class TestLongWritable:
    def test_roundtrip(self):
        for v in (0, 2**63 - 1, -(2**63)):
            data = LongWritable(v).to_bytes()
            assert len(data) == 8
            decoded, _ = LongWritable.read(data)
            assert decoded.value == v

    def test_range_check(self):
        with pytest.raises(OverflowError):
            LongWritable(2**63)


class TestBytesWritable:
    def test_roundtrip(self):
        payload = bytes(range(50))
        data = BytesWritable(payload).to_bytes()
        assert len(data) == 54
        decoded, consumed = BytesWritable.read(data)
        assert consumed == 54 and decoded.payload == payload

    def test_wire_size(self):
        assert BytesWritable.wire_size(100) == 104
        assert BytesWritable(b"x" * 100).serialized_size() == 104

    def test_wire_size_negative_raises(self):
        with pytest.raises(ValueError):
            BytesWritable.wire_size(-1)

    def test_empty(self):
        data = BytesWritable(b"").to_bytes()
        assert data == b"\x00\x00\x00\x00"

    def test_type_check(self):
        with pytest.raises(TypeError):
            BytesWritable("a string")

    def test_truncated_raises(self):
        data = BytesWritable(b"hello").to_bytes()
        with pytest.raises(EOFError):
            BytesWritable.read(data[:-2])

    def test_ordering_is_bytewise(self):
        assert BytesWritable(b"a") < BytesWritable(b"b")
        assert BytesWritable(b"a") < BytesWritable(b"aa")

    def test_len_and_eq(self):
        assert len(BytesWritable(b"abc")) == 3
        assert BytesWritable(b"abc") == BytesWritable(b"abc")
        assert BytesWritable(b"abc") != BytesWritable(b"abd")


class TestText:
    def test_roundtrip_ascii(self):
        data = Text("hello").to_bytes()
        assert len(data) == 6  # 1-byte vint + 5 payload bytes
        decoded, consumed = Text.read(data)
        assert consumed == 6 and str(decoded) == "hello"

    def test_roundtrip_unicode(self):
        original = "héllo wörld ☃"
        decoded, _ = Text.read(Text(original).to_bytes())
        assert str(decoded) == original

    def test_from_bytes_validates_utf8(self):
        with pytest.raises(UnicodeDecodeError):
            Text(b"\xff\xfe")

    def test_wire_size_small(self):
        # 100-byte payload: 1-byte vint prefix
        assert Text.wire_size(100) == 101

    def test_wire_size_large(self):
        # 10 KB payload: vint(10000) needs 3 bytes (tag + 2)
        assert Text.wire_size(10_000) == 10_003

    def test_text_framing_differs_from_bytes_writable(self):
        """The data-type experiment's premise: same payload, different
        on-wire size."""
        assert Text.wire_size(1000) != BytesWritable.wire_size(1000)

    def test_ordering_is_utf8_bytewise(self):
        assert Text("a") < Text("b")
        assert sorted([Text("pear"), Text("apple")])[0] == Text("apple")

    def test_type_check(self):
        with pytest.raises(TypeError):
            Text(42)

    def test_truncated_raises(self):
        with pytest.raises(EOFError):
            Text.read(Text("hello world").to_bytes()[:-3])
