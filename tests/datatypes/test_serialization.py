"""Tests for IFile framing and wire-size accounting."""

import pytest

from repro.datatypes import (
    BytesWritable,
    IFileReader,
    IFileWriter,
    IntWritable,
    Text,
    record_wire_size,
)


class TestIFile:
    def test_roundtrip_bytes_writable(self):
        writer = IFileWriter()
        records = [
            (BytesWritable(b"k1"), BytesWritable(b"v1" * 10)),
            (BytesWritable(b"k2"), BytesWritable(b"")),
        ]
        for k, v in records:
            writer.append(k, v)
        segment = writer.close()
        out = list(IFileReader(segment, BytesWritable, BytesWritable))
        assert out == records

    def test_roundtrip_text(self):
        writer = IFileWriter()
        writer.append(Text("key"), Text("value with spaces"))
        segment = writer.close()
        reader = IFileReader(segment, Text, Text)
        key, value = next(reader)
        assert str(key) == "key" and str(value) == "value with spaces"
        with pytest.raises(StopIteration):
            next(reader)

    def test_mixed_types(self):
        writer = IFileWriter()
        writer.append(IntWritable(7), Text("seven"))
        segment = writer.close()
        key, value = next(IFileReader(segment, IntWritable, Text))
        assert key.value == 7 and str(value) == "seven"

    def test_append_after_close_raises(self):
        writer = IFileWriter()
        writer.close()
        with pytest.raises(ValueError):
            writer.append(Text("a"), Text("b"))

    def test_close_is_idempotent(self):
        writer = IFileWriter()
        writer.append(Text("a"), Text("b"))
        assert writer.close() == writer.close()

    def test_record_count(self):
        writer = IFileWriter()
        for i in range(5):
            writer.append(IntWritable(i), IntWritable(i * i))
        segment = writer.close()
        reader = IFileReader(segment, IntWritable, IntWritable)
        assert len(list(reader)) == 5
        assert reader.records_read == 5
        assert writer.records_written == 5

    def test_empty_segment(self):
        segment = IFileWriter().close()
        assert list(IFileReader(segment, Text, Text)) == []

    def test_corrupt_eof_raises(self):
        writer = IFileWriter()
        segment = bytearray(writer.close())
        segment[-1] = 0x05  # clobber second EOF marker
        with pytest.raises(ValueError, match="corrupt IFile"):
            list(IFileReader(bytes(segment), Text, Text))


class TestRecordWireSize:
    def test_bytes_writable_record(self):
        """1 KB key + 1 KB value as BytesWritable:
        vint(1028)=3, vint(1028)=3, 1028, 1028."""
        assert record_wire_size(BytesWritable, 1024, 1024) == 3 + 3 + 1028 + 1028

    def test_text_record(self):
        """100 B key + 100 B value as Text: vint(101)=1... payload 101 each,
        record headers vint(101)=1 each."""
        assert record_wire_size(Text, 100, 100) == 1 + 1 + 101 + 101

    def test_matches_actual_serialization(self):
        """Accounting must agree byte-for-byte with the real writer."""
        for datatype, key, value in [
            (BytesWritable, BytesWritable(b"x" * 37), BytesWritable(b"y" * 512)),
            (Text, Text("a" * 37), Text("b" * 512)),
        ]:
            writer = IFileWriter()
            appended = writer.append(key, value)
            assert appended == record_wire_size(datatype, 37, 512)

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            record_wire_size(IntWritable, 4, 4)

    def test_type_overhead_ordering(self):
        """For equal payloads <= 127B framing: Text < BytesWritable (vint
        beats fixed 4-byte header)."""
        assert record_wire_size(Text, 100, 100) < record_wire_size(
            BytesWritable, 100, 100
        )
