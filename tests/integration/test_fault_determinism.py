"""Fault-injection determinism at the suite level.

Two guarantees the tentpole promises:

* **No-op discipline** — passing an *empty* ``FaultPlan`` must be
  bit-identical to passing no plan at all, including on the pinned
  golden points (the injector is never even constructed).
* **Seeded reproducibility** — a non-trivial plan produces identical
  times and resilience metrics run-over-run, and identically on a
  serial (``jobs=1``) vs a process-pool (``jobs=4``) sweep, which
  also proves the plan survives pickling to worker processes.
"""

import json
from pathlib import Path

import pytest

from repro.core.config import BenchmarkConfig
from repro.core.suite import MicroBenchmarkSuite, clear_result_cache
from repro.faults import FaultPlan, NodeCrash, SlowNode
from repro.hadoop.cluster import cluster_a
from repro.hadoop.job import JobConf
from repro.hadoop.simulation import run_simulated_job

GOLDEN_PATH = Path(__file__).parent.parent / "data" / "golden_times.json"

with GOLDEN_PATH.open() as _handle:
    GOLDEN = json.load(_handle)


def _golden_config(point):
    return BenchmarkConfig.from_shuffle_size(
        point["shuffle_gb"] * 1e9,
        pattern=point["pattern"],
        network=point["network"],
        num_maps=GOLDEN["num_maps"],
        num_reduces=GOLDEN["num_reduces"],
        key_size=GOLDEN["key_size"],
        value_size=GOLDEN["value_size"],
    )


@pytest.mark.parametrize(
    "point",
    # One point per framework x pattern at the smallest size keeps the
    # double-run pass fast; the full 40-point sweep is covered (without
    # a plan) by test_golden_times.py.
    [p for p in GOLDEN["points"]
     if p["shuffle_gb"] == 1.0 and p["network"] in ("1GigE", "RDMA-FDR")],
    ids=lambda p: f"{p['version']}-{p['network']}-{p['pattern']}",
)
def test_empty_plan_matches_golden_hex(point):
    config = _golden_config(point)
    result = run_simulated_job(
        config,
        cluster=cluster_a(2),
        jobconf=JobConf(version=point["version"]),
        fault_plan=FaultPlan(),
    )
    assert result.execution_time.hex() == point["execution_time_hex"]
    assert result.resilience is None


PLAN = FaultPlan(
    task_failure_probability=0.1,
    node_crashes=(NodeCrash("slave1", at_time=5.0),),
    slow_nodes=(SlowNode("slave0", cpu_factor=1.5),),
)


def _sweep(jobs):
    clear_result_cache()
    suite = MicroBenchmarkSuite(cluster=cluster_a(2),
                                jobconf=JobConf(max_task_attempts=8),
                                fault_plan=PLAN)
    sweep = suite.sweep("MR-AVG", [0.25, 0.5], ["1GigE", "ipoib-qdr"],
                        jobs=jobs, num_maps=8, num_reduces=4)
    clear_result_cache()
    return sweep


def test_seeded_plan_identical_serial_vs_pool():
    serial = _sweep(jobs=1)
    pooled = _sweep(jobs=4)
    assert len(serial.rows) == len(pooled.rows) == 4
    for a, b in zip(serial.rows, pooled.rows):
        assert a.execution_time.hex() == b.execution_time.hex()
        assert (a.result.resilience.summary()
                == b.result.resilience.summary())
        assert a.result.resilience is not None


def test_seeded_plan_identical_run_over_run():
    a, b = _sweep(jobs=1), _sweep(jobs=1)
    for ra, rb in zip(a.rows, b.rows):
        assert ra.execution_time.hex() == rb.execution_time.hex()


def test_plan_participates_in_memo_cache_key():
    """Same config with different plans must not collide in the memo
    cache: a faulty run may never be served from a healthy run's
    entry (or vice versa)."""
    clear_result_cache()
    suite = MicroBenchmarkSuite(cluster=cluster_a(2))
    config = BenchmarkConfig(num_pairs=100_000, num_maps=8, num_reduces=4,
                             network="ipoib-qdr")
    healthy = suite.run_config(config)
    slowed = suite.run_config(config, fault_plan=FaultPlan(
        slow_nodes=(SlowNode("slave1", cpu_factor=4.0),)))
    healthy_again = suite.run_config(config)
    clear_result_cache()
    assert slowed.execution_time > healthy.execution_time
    assert healthy_again.execution_time.hex() == healthy.execution_time.hex()
    assert healthy_again.resilience is None
    assert slowed.resilience is not None
