"""Cross-module integration tests: the whole stack, end to end."""

import numpy as np
import pytest

from repro import (
    BenchmarkConfig,
    JobConf,
    MicroBenchmarkSuite,
    cluster_a,
    cluster_b,
    run_simulated_job,
)
from repro.core import compute_shuffle_matrix
from repro.engine import LocalJobRunner


SMALL = dict(num_maps=4, num_reduces=4, key_size=64, value_size=192)


class TestFunctionalVsSimulated:
    """The functional engine and the simulator must agree on *what*
    moves; only the *when* is simulated."""

    @pytest.mark.parametrize("pattern", ["avg", "rand", "skew", "zipf"])
    def test_shuffle_matrices_agree(self, pattern):
        config = BenchmarkConfig(pattern=pattern, num_pairs=4000, **SMALL)
        functional = LocalJobRunner(config).run()
        simulated = run_simulated_job(config, cluster=cluster_a(2))
        assert np.array_equal(
            functional.shuffle_records, simulated.matrix.records
        )

    def test_reducer_record_counts_agree(self):
        config = BenchmarkConfig(pattern="skew", num_pairs=4000, **SMALL)
        functional = LocalJobRunner(config).run()
        simulated = run_simulated_job(config, cluster=cluster_a(2))
        sim_records = sorted(s.records for s in simulated.reduce_stats)
        fun_records = sorted(functional.reduce_input_records)
        assert sim_records == fun_records


class TestCrossNetworkInvariants:
    @pytest.mark.parametrize("pattern", ["avg", "rand", "skew"])
    def test_network_ordering_holds_for_every_pattern(self, pattern):
        config = BenchmarkConfig.from_shuffle_size(
            2e9, pattern=pattern, **SMALL)
        times = {}
        for net in ("1GigE", "10GigE", "ipoib-qdr", "ipoib-fdr"):
            c = BenchmarkConfig.from_shuffle_size(
                2e9, pattern=pattern, network=net, **SMALL)
            times[net] = run_simulated_job(c, cluster=cluster_a(2)).execution_time
        assert times["1GigE"] > times["10GigE"] > times["ipoib-qdr"]
        assert times["ipoib-qdr"] >= times["ipoib-fdr"] * 0.99

    def test_identical_workload_identical_matrix_across_networks(self):
        """Changing the network must not change what is shuffled."""
        a = BenchmarkConfig.from_shuffle_size(1e9, network="1GigE", **SMALL)
        b = BenchmarkConfig.from_shuffle_size(1e9, network="rdma", **SMALL)
        ra = run_simulated_job(a, cluster=cluster_b(2))
        rb = run_simulated_job(b, cluster=cluster_b(2))
        assert np.array_equal(ra.matrix.records, rb.matrix.records)


class TestFrameworkInvariants:
    def test_mrv1_and_yarn_same_shuffle_different_schedule(self):
        config = BenchmarkConfig(num_pairs=200_000, **SMALL)
        v1 = run_simulated_job(config, cluster=cluster_a(2))
        v2 = run_simulated_job(config, cluster=cluster_a(2),
                               jobconf=JobConf(version="yarn"))
        assert np.array_equal(v1.matrix.records, v2.matrix.records)
        assert v1.execution_time != v2.execution_time  # different overheads

    def test_scaling_out_helps(self):
        """More slaves, same work -> faster job."""
        config = BenchmarkConfig.from_shuffle_size(
            4e9, num_maps=8, num_reduces=8, key_size=512, value_size=512)
        t2 = run_simulated_job(config, cluster=cluster_a(2)).execution_time
        t4 = run_simulated_job(config, cluster=cluster_a(4)).execution_time
        assert t4 < t2

    def test_cluster_b_faster_nodes_beat_cluster_a(self):
        """Stampede nodes (16 cores) outrun Westmere (8) per node."""
        config = BenchmarkConfig.from_shuffle_size(
            2e9, network="ipoib-fdr", **SMALL)
        ta = run_simulated_job(config, cluster=cluster_a(2)).execution_time
        tb = run_simulated_job(config, cluster=cluster_b(2)).execution_time
        assert tb < ta

    def test_full_determinism_across_suite(self):
        suite = MicroBenchmarkSuite(cluster=cluster_a(2))
        a = suite.sweep("MR-SKEW", [0.5], ["1GigE", "rdma"], **SMALL)
        b = suite.sweep("MR-SKEW", [0.5], ["1GigE", "rdma"], **SMALL)
        for ra, rb in zip(a.rows, b.rows):
            assert ra.execution_time == rb.execution_time


class TestExtensionInterplay:
    def test_compression_plus_combiner_compose(self):
        config = BenchmarkConfig(num_pairs=300_000, network="1GigE", **SMALL)
        base = run_simulated_job(config, cluster=cluster_a(2))
        both = run_simulated_job(
            config, cluster=cluster_a(2),
            jobconf=JobConf(compress_map_output=True, combiner_reduction=0.5),
        )
        fetched_base = sum(s.bytes_fetched for s in base.reduce_stats)
        fetched_both = sum(s.bytes_fetched for s in both.reduce_stats)
        assert fetched_both == pytest.approx(
            fetched_base * 0.5 * 0.45, rel=0.02)

    def test_failures_with_yarn_and_compression(self):
        """The whole option surface composes without deadlock."""
        config = BenchmarkConfig(num_pairs=100_000, **SMALL)
        jc = JobConf(version="yarn", compress_map_output=True,
                     combiner_reduction=0.5,
                     task_failure_probability=0.2, max_task_attempts=8,
                     speculative_execution=True)
        result = run_simulated_job(config, cluster=cluster_a(2), jobconf=jc)
        assert result.execution_time > 0
        assert sum(s.records for s in result.reduce_stats) == pytest.approx(
            config.num_pairs * 0.5, rel=0.02)

    def test_monitor_with_rdma(self):
        config = BenchmarkConfig.from_shuffle_size(
            2e9, network="rdma", **SMALL)
        result = run_simulated_job(config, cluster=cluster_b(2),
                                   monitor_interval=0.5)
        assert result.monitor.peak("net_rx_mb_s") > 0


class TestEventLogInvariants:
    def test_phase_ordering(self):
        from repro.hadoop import JobEventLog

        config = BenchmarkConfig(num_pairs=100_000, **SMALL)
        result = run_simulated_job(config, cluster=cluster_a(2))
        log = result.events
        assert log.first(JobEventLog.MAP_START).time <= (
            log.first(JobEventLog.MAP_FINISH).time
        )
        assert log.first(JobEventLog.SLOWSTART).time <= (
            log.first(JobEventLog.REDUCE_START).time
        )
        assert log.last(JobEventLog.REDUCE_FINISH).time <= (
            log.last(JobEventLog.JOB_FINISH).time
        )

    def test_times_monotone(self):
        config = BenchmarkConfig(num_pairs=50_000, **SMALL)
        result = run_simulated_job(config, cluster=cluster_a(2))
        times = [ev.time for ev in result.events]
        assert times == sorted(times)
