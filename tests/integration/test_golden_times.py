"""Golden bit-identity: 40 pinned job times through the Runtime refactor.

``tests/data/golden_times.json`` pins ``execution_time`` for 2
frameworks x 5 networks x 2 patterns x 2 shuffle sizes as ``float.hex``
strings, captured before the Runtime/trace refactor. These tests assert
the simulation still reproduces every one of them bit-for-bit — with
tracing disabled AND enabled (tracing must not perturb the simulation).
"""

import json
from pathlib import Path

import pytest

from repro.core.config import BenchmarkConfig
from repro.hadoop.cluster import cluster_a
from repro.hadoop.job import JobConf
from repro.hadoop.simulation import run_simulated_job
from repro.sim.trace import Tracer

GOLDEN_PATH = Path(__file__).parent.parent / "data" / "golden_times.json"

with GOLDEN_PATH.open() as _handle:
    GOLDEN = json.load(_handle)

POINTS = GOLDEN["points"]

assert len(POINTS) == 40, "golden file must pin exactly 40 points"


def _point_id(point):
    return (f"{point['version']}-{point['network']}-{point['pattern']}"
            f"-{point['shuffle_gb']}gb")


def _run(point, tracer=None):
    config = BenchmarkConfig.from_shuffle_size(
        point["shuffle_gb"] * 1e9,
        pattern=point["pattern"],
        network=point["network"],
        num_maps=GOLDEN["num_maps"],
        num_reduces=GOLDEN["num_reduces"],
        key_size=GOLDEN["key_size"],
        value_size=GOLDEN["value_size"],
    )
    return run_simulated_job(
        config,
        cluster=cluster_a(2),
        jobconf=JobConf(version=point["version"]),
        tracer=tracer,
    )


@pytest.mark.parametrize("point", POINTS, ids=_point_id)
def test_golden_time_hex_exact(point):
    result = _run(point)
    assert result.execution_time.hex() == point["execution_time_hex"]


@pytest.mark.parametrize(
    "point",
    # Tracing must be a pure observer on every framework/network/pattern
    # axis; one size per combination keeps the traced pass fast.
    [p for p in POINTS if p["shuffle_gb"] == 1.0],
    ids=_point_id,
)
def test_tracing_is_bit_identical(point):
    untraced = _run(point)
    traced = _run(point, tracer=Tracer())
    assert traced.execution_time.hex() == untraced.execution_time.hex()
    assert traced.execution_time.hex() == point["execution_time_hex"]
    assert len(traced.trace) > 0
    # The stats-derived phase decomposition must agree between runs too.
    assert (traced.phase_breakdown().totals()
            == untraced.phase_breakdown().totals())
