"""Batch scheduler tests: equivalence classes, parity, robustness.

The batch path (``repro.campaign.batch`` + the executor's grouped
units) promises results indistinguishable from the strict per-point
loop: hex-exact simulated times, byte-identical store records, and the
same retry/timeout/quarantine semantics per point. These tests pin
that contract against the 40 golden points, trial-heavy sweeps, the
chaos hooks, and the CLI surface (``--profile``, ``store stats``).
"""

import json
from pathlib import Path

import pytest

from repro.campaign import Campaign, RetryPolicy, run_campaign
from repro.campaign.batch import plan_batches
from repro.campaign.executor import (
    ENV_CHAOS_ATTEMPTS,
    ENV_CHAOS_CRASH,
    ENV_CHAOS_HANG,
    ENV_CHAOS_HANG_SECS,
    STATUS_FAILED,
    STATUS_OK,
    CampaignExecutor,
)
from repro.core.config import BenchmarkConfig
from repro.core.suite import MicroBenchmarkSuite, clear_result_cache
from repro.faults import FaultPlan
from repro.hadoop.cluster import cluster_a
from repro.hadoop.job import JobConf
from repro.sim.trace import Tracer
from repro.store import ResultStore

GOLDEN_PATH = Path(__file__).parent.parent / "data" / "golden_times.json"

with GOLDEN_PATH.open() as _handle:
    GOLDEN = json.load(_handle)

POINTS = GOLDEN["points"]

SMALL = {"num_maps": 4, "num_reduces": 2, "key_size": 256,
         "value_size": 256}

#: Trial-heavy MR-AVG sweep: 2 sizes x 1 network x 5 trials = 10
#: points in exactly 2 equivalence classes (MR-AVG is seed-free).
TRIALS10 = dict(
    name="avg-trials",
    benchmark="MR-AVG",
    shuffle_gbs=(0.02, 0.04),
    networks=("1GigE",),
    trials=5,
    slaves=2,
    params=dict(SMALL),
)


@pytest.fixture(autouse=True)
def clean_slate(monkeypatch):
    clear_result_cache()
    for var in (ENV_CHAOS_CRASH, ENV_CHAOS_HANG, ENV_CHAOS_HANG_SECS,
                ENV_CHAOS_ATTEMPTS):
        monkeypatch.delenv(var, raising=False)
    yield
    clear_result_cache()


def _golden_config(point):
    return BenchmarkConfig.from_shuffle_size(
        point["shuffle_gb"] * 1e9,
        pattern=point["pattern"],
        network=point["network"],
        num_maps=GOLDEN["num_maps"],
        num_reduces=GOLDEN["num_reduces"],
        key_size=GOLDEN["key_size"],
        value_size=GOLDEN["value_size"],
    )


def _golden_suite(version, fault_plan=None):
    return MicroBenchmarkSuite(cluster=cluster_a(2),
                               jobconf=JobConf(version=version),
                               fault_plan=fault_plan)


def _suite_for(campaign, store=None):
    return MicroBenchmarkSuite(cluster=campaign.cluster_spec(),
                               jobconf=campaign.jobconf(),
                               store=store)


def _object_tree(root):
    """Relative path -> raw bytes of every record under a store."""
    objects = Path(root) / "objects"
    return {
        path.relative_to(objects).as_posix(): path.read_bytes()
        for path in sorted(objects.glob("*/*.json"))
    }


class FlakySuite:
    """Wrap a suite so simulate_point fails the first N calls per key."""

    def __init__(self, suite, failures, exc=RuntimeError("injected")):
        self._suite = suite
        self._budget = dict(failures)
        self._exc = exc

    def __getattr__(self, name):
        return getattr(self._suite, name)

    def simulate_point(self, config):
        key = self._suite.store_key(config)
        if self._budget.get(key, 0) > 0:
            self._budget[key] -= 1
            raise self._exc
        return self._suite.simulate_point(config)


class TestGoldenIdentity:
    """The batch path must reproduce all 40 pinned times bit-for-bit."""

    @pytest.mark.parametrize(
        "version", sorted({p["version"] for p in POINTS}))
    def test_batch_reproduces_golden_times(self, version):
        points = [p for p in POINTS if p["version"] == version]
        configs = [_golden_config(p) for p in points]
        report = CampaignExecutor(
            _golden_suite(version), batch=True).execute(configs)
        assert report.batched and report.executed == len(points)
        for point, outcome in zip(points, report.outcomes):
            assert (outcome.result.execution_time.hex()
                    == point["execution_time_hex"])

    @pytest.mark.parametrize(
        "version", sorted({p["version"] for p in POINTS}))
    def test_batch_with_tracer_is_golden(self, version):
        """A harness tracer must not perturb batched simulations."""
        points = [p for p in POINTS
                  if p["version"] == version and p["shuffle_gb"] == 1.0]
        configs = [_golden_config(p) for p in points]
        tracer = Tracer()
        report = CampaignExecutor(
            _golden_suite(version), batch=True,
            tracer=tracer).execute(configs)
        for point, outcome in zip(points, report.outcomes):
            assert (outcome.result.execution_time.hex()
                    == point["execution_time_hex"])
        assert any(ev.name == "batch-plan" for ev in tracer.events)

    @pytest.mark.parametrize(
        "version", sorted({p["version"] for p in POINTS}))
    def test_batch_with_noop_fault_plan_is_golden(self, version):
        """An empty FaultPlan keeps batched runs bit-identical."""
        points = [p for p in POINTS
                  if p["version"] == version and p["shuffle_gb"] == 1.0]
        configs = [_golden_config(p) for p in points]
        report = CampaignExecutor(
            _golden_suite(version, fault_plan=FaultPlan()),
            batch=True).execute(configs)
        for point, outcome in zip(points, report.outcomes):
            assert (outcome.result.execution_time.hex()
                    == point["execution_time_hex"])


class TestLoopParity:
    # Stores are pinned to the filesystem backend: these tests compare
    # objects/ trees byte-for-byte, which only exists in that layout
    # (and must not be redirected by $REPRO_STORE_BACKEND=sqlite CI
    # legs). Cross-backend parity has its own suite in tests/store.
    def test_trials_collapse_with_byte_identical_store(self, tmp_path):
        campaign = Campaign(**TRIALS10)
        loop = run_campaign(campaign,
                            store=ResultStore(tmp_path / "loop", backend="filesystem"),
                            batch=False)
        clear_result_cache()
        batch = run_campaign(campaign,
                             store=ResultStore(tmp_path / "batch", backend="filesystem"),
                             batch=True)
        assert loop.completed and batch.completed
        assert loop.executed == batch.executed == 10
        assert not loop.batched and batch.batched
        assert batch.unique_simulations == 2
        assert ([o.result.execution_time.hex() for o in loop.outcomes]
                == [o.result.execution_time.hex() for o in batch.outcomes])
        loop_tree = _object_tree(tmp_path / "loop")
        batch_tree = _object_tree(tmp_path / "batch")
        assert len(loop_tree) == 10
        assert loop_tree == batch_tree
        counters = ("puts", "hits", "misses")
        loop_stats = ResultStore(tmp_path / "loop", backend="filesystem").stats()
        batch_stats = ResultStore(tmp_path / "batch", backend="filesystem").stats()
        assert ({k: loop_stats[k] for k in counters}
                == {k: batch_stats[k] for k in counters})

    def test_rand_trials_do_not_collapse(self, tmp_path):
        """MR-RAND matrices are seed-dependent: every trial is unique."""
        campaign = Campaign(**dict(TRIALS10, name="rand-trials",
                                   benchmark="MR-RAND",
                                   shuffle_gbs=(0.02,), trials=3))
        result = run_campaign(campaign,
                              store=ResultStore(tmp_path / "store", backend="filesystem"),
                              batch=True)
        assert result.completed and result.executed == 3
        assert result.unique_simulations == 3

    def test_jobs_4_batch_matches_jobs_1(self, tmp_path):
        campaign = Campaign(**TRIALS10)
        serial = run_campaign(campaign,
                              store=ResultStore(tmp_path / "j1", backend="filesystem"),
                              batch=True, jobs=1)
        clear_result_cache()
        parallel = run_campaign(campaign,
                                store=ResultStore(tmp_path / "j4", backend="filesystem"),
                                batch=True, jobs=4)
        assert serial.completed and parallel.completed
        assert serial.executed == parallel.executed == 10
        assert (serial.unique_simulations
                == parallel.unique_simulations == 2)
        assert _object_tree(tmp_path / "j1") == _object_tree(tmp_path / "j4")
        assert (ResultStore(tmp_path / "j1", backend="filesystem").stats()["puts"]
                == ResultStore(tmp_path / "j4", backend="filesystem").stats()["puts"] == 10)


class TestResidueSignatures:
    def test_armed_failure_coins_keep_the_seed(self):
        """Per-trial seeds only matter once failure coins are armed."""
        campaign = Campaign(**dict(TRIALS10, shuffle_gbs=(0.02,),
                                   trials=3))
        configs = [p.config for p in campaign.points()]
        healthy = _suite_for(campaign)
        assert plan_batches(healthy, configs, range(3)).unique == 1
        armed = MicroBenchmarkSuite(
            cluster=campaign.cluster_spec(),
            jobconf=JobConf(version=campaign.runtime,
                            task_failure_probability=0.25))
        assert plan_batches(armed, configs, range(3)).unique == 3

    def test_fault_plans_gate_on_noop(self):
        campaign = Campaign(**dict(TRIALS10, shuffle_gbs=(0.02,),
                                   trials=3))
        configs = [p.config for p in campaign.points()]
        noop = MicroBenchmarkSuite(cluster=campaign.cluster_spec(),
                                   jobconf=campaign.jobconf(),
                                   fault_plan=FaultPlan())
        assert plan_batches(noop, configs, range(3)).unique == 1
        active = MicroBenchmarkSuite(
            cluster=campaign.cluster_spec(),
            jobconf=campaign.jobconf(),
            fault_plan=FaultPlan(fetch_failure_probability=0.1))
        assert plan_batches(active, configs, range(3)).unique == 3

    def test_network_aliases_share_a_class(self):
        campaign = Campaign(**dict(
            TRIALS10, shuffle_gbs=(0.02,), trials=1,
            networks=("ipoib-qdr", "IPoIB-QDR(32Gbps)")))
        configs = [p.config for p in campaign.points()]
        assert plan_batches(_suite_for(campaign),
                            configs, range(2)).unique == 1


class TestRobustnessComposition:
    """PR5 semantics must survive the batch path unchanged."""

    def test_flaky_representative_retries_whole_group_ok(self, tmp_path):
        campaign = Campaign(**dict(TRIALS10, shuffle_gbs=(0.02,),
                                   trials=3))
        suite = _suite_for(campaign, ResultStore(tmp_path / "store", backend="filesystem"))
        configs = [p.config for p in campaign.points()]
        flaky = FlakySuite(suite, {suite.store_key(configs[0]): 1})
        report = CampaignExecutor(
            flaky, policy=RetryPolicy(retries=1, backoff=0.0),
            isolate=False, batch=True).execute(configs)
        assert report.executed == 3 and report.failed == 0
        assert report.unique_simulations == 1
        assert all(o.status == STATUS_OK and o.attempts == 2
                   for o in report.outcomes)

    def test_exhausted_group_quarantines_every_member(self, tmp_path):
        store = ResultStore(tmp_path / "store", backend="filesystem")
        campaign = Campaign(**dict(TRIALS10, shuffle_gbs=(0.02,),
                                   trials=3))
        suite = _suite_for(campaign, store)
        configs = [p.config for p in campaign.points()]
        flaky = FlakySuite(suite, {suite.store_key(configs[0]): 99})
        report = CampaignExecutor(
            flaky, policy=RetryPolicy(retries=1, backoff=0.0),
            isolate=False, batch=True, campaign="grp").execute(configs)
        assert report.failed == 3 and report.executed == 0
        assert all(o.status == STATUS_FAILED and o.attempts == 2
                   for o in report.outcomes)
        assert set(store.quarantine()) == {o.key for o in report.outcomes}

    def test_crashed_group_quarantines_then_resume_fills_gap(
            self, tmp_path, monkeypatch):
        """A worker SIGKILL'd mid-batch takes down only its group, and
        resume rebuilds the gap byte-identically to a clean run."""
        campaign = Campaign(**dict(TRIALS10, name="chaos-batch",
                                   trials=3))
        clean = run_campaign(campaign,
                             store=ResultStore(tmp_path / "clean", backend="filesystem"),
                             batch=True)
        assert clean.completed and clean.unique_simulations == 2
        clear_result_cache()

        configs = [p.config for p in campaign.points()]
        plan = plan_batches(_suite_for(campaign), configs,
                            range(len(configs)))
        victim = plan.groups[1]
        monkeypatch.setenv(ENV_CHAOS_CRASH, str(victim.representative))
        monkeypatch.setenv(ENV_CHAOS_ATTEMPTS, "99")
        store = ResultStore(tmp_path / "store", backend="filesystem")
        result = run_campaign(campaign, store=store, batch=True,
                              policy=RetryPolicy(retries=1, backoff=0.0))
        assert result.failed == len(victim.members)
        assert result.executed == len(configs) - len(victim.members)
        crashed_keys = {result.outcomes[i].key for i in victim.members}
        assert set(store.quarantine()) == crashed_keys
        assert store.verify().clean  # survivors landed whole

        monkeypatch.delenv(ENV_CHAOS_CRASH)
        monkeypatch.delenv(ENV_CHAOS_ATTEMPTS)
        clear_result_cache()
        store.quarantine_clear()
        resumed = run_campaign(campaign, store=store, batch=True)
        assert resumed.completed
        assert resumed.executed == len(victim.members)
        assert resumed.unique_simulations == 1
        assert (_object_tree(tmp_path / "store")
                == _object_tree(tmp_path / "clean"))


class TestProfileSurface:
    def test_profile_in_result_and_checkpoint(self, tmp_path):
        store = ResultStore(tmp_path / "store", backend="filesystem")
        campaign = Campaign(**TRIALS10)
        result = run_campaign(campaign, store=store, batch=True)
        for stage in ("expand", "store-lookup", "shared-setup",
                      "simulate", "record"):
            assert result.profile.get(stage, -1.0) >= 0.0
        assert result.batched is True
        assert result.unique_simulations == 2
        checkpoint = store.read_checkpoint(campaign.name)
        assert checkpoint["batched"] is True
        assert checkpoint["unique_simulations"] == 2
        assert {"store-lookup", "simulate"} <= set(checkpoint["profile"])

    def test_cli_profile_prints_stage_breakdown(self, tmp_path, capsys):
        from repro.core.cli import repro_main

        spec = tmp_path / "campaign.json"
        spec.write_text(json.dumps(Campaign(**TRIALS10).to_dict()))
        rc = repro_main(["campaign", "run", str(spec),
                         "--store", str(tmp_path / "store"),
                         "--profile", "--quiet"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "stage breakdown:" in out
        for stage in ("expand", "store-lookup", "simulate", "record"):
            assert stage in out
        assert "batch plan: 10 cold point(s) -> 2 unique simulation(s)" in out

    def test_cli_store_stats_reports_hit_rate(self, tmp_path, capsys):
        from repro.core.cli import repro_main

        spec = tmp_path / "campaign.json"
        spec.write_text(json.dumps(Campaign(**TRIALS10).to_dict()))
        store_root = str(tmp_path / "store")
        assert repro_main(["campaign", "run", str(spec),
                           "--store", store_root, "--quiet"]) == 0
        capsys.readouterr()
        assert repro_main(["store", "stats", "--store", store_root]) == 0
        out = capsys.readouterr().out
        assert "hit_rate" in out
        assert "%" in out or "n/a" in out
