"""CampaignExecutor unit tests: policy, retries, fail-fast, outcomes.

Process-level failure injection (SIGKILL, hangs, SIGINT) lives in
``test_chaos.py``; these tests exercise the executor's control flow
with in-process fault injection, so they are fast and deterministic.
"""

import pytest

from repro.campaign import Campaign
from repro.campaign.executor import (
    STATUS_CACHED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_SKIPPED,
    CampaignExecutor,
    RetryPolicy,
)
from repro.core.suite import MicroBenchmarkSuite, clear_result_cache
from repro.store import ResultStore

TINY = dict(
    name="tiny",
    shuffle_gbs=(0.02, 0.04),
    networks=("1GigE", "ipoib-qdr"),
    params={"num_maps": 4, "num_reduces": 2,
            "key_size": 256, "value_size": 256},
    slaves=2,
)


@pytest.fixture(autouse=True)
def fresh_memo():
    clear_result_cache()
    yield
    clear_result_cache()


def make_suite(store=None):
    campaign = Campaign(**TINY)
    return campaign, MicroBenchmarkSuite(
        cluster=campaign.cluster_spec(),
        jobconf=campaign.jobconf(),
        store=store,
    )


def grid(campaign):
    points = campaign.points()
    return [p.config for p in points], [p.label() for p in points]


class FlakySuite:
    """Wrap a suite so simulate_point fails the first N calls per key."""

    def __init__(self, suite, failures, exc=RuntimeError("injected")):
        self._suite = suite
        self._budget = dict(failures)  # key -> remaining failures
        self._exc = exc
        self.calls = []

    def __getattr__(self, name):
        return getattr(self._suite, name)

    def simulate_point(self, config):
        key = self._suite.store_key(config)
        self.calls.append(key)
        if self._budget.get(key, 0) > 0:
            self._budget[key] -= 1
            raise self._exc
        return self._suite.simulate_point(config)


class TestRetryPolicy:
    def test_defaults_valid(self):
        policy = RetryPolicy()
        assert policy.retries == 0 and policy.timeout is None

    @pytest.mark.parametrize("kwargs", [
        {"retries": -1},
        {"backoff": -0.5},
        {"backoff_factor": 0.5},
        {"timeout": 0},
        {"timeout": -3},
    ])
    def test_invalid_policies_raise(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_delay_progression_caps(self):
        policy = RetryPolicy(retries=5, backoff=1.0, backoff_factor=2.0,
                             max_backoff=3.0)
        assert [policy.delay(a) for a in (1, 2, 3, 4)] == [1.0, 2.0, 3.0, 3.0]

    def test_zero_backoff_means_no_wait(self):
        assert RetryPolicy(retries=2, backoff=0.0).delay(3) == 0.0

    def test_keyed_delay_is_deterministic_decorrelated_jitter(self):
        """Same (key, attempt) → same delay; different keys differ."""
        policy = RetryPolicy(retries=5, backoff=1.0, backoff_factor=2.0,
                             max_backoff=8.0)
        for attempt in (1, 2, 3):
            base = policy.delay(attempt)
            jittered = policy.delay(attempt, key="point-a")
            # Pinned to [base/2, base]: never longer than the legacy
            # wait, never less than half of it.
            assert base / 2 <= jittered <= base
            assert jittered == policy.delay(attempt, key="point-a")
        spread = {policy.delay(2, key=f"point-{i}") for i in range(16)}
        assert len(spread) > 8  # the whole point: keys decorrelate

    def test_keyed_delay_with_zero_backoff_stays_zero(self):
        assert RetryPolicy(retries=1, backoff=0.0).delay(1, key="k") == 0.0


class TestInlineExecution:
    def test_all_points_succeed(self, tmp_path):
        campaign, suite = make_suite(ResultStore(tmp_path / "store"))
        configs, labels = grid(campaign)
        report = CampaignExecutor(suite).execute(configs, labels)
        assert report.executed == 4
        assert report.from_store == report.failed == report.skipped == 0
        assert not report.interrupted
        assert all(o.status == STATUS_OK and o.attempts == 1
                   for o in report.outcomes)

    def test_second_pass_is_all_cached(self, tmp_path):
        campaign, suite = make_suite(ResultStore(tmp_path / "store"))
        configs, labels = grid(campaign)
        CampaignExecutor(suite).execute(configs, labels)
        clear_result_cache()
        report = CampaignExecutor(suite).execute(configs, labels)
        assert report.from_store == 4 and report.executed == 0
        assert all(o.status == STATUS_CACHED for o in report.outcomes)

    def test_retry_recovers_flaky_point(self, tmp_path):
        campaign, suite = make_suite(ResultStore(tmp_path / "store"))
        configs, labels = grid(campaign)
        flaky_key = suite.store_key(configs[1])
        flaky = FlakySuite(suite, {flaky_key: 2})
        executor = CampaignExecutor(
            flaky, policy=RetryPolicy(retries=2, backoff=0.0), isolate=False)
        report = executor.execute(configs, labels)
        assert report.executed == 4 and report.failed == 0
        assert report.outcomes[1].attempts == 3
        assert report.outcomes[0].attempts == 1

    def test_exhausted_retries_quarantine(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        campaign, suite = make_suite(store)
        configs, labels = grid(campaign)
        bad_key = suite.store_key(configs[2])
        flaky = FlakySuite(suite, {bad_key: 99},
                           exc=RuntimeError("synthetic failure"))
        executor = CampaignExecutor(
            flaky, policy=RetryPolicy(retries=1, backoff=0.0),
            isolate=False, campaign="tiny")
        report = executor.execute(configs, labels)
        assert report.executed == 3 and report.failed == 1
        outcome = report.outcomes[2]
        assert outcome.status == STATUS_FAILED
        assert outcome.attempts == 2
        assert "synthetic failure" in outcome.error
        assert "RuntimeError" in outcome.traceback
        ledger = store.quarantine()
        assert set(ledger) == {bad_key}
        entry = ledger[bad_key]
        assert entry["campaign"] == "tiny"
        assert entry["attempts"] == 2
        assert "synthetic failure" in entry["error"]

    def test_fail_fast_skips_the_rest(self, tmp_path):
        campaign, suite = make_suite(ResultStore(tmp_path / "store"))
        configs, labels = grid(campaign)
        bad_key = suite.store_key(configs[0])
        flaky = FlakySuite(suite, {bad_key: 99})
        executor = CampaignExecutor(flaky, fail_fast=True, isolate=False)
        report = executor.execute(configs, labels)
        assert report.failed == 1 and report.skipped == 3
        assert [o.status for o in report.outcomes] == [
            STATUS_FAILED, STATUS_SKIPPED, STATUS_SKIPPED, STATUS_SKIPPED]

    def test_retries_do_not_change_results(self, tmp_path):
        campaign, suite = make_suite(ResultStore(tmp_path / "store"))
        configs, labels = grid(campaign)
        baseline = CampaignExecutor(suite).execute(configs, labels)
        clear_result_cache()
        _campaign2, suite2 = make_suite(ResultStore(tmp_path / "store2"))
        flaky = FlakySuite(suite2, {suite2.store_key(c): 1 for c in configs})
        report = CampaignExecutor(
            flaky, policy=RetryPolicy(retries=1, backoff=0.0),
            isolate=False).execute(configs, labels)
        for a, b in zip(baseline.outcomes, report.outcomes):
            assert (a.result.execution_time.hex()
                    == b.result.execution_time.hex())

    def test_progress_fires_for_every_point(self, tmp_path):
        campaign, suite = make_suite(ResultStore(tmp_path / "store"))
        configs, labels = grid(campaign)
        seen = []
        executor = CampaignExecutor(suite, progress=seen.append)
        executor.execute(configs, labels)
        assert len(seen) == 4
        assert {o.label for o in seen} == set(labels)

    def test_jobs_must_be_positive(self, tmp_path):
        _campaign, suite = make_suite()
        with pytest.raises(ValueError, match="jobs"):
            CampaignExecutor(suite, jobs=0)


class TestIsolatedExecution:
    """The supervised-process path, without chaos (happy paths)."""

    def test_forced_isolation_matches_inline(self, tmp_path):
        campaign, suite = make_suite(ResultStore(tmp_path / "a"))
        configs, labels = grid(campaign)
        inline = CampaignExecutor(suite, isolate=False).execute(
            configs, labels)
        clear_result_cache()
        _c2, suite2 = make_suite(ResultStore(tmp_path / "b"))
        isolated = CampaignExecutor(suite2, isolate=True).execute(
            configs, labels)
        assert isolated.executed == 4
        for a, b in zip(inline.outcomes, isolated.outcomes):
            assert (a.result.execution_time.hex()
                    == b.result.execution_time.hex())

    def test_parallel_jobs_record_every_point(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        campaign, suite = make_suite(store)
        configs, labels = grid(campaign)
        report = CampaignExecutor(suite, jobs=2).execute(configs, labels)
        assert report.executed == 4
        assert store.stats()["puts"] == 4
        assert store.verify().clean

    def test_checkpoint_written_after_execute(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        campaign, suite = make_suite(store)
        configs, labels = grid(campaign)
        CampaignExecutor(suite, campaign="tiny").execute(configs, labels)
        checkpoint = store.read_checkpoint("tiny")
        assert checkpoint["total"] == 4
        assert checkpoint["interrupted"] is False
        assert len(checkpoint["completed"]) == 4
        assert checkpoint["failed"] == [] and checkpoint["skipped"] == []
