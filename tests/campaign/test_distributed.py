"""Distributed execution tests: wire protocol, PoolBackend, failover.

The contract under test (ISSUE 10): a campaign routed through
``PoolBackend`` — socket-connected ``repro worker`` processes with
heartbeat leases — must produce byte-identical store contents to the
default ``LocalBackend``, including under chaos: a SIGKILL'd worker's
unit is *reassigned* to a live worker (not quarantined), a worker that
goes silent loses its lease and the unit moves on, a heartbeating but
hung simulation hits the ordinary ``RetryPolicy.timeout``, and SIGINT
drains gracefully with exit code 130. Fault injection uses the same
env-gated chaos hooks the local supervised path uses (keyed by the
dispatch counter, so the replayed dispatch recovers).
"""

import json
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro.campaign import (
    Campaign,
    CampaignExecutor,
    ExecutionBackendError,
    LocalBackend,
    PoolBackend,
    RetryPolicy,
    create_execution_backend,
    run_campaign,
)
from repro.campaign.backend import (
    ENV_CHAOS_ATTEMPTS,
    ENV_CHAOS_CRASH,
    ENV_CHAOS_HANG,
    ENV_CHAOS_HANG_SECS,
    ENV_CHAOS_MUTE,
)
from repro.campaign.wire import (
    MSG_HEARTBEAT,
    MSG_HELLO,
    MSG_OK,
    MSG_UNIT,
    FrameDecoder,
    FrameError,
    encode_message,
    recv_message,
    send_message,
)
from repro.core.suite import clear_result_cache
from repro.store import ResultStore

from tests.store.conftest import store_root
from tests.campaign.test_batch import GOLDEN, POINTS, _golden_config, \
    _golden_suite

#: Three tiny points (~ms of simulation each), one network.
TINY3 = dict(
    name="dist3",
    shuffle_gbs=(0.02, 0.03, 0.04),
    networks=("1GigE",),
    params={"num_maps": 4, "num_reduces": 2,
            "key_size": 256, "value_size": 256},
    slaves=2,
)

CHAOS_ENV = (ENV_CHAOS_CRASH, ENV_CHAOS_HANG, ENV_CHAOS_HANG_SECS,
             ENV_CHAOS_ATTEMPTS, ENV_CHAOS_MUTE)


@pytest.fixture(autouse=True)
def clean_slate(monkeypatch):
    clear_result_cache()
    for var in CHAOS_ENV:
        monkeypatch.delenv(var, raising=False)
    yield
    clear_result_cache()


@pytest.fixture()
def campaign():
    return Campaign(**TINY3)


@pytest.fixture()
def pool2():
    """A two-worker pool, closed (workers reaped) after the test."""
    backend = PoolBackend(workers=2, lease=5.0, drain_timeout=5.0)
    yield backend
    backend.close()


def times_of(result):
    return {p.key: p.result.execution_time.hex() for p in result.points}


class TestWire:
    def test_message_roundtrip_over_socket(self):
        a, b = socket.socketpair()
        messages = [
            (MSG_HELLO, {"worker": "h:1", "pid": 1}),
            (MSG_UNIT, (0, 3, 1), 3, 1, 0.5, b"x" * 70_000),
            (MSG_HEARTBEAT, (0, 3, 1)),
            (MSG_OK, (0, 3, 1), {"anything": ["pickles", 1.5]}),
        ]
        try:
            for message in messages:
                send_message(a, message)
            for message in messages:
                assert recv_message(b) == message
        finally:
            a.close()
            b.close()

    def test_decoder_reassembles_byte_dribble(self):
        """Frames split at every byte boundary still parse."""
        messages = [(MSG_HEARTBEAT, (1, 2, 3)), (MSG_OK, (1, 2, 3), None)]
        stream = b"".join(encode_message(m) for m in messages)
        decoder = FrameDecoder()
        seen = []
        for i in range(len(stream)):
            decoder.feed(stream[i:i + 1])
            seen.extend(decoder.drain())
        assert seen == messages

    def test_oversized_frame_rejected(self):
        import struct

        decoder = FrameDecoder()
        decoder.feed(struct.pack(">I", 1 << 31))
        with pytest.raises(FrameError):
            list(decoder.drain())

    def test_factory_builds_both_backends(self):
        local = create_execution_backend("local", jobs=2)
        assert isinstance(local, LocalBackend) and local.name == "local"
        pool = create_execution_backend("pool", jobs=2)
        assert isinstance(pool, PoolBackend) and pool.workers == 2
        with pytest.raises(ValueError):
            create_execution_backend("carrier-pigeon")


class TestPoolParity:
    def test_pool_matches_local_byte_identical(
            self, campaign, tmp_path, backend_name, pool2):
        """Same campaign, both engines, both store backends: same bytes."""
        local_store = ResultStore(store_root(tmp_path, backend_name,
                                             "local"))
        local = run_campaign(campaign, store=local_store)
        assert local.completed and local.backend == "local"
        clear_result_cache()

        pool_store = ResultStore(store_root(tmp_path, backend_name,
                                            "pool"))
        pooled = run_campaign(campaign, store=pool_store, backend=pool2)
        assert pooled.completed and pooled.backend == "pool"
        assert pooled.executed == 3 and pooled.from_store == 0

        assert sorted(pool_store.export()) == sorted(local_store.export())
        stats = pool_store.stats()
        assert stats["puts"] == 3 and stats["misses"] == 3
        assert stats["leases"] == 0          # all leases released
        assert pool_store.leases() == {}
        assert pool2.counters["dispatched"] >= 1
        assert pool2.counters["workers_joined"] == 2

    @pytest.mark.parametrize(
        "version", sorted({p["version"] for p in POINTS}))
    def test_pool_reproduces_golden_times(self, version):
        """All 40 pinned times, bit-for-bit, through two workers."""
        points = [p for p in POINTS if p["version"] == version]
        configs = [_golden_config(p) for p in points]
        backend = PoolBackend(workers=2)
        try:
            report = CampaignExecutor(
                _golden_suite(version), batch=True,
                backend=backend).execute(configs)
        finally:
            backend.close()
        assert report.backend == "pool"
        assert report.batched and report.executed == len(points)
        for point, outcome in zip(points, report.outcomes):
            assert (outcome.result.execution_time.hex()
                    == point["execution_time_hex"])

    def test_external_worker_joins_via_cli(self, campaign, tmp_path):
        """`repro worker --connect` against a workers=0 coordinator."""
        backend = PoolBackend(workers=0, lease=5.0)
        backend.ensure_started()
        host, port = backend.address
        proc = subprocess.Popen(
            [sys.executable, "-c",
             "import sys; from repro.core.cli import repro_main; "
             "sys.exit(repro_main(sys.argv[1:]))",
             "worker", "--connect", f"{host}:{port}"],
            env=dict(__import__("os").environ, PYTHONPATH="src"),
            cwd="/root/repo")
        try:
            result = run_campaign(
                campaign, store=ResultStore(tmp_path / "store"),
                backend=backend)
            assert result.completed and result.executed == 3
        finally:
            backend.close()
            try:
                rc = proc.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()
                proc.wait()
                pytest.fail("worker did not exit after shutdown")
        assert rc == 0  # shutdown message / closed socket is a clean exit

    def test_no_workers_is_a_backend_error(self, campaign, tmp_path):
        backend = PoolBackend(workers=0, connect_timeout=0.5)
        try:
            with pytest.raises(ExecutionBackendError):
                run_campaign(campaign,
                             store=ResultStore(tmp_path / "store"),
                             backend=backend)
        finally:
            backend.close()


class TestFailover:
    def test_sigkilled_worker_reassigns_not_quarantines(
            self, campaign, tmp_path, monkeypatch, pool2):
        """ISSUE acceptance: kill 1 of 2 workers mid-unit; exit clean.

        The first dispatch of point 0 SIGKILLs its worker; the unit is
        reassigned to the surviving worker (dispatch counter 1 escapes
        the chaos hook) and the campaign completes with *zero*
        failures — a dead host is not a reason to quarantine.
        """
        store = ResultStore(tmp_path / "store")
        monkeypatch.setenv(ENV_CHAOS_CRASH, "0")  # first dispatch only
        result = run_campaign(campaign, store=store, backend=pool2)
        assert result.completed and result.failed == 0
        assert result.executed == 3
        assert pool2.counters["workers_lost"] >= 1
        assert pool2.counters["reassignments"] >= 1
        assert store.quarantine() == {}
        assert store.verify().clean

        # Byte-identity with an undisturbed local run.
        clear_result_cache()
        monkeypatch.delenv(ENV_CHAOS_CRASH)
        baseline = run_campaign(campaign,
                                store=ResultStore(tmp_path / "baseline"))
        assert times_of(result) == times_of(baseline)

    def test_mute_worker_lease_expires_and_reassigns(
            self, campaign, tmp_path, monkeypatch):
        """A silent (no-heartbeat) worker loses its lease, not the run."""
        store = ResultStore(tmp_path / "store")
        monkeypatch.setenv(ENV_CHAOS_MUTE, "0")   # first dispatch mutes
        backend = PoolBackend(workers=2, lease=1.0, drain_timeout=5.0)
        started = time.monotonic()
        try:
            result = run_campaign(campaign, store=store, backend=backend)
        finally:
            counters = dict(backend.counters)
            backend.close()
        assert result.completed and result.failed == 0
        assert counters["leases_expired"] >= 1
        assert counters["reassignments"] >= 1
        assert time.monotonic() - started < 60
        assert store.quarantine() == {}

    def test_hung_but_heartbeating_unit_hits_policy_timeout(
            self, campaign, tmp_path, monkeypatch, pool2):
        """Heartbeats keep the lease alive; RetryPolicy.timeout rules."""
        store = ResultStore(tmp_path / "store")
        monkeypatch.setenv(ENV_CHAOS_HANG, "0")
        monkeypatch.setenv(ENV_CHAOS_HANG_SECS, "60")
        monkeypatch.setenv(ENV_CHAOS_ATTEMPTS, "99")  # every attempt
        started = time.monotonic()
        result = run_campaign(campaign, store=store, backend=pool2,
                              policy=RetryPolicy(timeout=1.0))
        elapsed = time.monotonic() - started
        assert result.failed == 1 and result.executed == 2
        assert "timed out" in result.outcomes[0].error
        assert elapsed < 45  # nobody waited for the 60 s hang
        assert pool2.counters["timeouts"] >= 1
        # The quarantine ledger carries the attempt history.
        entry = store.quarantine()[result.outcomes[0].key]
        assert entry["history"]
        assert entry["history"][0]["kind"] == "timeout"
        assert entry["history"][0]["worker"]

    def test_reassignment_composes_with_retry_policy(
            self, campaign, tmp_path, monkeypatch):
        """Worker loss does not consume the unit's retry budget."""
        store = ResultStore(tmp_path / "store")
        # Dispatch 0 of point 0 kills a worker (reassignment), then the
        # replay raises an ordinary failure once (retry), then succeeds:
        # requires retries=1 even though there were three dispatches.
        monkeypatch.setenv(ENV_CHAOS_CRASH, "0")
        monkeypatch.setenv(ENV_CHAOS_ATTEMPTS, "1")
        backend = PoolBackend(workers=2, lease=5.0)
        try:
            result = run_campaign(campaign, store=store, backend=backend,
                                  policy=RetryPolicy(retries=1,
                                                     backoff=0.0))
        finally:
            backend.close()
        assert result.completed and result.failed == 0


#: Child body for the pool SIGINT test: the real CLI, pool backend.
SIGINT_CHILD = """\
import sys
from repro.core.cli import repro_main
sys.exit(repro_main(["campaign", "run", sys.argv[1],
                     "--store", sys.argv[2], "--backend", "pool",
                     "--workers", "2", "--drain-timeout", "2"]))
"""


class TestGracefulDrain:
    def test_sigint_drains_pool_and_resume_fills_gap(
            self, campaign, tmp_path):
        """SIGINT a pool run: exit 130, whole records only, resumable."""
        spec = tmp_path / "dist3.json"
        spec.write_text(json.dumps(campaign.to_dict()))
        root = str(tmp_path / "store")
        env = dict(__import__("os").environ,
                   PYTHONPATH="src",
                   REPRO_CHAOS_HANG="2",         # third point hangs...
                   REPRO_CHAOS_HANG_SECS="60",   # ...for a minute
                   REPRO_CHAOS_ATTEMPTS="99")
        proc = subprocess.Popen(
            [sys.executable, "-u", "-c", SIGINT_CHILD, str(spec), root],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env, cwd="/root/repo")
        try:
            lines = []
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                line = proc.stdout.readline()
                lines.append(line)
                if "[2/3]" in line:
                    break
            else:  # pragma: no cover - diagnostics only
                pytest.fail(f"never saw point 2 finish: {lines!r}")
            time.sleep(0.5)  # let the hanging unit actually dispatch
            proc.send_signal(signal.SIGINT)
            out, _ = proc.communicate(timeout=45)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup
                proc.kill()
                proc.communicate()
        assert proc.returncode == 130, (lines, out)
        assert "[interrupted]" in out

        store = ResultStore(root)
        assert store.stats()["puts"] == 2
        assert store.verify().clean
        assert store.leases() == {}    # abandoned leases were released

        clear_result_cache()
        from repro.core.cli import repro_main

        rc = repro_main(["campaign", "resume", str(spec),
                         "--store", root, "--quiet"])
        assert rc == 0
        assert store.stats()["puts"] == 3


class TestLeaseLedger:
    def test_lease_written_while_running_released_after(
            self, campaign, tmp_path, monkeypatch):
        """The store shows who holds which unit, live, then nothing."""
        store = ResultStore(tmp_path / "store")
        seen = {}
        real_update = store.lease_update

        def spy(key, entry):
            seen[key] = dict(entry)
            real_update(key, entry)

        monkeypatch.setattr(store, "lease_update", spy)
        backend = PoolBackend(workers=2, lease=5.0)
        try:
            result = run_campaign(campaign, store=store, backend=backend)
        finally:
            backend.close()
        assert result.completed
        assert len(seen) == 3                 # every unit was leased
        for entry in seen.values():
            assert entry["worker"] and entry["campaign"] == campaign.name
            assert entry["expires_at"] > entry["acquired_at"]
        assert store.leases() == {}           # ...and every lease released
        assert store.stats()["leases"] == 0
