"""Chaos harness tests: SIGKILL'd workers, hangs, SIGINT mid-run.

These exercise the failure paths ISSUE 5 hardens: a worker killed
mid-campaign must quarantine only its point (the campaign completes),
a hung worker must hit the wall-clock timeout, SIGINT must checkpoint
and leave only whole records behind, and ``campaign resume`` must
re-run exactly the gap — with every recovered time hex-identical to a
clean run. Fault injection uses the env-gated chaos hooks in
:mod:`repro.campaign.executor`; nothing in production code is patched.
"""

import json
import signal
import subprocess
import sys
import time

import pytest

from repro.campaign import Campaign, RetryPolicy, run_campaign
from repro.campaign.executor import (
    ENV_CHAOS_ATTEMPTS,
    ENV_CHAOS_CRASH,
    ENV_CHAOS_HANG,
    ENV_CHAOS_HANG_SECS,
    STATUS_FAILED,
)
from repro.core.suite import clear_result_cache
from repro.sim.trace import CAT_HARNESS, Tracer
from repro.store import ResultStore

from tests.store.conftest import store_root

#: Three tiny points (~2 ms of simulation each), one network.
TINY3 = dict(
    name="chaos3",
    shuffle_gbs=(0.02, 0.03, 0.04),
    networks=("1GigE",),
    params={"num_maps": 4, "num_reduces": 2,
            "key_size": 256, "value_size": 256},
    slaves=2,
)

CHAOS_ENV = (ENV_CHAOS_CRASH, ENV_CHAOS_HANG, ENV_CHAOS_HANG_SECS,
             ENV_CHAOS_ATTEMPTS)


@pytest.fixture(autouse=True)
def clean_slate(monkeypatch):
    """Fresh memo cache and no stray chaos hooks, before and after."""
    clear_result_cache()
    for var in CHAOS_ENV:
        monkeypatch.delenv(var, raising=False)
    yield
    clear_result_cache()


@pytest.fixture()
def campaign():
    return Campaign(**TINY3)


@pytest.fixture()
def baseline_times(campaign, tmp_path):
    """Hex-exact reference times from an undisturbed in-process run."""
    result = run_campaign(campaign, store=ResultStore(tmp_path / "baseline"))
    assert result.completed
    times = {p.key: p.result.execution_time.hex() for p in result.points}
    clear_result_cache()
    return times


def times_of(result):
    return {p.key: p.result.execution_time.hex() for p in result.points}


class TestWorkerCrash:
    def test_sigkill_quarantines_point_campaign_completes(
            self, campaign, tmp_path, monkeypatch, baseline_times,
            backend_name):
        """ISSUE acceptance: SIGKILL one worker; others finish.

        Runs against both store backends: crash-quarantine-resume is a
        store-contract workflow, not a filesystem detail.
        """
        store = ResultStore(store_root(tmp_path, backend_name))
        monkeypatch.setenv(ENV_CHAOS_CRASH, "1")   # sabotage point 1
        monkeypatch.setenv(ENV_CHAOS_ATTEMPTS, "99")  # every attempt
        result = run_campaign(campaign, store=store,
                              policy=RetryPolicy(retries=1, backoff=0.0))
        # The campaign completed (no exception), the point is quarantined.
        assert result.executed == 2 and result.failed == 1
        bad = result.outcomes[1]
        assert bad.status == STATUS_FAILED and bad.attempts == 2
        assert "SIGKILL" in bad.error
        ledger = store.quarantine()
        assert set(ledger) == {bad.key}
        assert ledger[bad.key]["campaign"] == campaign.name
        # Only whole records made it to disk.
        assert store.verify().clean
        assert store.stats()["puts"] == 2
        # The checkpoint records the gap.
        checkpoint = store.read_checkpoint(campaign.name)
        assert checkpoint["failed"] == [bad.key]
        assert len(checkpoint["completed"]) == 2

        # -- resume re-runs exactly the gap, bit-identically ----------
        monkeypatch.delenv(ENV_CHAOS_CRASH)
        monkeypatch.delenv(ENV_CHAOS_ATTEMPTS)
        clear_result_cache()
        store.quarantine_clear()
        resumed = run_campaign(campaign, store=store)
        assert resumed.executed == 1          # puts delta == the gap
        assert resumed.from_store == 2
        assert resumed.completed
        assert store.stats()["puts"] == 3
        assert store.quarantine() == {}
        assert times_of(resumed) == baseline_times

    def test_crash_then_retry_recovers_bit_identical(
            self, campaign, tmp_path, monkeypatch, baseline_times):
        """Default chaos: attempt 1 dies, the retry succeeds."""
        store = ResultStore(tmp_path / "store")
        monkeypatch.setenv(ENV_CHAOS_CRASH, "0")  # attempt 1 only
        tracer = Tracer()
        result = run_campaign(campaign, store=store, tracer=tracer,
                              policy=RetryPolicy(retries=2, backoff=0.0))
        assert result.completed and result.executed == 3
        assert result.outcomes[0].attempts == 2
        markers = [(ev.name, ev.lane) for ev in tracer.events
                   if ev.cat == CAT_HARNESS]
        label0 = result.outcomes[0].label
        assert ("crash", label0) in markers
        assert ("retry", label0) in markers
        assert times_of(result) == baseline_times


class TestTimeout:
    def test_hung_worker_times_out_and_quarantines(
            self, campaign, tmp_path, monkeypatch):
        store = ResultStore(tmp_path / "store")
        monkeypatch.setenv(ENV_CHAOS_HANG, "0")
        monkeypatch.setenv(ENV_CHAOS_HANG_SECS, "60")
        monkeypatch.setenv(ENV_CHAOS_ATTEMPTS, "99")
        started = time.monotonic()
        result = run_campaign(campaign, store=store,
                              policy=RetryPolicy(timeout=0.8))
        elapsed = time.monotonic() - started
        assert result.failed == 1 and result.executed == 2
        assert "timed out" in result.outcomes[0].error
        assert elapsed < 30  # the 60 s hang was actually killed

    def test_timeout_with_retry_gives_second_chance(
            self, campaign, tmp_path, monkeypatch, baseline_times):
        store = ResultStore(tmp_path / "store")
        monkeypatch.setenv(ENV_CHAOS_HANG, "0")   # attempt 1 only
        monkeypatch.setenv(ENV_CHAOS_HANG_SECS, "60")
        result = run_campaign(
            campaign, store=store,
            policy=RetryPolicy(retries=1, backoff=0.0, timeout=0.8))
        assert result.completed and result.executed == 3
        assert result.outcomes[0].attempts == 2
        assert times_of(result) == baseline_times


#: Child body for the SIGINT test: run the real CLI against a spec.
SIGINT_CHILD = """\
import sys
from repro.core.cli import repro_main
sys.exit(repro_main(["campaign", "run", sys.argv[1],
                     "--store", sys.argv[2]]))
"""


class TestGracefulInterrupt:
    def test_sigint_checkpoints_then_resume_fills_the_gap(
            self, campaign, tmp_path, baseline_times, monkeypatch,
            backend_name):
        """SIGINT a real `repro campaign run`; resume completes it.

        Runs against both store backends via the real CLI ``--store``
        root string.
        """
        spec = tmp_path / "chaos3.json"
        spec.write_text(json.dumps(campaign.to_dict()))
        root = store_root(tmp_path, backend_name)
        env = dict(__import__("os").environ,
                   PYTHONPATH="src",
                   REPRO_CHAOS_HANG="2",         # third point hangs...
                   REPRO_CHAOS_HANG_SECS="60")   # ...for a minute
        proc = subprocess.Popen(
            [sys.executable, "-u", "-c", SIGINT_CHILD,
             str(spec), root],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env, cwd="/root/repo")
        try:
            # Wait until the first two points have been reported done.
            lines = []
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                line = proc.stdout.readline()
                lines.append(line)
                if "[2/3]" in line:
                    break
            else:  # pragma: no cover - diagnostics only
                pytest.fail(f"never saw point 2 finish: {lines!r}")
            time.sleep(0.5)  # let the hanging worker actually start
            proc.send_signal(signal.SIGINT)
            out, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup
                proc.kill()
                proc.communicate()
        assert proc.returncode == 130, (lines, out)
        assert "[interrupted]" in out

        store = ResultStore(root)
        # Completed points are durable; the store holds only whole
        # records (no torn writes from the interrupt).
        assert store.stats()["puts"] == 2
        assert store.verify().clean
        checkpoint = store.read_checkpoint(campaign.name)
        assert checkpoint["interrupted"] is True
        assert len(checkpoint["completed"]) == 2
        assert len(checkpoint["skipped"]) == 1

        # -- resume (chaos hooks off) runs exactly the gap ------------
        from repro.core.cli import repro_main

        clear_result_cache()
        rc = repro_main(["campaign", "resume", str(spec),
                         "--store", root, "--quiet"])
        assert rc == 0
        assert store.stats()["puts"] == 3  # delta == the gap
        suite_times = {}
        from repro.core.suite import MicroBenchmarkSuite
        suite = MicroBenchmarkSuite(cluster=campaign.cluster_spec(),
                                    jobconf=campaign.jobconf(),
                                    store=store)
        for point in campaign.points():
            key = suite.store_key(point.config)
            suite_times[key] = store.get(key).execution_time.hex()
        assert suite_times == baseline_times
