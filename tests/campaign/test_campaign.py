"""Campaign specs and the skip-on-hit runner."""

import json

import pytest

from repro.campaign import (
    Campaign,
    load_campaign,
    load_campaigns,
    run_campaign,
)
from repro.campaign.spec import TRIAL_SEED_STRIDE
from repro.core.config import BenchmarkConfig
from repro.core.suite import clear_result_cache
from repro.faults import FaultPlan
from repro.store import ResultStore

TINY = dict(
    name="tiny",
    shuffle_gbs=(0.02, 0.04),
    networks=("1GigE", "ipoib-qdr"),
    params={"num_maps": 4, "num_reduces": 2,
            "key_size": 256, "value_size": 256},
    slaves=2,
)


@pytest.fixture(autouse=True)
def fresh_memo():
    clear_result_cache()
    yield
    clear_result_cache()


class TestSpec:
    def test_round_trips_through_dict(self):
        campaign = Campaign(**TINY)
        assert Campaign.from_dict(campaign.to_dict()) == campaign

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown campaign keys"):
            Campaign.from_dict(dict(TINY, shufle_gbs=[4.0]))

    def test_validation(self):
        with pytest.raises(ValueError, match="shuffle_gbs"):
            Campaign(name="x", shuffle_gbs=(), networks=("1GigE",))
        with pytest.raises(ValueError, match="runtime"):
            Campaign(**dict(TINY, runtime="hadoop3"))
        with pytest.raises(ValueError, match="label"):
            Campaign(**dict(TINY, variants=({"key_size": 50},)))
        with pytest.raises(ValueError, match="trials"):
            Campaign(**dict(TINY, trials=0))

    def test_points_expansion_order(self):
        campaign = Campaign(**dict(TINY, trials=2))
        points = campaign.points()
        assert len(points) == 2 * 2 * 2  # sizes × networks × trials
        # variant → size → network → trial nesting:
        assert [(p.shuffle_gb, p.network, p.trial) for p in points[:4]] == [
            (0.02, "1GigE", 0), (0.02, "1GigE", 1),
            (0.02, "ipoib-qdr", 0), (0.02, "ipoib-qdr", 1),
        ]

    def test_trial_seeds_stride(self):
        campaign = Campaign(**dict(TINY, trials=2))
        t0, t1 = campaign.points()[:2]
        assert t0.config.seed == BenchmarkConfig.seed
        assert t1.config.seed == BenchmarkConfig.seed + TRIAL_SEED_STRIDE

    def test_variants_overlay_params(self):
        campaign = Campaign(**dict(
            TINY, variants=({"label": "small", "key_size": 50},
                            {"label": "big", "key_size": 5120}),
        ))
        points = campaign.points()
        assert len(points) == 2 * 2 * 2  # variants × sizes × networks
        assert points[0].variant == "small"
        assert points[0].config.key_size == 50
        assert points[0].config.value_size == 256  # params still apply
        assert points[-1].variant == "big"
        assert points[-1].config.key_size == 5120


class TestLoading:
    def test_load_single_json(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text(json.dumps(Campaign(**TINY).to_dict()))
        assert load_campaign(path) == Campaign(**TINY)

    def test_load_collection_and_pick(self, tmp_path):
        a = Campaign(**dict(TINY, name="a"))
        b = Campaign(**dict(TINY, name="b"))
        path = tmp_path / "c.json"
        path.write_text(json.dumps(
            {"campaigns": [a.to_dict(), b.to_dict()]}))
        assert load_campaigns(path) == [a, b]
        assert load_campaign(path, name="b") == b
        with pytest.raises(ValueError, match="pass name="):
            load_campaign(path)
        with pytest.raises(KeyError):
            load_campaign(path, name="zzz")

    def test_invalid_json_is_friendly(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text("{ nope")
        with pytest.raises(ValueError, match="invalid JSON"):
            load_campaigns(path)

    def test_toml_form(self, tmp_path):
        text = (
            'name = "tiny"\n'
            'shuffle_gbs = [0.02]\n'
            'networks = ["1GigE"]\n'
            "[params]\n"
            "num_maps = 4\n"
        )
        path = tmp_path / "c.toml"
        path.write_text(text)
        try:
            import tomllib  # noqa: F401 — availability probe
        except ImportError:
            with pytest.raises(ValueError, match="tomllib"):
                load_campaign(path)
        else:
            campaign = load_campaign(path)
            assert campaign.name == "tiny"
            assert campaign.params == {"num_maps": 4}

    def test_fault_plan_round_trips(self, tmp_path):
        plan = FaultPlan(task_failure_probability=0.05)
        campaign = Campaign(**dict(TINY, fault_plan=plan))
        path = tmp_path / "c.json"
        path.write_text(json.dumps(campaign.to_dict()))
        assert load_campaign(path).fault_plan == plan

    def test_shipped_specs_load(self):
        """The repo's own campaign specs must stay valid."""
        import pathlib

        spec_dir = (pathlib.Path(__file__).resolve().parents[2]
                    / "benchmarks" / "campaigns")
        specs = sorted(spec_dir.glob("*.json"))
        assert specs, f"no shipped campaign specs in {spec_dir}"
        for spec in specs:
            for campaign in load_campaigns(spec):
                assert campaign.points()


class TestRunner:
    def test_cold_then_warm(self, tmp_path):
        campaign = Campaign(**TINY)
        root = str(tmp_path / "store")
        cold = run_campaign(campaign, store=root)
        assert cold.executed == 4
        assert cold.from_store == 0

        clear_result_cache()  # fresh-process equivalent
        warm = run_campaign(campaign, store=root)
        assert warm.executed == 0
        assert warm.from_store == 4
        for a, b in zip(cold.points, warm.points):
            assert (a.result.execution_time.hex()
                    == b.result.execution_time.hex())
        assert ResultStore(root).stats()["puts"] == 4

    def test_progress_callback(self, tmp_path):
        events = []
        run_campaign(Campaign(**TINY), store=str(tmp_path / "store"),
                     progress=events.append)
        assert len(events) == 4
        assert events[0].index == 1 and events[-1].index == 4
        assert all(e.total == 4 for e in events)
        assert all(not e.cached for e in events)
        assert "GB" in events[0].render()

    def test_runs_without_a_store(self):
        outcome = run_campaign(Campaign(**dict(TINY, shuffle_gbs=(0.02,),
                                               networks=("1GigE",))))
        assert outcome.executed == 1
        assert outcome.from_store == 0

    def test_records_are_tagged_for_the_book(self, tmp_path):
        root = str(tmp_path / "store")
        run_campaign(Campaign(**dict(TINY, figure="Fig. X")), store=root)
        records = list(ResultStore(root).records())
        assert len(records) == 4
        for _key, record in records:
            meta = record["tags"]["tiny"]
            assert meta["figure"] == "Fig. X"
            assert meta["baseline"] == "1GigE"
            assert "shuffle_gb" in meta and "network" in meta

    def test_sweep_result_shapes_figures(self, tmp_path):
        outcome = run_campaign(Campaign(**TINY),
                               store=str(tmp_path / "store"))
        sweep = outcome.sweep_result()
        assert sweep.networks() == ["1GigE", "IPoIB-QDR(32Gbps)"]
        assert sorted(sweep.sizes()) == [0.02, 0.04]
        with pytest.raises(KeyError, match="variant"):
            outcome.sweep_result(variant="nope")
