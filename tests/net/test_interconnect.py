"""Tests for the interconnect catalog."""

import pytest

from repro.net import (
    INTERCONNECTS,
    IPOIB_FDR,
    IPOIB_QDR,
    ONE_GIGE,
    RDMA_FDR,
    TEN_GIGE,
    InterconnectSpec,
    get_interconnect,
)


def test_catalog_contains_all_paper_networks():
    assert len(INTERCONNECTS) == 5
    assert ONE_GIGE.name in INTERCONNECTS
    assert RDMA_FDR.name in INTERCONNECTS


def test_bandwidth_ordering_matches_paper():
    """1 GigE < 10 GigE < IPoIB QDR < IPoIB FDR < RDMA FDR."""
    ordered = [ONE_GIGE, TEN_GIGE, IPOIB_QDR, IPOIB_FDR, RDMA_FDR]
    bandwidths = [spec.effective_bandwidth for spec in ordered]
    assert bandwidths == sorted(bandwidths)
    assert bandwidths[0] < bandwidths[1] < bandwidths[2]


def test_latency_ordering():
    """Faster interconnects also have lower latency."""
    assert ONE_GIGE.latency > TEN_GIGE.latency > IPOIB_QDR.latency
    assert IPOIB_FDR.latency > RDMA_FDR.latency


def test_rdma_flag():
    assert RDMA_FDR.rdma
    for spec in (ONE_GIGE, TEN_GIGE, IPOIB_QDR, IPOIB_FDR):
        assert not spec.rdma


def test_rdma_cpu_cost_negligible():
    """RDMA's defining property: per-byte CPU orders below sockets."""
    assert RDMA_FDR.cpu_per_byte < ONE_GIGE.cpu_per_byte / 20


def test_effective_bandwidths_match_fig7_peaks():
    """Fig. 7(b): peaks ~110 / ~520 / ~950 MB/s."""
    assert ONE_GIGE.effective_bandwidth == pytest.approx(110e6, rel=0.1)
    assert TEN_GIGE.effective_bandwidth == pytest.approx(520e6, rel=0.1)
    assert IPOIB_QDR.effective_bandwidth == pytest.approx(950e6, rel=0.1)


def test_transfer_time():
    spec = InterconnectSpec(
        name="test", raw_gbps=1, effective_bandwidth=100.0, latency=0.5,
        fetch_setup=0.25, cpu_per_byte=0.0,
    )
    assert spec.transfer_time(1000.0) == pytest.approx(0.75 + 10.0)


def test_validation_rejects_bad_specs():
    with pytest.raises(ValueError):
        InterconnectSpec("bad", 1, 0.0, 0, 0, 0)
    with pytest.raises(ValueError):
        InterconnectSpec("bad", 1, 1.0, -1, 0, 0)


def test_get_interconnect_by_name_and_alias():
    assert get_interconnect("1GigE") is ONE_GIGE
    assert get_interconnect("10gige") is TEN_GIGE
    assert get_interconnect("IPOIB-QDR") is IPOIB_QDR
    assert get_interconnect("ipoib_fdr") is IPOIB_FDR
    assert get_interconnect("rdma") is RDMA_FDR


def test_get_interconnect_unknown_raises():
    with pytest.raises(KeyError, match="unknown interconnect"):
        get_interconnect("carrier-pigeon")


def test_str():
    assert str(ONE_GIGE) == "1GigE"
