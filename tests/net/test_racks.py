"""Tests for the multi-rack topology extension."""

import pytest

from repro.core import BenchmarkConfig
from repro.hadoop import cluster_a, run_simulated_job
from repro.net import NetworkFabric
from repro.net.interconnect import InterconnectSpec
from repro.sim import Simulator

SIMPLE = InterconnectSpec(
    name="simple", raw_gbps=1, effective_bandwidth=100.0, latency=0.0,
    fetch_setup=0.0, cpu_per_byte=0.0,
)


def make_racked_fabric(uplink):
    sim = Simulator()
    fabric = NetworkFabric(sim, SIMPLE, rack_uplink_bandwidth=uplink)
    for i in range(4):
        fabric.add_node(f"n{i}", rack=i % 2)  # racks: {n0,n2}, {n1,n3}
    return sim, fabric


class TestRackedFabric:
    def test_same_rack_flow_unaffected_by_uplink(self):
        sim, fabric = make_racked_fabric(uplink=10.0)
        flow = fabric.start_flow("n0", "n2", 500.0)  # same rack
        sim.run_until_event(flow.done)
        assert sim.now == pytest.approx(5.0)  # full NIC rate

    def test_cross_rack_flow_limited_by_uplink(self):
        sim, fabric = make_racked_fabric(uplink=10.0)
        flow = fabric.start_flow("n0", "n1", 500.0)  # cross rack
        sim.run_until_event(flow.done)
        assert sim.now == pytest.approx(50.0)  # 10 B/s uplink

    def test_uplink_shared_by_cross_rack_flows(self):
        sim, fabric = make_racked_fabric(uplink=10.0)
        f1 = fabric.start_flow("n0", "n1", 250.0)
        f2 = fabric.start_flow("n2", "n3", 250.0)  # same src rack uplink
        sim.run_until_event(f1.done)
        sim.run_until_event(f2.done)
        # 500 B through a 10 B/s shared uplink.
        assert sim.now == pytest.approx(50.0)

    def test_generous_uplink_is_transparent(self):
        sim, fabric = make_racked_fabric(uplink=1e9)
        flow = fabric.start_flow("n0", "n1", 500.0)
        sim.run_until_event(flow.done)
        assert sim.now == pytest.approx(5.0)

    def test_no_uplink_means_single_switch(self):
        sim = Simulator()
        fabric = NetworkFabric(sim, SIMPLE, rack_uplink_bandwidth=None)
        fabric.add_node("a", rack=0)
        fabric.add_node("b", rack=1)
        flow = fabric.start_flow("a", "b", 500.0)
        sim.run_until_event(flow.done)
        assert sim.now == pytest.approx(5.0)


class TestClusterRackSpec:
    def test_default_is_single_switch(self):
        assert cluster_a().racks == 1

    def test_with_racks(self):
        c = cluster_a(8).with_racks(2, oversubscription=4.0)
        assert c.racks == 2
        assert c.nodes_per_rack == 4
        assert c.rack_of(0) == 0 and c.rack_of(1) == 1 and c.rack_of(2) == 0

    def test_uplink_bandwidth_formula(self):
        c = cluster_a(8).with_racks(2, oversubscription=4.0)
        assert c.rack_uplink_bandwidth(100e6) == pytest.approx(1e8)

    def test_validation(self):
        with pytest.raises(ValueError):
            cluster_a().with_racks(0)
        with pytest.raises(ValueError):
            cluster_a().with_racks(2, oversubscription=0.5)


class TestRackedJobs:
    def cfg(self):
        # 1 GigE makes the uplink bottleneck visible against compute.
        return BenchmarkConfig.from_shuffle_size(
            8e9, num_maps=8, num_reduces=8, key_size=512, value_size=512,
            network="1GigE")

    def test_oversubscription_slows_the_shuffle(self):
        flat = run_simulated_job(self.cfg(),
                                 cluster=cluster_a(8)).execution_time
        non_blocking = run_simulated_job(
            self.cfg(), cluster=cluster_a(8).with_racks(2, 1.0)
        ).execution_time
        oversubscribed = run_simulated_job(
            self.cfg(), cluster=cluster_a(8).with_racks(2, 8.0)
        ).execution_time
        assert non_blocking == pytest.approx(flat, rel=0.02)
        assert oversubscribed > non_blocking * 1.05

    def test_oversubscription_monotone(self):
        times = [
            run_simulated_job(
                self.cfg(), cluster=cluster_a(8).with_racks(2, ratio)
            ).execution_time
            for ratio in (1.0, 4.0, 16.0)
        ]
        assert times[0] <= times[1] <= times[2]

    def test_fast_network_masks_oversubscription_longer(self):
        """With the same oversubscription *ratio*, the absolute uplink
        of a faster NIC is larger; 1 GigE suffers relatively more."""
        def rel_slowdown(network):
            cfg = BenchmarkConfig.from_shuffle_size(
                8e9, num_maps=8, num_reduces=8, key_size=512,
                value_size=512, network=network)
            base = run_simulated_job(cfg, cluster=cluster_a(8)).execution_time
            racked = run_simulated_job(
                cfg, cluster=cluster_a(8).with_racks(2, 8.0)).execution_time
            return racked / base

        assert rel_slowdown("1GigE") > rel_slowdown("ipoib-qdr") * 0.99
