"""Bit-exact equivalence of the grouped/incremental solver vs the
reference water-filling solver.

Three layers:

* property tests — random fabric-shaped flow sets: the grouped solver's
  rates equal the reference's with ``==``, not approx;
* fabric level — identical workloads on ``solver="reference"`` vs
  ``solver="incremental"`` fabrics produce bit-equal completion times
  (this also exercises the private-links change-point skip);
* suite level — parallel sweeps (``jobs=4``) reproduce the serial
  sweep's simulated job times bit-exactly.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.suite import MicroBenchmarkSuite, clear_result_cache
from repro.hadoop.cluster import cluster_a
from repro.hadoop.job import JobConf
from repro.net import NetworkFabric
from repro.net.interconnect import InterconnectSpec
from repro.net.solver import compute_max_min, solve_max_min_grouped
from repro.sim import Simulator


class _FakeFlow:
    __slots__ = ("links",)

    def __init__(self, links):
        self.links = links

    def __repr__(self):
        return f"flow{self.links!r}"


def _fabric_links(src, dst, racks):
    """Link tuple shaped exactly like NetworkFabric._links_of."""
    if src == dst:
        return (("loop", src),)
    links = (("out", src), ("in", dst))
    if racks is not None and racks[src] != racks[dst]:
        links += (("rack-up", racks[src]), ("rack-down", racks[dst]))
    return links


# Up to 40 flows over 6 hosts split across 2 racks; loopback allowed.
_pairs = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 5)), min_size=1, max_size=40
)
_rack_split = st.one_of(st.none(), st.integers(1, 5))
_caps = st.floats(min_value=0.5, max_value=1e9)


@given(_pairs, _rack_split, _caps, _caps, _caps)
@settings(max_examples=200, deadline=None)
def test_grouped_solver_matches_reference_bitwise(pairs, split, nic_cap,
                                                  loop_cap, rack_cap):
    racks = None if split is None else {h: int(h >= split) for h in range(6)}
    flows = [_FakeFlow(_fabric_links(s, d, racks)) for s, d in pairs]
    caps = {}
    for flow in flows:
        for link in flow.links:
            kind = link[0]
            caps[link] = (loop_cap if kind == "loop"
                          else rack_cap if kind.startswith("rack")
                          else nic_cap)
    reference = compute_max_min(flows, caps, lambda f: f.links)
    grouped = solve_max_min_grouped(flows, caps)
    assert set(grouped) == set(reference)
    for flow in flows:
        # Bit-exact, not approx: the fabric swap relies on it.
        assert grouped[flow] == reference[flow], flow


@given(_pairs, _caps)
@settings(max_examples=100, deadline=None)
def test_grouped_solver_uneven_caps(pairs, base_cap):
    """Per-link capacity perturbations (deterministic in the link) so
    classes hit different bottlenecks than their neighbours."""
    flows = [_FakeFlow(_fabric_links(s, d, None)) for s, d in pairs]
    caps = {}
    for flow in flows:
        for link in flow.links:
            caps[link] = base_cap * (1.0 + 0.1 * (hash(link) % 7))
    reference = compute_max_min(flows, caps, lambda f: f.links)
    grouped = solve_max_min_grouped(flows, caps)
    for flow in flows:
        assert grouped[flow] == reference[flow]


# -- fabric level -------------------------------------------------------

_SPEC = InterconnectSpec(
    name="equiv-test",
    raw_gbps=1,
    effective_bandwidth=117.0,  # non-round: exercises float paths
    latency=0.001,
    fetch_setup=0.0,
    cpu_per_byte=0.001,
)


def _run_workload(solver, racked):
    """A staggered many-flow workload; returns all completion times."""
    sim = Simulator()
    fabric = NetworkFabric(
        sim, _SPEC, loopback_bandwidth=990.0,
        rack_uplink_bandwidth=250.0 if racked else None,
        solver=solver,
    )
    for i in range(6):
        fabric.add_node(f"n{i}", cores=8, rack=i % 2)
    rng = random.Random(20140901)
    flows = []
    for _ in range(60):
        src = f"n{rng.randrange(6)}"
        dst = f"n{rng.randrange(6)}"  # loopback allowed
        nbytes = rng.uniform(1.0, 5000.0)
        delay = rng.uniform(0.0, 30.0)
        flows.append(fabric.start_flow(src, dst, nbytes, delay=delay))
    sim.run()
    assert all(f.finished_at is not None for f in flows)
    return [f.finished_at for f in flows]


def test_fabric_reference_vs_incremental_flat():
    assert _run_workload("incremental", racked=False) == \
        _run_workload("reference", racked=False)


def test_fabric_reference_vs_incremental_racked():
    assert _run_workload("incremental", racked=True) == \
        _run_workload("reference", racked=True)


# -- suite level --------------------------------------------------------

def _sweep_times(jobs):
    suite = MicroBenchmarkSuite(cluster=cluster_a(4),
                                jobconf=JobConf(version="mrv1"))
    clear_result_cache()  # a cache hit would make the comparison vacuous
    sweep = suite.sweep(
        "MR-RAND", [1.0, 2.0], ["1GigE", "ipoib-qdr"],
        jobs=jobs, memoize=False,
        num_maps=16, num_reduces=8, key_size=512, value_size=512,
        data_type="BytesWritable",
    )
    return [(r.network, r.shuffle_gb, r.execution_time) for r in sweep.rows]


def test_parallel_sweep_times_bit_identical():
    serial = _sweep_times(jobs=1)
    parallel = _sweep_times(jobs=4)
    assert serial == parallel  # float equality on execution times


def test_parallel_trials_bit_identical():
    suite = MicroBenchmarkSuite(cluster=cluster_a(4),
                                jobconf=JobConf(version="yarn"))
    kwargs = dict(shuffle_gb=1.0, num_maps=8, num_reduces=4,
                  memoize=False)
    serial = suite.run_trials("MR-SKEW", trials=3, jobs=1, **kwargs)
    parallel = suite.run_trials("MR-SKEW", trials=3, jobs=4, **kwargs)
    assert serial == parallel
