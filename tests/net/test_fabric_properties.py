"""Property-based tests (hypothesis) for the network fabric."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import NetworkFabric, compute_max_min
from repro.net.interconnect import InterconnectSpec
from repro.sim import Simulator


class _FakeFlow:
    def __init__(self, src, dst):
        self.src, self.dst = src, dst

    def __repr__(self):
        return f"flow({self.src}->{self.dst})"


def _links(flow):
    return (("out", flow.src), ("in", flow.dst))


flows_strategy = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 5)).filter(
        lambda p: p[0] != p[1]
    ),
    min_size=1,
    max_size=30,
)
caps_strategy = st.floats(min_value=1.0, max_value=1e6)


@given(flows_strategy, caps_strategy)
def test_max_min_never_exceeds_capacity(pairs, cap):
    flows = [_FakeFlow(f"n{a}", f"n{b}") for a, b in pairs]
    caps = {}
    for f in flows:
        for link in _links(f):
            caps[link] = cap
    rates = compute_max_min(flows, caps, _links)
    usage = {}
    for f in flows:
        assert rates[f] >= 0
        for link in _links(f):
            usage[link] = usage.get(link, 0.0) + rates[f]
    for link, used in usage.items():
        assert used <= caps[link] * (1 + 1e-9)


@given(flows_strategy, caps_strategy)
def test_max_min_is_work_conserving(pairs, cap):
    """Every flow has at least one saturated link (else its rate could
    be raised — not max-min)."""
    flows = [_FakeFlow(f"n{a}", f"n{b}") for a, b in pairs]
    caps = {}
    for f in flows:
        for link in _links(f):
            caps[link] = cap
    rates = compute_max_min(flows, caps, _links)
    usage = {}
    for f in flows:
        for link in _links(f):
            usage[link] = usage.get(link, 0.0) + rates[f]
    for f in flows:
        saturated = any(
            usage[link] >= caps[link] * (1 - 1e-9) for link in _links(f)
        )
        assert saturated, f"{f} could be raised"


@given(flows_strategy)
def test_max_min_symmetry(pairs):
    """Flows sharing the same (src, dst) get identical rates."""
    flows = [_FakeFlow(f"n{a}", f"n{b}") for a, b in pairs]
    caps = {}
    for f in flows:
        for link in _links(f):
            caps[link] = 100.0
    rates = compute_max_min(flows, caps, _links)
    by_pair = {}
    for f in flows:
        by_pair.setdefault((f.src, f.dst), []).append(rates[f])
    for pair_rates in by_pair.values():
        assert max(pair_rates) - min(pair_rates) < 1e-6


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(0, 3),            # src
            st.integers(0, 3),            # dst
            st.floats(min_value=1.0, max_value=1e6),  # bytes
            st.floats(min_value=0.0, max_value=5.0),  # start delay
        ),
        min_size=1,
        max_size=12,
    )
)
def test_fabric_delivers_every_byte(specs):
    """End-to-end conservation: all flows complete, wire counters add up."""
    spec = InterconnectSpec("t", 1, effective_bandwidth=1000.0, latency=0.0,
                            fetch_setup=0.0, cpu_per_byte=0.0)
    sim = Simulator()
    fabric = NetworkFabric(sim, spec, loopback_bandwidth=5000.0)
    for i in range(4):
        fabric.add_node(f"n{i}")
    flows = []

    def starter():
        for src, dst, nbytes, delay in specs:
            flows.append(
                fabric.start_flow(f"n{src}", f"n{dst}", nbytes, delay=delay)
            )
            yield sim.timeout(0.01)

    sim.process(starter())
    sim.run()
    wire_total = sum(n for s, d, n, _ in specs if s != d)
    received = sum(fabric.node(f"n{i}").rx.total for i in range(4))
    for flow in flows:
        assert flow.done.processed and flow.done.ok
        assert flow.remaining == 0.0
    assert math.isclose(received, wire_total, rel_tol=1e-6, abs_tol=1e-3)
