"""Tests for the max-min fair network fabric."""

import pytest

from repro.net import NetworkFabric, ONE_GIGE, compute_max_min
from repro.net.interconnect import InterconnectSpec
from repro.sim import Simulator

# A simple interconnect with round numbers for exact assertions.
SIMPLE = InterconnectSpec(
    name="simple",
    raw_gbps=1,
    effective_bandwidth=100.0,  # bytes/s
    latency=0.0,
    fetch_setup=0.0,
    cpu_per_byte=0.01,
)


def make_fabric(n_nodes=4, spec=SIMPLE, loopback=1000.0):
    sim = Simulator()
    fabric = NetworkFabric(sim, spec, loopback_bandwidth=loopback)
    for i in range(n_nodes):
        fabric.add_node(f"n{i}", cores=8)
    return sim, fabric


class _FakeFlow:
    def __init__(self, src, dst):
        self.src, self.dst = src, dst


def _links(flow):
    return (("out", flow.src), ("in", flow.dst))


class TestComputeMaxMin:
    def test_single_flow_gets_full_capacity(self):
        f = _FakeFlow("a", "b")
        caps = {("out", "a"): 100.0, ("in", "b"): 100.0}
        rates = compute_max_min([f], caps, _links)
        assert rates[f] == pytest.approx(100.0)

    def test_two_flows_same_links_split_evenly(self):
        f1, f2 = _FakeFlow("a", "b"), _FakeFlow("a", "b")
        caps = {("out", "a"): 100.0, ("in", "b"): 100.0}
        rates = compute_max_min([f1, f2], caps, _links)
        assert rates[f1] == pytest.approx(50.0)
        assert rates[f2] == pytest.approx(50.0)

    def test_bottleneck_spillover(self):
        """Two flows into b (bottleneck), one into c gets leftovers.

        f1: a->b, f2: a->b, f3: a->c. Egress a = 100 shared by 3;
        ingress b = 100 shared by 2. Progressive filling: egress a is
        the tighter link (100/3 < 100/2)... all three frozen at 33.3.
        """
        f1, f2 = _FakeFlow("a", "b"), _FakeFlow("a", "b")
        f3 = _FakeFlow("a", "c")
        caps = {("out", "a"): 100.0, ("in", "b"): 100.0, ("in", "c"): 100.0}
        rates = compute_max_min([f1, f2, f3], caps, _links)
        for f in (f1, f2, f3):
            assert rates[f] == pytest.approx(100.0 / 3)

    def test_asymmetric_bottleneck(self):
        """Ingress-limited flow frees egress bandwidth for the other.

        f1: a->b with ingress b capped at 20; f2: a->c uncapped.
        f1 freezes at 20, f2 then gets 100-20=80 of a's egress.
        """
        f1, f2 = _FakeFlow("a", "b"), _FakeFlow("a", "c")
        caps = {("out", "a"): 100.0, ("in", "b"): 20.0, ("in", "c"): 100.0}
        rates = compute_max_min([f1, f2], caps, _links)
        assert rates[f1] == pytest.approx(20.0)
        assert rates[f2] == pytest.approx(80.0)

    def test_no_link_capacity_exceeded(self):
        """Allocation respects every link capacity (many random flows)."""
        import random

        rng = random.Random(42)
        nodes = [f"n{i}" for i in range(6)]
        flows = [
            _FakeFlow(rng.choice(nodes), rng.choice(nodes)) for _ in range(40)
        ]
        flows = [f for f in flows if f.src != f.dst]
        caps = {}
        for f in flows:
            caps[("out", f.src)] = 100.0
            caps[("in", f.dst)] = 100.0
        rates = compute_max_min(flows, caps, _links)
        usage = {}
        for f in flows:
            for link in _links(f):
                usage[link] = usage.get(link, 0.0) + rates[f]
        for link, used in usage.items():
            assert used <= caps[link] + 1e-6

    def test_work_conserving(self):
        """At least one link of every flow is saturated (max-min)."""
        f1, f2 = _FakeFlow("a", "b"), _FakeFlow("c", "b")
        caps = {
            ("out", "a"): 100.0,
            ("out", "c"): 100.0,
            ("in", "b"): 100.0,
        }
        rates = compute_max_min([f1, f2], caps, _links)
        # ingress b saturated at 100
        assert rates[f1] + rates[f2] == pytest.approx(100.0)

    def test_empty_flows(self):
        assert compute_max_min([], {}, _links) == {}


class TestNetworkFabric:
    def test_single_flow_transfer_time(self):
        sim, fabric = make_fabric()
        flow = fabric.start_flow("n0", "n1", 500.0)
        sim.run_until_event(flow.done)
        assert sim.now == pytest.approx(5.0)

    def test_latency_delays_start(self):
        spec = InterconnectSpec(
            "lat", 1, effective_bandwidth=100.0, latency=1.0,
            fetch_setup=0.0, cpu_per_byte=0.0,
        )
        sim, fabric = make_fabric(spec=spec)
        flow = fabric.start_flow("n0", "n1", 100.0)
        sim.run_until_event(flow.done)
        assert sim.now == pytest.approx(2.0)  # 1s latency + 1s transfer

    def test_extra_delay(self):
        sim, fabric = make_fabric()
        flow = fabric.start_flow("n0", "n1", 100.0, delay=3.0)
        sim.run_until_event(flow.done)
        assert sim.now == pytest.approx(4.0)

    def test_zero_byte_flow_completes_after_latency(self):
        sim, fabric = make_fabric()
        flow = fabric.start_flow("n0", "n1", 0.0)
        sim.run_until_event(flow.done)
        assert sim.now == pytest.approx(0.0)

    def test_negative_bytes_raises(self):
        _sim, fabric = make_fabric()
        with pytest.raises(ValueError):
            fabric.start_flow("n0", "n1", -1.0)

    def test_unknown_node_raises(self):
        _sim, fabric = make_fabric()
        with pytest.raises(KeyError):
            fabric.start_flow("n0", "ghost", 10.0)

    def test_duplicate_node_raises(self):
        _sim, fabric = make_fabric()
        with pytest.raises(ValueError):
            fabric.add_node("n0")

    def test_two_flows_share_then_speed_up(self):
        """Two equal flows into one node share its ingress, finishing
        together at 2x the solo time."""
        sim, fabric = make_fabric()
        f1 = fabric.start_flow("n0", "n2", 500.0)
        f2 = fabric.start_flow("n1", "n2", 500.0)
        sim.run_until_event(f1.done)
        sim.run_until_event(f2.done)
        assert sim.now == pytest.approx(10.0)

    def test_short_flow_departs_long_flow_accelerates(self):
        """n0->n2 (1000B) and n1->n2 (200B): ingress n2 shared 50/50;
        short flow done at t=4; long has 800 left, full rate -> t=12."""
        sim, fabric = make_fabric()
        long = fabric.start_flow("n0", "n2", 1000.0)
        short = fabric.start_flow("n1", "n2", 200.0)
        sim.run_until_event(short.done)
        assert sim.now == pytest.approx(4.0)
        sim.run_until_event(long.done)
        assert sim.now == pytest.approx(12.0)

    def test_local_flow_uses_loopback_not_nic(self):
        """A local flow rides the loopback and doesn't slow NIC flows."""
        sim, fabric = make_fabric(loopback=1000.0)
        local = fabric.start_flow("n0", "n0", 1000.0)
        remote = fabric.start_flow("n0", "n1", 500.0)
        sim.run_until_event(local.done)
        assert sim.now == pytest.approx(1.0)  # 1000B @ 1000B/s
        sim.run_until_event(remote.done)
        assert sim.now == pytest.approx(5.0)  # full 100B/s all along

    def test_rx_tx_counters(self):
        sim, fabric = make_fabric()
        flow = fabric.start_flow("n0", "n1", 500.0)
        sim.run_until_event(flow.done)
        assert fabric.node("n0").tx.total == pytest.approx(500.0)
        assert fabric.node("n1").rx.total == pytest.approx(500.0)
        assert fabric.node("n1").tx.total == pytest.approx(0.0)

    def test_live_counters_mid_transfer(self):
        sim, fabric = make_fabric()
        fabric.start_flow("n0", "n1", 500.0)
        sim.run(until=2.0)
        assert fabric.node("n1").rx.total == pytest.approx(200.0)

    def test_protocol_cpu_level_tracks_rates(self):
        sim, fabric = make_fabric()  # cpu_per_byte = 0.01
        fabric.start_flow("n0", "n1", 1000.0)
        sim.run(until=1.0)
        # n0 sends at 100 B/s -> 1.0 cores of protocol CPU
        assert fabric.node("n0").protocol_cpu.level == pytest.approx(1.0)
        sim.run()
        assert fabric.node("n0").protocol_cpu.level == pytest.approx(0.0)

    def test_all_to_all_shuffle_pattern(self):
        """4 nodes, each sending to all others: symmetric completion."""
        sim, fabric = make_fabric()
        flows = []
        for i in range(4):
            for j in range(4):
                if i != j:
                    flows.append(fabric.start_flow(f"n{i}", f"n{j}", 300.0))
        for f in flows:
            sim.run_until_event(f.done)
        # each NIC carries 3*300=900B at 100B/s egress (3 flows sharing).
        assert sim.now == pytest.approx(9.0)
        for i in range(4):
            assert fabric.node(f"n{i}").rx.total == pytest.approx(900.0)
            assert fabric.node(f"n{i}").tx.total == pytest.approx(900.0)

    def test_flow_conservation_random_pattern(self):
        """Total bytes received equals total bytes sent equals sum of sizes."""
        import random

        rng = random.Random(7)
        sim, fabric = make_fabric(n_nodes=5)
        total = 0.0
        flows = []
        for _ in range(30):
            i, j = rng.randrange(5), rng.randrange(5)
            size = rng.uniform(10, 500)
            total += size
            flows.append(fabric.start_flow(f"n{i}", f"n{j}", size))
        sim.run()
        for f in flows:
            assert f.done.processed and f.done.ok
        wire_bytes = sum(f.nbytes for f in flows if not f.is_local)
        received = sum(fabric.node(f"n{i}").rx.total for i in range(5))
        sent = sum(fabric.node(f"n{i}").tx.total for i in range(5))
        assert received == pytest.approx(wire_bytes, rel=1e-6)
        assert sent == pytest.approx(wire_bytes, rel=1e-6)

    def test_one_gige_realistic_transfer(self):
        """1 GB over 1 GigE takes ~9s point-to-point."""
        sim = Simulator()
        fabric = NetworkFabric(sim, ONE_GIGE)
        fabric.add_node("a")
        fabric.add_node("b")
        flow = fabric.start_flow("a", "b", 1e9)
        sim.run_until_event(flow.done)
        assert sim.now == pytest.approx(1e9 / ONE_GIGE.effective_bandwidth, rel=0.01)
