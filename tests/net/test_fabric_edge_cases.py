"""Additional fabric edge cases and bookkeeping checks."""

import pytest

from repro.net import NetworkFabric, ONE_GIGE, RDMA_FDR
from repro.net.interconnect import InterconnectSpec
from repro.sim import Simulator

SIMPLE = InterconnectSpec(
    name="simple", raw_gbps=1, effective_bandwidth=100.0, latency=0.0,
    fetch_setup=0.0, cpu_per_byte=0.0,
)


def test_flow_timestamps():
    sim = Simulator()
    fabric = NetworkFabric(sim, SIMPLE)
    fabric.add_node("a")
    fabric.add_node("b")
    flow = fabric.start_flow("a", "b", 100.0, delay=2.0)
    assert flow.started_at is None
    sim.run_until_event(flow.done)
    assert flow.started_at == pytest.approx(2.0)
    assert flow.finished_at == pytest.approx(3.0)


def test_flow_repr_and_ids_unique():
    sim = Simulator()
    fabric = NetworkFabric(sim, SIMPLE)
    fabric.add_node("a")
    fabric.add_node("b")
    f1 = fabric.start_flow("a", "b", 10.0)
    f2 = fabric.start_flow("a", "b", 10.0)
    assert f1.id != f2.id
    assert "a->b" in repr(f1)


def test_active_flow_count():
    sim = Simulator()
    fabric = NetworkFabric(sim, SIMPLE)
    fabric.add_node("a")
    fabric.add_node("b")
    assert fabric.active_flows == 0
    fabric.start_flow("a", "b", 1000.0)
    sim.run(until=1.0)
    assert fabric.active_flows == 1
    sim.run()
    assert fabric.active_flows == 0


def test_flows_arriving_mid_drain():
    """A flow arriving while another is finishing shares correctly."""
    sim = Simulator()
    fabric = NetworkFabric(sim, SIMPLE)
    for n in ("a", "b", "c"):
        fabric.add_node(n)
    f1 = fabric.start_flow("a", "c", 100.0)

    def late():
        yield sim.timeout(0.5)
        f2 = fabric.start_flow("b", "c", 100.0)
        yield f2.done
        return sim.now

    proc = sim.process(late())
    end = sim.run_until_event(proc)
    # f1: 50B alone by t=0.5, then 50B at the shared 50B/s -> 1.5;
    # f2: 50B shared by t=1.5, then its last 50B alone at 100B/s -> 2.0.
    assert end == pytest.approx(2.0)
    assert f1.finished_at == pytest.approx(1.5)


def test_protocol_cpu_zero_for_rdma():
    sim = Simulator()
    fabric = NetworkFabric(sim, RDMA_FDR)
    fabric.add_node("a")
    fabric.add_node("b")
    fabric.start_flow("a", "b", 1e9)
    sim.run(until=0.05)
    # 0.05e-9 s/B at ~5.5 GB/s: well under a tenth of a core.
    assert fabric.node("a").protocol_cpu.level < 0.3


def test_protocol_cpu_significant_for_sockets():
    sim = Simulator()
    fabric = NetworkFabric(sim, ONE_GIGE)
    fabric.add_node("a")
    fabric.add_node("b")
    fabric.start_flow("a", "b", 1e9)
    sim.run(until=1.0)
    # 3 ns/B at 112 MB/s ~ 0.34 cores.
    assert fabric.node("a").protocol_cpu.level == pytest.approx(0.336, rel=0.05)


def test_sequential_flows_reuse_capacity():
    sim = Simulator()
    fabric = NetworkFabric(sim, SIMPLE)
    fabric.add_node("a")
    fabric.add_node("b")
    f1 = fabric.start_flow("a", "b", 100.0)
    sim.run_until_event(f1.done)
    f2 = fabric.start_flow("a", "b", 100.0)
    sim.run_until_event(f2.done)
    assert sim.now == pytest.approx(2.0)


def test_bidirectional_flows_do_not_contend():
    """a->b and b->a use different directions of each NIC."""
    sim = Simulator()
    fabric = NetworkFabric(sim, SIMPLE)
    fabric.add_node("a")
    fabric.add_node("b")
    f1 = fabric.start_flow("a", "b", 100.0)
    f2 = fabric.start_flow("b", "a", 100.0)
    sim.run_until_event(f1.done)
    sim.run_until_event(f2.done)
    assert sim.now == pytest.approx(1.0)
