"""Focused allocation tests for the max-min solver under rack uplinks.

These pin the *exact* behaviour of the reference water-filling solver
for topologies that exercise every link kind at once — per-node NIC
ingress/egress, capacity-limited rack uplinks, and per-node loopback —
so the grouped/incremental solver can be validated against it
(tests/net/test_solver_equivalence.py asserts bit-identical rates).
"""

import pytest

from repro.net import NetworkFabric, compute_max_min
from repro.net.interconnect import InterconnectSpec
from repro.sim import Simulator

SIMPLE = InterconnectSpec(
    name="simple", raw_gbps=1, effective_bandwidth=100.0, latency=0.0,
    fetch_setup=0.0, cpu_per_byte=0.0,
)


def make_racked_fabric(uplink, n_nodes=4, loopback=1000.0):
    sim = Simulator()
    fabric = NetworkFabric(sim, SIMPLE, loopback_bandwidth=loopback,
                           rack_uplink_bandwidth=uplink)
    for i in range(n_nodes):
        fabric.add_node(f"n{i}", rack=i % 2)  # racks: {n0,n2}, {n1,n3}
    return sim, fabric


def rates_via_fabric(fabric, pairs_and_sizes):
    """Start flows and read the rates the fabric assigned at t=0."""
    flows = [fabric.start_flow(src, dst, nbytes)
             for src, dst, nbytes in pairs_and_sizes]
    return flows


class TestRackUplinkAllocation:
    """Exact max-min shares with rack uplinks as the contended links."""

    def test_cross_rack_flows_squeeze_through_uplink(self):
        """Two cross-rack flows into rack 1 share its 10 B/s downlink
        50/50; the intra-rack flow into n3 takes n3's leftover ingress
        (100 - cross2's 5 = 95)."""
        sim, fabric = make_racked_fabric(uplink=10.0)
        cross1 = fabric.start_flow("n0", "n1", 1000.0)  # rack0 -> rack1
        cross2 = fabric.start_flow("n2", "n3", 1000.0)  # rack0 -> rack1
        intra = fabric.start_flow("n1", "n3", 1000.0)   # rack1 internal
        sim.run(until=0.0)
        assert cross1.rate == pytest.approx(5.0)
        assert cross2.rate == pytest.approx(5.0)
        assert intra.rate == pytest.approx(95.0)

    def test_loopback_ignores_rack_uplink(self):
        """A same-host flow rides the loopback even in a racked fabric."""
        sim, fabric = make_racked_fabric(uplink=10.0)
        local = fabric.start_flow("n0", "n0", 5000.0)
        cross = fabric.start_flow("n0", "n1", 1000.0)
        sim.run(until=0.0)
        assert local.rate == pytest.approx(1000.0)
        assert cross.rate == pytest.approx(10.0)  # uplink-bound

    def test_mixed_pattern_exact_shares(self):
        """Cross-rack + intra-rack + loopback mixed on one source node.

        n0 sends: to n1 (cross-rack), to n2 (same rack), to n0 (loop).
        Egress n0 = 100 shared by the two remote flows; the cross-rack
        flow is further capped by the 30 B/s uplink it has to itself.
        Water-filling: both remote flows first see egress fair share 50;
        the uplink (30/1) is tighter, so cross freezes at 30; intra then
        takes the leftover egress 100-30=70. Loopback is independent.
        """
        sim, fabric = make_racked_fabric(uplink=30.0)
        cross = fabric.start_flow("n0", "n1", 1000.0)
        intra = fabric.start_flow("n0", "n2", 1000.0)
        local = fabric.start_flow("n0", "n0", 1000.0)
        sim.run(until=0.0)
        assert cross.rate == pytest.approx(30.0)
        assert intra.rate == pytest.approx(70.0)
        assert local.rate == pytest.approx(1000.0)

    def test_uplink_contention_with_ingress_bottleneck(self):
        """Uplink shared by two flows, one also ingress-limited.

        Both cross-rack flows (n0->n1, n2->n1) share rack0's 40 B/s
        uplink *and* n1's 100 B/s ingress. Uplink fair share 20 < 50,
        so both freeze at 20.
        """
        sim, fabric = make_racked_fabric(uplink=40.0)
        f1 = fabric.start_flow("n0", "n1", 1000.0)
        f2 = fabric.start_flow("n2", "n1", 1000.0)
        sim.run(until=0.0)
        assert f1.rate == pytest.approx(20.0)
        assert f2.rate == pytest.approx(20.0)

    def test_completion_times_cross_vs_intra(self):
        """End-to-end: uplink-bound cross flow finishes after intra."""
        sim, fabric = make_racked_fabric(uplink=10.0)
        cross = fabric.start_flow("n0", "n1", 100.0)
        intra = fabric.start_flow("n2", "n0", 100.0)
        sim.run_until_event(intra.done)
        assert sim.now == pytest.approx(1.0)   # 100 B @ 100 B/s
        sim.run_until_event(cross.done)
        assert sim.now == pytest.approx(10.0)  # 100 B @ 10 B/s

    def test_reference_solver_direct_rack_links(self):
        """compute_max_min with explicit rack links: exact shares.

        Links: out-a (cap 100), rack-up 0 (cap 12), in-b / in-c (100).
        Flows f1, f2 cross-rack from a; f3 intra-rack from a.
        Rack uplink fair = 6 freezes f1, f2; f3 then gets 100-12=88.
        """
        class F:  # minimal stand-in with the solver's flow interface
            def __init__(self, links):
                self._links = links

        f1 = F((("out", "a"), ("in", "b"), ("rack-up", 0), ("rack-down", 1)))
        f2 = F((("out", "a"), ("in", "c"), ("rack-up", 0), ("rack-down", 1)))
        f3 = F((("out", "a"), ("in", "d")))
        caps = {
            ("out", "a"): 100.0,
            ("in", "b"): 100.0,
            ("in", "c"): 100.0,
            ("in", "d"): 100.0,
            ("rack-up", 0): 12.0,
            ("rack-down", 1): 100.0,
        }
        rates = compute_max_min([f1, f2, f3], caps, lambda f: f._links)
        assert rates[f1] == pytest.approx(6.0)
        assert rates[f2] == pytest.approx(6.0)
        assert rates[f3] == pytest.approx(88.0)

    def test_no_capacity_exceeded_random_racked(self):
        """Random racked flow mix never exceeds any link capacity and
        stays work-conserving."""
        import random

        rng = random.Random(20140901)
        sim, fabric = make_racked_fabric(uplink=35.0, n_nodes=6)
        flows = []
        for _ in range(25):
            i, j = rng.randrange(6), rng.randrange(6)
            flows.append(fabric.start_flow(f"n{i}", f"n{j}",
                                           rng.uniform(50, 500)))
        sim.run(until=0.0)
        usage = {}
        for f in flows:
            if f.remaining <= 0:
                continue
            for link in fabric._links_of(f):
                usage[link] = usage.get(link, 0.0) + f.rate
        for link, used in usage.items():
            kind = link[0]
            cap = (1000.0 if kind == "loop"
                   else 35.0 if kind in ("rack-up", "rack-down")
                   else 100.0)
            assert used <= cap + 1e-6
        sim.run()
        for f in flows:
            assert f.done.processed and f.done.ok
