"""Tests for shuffle transport models."""

import pytest

from repro.net import IPOIB_FDR, ONE_GIGE, RDMA_FDR, TransportModel, transport_for
from repro.net.transport import HTTP_SHUFFLE_OVERLAP, RDMA_SHUFFLE_OVERLAP


def test_tcp_interconnects_get_http_shuffle():
    t = transport_for(ONE_GIGE)
    assert "http-shuffle" in t.name
    assert t.reads_map_output_from_disk
    assert t.merge_overlap == HTTP_SHUFFLE_OVERLAP


def test_ipoib_is_still_http():
    """IPoIB is sockets-over-IB: stock Hadoop, stock HTTP shuffle."""
    t = transport_for(IPOIB_FDR)
    assert "http-shuffle" in t.name


def test_rdma_interconnect_gets_rdma_shuffle():
    t = transport_for(RDMA_FDR)
    assert "rdma-shuffle" in t.name
    assert not t.reads_map_output_from_disk
    assert t.merge_overlap == RDMA_SHUFFLE_OVERLAP == 1.0


def test_rdma_setup_cheaper_than_http():
    assert transport_for(RDMA_FDR).fetch_setup < transport_for(ONE_GIGE).fetch_setup


def test_transport_validation():
    with pytest.raises(ValueError):
        TransportModel("bad", fetch_setup=0.0, reads_map_output_from_disk=True,
                       merge_overlap=1.5)
    with pytest.raises(ValueError):
        TransportModel("bad", fetch_setup=-1.0, reads_map_output_from_disk=True,
                       merge_overlap=0.5)
