"""Tests for SlotResource and FairShareResource."""

import pytest

from repro.sim import FairShareResource, SimulationError, SlotResource, Simulator


class TestSlotResource:
    def test_capacity_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            SlotResource(sim, 0)

    def test_grant_within_capacity_is_immediate(self):
        sim = Simulator()
        slots = SlotResource(sim, 2)
        grants = []

        def worker(i):
            yield slots.request()
            grants.append((i, sim.now))

        sim.process(worker(0))
        sim.process(worker(1))
        sim.run()
        assert grants == [(0, 0.0), (1, 0.0)]
        assert slots.in_use == 2
        assert slots.available == 0

    def test_fifo_queueing(self):
        sim = Simulator()
        slots = SlotResource(sim, 1)
        order = []

        def worker(i, hold):
            yield slots.request()
            order.append((i, sim.now))
            yield sim.timeout(hold)
            slots.release()

        for i in range(4):
            sim.process(worker(i, hold=2.0))
        sim.run()
        assert order == [(0, 0.0), (1, 2.0), (2, 4.0), (3, 6.0)]

    def test_release_without_request_raises(self):
        sim = Simulator()
        slots = SlotResource(sim, 1)
        with pytest.raises(SimulationError):
            slots.release()

    def test_queued_count(self):
        sim = Simulator()
        slots = SlotResource(sim, 1)
        slots.request()
        slots.request()
        slots.request()
        assert slots.queued == 2

    def test_utilization_tracking(self):
        sim = Simulator()
        slots = SlotResource(sim, 2)

        def worker():
            yield slots.request()
            yield sim.timeout(10.0)
            slots.release()

        sim.process(worker())
        sim.run()
        # one of two slots busy for 10s => 50% utilization
        assert slots.tracker.mean_utilization(since=0.0) == pytest.approx(0.5)


class TestFairShareResource:
    def test_capacity_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            FairShareResource(sim, 0.0)

    def test_single_job_full_rate(self):
        sim = Simulator()
        disk = FairShareResource(sim, capacity=100.0)
        done = disk.submit(500.0)
        sim.run_until_event(done)
        assert sim.now == pytest.approx(5.0)

    def test_zero_work_completes_instantly(self):
        sim = Simulator()
        disk = FairShareResource(sim, capacity=100.0)
        done = disk.submit(0.0)
        sim.run_until_event(done)
        assert sim.now == 0.0

    def test_negative_work_raises(self):
        sim = Simulator()
        disk = FairShareResource(sim, capacity=100.0)
        with pytest.raises(ValueError):
            disk.submit(-1.0)

    def test_equal_sharing_two_jobs(self):
        """Two equal jobs started together share the rate and finish together."""
        sim = Simulator()
        disk = FairShareResource(sim, capacity=100.0)
        times = {}

        def submit(name, amount):
            ev = disk.submit(amount)
            ev.add_callback(lambda _e: times.__setitem__(name, sim.now))

        submit("a", 500.0)
        submit("b", 500.0)
        sim.run()
        assert times["a"] == pytest.approx(10.0)
        assert times["b"] == pytest.approx(10.0)

    def test_processor_sharing_dynamics(self):
        """A late-arriving job slows the first one down, exactly.

        Job A: 1000 units; B arrives at t=2 with 100 units.
        0-2: A alone at 100/s -> A has 800 left.
        2-?: both at 50/s; B finishes at t=4 (100/50=2s); A has 700 left.
        4-11: A alone at 100/s -> finishes at t=11.
        """
        sim = Simulator()
        disk = FairShareResource(sim, capacity=100.0)
        times = {}

        def run():
            ev_a = disk.submit(1000.0)
            ev_a.add_callback(lambda _e: times.__setitem__("a", sim.now))
            yield sim.timeout(2.0)
            ev_b = disk.submit(100.0)
            ev_b.add_callback(lambda _e: times.__setitem__("b", sim.now))

        sim.process(run())
        sim.run()
        assert times["b"] == pytest.approx(4.0)
        assert times["a"] == pytest.approx(11.0)

    def test_work_conservation(self):
        """Total served bytes equals total submitted bytes."""
        sim = Simulator()
        disk = FairShareResource(sim, capacity=64.0)
        amounts = [10.0, 200.0, 35.5, 0.25, 99.0]

        def run():
            for amount in amounts:
                disk.submit(amount)
                yield sim.timeout(0.5)

        sim.process(run())
        sim.run()
        assert disk.bytes_served.total == pytest.approx(sum(amounts))

    def test_busy_tracker(self):
        sim = Simulator()
        disk = FairShareResource(sim, capacity=100.0)
        disk.submit(200.0)
        sim.run()
        assert sim.now == pytest.approx(2.0)
        assert disk.tracker.integral() == pytest.approx(2.0)
        assert disk.active_jobs == 0

    def test_many_jobs_total_time(self):
        """n equal jobs under PS finish at n * (single-job time)."""
        sim = Simulator()
        disk = FairShareResource(sim, capacity=10.0)
        for _ in range(8):
            disk.submit(10.0)
        sim.run()
        assert sim.now == pytest.approx(8.0)
