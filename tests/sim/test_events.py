"""Tests for Event lifecycle and AllOf/AnyOf conditions."""

import pytest

from repro.sim import AllOf, AnyOf, Event, SimulationError, Simulator


def test_event_initial_state():
    sim = Simulator()
    ev = sim.event()
    assert not ev.triggered
    assert not ev.processed


def test_succeed_sets_value():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(42)
    assert ev.triggered and ev.ok
    assert ev.value == 42


def test_double_succeed_raises():
    sim = Simulator()
    ev = sim.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_fail_then_succeed_raises():
    sim = Simulator()
    ev = sim.event()
    ev.fail(RuntimeError("boom"))
    with pytest.raises(SimulationError):
        ev.succeed()


def test_fail_requires_exception_instance():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_value_before_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_ok_before_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.ok


def test_callback_runs_when_processed():
    sim = Simulator()
    ev = sim.event()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    ev.succeed("x")
    assert seen == []  # not yet processed
    sim.run()
    assert seen == ["x"]


def test_callback_after_processed_runs_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("x")
    sim.run()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    assert seen == ["x"]


def test_remove_callback():
    sim = Simulator()
    ev = sim.event()
    seen = []
    cb = lambda e: seen.append(1)  # noqa: E731
    ev.add_callback(cb)
    assert ev.remove_callback(cb)
    assert not ev.remove_callback(cb)
    ev.succeed()
    sim.run()
    assert seen == []


def test_unhandled_failure_raises_at_processing():
    sim = Simulator()
    ev = sim.event()
    ev.fail(ValueError("nobody catches me"))
    with pytest.raises(ValueError, match="nobody catches me"):
        sim.run()


def test_succeed_with_delay():
    sim = Simulator()
    ev = sim.event()
    times = []
    ev.add_callback(lambda e: times.append(sim.now))
    ev.succeed(delay=2.5)
    sim.run()
    assert times == [2.5]


def test_allof_waits_for_all():
    sim = Simulator()
    a = sim.timeout(1.0, value="a")
    b = sim.timeout(3.0, value="b")
    both = AllOf(sim, [a, b])
    result = sim.run_until_event(both)
    assert sim.now == 3.0
    assert result[a] == "a" and result[b] == "b"


def test_allof_empty_succeeds_immediately():
    sim = Simulator()
    cond = AllOf(sim, [])
    assert sim.run_until_event(cond) == {}


def test_allof_with_already_processed_events():
    sim = Simulator()
    a = sim.timeout(1.0, value="a")
    sim.run()
    b = sim.timeout(1.0, value="b")
    both = AllOf(sim, [a, b])
    result = sim.run_until_event(both)
    assert set(result.values()) == {"a", "b"}


def test_anyof_fires_on_first():
    sim = Simulator()
    a = sim.timeout(1.0, value="fast")
    b = sim.timeout(10.0, value="slow")
    first = AnyOf(sim, [a, b])
    result = sim.run_until_event(first)
    assert sim.now == 1.0
    assert result == {a: "fast"}


def test_anyof_empty_succeeds_immediately():
    sim = Simulator()
    cond = AnyOf(sim, [])
    assert sim.run_until_event(cond) == {}


def test_allof_propagates_failure():
    sim = Simulator()
    a = sim.timeout(1.0)
    b = sim.event()
    cond = AllOf(sim, [a, b])
    b.fail(RuntimeError("bad"))
    with pytest.raises(RuntimeError, match="bad"):
        sim.run_until_event(cond)


def test_condition_rejects_foreign_events():
    sim1, sim2 = Simulator(), Simulator()
    a = sim1.event()
    b = sim2.event()
    with pytest.raises(SimulationError):
        AllOf(sim1, [a, b])


def test_event_repr_shows_state():
    sim = Simulator()
    ev = Event(sim, name="my-event")
    assert "my-event" in repr(ev)
    assert "pending" in repr(ev)
    ev.succeed()
    assert "triggered" in repr(ev)
