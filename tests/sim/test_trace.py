"""Tests for the structured trace bus (repro.sim.trace)."""

import pytest

from repro.sim.kernel import Simulator
from repro.sim.trace import (
    CAT_NET,
    CAT_PHASE,
    CAT_TASK,
    NULL_TRACER,
    NullTracer,
    PhaseSpan,
    TraceEvent,
    Tracer,
)


class TestTraceEvent:
    def test_interval_fields(self):
        ev = TraceEvent("spill", CAT_PHASE, "slave0", "map1", 2.0, 3.5,
                        {"bytes": 10})
        assert ev.end == 5.5
        assert not ev.is_instant
        assert ev.args["bytes"] == 10

    def test_instant(self):
        ev = TraceEvent("slowstart", CAT_TASK, "job", "job", 1.0)
        assert ev.is_instant and ev.end == 1.0

    def test_repr(self):
        ev = TraceEvent("x", CAT_NET, "net", "l", 0.0, 1.0)
        assert "net:x" in repr(ev)


class TestTracer:
    def test_begin_end_records_span(self):
        sim = Simulator()
        tracer = Tracer().bind(sim)
        span = tracer.begin("work", CAT_TASK, "slave0", "map0", attempt=0)
        sim._now = 4.0
        span.end(bytes=7)
        [ev] = tracer.events
        assert ev.name == "work"
        assert ev.start == 0.0 and ev.duration == 4.0
        assert ev.args == {"attempt": 0, "bytes": 7}

    def test_unended_span_records_nothing(self):
        sim = Simulator()
        tracer = Tracer().bind(sim)
        span = tracer.begin("killed", CAT_TASK, "slave0", "map0")
        assert isinstance(span, PhaseSpan)
        assert len(tracer) == 0

    def test_complete_and_instant(self):
        sim = Simulator()
        tracer = Tracer().bind(sim)
        tracer.complete("flow", CAT_NET, "net", "slave1", 1.0, 3.0, bytes=8)
        tracer.instant("mark", CAT_TASK, "job", "job")
        flow, mark = tracer.events
        assert flow.duration == 2.0 and not flow.is_instant
        assert mark.is_instant

    def test_negative_duration_clamped(self):
        sim = Simulator()
        tracer = Tracer().bind(sim)
        tracer.complete("weird", CAT_NET, "net", "l", 5.0, 3.0)
        assert tracer.events[0].duration == 0.0

    def test_spans_filter_and_total_time(self):
        sim = Simulator()
        tracer = Tracer().bind(sim)
        tracer.complete("a", CAT_NET, "net", "l", 0.0, 1.0)
        tracer.complete("a", CAT_PHASE, "slave0", "map0", 0.0, 2.0)
        tracer.instant("b", CAT_NET, "net", "l")
        assert len(tracer.spans()) == 2
        assert len(tracer.spans(CAT_NET)) == 1
        assert tracer.total_time("a") == pytest.approx(3.0)

    def test_unbound_now_raises(self):
        with pytest.raises(RuntimeError):
            Tracer().now()

    def test_enabled_flag(self):
        assert Tracer.enabled is True
        assert NullTracer.enabled is False


class TestNullTracer:
    def test_all_noops(self):
        null = NULL_TRACER
        assert null.bind(object()) is null
        span = null.begin("x", CAT_TASK, "t", "l")
        span.end(anything=1)  # must not raise
        null.complete("x", CAT_NET, "t", "l", 0.0, 1.0)
        null.instant("x", CAT_NET, "t", "l")
        assert null.events == []
        assert null.now() == 0.0

    def test_simulator_default_tracer_is_null(self):
        sim = Simulator()
        assert sim.tracer is NULL_TRACER
        assert not sim.tracer.enabled
