"""Tests for Process.kill (deterministic termination of losers)."""

import pytest

from repro.sim import Simulator, SlotResource


def test_kill_runs_finally_blocks_now():
    sim = Simulator()
    cleanup_times = []

    def worker():
        try:
            yield sim.timeout(100.0)
        finally:
            cleanup_times.append(sim.now)

    proc = sim.process(worker())

    def killer():
        yield sim.timeout(3.0)
        proc.kill()

    sim.process(killer())
    sim.run()
    assert cleanup_times == [3.0]
    # The orphaned timeout still drains harmlessly at t=100.
    assert sim.now == pytest.approx(100.0)


def test_killed_process_succeeds_with_none():
    sim = Simulator()

    def worker():
        yield sim.timeout(50.0)
        return "never"

    proc = sim.process(worker())

    def killer():
        yield sim.timeout(1.0)
        proc.kill()

    sim.process(killer())
    sim.run()
    assert proc.processed and proc.ok
    assert proc.value is None


def test_kill_finished_process_is_noop():
    sim = Simulator()

    def worker():
        yield sim.timeout(1.0)
        return 42

    proc = sim.process(worker())
    sim.run()
    proc.kill()  # no exception
    assert proc.value == 42


def test_kill_releases_slots():
    """The driver's use case: killing a speculative loser must free its
    task slot for other work."""
    sim = Simulator()
    slots = SlotResource(sim, 1)
    acquired = []

    def holder():
        grant = slots.request()
        yield grant
        try:
            yield sim.timeout(100.0)
        finally:
            slots.release()

    def waiter():
        grant = slots.request()
        yield grant
        acquired.append(sim.now)
        slots.release()

    proc = sim.process(holder())
    sim.process(waiter())

    def killer():
        yield sim.timeout(5.0)
        proc.kill()

    sim.process(killer())
    sim.run()
    assert acquired == [5.0]


def test_waiter_on_killed_process_gets_none():
    sim = Simulator()

    def worker():
        yield sim.timeout(50.0)

    proc = sim.process(worker())

    def observer():
        value = yield proc
        return ("saw", value)

    obs = sim.process(observer())

    def killer():
        yield sim.timeout(2.0)
        proc.kill()

    sim.process(killer())
    assert sim.run_until_event(obs) == ("saw", None)
