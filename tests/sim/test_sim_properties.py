"""Property-based tests (hypothesis) for the simulation kernel and
resources."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import FairShareResource, SlotResource, Simulator


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1,
                max_size=50))
def test_kernel_processes_events_in_time_order(delays):
    sim = Simulator()
    seen = []
    for delay in delays:
        ev = sim.timeout(delay)
        ev.add_callback(lambda _e, d=delay: seen.append(d))
    sim.run()
    assert seen == sorted(seen)
    assert sim.now == max(delays)


@given(st.lists(st.floats(min_value=0.01, max_value=1e3), min_size=1,
                max_size=20),
       st.floats(min_value=0.1, max_value=1e3))
def test_fair_share_serves_all_work(amounts, capacity):
    """Total service time equals total work / capacity (work
    conservation under processor sharing)."""
    sim = Simulator()
    server = FairShareResource(sim, capacity)
    for amount in amounts:
        server.submit(amount)
    sim.run()
    assert sim.now <= sum(amounts) / capacity * (1 + 1e-6) + 1e-9
    assert sim.now >= sum(amounts) / capacity * (1 - 1e-6) - 1e-9
    assert server.active_jobs == 0


@given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1,
                max_size=20))
def test_fair_share_shorter_jobs_finish_first(amounts):
    """Under equal sharing, jobs submitted together finish in size order."""
    sim = Simulator()
    server = FairShareResource(sim, 10.0)
    finish = {}
    for i, amount in enumerate(amounts):
        ev = server.submit(amount)
        ev.add_callback(lambda _e, i=i: finish.__setitem__(i, sim.now))
    sim.run()
    order = sorted(range(len(amounts)), key=lambda i: finish[i])
    sizes_in_finish_order = [amounts[i] for i in order]
    for a, b in zip(sizes_in_finish_order, sizes_in_finish_order[1:]):
        assert a <= b + 1e-6


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=8),
       st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=1,
                max_size=25))
def test_slot_resource_bounds_concurrency(capacity, hold_times):
    sim = Simulator()
    slots = SlotResource(sim, capacity)
    peak = {"value": 0}

    def worker(hold):
        yield slots.request()
        peak["value"] = max(peak["value"], slots.in_use)
        yield sim.timeout(hold)
        slots.release()

    for hold in hold_times:
        sim.process(worker(hold))
    sim.run()
    assert peak["value"] <= capacity
    assert slots.in_use == 0
    # Makespan is at least the critical-path bound.
    assert sim.now >= max(hold_times) - 1e-9


@given(st.lists(st.tuples(st.floats(min_value=0.01, max_value=50.0),
                          st.booleans()),
                min_size=1, max_size=15))
def test_storage_conserves_bytes(writes):
    """StorageService: cache + disk service equals what was written
    (persistent data twice: foreground + writeback)."""
    from repro.hadoop.cluster import NodeSpec
    from repro.hadoop.node import SimNode
    from repro.net import NetworkFabric, ONE_GIGE

    spec = NodeSpec(cores=4, clock_ghz=2.0, ram_bytes=1e4, disks=1,
                    disk_bandwidth=100.0, cache_bandwidth=1000.0)
    sim = Simulator()
    node = SimNode(sim, "n0", spec, NetworkFabric(sim, ONE_GIGE))
    for nbytes, transient in writes:
        node.storage.write(nbytes, transient=transient)
    sim.run()
    persistent = sum(n for n, t in writes if not t)
    # all persistent bytes eventually reach the platter
    assert node.storage.disk.bytes_served.total >= persistent * (1 - 1e-6)
    assert node.storage.dirty_bytes <= 1e-6
