"""Tests for the discrete-event kernel: clock, ordering, determinism."""

import pytest

from repro.sim import Simulator, SimulationError


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_clock_custom_start():
    sim = Simulator(start_time=5.0)
    assert sim.now == 5.0


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(3.5)
    sim.run()
    assert sim.now == 3.5


def test_run_until_caps_clock():
    sim = Simulator()
    sim.timeout(10.0)
    sim.run(until=4.0)
    assert sim.now == 4.0


def test_run_until_advances_clock_past_last_event():
    sim = Simulator()
    sim.timeout(1.0)
    sim.run(until=9.0)
    assert sim.now == 9.0


def test_run_until_in_past_raises():
    sim = Simulator(start_time=10.0)
    with pytest.raises(SimulationError):
        sim.run(until=5.0)


def test_negative_timeout_raises():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_events_processed_counter():
    sim = Simulator()
    for _ in range(5):
        sim.timeout(1.0)
    sim.run()
    assert sim.events_processed == 5


def test_fifo_order_for_simultaneous_events():
    """Ties in time are broken by insertion order (determinism)."""
    sim = Simulator()
    order = []
    for i in range(10):
        ev = sim.timeout(1.0)
        ev.add_callback(lambda _e, i=i: order.append(i))
    sim.run()
    assert order == list(range(10))


def test_step_empty_queue_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.step()


def test_peek_returns_next_event_time():
    sim = Simulator()
    sim.timeout(2.0)
    sim.timeout(7.0)
    assert sim.peek() == 2.0


def test_peek_empty_is_infinite():
    sim = Simulator()
    assert sim.peek() == float("inf")


def test_call_at_runs_function_at_time():
    sim = Simulator()
    seen = []
    sim.call_at(4.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [4.0]


def test_call_at_in_past_raises():
    sim = Simulator(start_time=3.0)
    with pytest.raises(SimulationError):
        sim.call_at(1.0, lambda: None)


def test_run_until_event_returns_value():
    sim = Simulator()
    ev = sim.timeout(2.0, value="payload")
    assert sim.run_until_event(ev) == "payload"
    assert sim.now == 2.0


def test_run_until_event_raises_on_drained_queue():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        sim.run_until_event(ev)


def test_determinism_two_identical_runs():
    """The kernel must produce identical traces for identical models."""

    def build_and_run():
        sim = Simulator()
        trace = []

        def worker(name, delay):
            yield sim.timeout(delay)
            trace.append((name, sim.now))
            yield sim.timeout(delay * 2)
            trace.append((name, sim.now))

        for i in range(20):
            sim.process(worker(f"w{i}", 0.1 * (i % 7 + 1)))
        sim.run()
        return trace

    assert build_and_run() == build_and_run()
