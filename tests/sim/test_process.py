"""Tests for generator-based processes."""

import pytest

from repro.sim import Interrupt, Process, SimulationError, Simulator


def test_process_returns_value():
    sim = Simulator()

    def worker():
        yield sim.timeout(1.0)
        return "result"

    proc = sim.process(worker())
    assert sim.run_until_event(proc) == "result"


def test_process_is_alive_until_done():
    sim = Simulator()

    def worker():
        yield sim.timeout(5.0)

    proc = sim.process(worker())
    assert proc.is_alive
    sim.run()
    assert not proc.is_alive


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        Process(sim, lambda: None)


def test_processes_can_wait_on_each_other():
    sim = Simulator()

    def child():
        yield sim.timeout(2.0)
        return 21

    def parent():
        value = yield sim.process(child())
        return value * 2

    proc = sim.process(parent())
    assert sim.run_until_event(proc) == 42
    assert sim.now == 2.0


def test_sequential_timeouts_accumulate():
    sim = Simulator()

    def worker():
        yield sim.timeout(1.0)
        yield sim.timeout(2.0)
        yield sim.timeout(3.0)

    sim.process(worker())
    sim.run()
    assert sim.now == 6.0


def test_process_exception_propagates_to_waiter():
    sim = Simulator()

    def bad():
        yield sim.timeout(1.0)
        raise ValueError("inner failure")

    def waiter():
        try:
            yield sim.process(bad())
        except ValueError as exc:
            return f"caught: {exc}"

    proc = sim.process(waiter())
    assert sim.run_until_event(proc) == "caught: inner failure"


def test_unwaited_process_failure_surfaces():
    sim = Simulator()

    def bad():
        yield sim.timeout(1.0)
        raise ValueError("unhandled")

    sim.process(bad())
    with pytest.raises(ValueError, match="unhandled"):
        sim.run()


def test_yielding_non_event_raises_inside_process():
    sim = Simulator()

    def bad():
        yield 42

    proc = sim.process(bad())
    with pytest.raises(SimulationError):
        sim.run_until_event(proc)


def test_interrupt_wakes_process():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
            log.append("slept full")
        except Interrupt as intr:
            log.append(("interrupted", intr.cause, sim.now))

    proc = sim.process(sleeper())

    def interrupter():
        yield sim.timeout(3.0)
        proc.interrupt(cause="wake up")

    sim.process(interrupter())
    sim.run()
    assert log == [("interrupted", "wake up", 3.0)]


def test_interrupt_finished_process_raises():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    proc = sim.process(quick())
    sim.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_interrupted_process_can_continue():
    sim = Simulator()

    def resilient():
        total = 0.0
        try:
            yield sim.timeout(50.0)
        except Interrupt:
            pass
        yield sim.timeout(2.0)
        total = sim.now
        return total

    proc = sim.process(resilient())

    def interrupter():
        yield sim.timeout(1.0)
        proc.interrupt()

    sim.process(interrupter())
    assert sim.run_until_event(proc) == 3.0


def test_many_concurrent_processes():
    sim = Simulator()
    finished = []

    def worker(i):
        yield sim.timeout(float(i))
        finished.append(i)

    for i in range(100):
        sim.process(worker(i))
    sim.run()
    assert finished == sorted(finished)
    assert len(finished) == 100
    assert sim.now == 99.0
