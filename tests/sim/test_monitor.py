"""Tests for utilization trackers, byte counters and the monitor."""

import pytest

from repro.sim import (
    ByteCounter,
    FairShareResource,
    ResourceMonitor,
    Simulator,
    UtilizationTracker,
)


class TestUtilizationTracker:
    def test_capacity_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            UtilizationTracker(sim, capacity=0)

    def test_integral_accumulates(self):
        sim = Simulator()
        tr = UtilizationTracker(sim, capacity=4)
        tr.adjust(+2)
        sim.timeout(10.0)
        sim.run()
        assert tr.integral() == pytest.approx(20.0)
        assert tr.mean_utilization() == pytest.approx(0.5)

    def test_level_changes_mid_run(self):
        sim = Simulator()
        tr = UtilizationTracker(sim, capacity=1)

        def scenario():
            tr.adjust(+1)
            yield sim.timeout(3.0)
            tr.adjust(-1)
            yield sim.timeout(7.0)

        sim.process(scenario())
        sim.run()
        assert tr.integral() == pytest.approx(3.0)
        assert tr.mean_utilization() == pytest.approx(0.3)

    def test_negative_level_raises(self):
        sim = Simulator()
        tr = UtilizationTracker(sim)
        with pytest.raises(ValueError):
            tr.adjust(-1)

    def test_set_level(self):
        sim = Simulator()
        tr = UtilizationTracker(sim, capacity=8)
        tr.set_level(6)
        assert tr.level == 6


class TestByteCounter:
    def test_accumulates(self):
        c = ByteCounter()
        c.add(100)
        c.add(50.5)
        assert c.total == pytest.approx(150.5)

    def test_negative_raises(self):
        c = ByteCounter()
        with pytest.raises(ValueError):
            c.add(-1)


class TestResourceMonitor:
    def test_interval_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            ResourceMonitor(sim, interval=0)

    def test_rate_sampling(self):
        sim = Simulator()
        monitor = ResourceMonitor(sim, interval=1.0)
        counter = ByteCounter()
        monitor.register_rate("net_mb_s", counter, scale=1.0 / 1e6)
        monitor.install()

        def producer():
            for _ in range(5):
                counter.add(10e6)  # 10 MB per second
                yield sim.timeout(1.0)

        sim.process(producer())
        sim.run(until=5.0)
        times, values = monitor.series("net_mb_s")
        assert len(values) == 5
        for v in values:
            assert v == pytest.approx(10.0)

    def test_utilization_sampling(self):
        sim = Simulator()
        monitor = ResourceMonitor(sim, interval=1.0)
        tracker = UtilizationTracker(sim, capacity=2)
        monitor.register_utilization("cpu", tracker)
        monitor.install()

        def load():
            tracker.adjust(+2)  # 100% for 2s
            yield sim.timeout(2.0)
            tracker.adjust(-1)  # 50% for 2s
            yield sim.timeout(2.0)
            tracker.adjust(-1)

        sim.process(load())
        sim.run(until=4.0)
        _times, values = monitor.series("cpu")
        assert values[0] == pytest.approx(100.0)
        assert values[1] == pytest.approx(100.0)
        assert values[2] == pytest.approx(50.0)
        assert values[3] == pytest.approx(50.0)

    def test_gauge_sampling(self):
        sim = Simulator()
        monitor = ResourceMonitor(sim, interval=2.0)
        monitor.register_gauge("clock", lambda: sim.now)
        monitor.install()
        sim.run(until=6.0)
        _times, values = monitor.series("clock")
        assert values == [2.0, 4.0, 6.0]

    def test_duplicate_metric_raises(self):
        sim = Simulator()
        monitor = ResourceMonitor(sim)
        monitor.register_gauge("x", lambda: 0.0)
        with pytest.raises(ValueError):
            monitor.register_gauge("x", lambda: 1.0)

    def test_double_install_raises(self):
        sim = Simulator()
        monitor = ResourceMonitor(sim)
        monitor.install()
        with pytest.raises(RuntimeError):
            monitor.install()

    def test_peak_and_mean(self):
        sim = Simulator()
        monitor = ResourceMonitor(sim, interval=1.0)
        counter = ByteCounter()
        monitor.register_rate("rate", counter)
        monitor.install()

        def producer():
            counter.add(10.0)
            yield sim.timeout(1.0)
            counter.add(30.0)
            yield sim.timeout(1.0)

        sim.process(producer())
        sim.run(until=2.0)
        assert monitor.peak("rate") == pytest.approx(30.0)
        assert monitor.mean("rate") == pytest.approx(20.0)

    def test_peak_empty_series(self):
        sim = Simulator()
        monitor = ResourceMonitor(sim)
        monitor.register_gauge("never", lambda: 1.0)
        assert monitor.peak("never") == 0.0
        assert monitor.mean("never") == 0.0

    def test_monitor_with_fair_share_resource(self):
        """End-to-end: monitor a disk's throughput trace."""
        sim = Simulator()
        disk = FairShareResource(sim, capacity=100.0)
        monitor = ResourceMonitor(sim, interval=1.0)
        monitor.register_rate("disk_bytes", disk.bytes_served)
        monitor.install()
        disk.submit(300.0)
        sim.run(until=5.0)
        _t, values = monitor.series("disk_bytes")
        # ~100 B/s for 3 seconds then idle
        assert values[0] == pytest.approx(100.0)
        assert values[1] == pytest.approx(100.0)
        assert values[2] == pytest.approx(100.0)
        assert values[3] == pytest.approx(0.0)
