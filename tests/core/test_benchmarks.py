"""Tests for the named micro-benchmark definitions."""

import pytest

from repro.core import (
    ALL_BENCHMARKS,
    BenchmarkConfig,
    MR_AVG,
    MR_RAND,
    MR_SKEW,
    get_benchmark,
)


def test_three_benchmarks_defined():
    assert len(ALL_BENCHMARKS) == 3
    assert {b.name for b in ALL_BENCHMARKS} == {"MR-AVG", "MR-RAND", "MR-SKEW"}


def test_patterns_bound_correctly():
    assert MR_AVG.pattern == "avg"
    assert MR_RAND.pattern == "rand"
    assert MR_SKEW.pattern == "skew"


@pytest.mark.parametrize("name,expected", [
    ("MR-AVG", MR_AVG),
    ("mr-avg", MR_AVG),
    ("avg", MR_AVG),
    ("MR-RAND", MR_RAND),
    ("rand", MR_RAND),
    ("MR-SKEW", MR_SKEW),
    ("skew", MR_SKEW),
])
def test_lookup(name, expected):
    assert get_benchmark(name) is expected


def test_lookup_unknown_raises():
    with pytest.raises(KeyError):
        get_benchmark("MR-GAUSSIAN")


def test_zipf_extension_registered():
    from repro.core.benchmarks import EXTENDED_BENCHMARKS, MR_ZIPF

    assert get_benchmark("MR-ZIPF") is MR_ZIPF
    assert get_benchmark("zipf") is MR_ZIPF
    assert MR_ZIPF in EXTENDED_BENCHMARKS
    assert MR_ZIPF not in ALL_BENCHMARKS  # paper trio stays pristine


def test_configure_fresh():
    cfg = MR_SKEW.configure(num_maps=4, num_reduces=2)
    assert cfg.pattern == "skew"
    assert cfg.num_maps == 4


def test_configure_from_base():
    base = BenchmarkConfig(num_pairs=500, network="10GigE")
    cfg = MR_RAND.configure(base)
    assert cfg.pattern == "rand"
    assert cfg.num_pairs == 500
    assert cfg.network == "10GigE"


def test_descriptions_mention_distribution():
    assert "round-robin" in MR_AVG.description
    assert "pseudo-randomly" in MR_RAND.description or "random" in MR_RAND.description
    assert "50%" in MR_SKEW.description
