"""Tests for the programmatic shape validator."""

import pytest

from repro.core.validate import (
    ShapeCheck,
    ValidationReport,
    validate_headline_shapes,
)


class TestShapeCheck:
    def test_pass_inside_band(self):
        check = ShapeCheck("x", "~17%", 10, 25, measured=17.0)
        assert check.passed
        assert "PASS" in str(check)

    def test_fail_outside_band(self):
        check = ShapeCheck("x", "~17%", 10, 25, measured=30.0)
        assert not check.passed
        assert "FAIL" in str(check)

    def test_unmeasured_fails(self):
        assert not ShapeCheck("x", "~17%", 10, 25).passed


class TestValidationReport:
    def test_aggregates(self):
        report = ValidationReport(checks=[
            ShapeCheck("a", "", 0, 1, measured=0.5),
            ShapeCheck("b", "", 0, 1, measured=2.0),
        ])
        assert not report.passed
        assert len(report.failures) == 1
        assert "1 SHAPE(S) BROKEN" in str(report)

    def test_all_pass(self):
        report = ValidationReport(checks=[
            ShapeCheck("a", "", 0, 1, measured=0.5),
        ])
        assert report.passed
        assert "ALL SHAPES HOLD" in str(report)


def test_headline_validation_passes():
    """The repository's own calibration must satisfy its own bands —
    this is the one-call CI guard for the whole reproduction."""
    report = validate_headline_shapes(shuffle_gb=16.0)
    assert len(report.checks) == 5
    assert report.passed, f"\n{report}"
