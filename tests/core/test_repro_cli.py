"""The ``repro`` command (store / campaign / book) and the
``mr-microbench --store`` surface — including the end-to-end warm-start
acceptance: a 2×2 campaign run twice in *separate processes* executes
zero simulations the second time (``puts`` unmoved in
``repro store stats``) with bit-identical results.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.core.cli import build_repro_parser, main, repro_main
from repro.core.suite import clear_result_cache
from repro.store import ResultStore

from tests.store.conftest import store_root as cli_store_root

TINY_SPEC = {
    "name": "tiny",
    "figure": "Fig. T",
    "title": "Tiny acceptance sweep",
    "shuffle_gbs": [0.02, 0.04],
    "networks": ["1GigE", "ipoib-qdr"],
    "slaves": 2,
    "params": {"num_maps": 4, "num_reduces": 2,
               "key_size": 256, "value_size": 256},
}

MB_ARGS = ["--shuffle-gb", "0.02", "--maps", "4", "--reduces", "2",
           "--slaves", "2", "--key-size", "256", "--value-size", "256"]


@pytest.fixture(autouse=True)
def fresh_memo():
    clear_result_cache()
    yield
    clear_result_cache()


@pytest.fixture()
def spec_path(tmp_path):
    path = tmp_path / "tiny.json"
    path.write_text(json.dumps(TINY_SPEC))
    return path


def test_subcommands_parse():
    args = build_repro_parser().parse_args(["store", "stats"])
    assert args.command == "store"
    args = build_repro_parser().parse_args(
        ["campaign", "run", "spec.json", "-j", "2"])
    assert args.jobs == 2
    args = build_repro_parser().parse_args(["book", "out"])
    assert args.out_dir == "out"


class TestReproCli:
    def test_campaign_run_then_stats(self, tmp_path, spec_path, capsys):
        store = str(tmp_path / "store")
        rc = repro_main(["campaign", "run", str(spec_path),
                         "--store", store])
        out = capsys.readouterr().out
        assert rc == 0
        assert "4 simulated, 0 from the store" in out

        rc = repro_main(["store", "stats", "--store", store])
        out = capsys.readouterr().out
        assert rc == 0
        assert "puts" in out and "records" in out

    def test_store_ls_gc_export(self, tmp_path, spec_path, capsys):
        store = str(tmp_path / "store")
        repro_main(["campaign", "run", str(spec_path), "--store", store,
                    "--quiet"])
        capsys.readouterr()

        assert repro_main(["store", "ls", "--store", store]) == 0
        assert len(capsys.readouterr().out.splitlines()) == 4
        assert repro_main(["store", "ls", "-l", "--store", store]) == 0
        assert "MR-AVG" in capsys.readouterr().out

        jsonl = tmp_path / "dump.jsonl"
        assert repro_main(["store", "export", "--store", store,
                           "-o", str(jsonl)]) == 0
        capsys.readouterr()
        assert len(jsonl.read_text().splitlines()) == 4

        assert repro_main(["store", "gc", "--store", store]) == 0
        assert "removed 0" in capsys.readouterr().out
        assert repro_main(["store", "gc", "--all", "--store", store]) == 0
        assert "removed 4" in capsys.readouterr().out

    def test_book_from_store(self, tmp_path, spec_path, capsys):
        store = str(tmp_path / "store")
        repro_main(["campaign", "run", str(spec_path), "--store", store,
                    "--quiet"])
        rc = repro_main(["book", str(tmp_path / "book"), "--store", store])
        out = capsys.readouterr().out
        assert rc == 0
        assert (tmp_path / "book" / "index.md").exists()
        assert (tmp_path / "book" / "tiny.md").exists()
        assert "index.md" in out

    def test_book_on_empty_store_fails_cleanly(self, tmp_path, capsys):
        rc = repro_main(["book", str(tmp_path / "book"),
                         "--store", str(tmp_path / "empty")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_spec_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{ nope")
        rc = repro_main(["campaign", "run", str(bad),
                         "--store", str(tmp_path / "store")])
        assert rc == 2
        assert "invalid JSON" in capsys.readouterr().err


class TestMrMicrobenchStore:
    def test_warm_hit_renders_stored_report(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(MB_ARGS + ["--store", store]) == 0
        cold = capsys.readouterr().out
        assert "served from the result store" not in cold

        clear_result_cache()
        assert main(MB_ARGS + ["--store", store]) == 0
        warm = capsys.readouterr().out
        assert "served from the result store" in warm
        assert "JOB EXECUTION TIME" in warm
        # Same job time, to the displayed precision.
        cold_line = [ln for ln in cold.splitlines()
                     if "JOB EXECUTION TIME" in ln]
        warm_line = [ln for ln in warm.splitlines()
                     if "JOB EXECUTION TIME" in ln]
        assert cold_line == warm_line

    def test_no_store_forces_live_run(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        main(MB_ARGS + ["--store", store])
        clear_result_cache()
        assert main(MB_ARGS + ["--store", store, "--no-store"]) == 0
        assert "served from the result store" not in capsys.readouterr().out

    def test_timeline_bypasses_the_store(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        main(MB_ARGS + ["--store", store])
        clear_result_cache()
        assert main(MB_ARGS + ["--store", store, "--timeline"]) == 0
        out = capsys.readouterr().out
        assert "served from the result store" not in out
        assert "Task timeline:" in out


class TestWarmStartAcceptance:
    def test_second_process_executes_zero_simulations(self, tmp_path,
                                                      spec_path):
        """ISSUE acceptance: 2 sizes × 2 networks, two separate
        processes; the second run is served entirely from the disk
        store (puts unmoved) and is bit-identical."""
        import repro

        src_dir = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        store = str(tmp_path / "store")
        script = (
            "import sys\n"
            "from repro.campaign import load_campaign, run_campaign\n"
            "from repro.store import ResultStore\n"
            "spec, store = sys.argv[1], sys.argv[2]\n"
            "outcome = run_campaign(load_campaign(spec), store=store)\n"
            "for p in outcome.points:\n"
            "    print(p.key, p.result.execution_time.hex())\n"
            "print('executed', outcome.executed)\n"
            "print('puts', ResultStore(store).stats()['puts'])\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [src_dir, env.get("PYTHONPATH")]))
        runs = []
        for _ in range(2):
            proc = subprocess.run(
                [sys.executable, "-c", script, str(spec_path), store],
                capture_output=True, text=True, env=env, check=True,
            )
            runs.append(proc.stdout.splitlines())
        cold, warm = runs
        assert cold[-2] == "executed 4"
        assert warm[-2] == "executed 0"
        # puts unmoved across processes: zero simulations on run 2.
        assert cold[-1] == "puts 4"
        assert warm[-1] == "puts 4"
        # Bit-identical results (hex-exact), same keys.
        assert cold[:4] == warm[:4]

    def test_stats_visible_through_the_cli(self, tmp_path, spec_path,
                                           capsys):
        store = str(tmp_path / "store")
        repro_main(["campaign", "run", str(spec_path), "--store", store,
                    "--quiet"])
        clear_result_cache()
        repro_main(["campaign", "run", str(spec_path), "--store", store,
                    "--quiet"])
        out = capsys.readouterr().out
        assert "0 simulated, 4 from the store" in out
        repro_main(["store", "stats", "--store", store])
        stats_out = capsys.readouterr().out
        assert any(line.split(":")[-1].strip() == "4"
                   for line in stats_out.splitlines()
                   if line.startswith("puts"))


class TestHardenedCampaignCli:
    """ISSUE 5 surface: exit codes, --keep-going, resume, new flags."""

    def test_new_flags_parse(self):
        parser = build_repro_parser()
        args = parser.parse_args(
            ["campaign", "run", "spec.json", "--retries", "2",
             "--timeout", "5", "--backoff", "0.5", "--keep-going"])
        assert (args.retries, args.timeout, args.backoff) == (2, 5.0, 0.5)
        assert args.keep_going and not args.fail_fast
        args = parser.parse_args(
            ["campaign", "resume", "spec.json", "--fail-fast"])
        assert args.campaign_command == "resume" and args.fail_fast

    def test_fail_fast_and_keep_going_exclude(self, capsys):
        with pytest.raises(SystemExit):
            build_repro_parser().parse_args(
                ["campaign", "run", "s.json", "--fail-fast",
                 "--keep-going"])
        capsys.readouterr()

    def test_invalid_policy_is_a_usage_error(self, spec_path, tmp_path,
                                             capsys):
        rc = repro_main(["campaign", "run", str(spec_path),
                         "--store", str(tmp_path / "s"), "--retries", "-1"])
        assert rc == 2
        assert "retries" in capsys.readouterr().err

    def test_quarantined_point_exits_nonzero(self, spec_path, tmp_path,
                                             monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CHAOS_CRASH", "1")
        monkeypatch.setenv("REPRO_CHAOS_ATTEMPTS", "99")
        store = str(tmp_path / "store")
        rc = repro_main(["campaign", "run", str(spec_path),
                         "--store", store])
        captured = capsys.readouterr()
        assert rc == 1
        assert "3 simulated, 0 from the store, 1 failed" in captured.out
        assert "quarantined" in captured.err
        assert "campaign resume" in captured.err

    def test_keep_going_exits_zero_on_quarantine(self, spec_path, tmp_path,
                                                 monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CHAOS_CRASH", "1")
        monkeypatch.setenv("REPRO_CHAOS_ATTEMPTS", "99")
        rc = repro_main(["campaign", "run", str(spec_path),
                         "--store", str(tmp_path / "store"),
                         "--keep-going"])
        capsys.readouterr()
        assert rc == 0

    def test_resume_reruns_only_the_gap(self, spec_path, tmp_path,
                                        monkeypatch, capsys):
        store = str(tmp_path / "store")
        monkeypatch.setenv("REPRO_CHAOS_CRASH", "1")
        monkeypatch.setenv("REPRO_CHAOS_ATTEMPTS", "99")
        assert repro_main(["campaign", "run", str(spec_path),
                           "--store", store, "--quiet"]) == 1
        capsys.readouterr()
        monkeypatch.delenv("REPRO_CHAOS_CRASH")
        monkeypatch.delenv("REPRO_CHAOS_ATTEMPTS")
        clear_result_cache()
        rc = repro_main(["campaign", "resume", str(spec_path),
                         "--store", store])
        out = capsys.readouterr().out
        assert rc == 0
        assert "cleared 1 quarantined point(s)" in out
        assert "1 simulated, 3 from the store, 0 failed" in out
        assert ResultStore(store).quarantine() == {}

    def test_resume_on_complete_campaign_is_all_hits(self, spec_path,
                                                     tmp_path, capsys):
        store = str(tmp_path / "store")
        repro_main(["campaign", "run", str(spec_path), "--store", store,
                    "--quiet"])
        clear_result_cache()
        rc = repro_main(["campaign", "resume", str(spec_path),
                         "--store", store])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 simulated, 4 from the store" in out


class TestStoreVerifyCli:
    def test_clean_store_verifies_ok(self, spec_path, tmp_path, capsys):
        store = str(tmp_path / "store")
        repro_main(["campaign", "run", str(spec_path), "--store", store,
                    "--quiet"])
        capsys.readouterr()
        rc = repro_main(["store", "verify", "--store", store])
        out = capsys.readouterr().out
        assert rc == 0
        assert "4 ok, 0 bad" in out and "[OK]" in out

    def test_corrupt_record_fails_verify(self, spec_path, tmp_path,
                                         capsys):
        store_root = tmp_path / "store"
        repro_main(["campaign", "run", str(spec_path),
                    "--store", str(store_root), "--quiet"])
        capsys.readouterr()
        victim = next(store_root.glob("objects/*/*.json"))
        victim.write_text("{ torn")
        rc = repro_main(["store", "verify", "--store", str(store_root)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "PROBLEMS FOUND" in out and "unparsable" in out

    def test_verify_gc_sweeps_and_exits_zero(self, spec_path, tmp_path,
                                             capsys):
        store_root = tmp_path / "store"
        repro_main(["campaign", "run", str(spec_path),
                    "--store", str(store_root), "--quiet"])
        capsys.readouterr()
        victim = next(store_root.glob("objects/*/*.json"))
        victim.write_text("{ torn")
        rc = repro_main(["store", "verify", "--gc",
                         "--store", str(store_root)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "1 swept" in out
        assert repro_main(["store", "verify",
                           "--store", str(store_root)]) == 0


class TestStoreCliExtensions:
    """`stats --json`, `ls --campaign`, and `store migrate` — both
    backends, through the real CLI."""

    def _run_campaign(self, spec_path, store):
        assert repro_main(["campaign", "run", str(spec_path),
                           "--store", store, "--quiet"]) == 0

    def test_stats_json_is_machine_readable(self, spec_path, tmp_path,
                                            capsys, backend_name):
        store = cli_store_root(tmp_path, backend_name)
        self._run_campaign(spec_path, store)
        capsys.readouterr()
        assert repro_main(["store", "stats", "--json",
                           "--store", store]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["records"] == 4
        assert stats["puts"] == 4
        assert stats["backend"] == backend_name
        assert stats["hit_rate"] == 0.0  # 4 misses, 0 hits

    def test_stats_json_null_hit_rate_without_lookups(self, tmp_path,
                                                      capsys,
                                                      backend_name):
        store = cli_store_root(tmp_path, backend_name)
        ResultStore(store).quarantine_add("aa" * 32, {"error": "x"})
        capsys.readouterr()
        assert repro_main(["store", "stats", "--json",
                           "--store", store]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["hit_rate"] is None
        assert stats["quarantined"] == 1

    def test_ls_campaign_filters(self, spec_path, tmp_path, capsys,
                                 backend_name):
        store = cli_store_root(tmp_path, backend_name)
        self._run_campaign(spec_path, store)
        capsys.readouterr()
        assert repro_main(["store", "ls", "--campaign", "tiny",
                           "--store", store]) == 0
        assert len(capsys.readouterr().out.splitlines()) == 4
        assert repro_main(["store", "ls", "--campaign", "absent",
                           "--store", store]) == 0
        assert capsys.readouterr().out.splitlines() == []
        assert repro_main(["store", "ls", "-l", "--campaign", "tiny",
                           "--store", store]) == 0
        long_out = capsys.readouterr().out
        assert "MR-AVG" in long_out and "tiny" in long_out

    def test_migrate_copies_the_corpus(self, spec_path, tmp_path, capsys,
                                       backend_name):
        other = "sqlite" if backend_name == "filesystem" else "filesystem"
        src = cli_store_root(tmp_path, backend_name, "src")
        dst = cli_store_root(tmp_path, other, "dst")
        self._run_campaign(spec_path, src)
        capsys.readouterr()
        assert repro_main(["store", "migrate", src, dst]) == 0
        out = capsys.readouterr().out
        assert "migrated" in out and "records:     4" in out
        stats = ResultStore(dst).stats()
        assert stats["records"] == 4
        assert stats["puts"] == 4
        assert stats["backend"] == other

    def test_migrate_onto_itself_is_an_error(self, tmp_path, capsys,
                                             backend_name):
        store = cli_store_root(tmp_path, backend_name)
        ResultStore(store).quarantine_add("aa" * 32, {"error": "x"})
        capsys.readouterr()
        assert repro_main(["store", "migrate", store, store]) == 2
        assert "same store" in capsys.readouterr().err
