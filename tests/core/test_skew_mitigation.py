"""Tests for the key-splitting skew mitigation extension."""

from collections import Counter

import pytest

from repro.core import BenchmarkConfig, make_partitioner
from repro.core.partitioners import SkewedPartitioner, SplitSkewedPartitioner
from repro.datatypes import BytesWritable
from repro.hadoop import cluster_a, run_simulated_job

KEY = BytesWritable(b"k")
VALUE = BytesWritable(b"v")


def counts(p, n):
    c = Counter(p.get_partition(KEY, VALUE) for _ in range(n))
    return [c.get(r, 0) for r in range(p.num_reduces)]


class TestSplitSkewedPartitioner:
    def test_registered_pattern(self):
        p = make_partitioner("skew-split", 8)
        assert isinstance(p, SplitSkewedPartitioner)

    def test_hot_share_divided_by_split(self):
        plain = counts(SkewedPartitioner(8, seed=3), 100_000)
        split = counts(SplitSkewedPartitioner(8, seed=3, split=4), 100_000)
        assert sum(split) == sum(plain)
        assert max(split) < max(plain) * 0.5

    def test_total_pairs_conserved_per_seed(self):
        plain = counts(SkewedPartitioner(8, seed=3), 50_000)
        split = counts(SplitSkewedPartitioner(8, seed=3, split=4), 50_000)
        assert sum(plain) == sum(split) == 50_000

    def test_expected_distribution_matches_empirical(self):
        p = SplitSkewedPartitioner(8, seed=5, split=4)
        observed = counts(p, 200_000)
        expected = p.expected_distribution()
        assert sum(expected) == pytest.approx(1.0)
        for r in range(8):
            assert observed[r] / 200_000 == pytest.approx(
                expected[r], abs=0.01)

    def test_split_of_one_relocates_the_hot_partition(self):
        """split=1 moves the hot share onto the last reducer (which
        keeps its own tail share) — no mitigation, just relocation."""
        plain = SkewedPartitioner(8, seed=7).expected_distribution()
        one = SplitSkewedPartitioner(8, seed=7, split=1).expected_distribution()
        assert sum(one) == pytest.approx(1.0)
        assert one[0] == 0.0
        assert one[-1] == pytest.approx(plain[0] + plain[-1])

    def test_split_capped_by_reducers(self):
        p = SplitSkewedPartitioner(2, split=10)
        assert p.split == 2

    def test_split_validation(self):
        with pytest.raises(ValueError):
            SplitSkewedPartitioner(8, split=0)

    def test_reset_replays(self):
        p = SplitSkewedPartitioner(8, seed=3, split=4)
        first = [p.get_partition(KEY, VALUE) for _ in range(40)]
        p.reset()
        assert [p.get_partition(KEY, VALUE) for _ in range(40)] == first


class TestMitigationPaysOff:
    def test_mitigated_job_beats_skewed_job(self):
        """The paper's open question, answered in the affirmative:
        key-splitting recovers most of the skew penalty."""
        times = {}
        for pattern in ("avg", "skew", "skew-split"):
            config = BenchmarkConfig.from_shuffle_size(
                4e9, pattern=pattern, num_maps=8, num_reduces=8,
                key_size=512, value_size=512, network="ipoib-qdr")
            times[pattern] = run_simulated_job(
                config, cluster=cluster_a(2)).execution_time
        assert times["skew-split"] < times["skew"] * 0.88
        assert times["skew-split"] < (times["avg"] + times["skew"]) / 2
