"""Property-based tests (hypothesis) for the benchmark core."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BenchmarkConfig, compute_shuffle_matrix, make_partitioner
from repro.datatypes import BytesWritable

KEY = BytesWritable(b"k")
VALUE = BytesWritable(b"v")

patterns = st.sampled_from(["avg", "rand", "skew", "zipf"])


@given(patterns, st.integers(min_value=1, max_value=64),
       st.integers(min_value=0, max_value=500))
def test_partitions_always_in_range(pattern, num_reduces, n_records):
    p = make_partitioner(pattern, num_reduces, seed=7)
    for _ in range(n_records):
        assert 0 <= p.get_partition(KEY, VALUE) < num_reduces


@given(patterns, st.integers(min_value=1, max_value=64))
def test_expected_distribution_is_a_distribution(pattern, num_reduces):
    p = make_partitioner(pattern, num_reduces, seed=7)
    probs = p.expected_distribution()
    assert len(probs) == num_reduces
    assert abs(sum(probs) - 1.0) < 1e-9
    assert all(prob >= 0 for prob in probs)


@given(st.integers(min_value=1, max_value=64),
       st.integers(min_value=1, max_value=2000))
def test_avg_partitioner_perfectly_balanced(num_reduces, n_records):
    p = make_partitioner("avg", num_reduces)
    counts = [0] * num_reduces
    for _ in range(n_records):
        counts[p.get_partition(KEY, VALUE)] += 1
    assert max(counts) - min(counts) <= 1


@settings(max_examples=40, deadline=None)
@given(
    patterns,
    st.integers(min_value=1, max_value=20_000),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=1, max_value=16),
)
def test_shuffle_matrix_conserves_records(pattern, pairs, maps, reduces):
    config = BenchmarkConfig(pattern=pattern, num_pairs=pairs,
                             num_maps=maps, num_reduces=reduces,
                             key_size=8, value_size=8)
    matrix = compute_shuffle_matrix(config)
    assert matrix.total_records == pairs
    assert (matrix.records >= 0).all()


@settings(max_examples=40)
@given(
    st.floats(min_value=1e3, max_value=1e12),
    st.integers(min_value=1, max_value=10_000),
    st.integers(min_value=0, max_value=10_000),
    st.sampled_from(["BytesWritable", "Text"]),
)
def test_from_shuffle_size_accuracy(target, key_size, value_size, dtype):
    config = BenchmarkConfig.from_shuffle_size(
        target, key_size=key_size, value_size=value_size, data_type=dtype)
    # Within half a record of the target (or the 1-pair minimum).
    if config.num_pairs > 1:
        assert abs(config.shuffle_bytes - target) <= config.record_size


@given(st.integers(min_value=1, max_value=10_000),
       st.integers(min_value=1, max_value=64))
def test_pairs_for_map_partition_of_total(pairs, maps):
    config = BenchmarkConfig(num_pairs=pairs, num_maps=maps)
    shares = [config.pairs_for_map(m) for m in range(maps)]
    assert sum(shares) == pairs
    assert max(shares) - min(shares) <= 1
