"""Tests for NullInputFormat / NullOutputFormat."""

import pytest

from repro.core import DummySplit, NullInputFormat, NullOutputFormat
from repro.datatypes import NullWritable, Text


class TestNullInputFormat:
    def test_one_split_per_map(self):
        splits = NullInputFormat.get_splits(16)
        assert len(splits) == 16
        assert [s.map_id for s in splits] == list(range(16))

    def test_zero_maps_rejected(self):
        with pytest.raises(ValueError):
            NullInputFormat.get_splits(0)

    def test_splits_carry_no_data(self):
        for split in NullInputFormat.get_splits(4):
            assert split.length == 0

    def test_negative_map_id_rejected(self):
        with pytest.raises(ValueError):
            DummySplit(map_id=-1)

    def test_reader_yields_exactly_one_record(self):
        reader = NullInputFormat.create_record_reader(DummySplit(0))
        records = list(reader)
        assert records == [(NullWritable(), NullWritable())]

    def test_reader_progress(self):
        reader = NullInputFormat.create_record_reader(DummySplit(0))
        assert reader.progress == 0.0
        next(reader)
        assert reader.progress == 1.0


class TestNullOutputFormat:
    def test_writer_counts_and_discards(self):
        writer = NullOutputFormat.create_record_writer()
        writer.write(Text("k"), Text("v" * 100))
        writer.write(Text("k2"), Text("v" * 50))
        assert writer.records_written == 2
        # Text wire sizes: (1+1) + (1+100) + (1+2) + (1+50)
        assert writer.bytes_discarded == (2 + 101) + (3 + 51)

    def test_write_after_close_raises(self):
        writer = NullOutputFormat.create_record_writer()
        writer.close()
        assert writer.closed
        with pytest.raises(ValueError):
            writer.write(Text("k"), Text("v"))
