"""Tests for seed-variance trials."""

import pytest

from repro import MicroBenchmarkSuite, cluster_a
from repro.analysis import mean


@pytest.fixture(scope="module")
def suite():
    return MicroBenchmarkSuite(cluster=cluster_a(2))


SMALL = dict(num_maps=4, num_reduces=4, key_size=64, value_size=192)


def test_trials_count(suite):
    times = suite.run_trials("MR-RAND", trials=3, num_pairs=20_000, **SMALL)
    assert len(times) == 3
    assert all(t > 0 for t in times)


def test_trials_validation(suite):
    with pytest.raises(ValueError):
        suite.run_trials("MR-AVG", trials=0, num_pairs=100, **SMALL)


def test_avg_has_zero_seed_variance(suite):
    """Round-robin ignores the seed: every trial is identical."""
    times = suite.run_trials("MR-AVG", trials=3, num_pairs=20_000, **SMALL)
    assert max(times) - min(times) < 1e-9


def test_rand_varies_but_stays_near_avg(suite):
    """Random placement jitters mildly around the even baseline."""
    rand_times = suite.run_trials("MR-RAND", trials=4, num_pairs=50_000,
                                  **SMALL)
    avg_times = suite.run_trials("MR-AVG", trials=1, num_pairs=50_000,
                                 **SMALL)
    assert mean(rand_times) == pytest.approx(avg_times[0], rel=0.1)


def test_skew_variance_smaller_than_its_gap_to_avg(suite):
    """The skew penalty is structural, not seed luck: the spread across
    seeds is small next to the skew-vs-avg gap."""
    skew_times = suite.run_trials("MR-SKEW", trials=4, num_pairs=50_000,
                                  **SMALL)
    avg = suite.run_trials("MR-AVG", trials=1, num_pairs=50_000, **SMALL)[0]
    spread = max(skew_times) - min(skew_times)
    gap = mean(skew_times) - avg
    assert gap > 0
    assert spread < gap