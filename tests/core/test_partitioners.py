"""Tests for the MR-AVG / MR-RAND / MR-SKEW partitioners."""

from collections import Counter

import pytest

from repro.core import (
    AveragePartitioner,
    HashPartitioner,
    RandomPartitioner,
    SkewedPartitioner,
    distribution_stats,
    make_partitioner,
)
from repro.datatypes import BytesWritable

KEY = BytesWritable(b"key")
VALUE = BytesWritable(b"value")


def partition_counts(partitioner, n_records):
    counts = Counter()
    for _ in range(n_records):
        p = partitioner.get_partition(KEY, VALUE)
        assert 0 <= p < partitioner.num_reduces
        counts[p] += 1
    return [counts.get(r, 0) for r in range(partitioner.num_reduces)]


class TestAveragePartitioner:
    def test_perfectly_even(self):
        counts = partition_counts(AveragePartitioner(8), 8000)
        assert all(c == 1000 for c in counts)

    def test_spread_at_most_one(self):
        counts = partition_counts(AveragePartitioner(7), 1000)
        assert max(counts) - min(counts) <= 1

    def test_round_robin_order(self):
        p = AveragePartitioner(3)
        assert [p.get_partition(KEY, VALUE) for _ in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_reset(self):
        p = AveragePartitioner(4)
        p.get_partition(KEY, VALUE)
        p.reset()
        assert p.get_partition(KEY, VALUE) == 0

    def test_expected_distribution_uniform(self):
        assert AveragePartitioner(4).expected_distribution() == [0.25] * 4


class TestRandomPartitioner:
    def test_deterministic_with_seed(self):
        a = partition_counts(RandomPartitioner(8, seed=5), 1000)
        b = partition_counts(RandomPartitioner(8, seed=5), 1000)
        assert a == b

    def test_reset_replays_sequence(self):
        p = RandomPartitioner(8, seed=5)
        first = [p.get_partition(KEY, VALUE) for _ in range(20)]
        p.reset()
        second = [p.get_partition(KEY, VALUE) for _ in range(20)]
        assert first == second

    def test_near_even_distribution(self):
        """MR-RAND is 'relatively close to an even distribution'."""
        counts = partition_counts(RandomPartitioner(8, seed=1), 80_000)
        stats = distribution_stats(counts)
        assert stats["imbalance"] < 1.05

    def test_different_seeds_differ(self):
        a = partition_counts(RandomPartitioner(8, seed=1), 100)
        b = partition_counts(RandomPartitioner(8, seed=2), 100)
        assert a != b


class TestSkewedPartitioner:
    def test_reducer0_gets_half_plus_tail_share(self):
        """Reducer 0: 50% direct + uniform share of the random tail."""
        n = 8
        counts = partition_counts(SkewedPartitioner(n, seed=3), 100_000)
        share0 = counts[0] / sum(counts)
        expected = 0.5 + (1 - 0.671875) / n
        assert share0 == pytest.approx(expected, rel=0.03)

    def test_head_ordering(self):
        """Reducer 0 > reducer 1 > reducer 2 > tail reducers."""
        counts = partition_counts(SkewedPartitioner(8, seed=3), 100_000)
        assert counts[0] > counts[1] > counts[2] > max(counts[3:])

    def test_fixed_pattern_across_runs(self):
        """'this skewed distribution pattern is fixed for all runs'."""
        a = partition_counts(SkewedPartitioner(8, seed=9), 5000)
        b = partition_counts(SkewedPartitioner(8, seed=9), 5000)
        assert a == b

    def test_expected_distribution_sums_to_one(self):
        for n in (1, 2, 3, 4, 8, 16, 64):
            probs = SkewedPartitioner(n).expected_distribution()
            assert sum(probs) == pytest.approx(1.0)
            assert all(p >= 0 for p in probs)

    def test_expected_matches_empirical(self):
        n = 16
        p = SkewedPartitioner(n, seed=11)
        counts = partition_counts(p, 200_000)
        expected = p.expected_distribution()
        for r in range(n):
            assert counts[r] / 200_000 == pytest.approx(expected[r], abs=0.01)

    def test_two_reducers_head_truncates(self):
        counts = partition_counts(SkewedPartitioner(2, seed=3), 50_000)
        share0 = counts[0] / sum(counts)
        # 50% direct + half of the 50% tail = 75%
        assert share0 == pytest.approx(0.75, abs=0.02)

    def test_single_reducer_all_pairs(self):
        counts = partition_counts(SkewedPartitioner(1, seed=3), 100)
        assert counts == [100]

    def test_skew_much_heavier_than_avg(self):
        """The property Figs. 2(c)/3(c) rest on: max reducer load under
        skew is several times the average load."""
        skew = partition_counts(SkewedPartitioner(8, seed=1), 80_000)
        stats = distribution_stats(skew)
        assert stats["imbalance"] > 3.5  # ~0.54 * 8


class TestHashPartitioner:
    def test_in_range(self):
        p = HashPartitioner(8)
        for i in range(100):
            key = BytesWritable(bytes([i]))
            assert 0 <= p.get_partition(key, VALUE) < 8

    def test_same_key_same_partition(self):
        p = HashPartitioner(8)
        assert p.get_partition(KEY, VALUE) == p.get_partition(KEY, VALUE)


class TestFactoryAndStats:
    def test_make_partitioner(self):
        assert isinstance(make_partitioner("avg", 4), AveragePartitioner)
        assert isinstance(make_partitioner("rand", 4), RandomPartitioner)
        assert isinstance(make_partitioner("skew", 4), SkewedPartitioner)

    def test_make_partitioner_unknown(self):
        with pytest.raises(ValueError):
            make_partitioner("gaussian", 4)

    def test_zero_reduces_rejected(self):
        with pytest.raises(ValueError):
            AveragePartitioner(0)

    def test_distribution_stats_empty(self):
        stats = distribution_stats([0, 0])
        assert stats["total"] == 0 and stats["imbalance"] == 0.0

    def test_distribution_stats_values(self):
        stats = distribution_stats([10, 20, 30])
        assert stats["total"] == 60
        assert stats["max"] == 30 and stats["min"] == 10
        assert stats["imbalance"] == pytest.approx(1.5)
        assert stats["top_share"] == pytest.approx(0.5)
