"""Tests for BenchmarkConfig."""

import pytest

from repro.core import BenchmarkConfig
from repro.datatypes import BytesWritable, Text


def test_defaults_match_paper_setup():
    """Default: MR-AVG, 1KB pairs, 16 maps / 8 reduces, BytesWritable."""
    cfg = BenchmarkConfig()
    assert cfg.pattern == "avg"
    assert cfg.pair_size == 1024
    assert cfg.num_maps == 16
    assert cfg.num_reduces == 8
    assert cfg.data_type == "BytesWritable"


@pytest.mark.parametrize(
    "kwargs",
    [
        {"pattern": "uniform"},
        {"key_size": 0},
        {"value_size": -1},
        {"num_pairs": 0},
        {"num_maps": 0},
        {"num_reduces": 0},
        {"data_type": "IntWritable"},
        {"data_type": "NoSuchWritable"},
    ],
)
def test_validation_rejects(kwargs):
    with pytest.raises((ValueError, KeyError)):
        BenchmarkConfig(**kwargs)


@pytest.mark.parametrize("attr", ["data_type", "key_type", "value_type"])
def test_unknown_writable_raises_value_error(attr):
    """Unregistered Writable names surface as ValueError (not a raw
    KeyError from the registry) so callers can catch config errors
    uniformly."""
    with pytest.raises(ValueError, match="registered Writable"):
        BenchmarkConfig(**{attr: "NoSuchWritable"})


def test_writable_resolution():
    assert BenchmarkConfig().writable is BytesWritable
    assert BenchmarkConfig(data_type="Text").writable is Text


def test_record_size_bytes_writable():
    """512B key + 512B value as BytesWritable:
    payloads 516 each, IFile headers vint(516)=3 each."""
    cfg = BenchmarkConfig(key_size=512, value_size=512)
    assert cfg.record_size == 3 + 3 + 516 + 516


def test_shuffle_bytes():
    cfg = BenchmarkConfig(num_pairs=1000)
    assert cfg.shuffle_bytes == 1000 * cfg.record_size


def test_pairs_for_map_even_split():
    cfg = BenchmarkConfig(num_pairs=160, num_maps=16)
    assert all(cfg.pairs_for_map(i) == 10 for i in range(16))


def test_pairs_for_map_remainder():
    cfg = BenchmarkConfig(num_pairs=10, num_maps=4)
    shares = [cfg.pairs_for_map(i) for i in range(4)]
    assert shares == [3, 3, 2, 2]
    assert sum(shares) == 10


def test_pairs_for_map_out_of_range():
    cfg = BenchmarkConfig()
    with pytest.raises(IndexError):
        cfg.pairs_for_map(16)


def test_from_shuffle_size_hits_target():
    cfg = BenchmarkConfig.from_shuffle_size(16e9, key_size=512, value_size=512)
    assert cfg.shuffle_bytes == pytest.approx(16e9, rel=0.001)


def test_from_shuffle_size_minimum_one_pair():
    cfg = BenchmarkConfig.from_shuffle_size(1.0)
    assert cfg.num_pairs == 1


def test_describe_contains_all_parameters():
    desc = BenchmarkConfig().describe()
    for key in ("pattern", "key_size", "value_size", "num_pairs",
                "num_maps", "num_reduces", "data_type", "network",
                "record_size", "shuffle_bytes"):
        assert key in desc


def test_config_is_hashable_and_frozen():
    cfg = BenchmarkConfig()
    with pytest.raises(AttributeError):
        cfg.num_maps = 4  # type: ignore[misc]
    assert hash(cfg) == hash(BenchmarkConfig())
