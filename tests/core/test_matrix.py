"""Tests for shuffle-matrix computation."""

import numpy as np
import pytest

from repro.core import BenchmarkConfig, compute_shuffle_matrix
from repro.core.matrix import ShuffleMatrix, _exact_counts, _sampled_counts


def cfg(**kw):
    defaults = dict(num_pairs=8000, num_maps=4, num_reduces=8,
                    key_size=16, value_size=48)
    defaults.update(kw)
    return BenchmarkConfig(**defaults)


def test_record_conservation_all_patterns():
    for pattern in ("avg", "rand", "skew"):
        config = cfg(pattern=pattern)
        matrix = compute_shuffle_matrix(config)
        assert matrix.total_records == config.num_pairs


def test_shape_validation():
    config = cfg()
    with pytest.raises(ValueError):
        ShuffleMatrix(config, np.zeros((2, 2)))


def test_avg_matrix_is_exactly_even():
    config = cfg(pattern="avg", num_pairs=6400)
    matrix = compute_shuffle_matrix(config)
    loads = matrix.reducer_loads()
    assert max(loads) - min(loads) <= config.num_maps  # +-1 per map


def test_avg_closed_form_matches_real_partitioner():
    """The analytic round-robin split equals actually running
    AveragePartitioner over the stream."""
    config = cfg(pattern="avg", num_pairs=1003, num_maps=3, num_reduces=7)
    matrix = compute_shuffle_matrix(config)
    for map_id in range(config.num_maps):
        exact = _exact_counts(config, map_id)
        assert np.array_equal(matrix.records[map_id], exact)


def test_skew_matrix_reducer0_dominates():
    config = cfg(pattern="skew", num_pairs=80_000)
    matrix = compute_shuffle_matrix(config)
    loads = matrix.reducer_loads()
    assert loads[0] > 0.5 * sum(loads)
    assert loads[0] > 3 * max(loads[3:])


def test_bytes_accounting():
    config = cfg()
    matrix = compute_shuffle_matrix(config)
    assert matrix.total_bytes == config.num_pairs * config.record_size
    assert matrix.bytes_for_reducer(0) == (
        matrix.records_for_reducer(0) * config.record_size
    )
    assert matrix.bytes_for_map(0) == matrix.records_for_map(0) * config.record_size
    assert matrix.bytes.sum() == matrix.total_bytes


def test_map_row_totals():
    config = cfg()
    matrix = compute_shuffle_matrix(config)
    for map_id in range(config.num_maps):
        assert matrix.records_for_map(map_id) == config.pairs_for_map(map_id)


def test_sampled_path_used_for_large_counts():
    """Above the exact limit the multinomial path still conserves records."""
    config = cfg(pattern="rand", num_pairs=4_000_000)
    matrix = compute_shuffle_matrix(config, exact_limit=1000)
    assert matrix.total_records == config.num_pairs


def test_sampled_matches_exact_in_distribution():
    """Exact and sampled paths agree on reducer shares within noise."""
    config = cfg(pattern="skew", num_pairs=200_000, num_maps=1)
    exact = _exact_counts(config, 0).astype(float)
    sampled = _sampled_counts(config, 0).astype(float)
    exact /= exact.sum()
    sampled /= sampled.sum()
    np.testing.assert_allclose(exact, sampled, atol=0.01)


def test_deterministic():
    config = cfg(pattern="rand")
    a = compute_shuffle_matrix(config)
    b = compute_shuffle_matrix(config)
    assert np.array_equal(a.records, b.records)


def test_matrix_is_nonnegative():
    for pattern in ("avg", "rand", "skew"):
        matrix = compute_shuffle_matrix(cfg(pattern=pattern))
        assert (matrix.records >= 0).all()
