"""Tests for the deterministic key/value generator."""

import pytest

from repro.core import BenchmarkConfig, KeyValueGenerator
from repro.datatypes import BytesWritable, Text


def small_config(**kw):
    defaults = dict(num_pairs=100, num_maps=4, num_reduces=8,
                    key_size=16, value_size=32)
    defaults.update(kw)
    return BenchmarkConfig(**defaults)


def test_generates_configured_count():
    cfg = small_config()
    gen = KeyValueGenerator(cfg, map_id=0)
    assert len(gen) == cfg.pairs_for_map(0)
    assert len(list(gen)) == cfg.pairs_for_map(0)


def test_map_id_range_check():
    cfg = small_config()
    with pytest.raises(IndexError):
        KeyValueGenerator(cfg, map_id=4)


def test_payload_sizes_match_config():
    cfg = small_config(key_size=10, value_size=77)
    for key, value in KeyValueGenerator(cfg, 0):
        assert len(key.payload) == 10
        assert len(value.payload) == 77
        break


def test_unique_keys_bounded_by_reducers():
    """Sect 4.2: unique pairs restricted to the number of reducers."""
    cfg = small_config(num_reduces=5)
    keys = {bytes(k.payload) for k, _v in KeyValueGenerator(cfg, 0)}
    assert len(keys) == 5


def test_keys_cycle_round_robin():
    cfg = small_config(num_reduces=3)
    gen = KeyValueGenerator(cfg, 0)
    pairs = list(gen)
    assert pairs[0][0] == pairs[3][0] == pairs[6][0]
    assert pairs[0][0] != pairs[1][0]


def test_deterministic_across_instances():
    cfg = small_config()
    a = [(k.payload, v.payload) for k, v in KeyValueGenerator(cfg, 1)]
    b = [(k.payload, v.payload) for k, v in KeyValueGenerator(cfg, 1)]
    assert a == b


def test_different_seeds_differ():
    a = KeyValueGenerator(small_config(seed=1), 0)
    b = KeyValueGenerator(small_config(seed=2), 0)
    ka = next(iter(a))[0].payload
    kb = next(iter(b))[0].payload
    assert ka != kb


def test_bytes_writable_type():
    cfg = small_config(data_type="BytesWritable")
    key, value = next(iter(KeyValueGenerator(cfg, 0)))
    assert isinstance(key, BytesWritable) and isinstance(value, BytesWritable)


def test_text_type_is_valid_utf8():
    cfg = small_config(data_type="Text")
    key, value = next(iter(KeyValueGenerator(cfg, 0)))
    assert isinstance(key, Text) and isinstance(value, Text)
    str(key)  # decodes without error
    assert len(key.encoded) == cfg.key_size


def test_text_payload_size_exact():
    cfg = small_config(data_type="Text", key_size=100, value_size=900)
    key, value = next(iter(KeyValueGenerator(cfg, 0)))
    assert len(key) == 100 and len(value) == 900


def test_key_payload_accessor():
    cfg = small_config(num_reduces=4)
    gen = KeyValueGenerator(cfg, 0)
    assert gen.key_payload(0) == gen.key_payload(4)
    assert gen.key_payload(1) != gen.key_payload(0)
