"""Tests for the extension features: MR-ZIPF and mixed key/value types."""

from collections import Counter

import numpy as np
import pytest

from repro.core import BenchmarkConfig, compute_shuffle_matrix
from repro.core.partitioners import ZipfPartitioner
from repro.datatypes import BytesWritable, Text
from repro.engine import LocalJobRunner
from repro.hadoop import cluster_a, run_simulated_job

KEY = BytesWritable(b"key")
VALUE = BytesWritable(b"value")


class TestZipfPartitioner:
    def partition_counts(self, p, n):
        counts = Counter(p.get_partition(KEY, VALUE) for _ in range(n))
        return [counts.get(r, 0) for r in range(p.num_reduces)]

    def test_in_range(self):
        p = ZipfPartitioner(8, seed=1)
        for _ in range(1000):
            assert 0 <= p.get_partition(KEY, VALUE) < 8

    def test_monotone_decreasing_loads(self):
        counts = self.partition_counts(ZipfPartitioner(8, seed=1), 100_000)
        # Zipf: each reducer gets (statistically) less than the previous.
        for r in range(3):
            assert counts[r] > counts[r + 1]

    def test_expected_distribution_sums_to_one(self):
        for n in (1, 2, 8, 64):
            probs = ZipfPartitioner(n).expected_distribution()
            assert sum(probs) == pytest.approx(1.0)

    def test_expected_matches_empirical(self):
        p = ZipfPartitioner(8, seed=3)
        counts = self.partition_counts(p, 200_000)
        expected = p.expected_distribution()
        for r in range(8):
            assert counts[r] / 200_000 == pytest.approx(expected[r], abs=0.01)

    def test_exponent_controls_skew(self):
        mild = ZipfPartitioner(8, exponent=0.5).expected_distribution()
        harsh = ZipfPartitioner(8, exponent=2.0).expected_distribution()
        assert harsh[0] > mild[0]

    def test_exponent_validation(self):
        with pytest.raises(ValueError):
            ZipfPartitioner(8, exponent=0)

    def test_reset_replays(self):
        p = ZipfPartitioner(8, seed=5)
        first = [p.get_partition(KEY, VALUE) for _ in range(50)]
        p.reset()
        assert [p.get_partition(KEY, VALUE) for _ in range(50)] == first

    def test_zipf_config_and_matrix(self):
        config = BenchmarkConfig(pattern="zipf", num_pairs=50_000,
                                 num_maps=4, num_reduces=8)
        matrix = compute_shuffle_matrix(config)
        loads = matrix.reducer_loads()
        assert matrix.total_records == config.num_pairs
        assert loads[0] > loads[-1]

    def test_zipf_simulated_job_between_avg_and_skew(self):
        """Zipf(1) over 8 reducers is milder than MR-SKEW's 50 % head."""
        times = {}
        for pattern in ("avg", "zipf", "skew"):
            config = BenchmarkConfig.from_shuffle_size(
                4e9, pattern=pattern, num_maps=8, num_reduces=8,
                network="1GigE")
            times[pattern] = run_simulated_job(
                config, cluster=cluster_a(2)).execution_time
        assert times["avg"] < times["zipf"] < times["skew"]

    def test_zipf_functional_engine_matches_matrix(self):
        config = BenchmarkConfig(pattern="zipf", num_pairs=3000,
                                 num_maps=3, num_reduces=4,
                                 key_size=8, value_size=8)
        observed = LocalJobRunner(config).run()
        analytic = compute_shuffle_matrix(config)
        assert np.array_equal(observed.shuffle_records, analytic.records)


class TestMixedTypes:
    def test_defaults_follow_data_type(self):
        config = BenchmarkConfig(data_type="Text")
        assert config.key_writable is Text
        assert config.value_writable is Text

    def test_mixed_override(self):
        config = BenchmarkConfig(data_type="BytesWritable", key_type="Text")
        assert config.key_writable is Text
        assert config.value_writable is BytesWritable

    def test_record_size_accounts_for_each_type(self):
        # Text key (vint framing) + BytesWritable value (4-byte header)
        mixed = BenchmarkConfig(key_type="Text", value_type="BytesWritable",
                                key_size=100, value_size=100)
        # key wire = 101, value wire = 104; headers vint(101)+vint(104)
        assert mixed.record_size == 1 + 1 + 101 + 104

    def test_invalid_key_type_rejected(self):
        with pytest.raises((ValueError, KeyError)):
            BenchmarkConfig(key_type="IntWritable")

    def test_describe_reports_types(self):
        desc = BenchmarkConfig(key_type="Text").describe()
        assert desc["key_type"] == "Text"
        assert desc["value_type"] == "BytesWritable"

    def test_functional_engine_runs_mixed_types(self):
        config = BenchmarkConfig(
            pattern="avg", num_pairs=500, num_maps=2, num_reduces=2,
            key_size=16, value_size=64,
            key_type="Text", value_type="BytesWritable",
        )
        result = LocalJobRunner(config).run()
        assert sum(result.reduce_input_records) == 500

    def test_simulated_job_runs_mixed_types(self):
        config = BenchmarkConfig(
            num_pairs=50_000, num_maps=4, num_reduces=2,
            key_type="Text", value_type="BytesWritable",
        )
        result = run_simulated_job(config, cluster=cluster_a(2))
        assert result.execution_time > 0
