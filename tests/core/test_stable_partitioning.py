"""Seed-stable hash partitioning (the PYTHONHASHSEED bugfix).

``HashPartitioner`` used to route keys with the builtin ``hash()``,
whose value for bytes/str-backed objects changes with every interpreter
launch (``PYTHONHASHSEED`` randomization since Python 3.3). Partition
choices — and therefore any skew measurement built on them — were not
reproducible across runs. The fix gives every ``Writable`` a
``stable_hash`` that mirrors Hadoop's ``hashCode`` contract and depends
only on the serialized content.
"""

import os
import subprocess
import sys

from repro.core.partitioners import HashPartitioner
from repro.datatypes import BytesWritable, Text
from repro.datatypes.writable import (
    IntWritable,
    LongWritable,
    NullWritable,
    stable_hash_bytes,
)


class TestStableHashBytes:
    def test_matches_hadoop_hash_bytes(self):
        """h = 31*h + signed_byte, seeded with 1 — pinned values computed
        from Java's WritableComparator.hashBytes."""
        assert stable_hash_bytes(b"") == 1
        assert stable_hash_bytes(b"abc") == 126145
        assert stable_hash_bytes(b"hello") == 127791473

    def test_wraps_to_signed_32_bits(self):
        h = stable_hash_bytes(bytes(range(256)))
        assert h == -764092287
        assert -(2**31) <= h < 2**31

    def test_high_bytes_are_signed(self):
        # 0xFF must enter the recurrence as -1, as Java bytes would.
        assert stable_hash_bytes(b"\xff") == 31 * 1 - 1


class TestWritableStableHash:
    def test_int_writable_is_value(self):
        assert IntWritable(-5).stable_hash() == -5
        assert IntWritable(42).stable_hash() == 42

    def test_long_writable_folds_halves(self):
        # Java LongWritable.hashCode(): (int)(value ^ (value >>> 32)).
        # low 32 bits of (2**40 + 3) are 3; (2**40 + 3) >> 32 is 256.
        assert LongWritable(2**40 + 3).stable_hash() == 3 ^ 256
        assert LongWritable(7).stable_hash() == 7

    def test_null_writable(self):
        assert NullWritable().stable_hash() == 1

    def test_binary_comparable_types_hash_payload_only(self):
        # Text and BytesWritable frame the same payload differently on
        # the wire, but Java hashes only the payload — so must we.
        assert Text("hello").stable_hash() == 127791473
        assert BytesWritable(b"hello").stable_hash() == 127791473

    def test_equal_values_hash_equal(self):
        assert Text("some-key").stable_hash() == Text("some-key").stable_hash()
        assert (BytesWritable(b"xy").stable_hash()
                == BytesWritable(b"xy").stable_hash())


class TestHashPartitionerStability:
    def test_pinned_partition_choices(self):
        """The exact routing of 1000 Text keys over 8 reducers is pinned;
        a change here breaks cross-run reproducibility."""
        p = HashPartitioner(8)
        parts = [p.get_partition(Text(f"key-{i}"), None) for i in range(1000)]
        assert parts[:16] == [1, 2, 3, 4, 5, 6, 7, 0,
                              1, 2, 6, 7, 0, 1, 2, 3]
        counts = [parts.count(r) for r in range(8)]
        assert counts == [124, 126, 127, 125, 124, 124, 125, 125]

    def test_nonnegative_for_negative_hash(self):
        # Hadoop masks with Integer.MAX_VALUE before the modulo.
        p = HashPartitioner(8)
        key = BytesWritable(bytes(range(256)))  # stable_hash < 0
        assert 0 <= p.get_partition(key, None) < 8

    def test_identical_across_hash_seeds(self):
        """The actual bug: partitions must not vary with PYTHONHASHSEED."""
        script = (
            "from repro.core.partitioners import HashPartitioner\n"
            "from repro.datatypes import Text\n"
            "p = HashPartitioner(8)\n"
            "print([p.get_partition(Text(f'key-{i}'), None)"
            " for i in range(64)])\n"
        )
        import repro

        src_dir = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        outputs = []
        for seed in ("0", "12345"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = os.pathsep.join(
                filter(None, [src_dir, env.get("PYTHONPATH")]))
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, env=env, check=True,
            )
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]
