"""Tests for the paper-style report renderer."""

import pytest

from repro import MicroBenchmarkSuite, cluster_a, render_report


@pytest.fixture(scope="module")
def result():
    suite = MicroBenchmarkSuite(cluster=cluster_a(2))
    return suite.run("MR-AVG", shuffle_gb=0.5, num_maps=4, num_reduces=2,
                     monitor_interval=1.0)


def test_report_contains_configuration(result):
    text = render_report(result)
    assert "MR-AVG" in text
    assert "Key size" in text
    assert "Shuffle data" in text
    assert "Map tasks" in text


def test_report_contains_job_time(result):
    text = render_report(result)
    assert "JOB EXECUTION TIME" in text
    assert f"{result.execution_time:.2f}" in text


def test_report_contains_utilization(result):
    text = render_report(result)
    assert "cpu_pct" in text
    assert "net_rx_mb_s" in text


def test_report_contains_reduce_task_table(result):
    text = render_report(result)
    assert "fetched (MB)" in text


def test_report_without_monitor():
    suite = MicroBenchmarkSuite(cluster=cluster_a(2))
    result = suite.run("MR-AVG", shuffle_gb=0.25, num_maps=4, num_reduces=2)
    text = render_report(result)
    assert "monitor_interval" in text  # the hint line
