"""Tests for the mr-microbench CLI."""

import pytest

from repro.core.cli import build_parser, main


def test_defaults_parse():
    args = build_parser().parse_args([])
    assert args.benchmark == "MR-AVG"
    assert args.network == "1GigE"


def test_full_run(capsys):
    rc = main([
        "--benchmark", "MR-AVG", "--network", "ipoib-qdr",
        "--num-pairs", "20000", "--maps", "4", "--reduces", "2",
        "--slaves", "2",
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "JOB EXECUTION TIME" in out
    assert "IPoIB-QDR(32Gbps)" in out


def test_skew_benchmark(capsys):
    rc = main(["--benchmark", "MR-SKEW", "--num-pairs", "20000",
               "--maps", "4", "--reduces", "2", "--slaves", "2"])
    assert rc == 0
    assert "MR-SKEW" in capsys.readouterr().out


def test_yarn_framework(capsys):
    rc = main(["--framework", "yarn", "--num-pairs", "10000",
               "--maps", "4", "--reduces", "2", "--slaves", "2"])
    assert rc == 0
    assert "yarn" in capsys.readouterr().out


def test_cluster_b(capsys):
    rc = main(["--cluster", "b", "--num-pairs", "10000",
               "--maps", "4", "--reduces", "2", "--slaves", "2"])
    assert rc == 0
    assert "Stampede" in capsys.readouterr().out


def test_monitor_flag(capsys):
    rc = main(["--num-pairs", "100000", "--maps", "4", "--reduces", "2",
               "--slaves", "2", "--monitor", "1"])
    assert rc == 0
    assert "cpu_pct" in capsys.readouterr().out


def test_unknown_network_fails_cleanly(capsys):
    rc = main(["--network", "smoke-signals", "--num-pairs", "1000"])
    assert rc == 2
    assert "error" in capsys.readouterr().err


def test_mutually_exclusive_size_options():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--shuffle-gb", "1", "--num-pairs", "10"])


def test_text_data_type(capsys):
    rc = main(["--data-type", "Text", "--num-pairs", "10000",
               "--maps", "4", "--reduces", "2", "--slaves", "2"])
    assert rc == 0
    assert "Text" in capsys.readouterr().out


class TestFaultFlags:
    ARGS = ["--num-pairs", "20000", "--maps", "4", "--reduces", "2",
            "--slaves", "2"]

    def test_kill_node_renders_resilience_section(self, capsys):
        rc = main(self.ARGS + ["--kill-node", "slave1@3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Fault injection / resilience:" in out
        assert "Crash of slave1" in out

    def test_slow_node_flag(self, capsys):
        rc = main(self.ARGS + ["--slow-node", "slave1:2"])
        assert rc == 0
        assert "Fault injection / resilience:" in capsys.readouterr().out

    def test_task_failure_prob_flag(self, capsys):
        rc = main(self.ARGS + ["--task-failure-prob", "0.2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "injected" in out

    def test_fault_plan_file(self, capsys, tmp_path):
        plan = tmp_path / "plan.json"
        plan.write_text('{"slow_nodes": [{"node": "slave0",'
                        ' "cpu_factor": 2.0}]}')
        rc = main(self.ARGS + ["--fault-plan", str(plan)])
        assert rc == 0
        assert "Fault injection / resilience:" in capsys.readouterr().out

    def test_no_fault_flags_no_section(self, capsys):
        rc = main(self.ARGS)
        assert rc == 0
        assert "Fault injection" not in capsys.readouterr().out

    def test_malformed_kill_node_fails_cleanly(self, capsys):
        rc = main(self.ARGS + ["--kill-node", "slave1"])
        assert rc == 2
        assert "NODE@TIME" in capsys.readouterr().err

    def test_malformed_slow_node_fails_cleanly(self, capsys):
        rc = main(self.ARGS + ["--slow-node", "slave0:fast"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_plan_file_fails_cleanly(self, capsys):
        rc = main(self.ARGS + ["--fault-plan", "/no/such/plan.json"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_node_fails_cleanly(self, capsys):
        rc = main(self.ARGS + ["--kill-node", "slave99@3"])
        assert rc == 2
        assert "unknown nodes" in capsys.readouterr().err
