"""Bit-exact equivalence of the vectorized ``exact_counts`` paths
against the per-record ``get_partition`` loop.

``exact_counts`` must produce (a) the identical per-reducer counts and
(b) the identical PRNG state afterwards, for every pattern, reducer
count (powers of two take no rejection draws; others do) and pair count
(including refill-boundary sizes).
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partitioners import make_partitioner

PATTERNS = ("avg", "rand", "skew", "zipf", "skew-split")


def _loop_counts(partitioner, n_pairs):
    counts = [0] * partitioner.num_reduces
    for _ in range(n_pairs):
        counts[partitioner.get_partition(None, None)] += 1
    return counts


def _state(partitioner):
    rng = getattr(partitioner, "_rng", None)
    pieces = [rng.getstate() if rng is not None else None,
              getattr(partitioner, "_next", None),
              getattr(partitioner, "_spread", None)]
    return pieces


@pytest.mark.parametrize("pattern", PATTERNS)
@pytest.mark.parametrize("num_reduces", [1, 2, 3, 8, 9, 12, 16, 31])
def test_counts_and_state_match_loop(pattern, num_reduces):
    n_pairs = 5_000
    fast = make_partitioner(pattern, num_reduces, seed=20140901)
    slow = make_partitioner(pattern, num_reduces, seed=20140901)
    got = fast.exact_counts(n_pairs)
    want = _loop_counts(slow, n_pairs)
    assert got.tolist() == want
    assert _state(fast) == _state(slow)
    # The next draws must also agree (state really is in sync).
    assert fast.get_partition(None, None) == slow.get_partition(None, None)


@given(
    pattern=st.sampled_from(PATTERNS),
    num_reduces=st.integers(1, 24),
    n_pairs=st.integers(0, 2_000),
    seed=st.integers(0, 2**32),
)
@settings(max_examples=150, deadline=None)
def test_counts_match_loop_property(pattern, num_reduces, n_pairs, seed):
    fast = make_partitioner(pattern, num_reduces, seed=seed)
    slow = make_partitioner(pattern, num_reduces, seed=seed)
    assert fast.exact_counts(n_pairs).tolist() == _loop_counts(slow, n_pairs)
    assert _state(fast) == _state(slow)


@pytest.mark.parametrize("pattern", ("rand", "skew"))
def test_sequential_calls_continue_the_stream(pattern):
    """Two exact_counts calls == one loop over the combined pairs."""
    fast = make_partitioner(pattern, 16, seed=7)
    slow = make_partitioner(pattern, 16, seed=7)
    total = fast.exact_counts(1_000) + fast.exact_counts(2_000)
    assert total.tolist() == _loop_counts(slow, 3_000)


def test_refill_boundaries_rand():
    """Pair counts straddling the internal chunk sizes."""
    for n_pairs in (4095, 4096, 4097, 8192, 20_000):
        fast = make_partitioner("rand", 9, seed=3)  # 9 -> rejection path
        slow = make_partitioner("rand", 9, seed=3)
        assert fast.exact_counts(n_pairs).tolist() == \
            _loop_counts(slow, n_pairs)


def test_avg_continues_round_robin_pointer():
    fast = make_partitioner("avg", 8)
    slow = make_partitioner("avg", 8)
    for chunk in (3, 13, 70):
        assert fast.exact_counts(chunk).tolist() == _loop_counts(slow, chunk)
    assert fast._next == slow._next
