"""Core-test fixtures.

Re-exports the store backend parameterization so the CLI store tests
run against both store backends.
"""

from tests.store.conftest import backend_name  # noqa: F401
