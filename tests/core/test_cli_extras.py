"""Tests for the CLI's timeline and history-export flags."""

import json

from repro.core.cli import main

BASE = ["--num-pairs", "20000", "--maps", "4", "--reduces", "2",
        "--slaves", "2"]


def test_timeline_flag(capsys):
    rc = main(BASE + ["--timeline"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "Task timeline:" in out
    assert "m=map" in out


def test_history_json_flag(tmp_path, capsys):
    path = tmp_path / "history.json"
    rc = main(BASE + ["--history-json", str(path)])
    assert rc == 0
    record = json.loads(path.read_text())
    assert record["job"]["benchmark"] == "MR-AVG"
    assert len(record["maps"]) == 4


def test_report_includes_counters(capsys):
    rc = main(BASE)
    out = capsys.readouterr().out
    assert rc == 0
    assert "Counters:" in out
    assert "MAP_OUTPUT_RECORDS=20,000" in out


def test_workload_flag(capsys):
    rc = main(["--workload", "terasort", "--shuffle-gb", "0.5",
               "--maps", "4", "--reduces", "2", "--slaves", "2"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "Key size" in out
    assert "JOB EXECUTION TIME" in out


def test_workload_unknown_fails(capsys):
    rc = main(["--workload", "montecarlo", "--slaves", "2"])
    assert rc == 2
    assert "unknown workload" in capsys.readouterr().err


def test_workload_with_timeline(capsys):
    rc = main(["--workload", "hash-join", "--shuffle-gb", "0.25",
               "--maps", "4", "--reduces", "2", "--slaves", "2",
               "--timeline"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "m=map" in out
