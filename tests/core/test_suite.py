"""Tests for the MicroBenchmarkSuite runner and sweeps."""

import pytest

from repro import MicroBenchmarkSuite, cluster_a
from repro.core import BenchmarkConfig, MR_SKEW


@pytest.fixture(scope="module")
def suite():
    return MicroBenchmarkSuite(cluster=cluster_a(2))


SMALL = dict(num_maps=4, num_reduces=2, key_size=512, value_size=512)


class TestSingleRuns:
    def test_run_by_name(self, suite):
        result = suite.run("MR-AVG", shuffle_gb=0.5, **SMALL)
        assert result.execution_time > 0
        assert result.config.pattern == "avg"

    def test_run_by_benchmark_object(self, suite):
        result = suite.run(MR_SKEW, shuffle_gb=0.5, **SMALL)
        assert result.config.pattern == "skew"

    def test_run_with_num_pairs(self, suite):
        result = suite.run("MR-RAND", num_pairs=10_000, **SMALL)
        assert result.config.num_pairs == 10_000

    def test_run_config(self, suite):
        config = BenchmarkConfig(num_pairs=10_000, **SMALL)
        result = suite.run_config(config)
        assert result.config is config

    def test_monitor_passthrough(self, suite):
        result = suite.run("MR-AVG", shuffle_gb=0.5, monitor_interval=1.0,
                           **SMALL)
        assert result.monitor is not None

    def test_default_cluster_is_paper_cluster_a(self):
        s = MicroBenchmarkSuite()
        assert s.cluster.num_slaves == 4
        assert s.cluster.node.cores == 8


class TestSweeps:
    @pytest.fixture(scope="class")
    def sweep(self):
        suite = MicroBenchmarkSuite(cluster=cluster_a(2))
        return suite.sweep("MR-AVG", [0.25, 0.5], ["1GigE", "ipoib-qdr"],
                           **SMALL)

    def test_grid_complete(self, sweep):
        assert len(sweep.rows) == 4
        assert set(sweep.networks()) == {"1GigE", "IPoIB-QDR(32Gbps)"}
        assert sweep.sizes() == [0.25, 0.5]

    def test_series(self, sweep):
        sizes, times = sweep.series("1GigE")
        assert sizes == [0.25, 0.5]
        assert times[1] > times[0]  # monotone in data size

    def test_series_unknown_network(self, sweep):
        with pytest.raises(KeyError):
            sweep.series("token-ring")

    def test_time_lookup(self, sweep):
        assert sweep.time("1GigE", 0.5) > 0
        with pytest.raises(KeyError):
            sweep.time("1GigE", 99.0)

    def test_improvement_positive_for_faster_network(self, sweep):
        pct = sweep.improvement("1GigE", "IPoIB-QDR(32Gbps)")
        assert pct > 0

    def test_to_table_renders(self, sweep):
        table = sweep.to_table(title="Fig. 2(a)")
        assert "Fig. 2(a)" in table
        assert "1GigE" in table
        assert "Shuffle (GB)" in table


def test_compare_patterns(suite):
    out = suite.compare_patterns(0.25, ["1GigE"], **SMALL)
    assert set(out) == {"MR-AVG", "MR-RAND", "MR-SKEW"}
    avg = out["MR-AVG"].time("1GigE", 0.25)
    skew = out["MR-SKEW"].time("1GigE", 0.25)
    assert skew > avg
