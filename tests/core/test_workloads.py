"""Tests for real-world workload profiles."""

import pytest

from repro.core.workloads import (
    HASH_JOIN,
    INVERTED_INDEX,
    SESSION_AGGREGATION,
    TERASORT,
    WORDCOUNT,
    WORKLOADS,
    get_workload,
)
from repro.hadoop import cluster_a, run_simulated_job


def test_catalog():
    assert len(WORKLOADS) == 5
    assert get_workload("wordcount") is WORDCOUNT
    assert get_workload("TeraSort") is TERASORT


def test_unknown_workload():
    with pytest.raises(KeyError, match="unknown workload"):
        get_workload("montecarlo")


def test_wordcount_is_tiny_and_skewed():
    assert WORDCOUNT.key_size + WORDCOUNT.value_size <= 16
    assert WORDCOUNT.pattern == "zipf"
    assert WORDCOUNT.data_type == "Text"


def test_terasort_is_uniform_100b():
    assert TERASORT.key_size + TERASORT.value_size == 100
    assert TERASORT.pattern == "avg"


def test_configure_hits_target_volume():
    config = TERASORT.configure(shuffle_gb=1.0, num_maps=4, num_reduces=4)
    assert config.shuffle_bytes == pytest.approx(1e9, rel=0.01)
    assert config.pattern == "avg"


def test_mixed_type_profile():
    config = INVERTED_INDEX.configure(shuffle_gb=0.5, num_maps=4,
                                      num_reduces=4)
    assert config.key_writable.__name__ == "Text"
    assert config.value_writable.__name__ == "BytesWritable"


def test_profiles_run_end_to_end():
    for profile in (TERASORT, SESSION_AGGREGATION, HASH_JOIN):
        config = profile.configure(shuffle_gb=0.25, num_maps=4,
                                   num_reduces=4, network="ipoib-qdr")
        result = run_simulated_job(config, cluster=cluster_a(2))
        assert result.execution_time > 0


def test_wordcount_slower_than_terasort_at_same_volume():
    """Tiny Zipf pairs cost far more than TeraSort's 100 B rows — the
    per-record effect applied to real workload shapes."""
    wc = WORDCOUNT.configure(shuffle_gb=0.25, num_maps=4, num_reduces=4)
    ts = TERASORT.configure(shuffle_gb=0.25, num_maps=4, num_reduces=4)
    t_wc = run_simulated_job(wc, cluster=cluster_a(2)).execution_time
    t_ts = run_simulated_job(ts, cluster=cluster_a(2)).execution_time
    assert t_wc > t_ts
