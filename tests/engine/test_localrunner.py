"""Tests for the functional local job runner."""

import numpy as np
import pytest

from repro.core import BenchmarkConfig, compute_shuffle_matrix
from repro.engine import Counters, LocalJobRunner
from repro.engine.localrunner import discarding_reducer


def cfg(**kw):
    defaults = dict(num_pairs=2000, num_maps=4, num_reduces=8,
                    key_size=16, value_size=48)
    defaults.update(kw)
    return BenchmarkConfig(**defaults)


@pytest.mark.parametrize("pattern", ["avg", "rand", "skew"])
def test_record_conservation(pattern):
    """No record is lost or duplicated between map and reduce."""
    config = cfg(pattern=pattern)
    result = LocalJobRunner(config).run()
    c = result.counters
    assert c.value(Counters.MAP_OUTPUT_RECORDS) == config.num_pairs
    assert c.value(Counters.REDUCE_INPUT_RECORDS) == config.num_pairs
    assert sum(result.reduce_input_records) == config.num_pairs


def test_map_input_is_one_dummy_record_per_map():
    config = cfg()
    result = LocalJobRunner(config).run()
    assert result.counters.value(Counters.MAP_INPUT_RECORDS) == config.num_maps


def test_avg_reducer_loads_even():
    config = cfg(pattern="avg", num_pairs=6400)
    result = LocalJobRunner(config).run()
    loads = result.reducer_loads()
    assert max(loads) - min(loads) <= config.num_maps


def test_skew_reducer0_dominates():
    config = cfg(pattern="skew", num_pairs=20_000)
    result = LocalJobRunner(config).run()
    loads = result.reducer_loads()
    assert loads[0] > 0.45 * sum(loads)


def test_reduce_groups_bounded_by_unique_keys():
    """The generator emits at most num_reduces unique keys, so the whole
    job has at most num_reduces * num_maps... but identical key payloads
    across maps collapse: group count per reducer <= unique keys."""
    config = cfg(pattern="avg")
    result = LocalJobRunner(config).run()
    groups = result.counters.value(Counters.REDUCE_INPUT_GROUPS)
    assert groups <= config.num_reduces * config.num_reduces


def test_functional_matrix_matches_analytic_matrix():
    """The simulator's shuffle matrix equals what the real execution
    actually moved (same config, same seed) — the cross-validation the
    design doc promises."""
    for pattern in ("avg", "rand", "skew"):
        config = cfg(pattern=pattern, num_pairs=3000)
        observed = LocalJobRunner(config).run()
        analytic = compute_shuffle_matrix(config)
        assert np.array_equal(observed.shuffle_records, analytic.records)


def test_shuffle_bytes_close_to_analytic():
    """Observed segment bytes ~= records * record_size (segments add an
    EOF marker per (map, reduce) cell)."""
    config = cfg(pattern="avg", num_pairs=4000)
    result = LocalJobRunner(config).run()
    analytic = compute_shuffle_matrix(config)
    eof_overhead = 2  # two vint(-1) bytes... each is 1 byte
    for m in range(config.num_maps):
        for r in range(config.num_reduces):
            expected = analytic.bytes[m, r] + eof_overhead
            assert abs(int(result.shuffle_bytes[m, r]) - expected) <= 2


def test_custom_mapper_and_reducer():
    """The engine is generic: run a word-count-style job."""
    from repro.datatypes import IntWritable, Text

    def mapper(config, map_id, ctx):
        for word in ["the", "quick", "the", "fox"]:
            ctx.emit(Text(word), Text("1"))

    seen = {}

    def reducer(key, values, ctx):
        consumed = ctx.consume(key, values)
        seen[str(key)] = seen.get(str(key), 0) + len(consumed)

    config = cfg(data_type="Text", num_maps=2, num_reduces=2, num_pairs=1)
    LocalJobRunner(config, mapper=mapper, reducer=reducer).run()
    assert seen == {"the": 4, "quick": 2, "fox": 2}


def test_deterministic_repeat_runs():
    config = cfg(pattern="rand")
    a = LocalJobRunner(config).run()
    b = LocalJobRunner(config).run()
    assert np.array_equal(a.shuffle_records, b.shuffle_records)
    assert a.counters.as_dict() == b.counters.as_dict()


def test_discarding_reducer_counts():
    config = cfg(num_pairs=100, num_maps=1, num_reduces=2)
    result = LocalJobRunner(config, reducer=discarding_reducer).run()
    assert result.counters.value(Counters.REDUCE_INPUT_RECORDS) == 100
    # Output discarded: NullOutputFormat writer saw nothing.
    assert result.counters.value(Counters.REDUCE_OUTPUT_RECORDS) == 0
