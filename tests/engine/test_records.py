"""Tests for map-output buffers and merge machinery."""

import pytest

from repro.datatypes import BytesWritable, IFileReader, Text
from repro.engine import MapOutputBuffer, group_by_key, merge_sorted_segments


class TestMapOutputBuffer:
    def test_validation(self):
        with pytest.raises(ValueError):
            MapOutputBuffer(0)

    def test_collect_counts(self):
        buf = MapOutputBuffer(4)
        buf.collect(BytesWritable(b"k"), BytesWritable(b"v"), 2)
        assert buf.records_collected == 1
        assert buf.records_per_partition() == [0, 0, 1, 0]
        assert buf.bytes_collected == (4 + 1) * 2

    def test_partition_range_check(self):
        buf = MapOutputBuffer(2)
        with pytest.raises(IndexError):
            buf.collect(BytesWritable(b"k"), BytesWritable(b"v"), 2)

    def test_segments_are_sorted(self):
        buf = MapOutputBuffer(1)
        for payload in (b"pear", b"apple", b"fig", b"banana"):
            buf.collect(BytesWritable(payload), BytesWritable(b"v"), 0)
        segment = buf.segments()[0]
        keys = [k.payload for k, _v in IFileReader(segment, BytesWritable, BytesWritable)]
        assert keys == sorted(keys)

    def test_empty_partition_yields_empty_segment(self):
        buf = MapOutputBuffer(2)
        buf.collect(BytesWritable(b"k"), BytesWritable(b"v"), 0)
        segments = buf.segments()
        assert list(IFileReader(segments[1], BytesWritable, BytesWritable)) == []


class TestMerge:
    def make_segment(self, keys):
        buf = MapOutputBuffer(1)
        for k in keys:
            buf.collect(BytesWritable(k), BytesWritable(b"v:" + k), 0)
        return buf.segments()[0]

    def test_merge_two_segments_globally_sorted(self):
        seg1 = self.make_segment([b"a", b"c", b"e"])
        seg2 = self.make_segment([b"b", b"d", b"f"])
        merged = list(merge_sorted_segments([seg1, seg2], BytesWritable, BytesWritable))
        keys = [k.payload for k, _v in merged]
        assert keys == [b"a", b"b", b"c", b"d", b"e", b"f"]

    def test_merge_with_duplicate_keys(self):
        seg1 = self.make_segment([b"a", b"a", b"b"])
        seg2 = self.make_segment([b"a", b"b"])
        merged = list(merge_sorted_segments([seg1, seg2], BytesWritable, BytesWritable))
        keys = [k.payload for k, _v in merged]
        assert keys == [b"a", b"a", b"a", b"b", b"b"]

    def test_merge_empty_input(self):
        assert list(merge_sorted_segments([], BytesWritable, BytesWritable)) == []

    def test_merge_text_segments(self):
        buf = MapOutputBuffer(1)
        for s in ("zebra", "ant"):
            buf.collect(Text(s), Text("v"), 0)
        merged = list(merge_sorted_segments([buf.segments()[0]], Text, Text))
        assert [str(k) for k, _v in merged] == ["ant", "zebra"]


class TestGroupByKey:
    def test_groups_adjacent_equal_keys(self):
        records = [
            (BytesWritable(b"a"), BytesWritable(b"1")),
            (BytesWritable(b"a"), BytesWritable(b"2")),
            (BytesWritable(b"b"), BytesWritable(b"3")),
        ]
        groups = list(group_by_key(records))
        assert len(groups) == 2
        assert groups[0][0].payload == b"a"
        assert [v.payload for v in groups[0][1]] == [b"1", b"2"]
        assert [v.payload for v in groups[1][1]] == [b"3"]

    def test_empty_stream(self):
        assert list(group_by_key([])) == []

    def test_single_key(self):
        records = [(BytesWritable(b"x"), BytesWritable(bytes([i]))) for i in range(5)]
        groups = list(group_by_key(records))
        assert len(groups) == 1
        assert len(groups[0][1]) == 5
