"""The Experiment Book renders figures from store contents alone."""

import pytest

from repro.analysis.book import build_book, collect_campaigns, git_describe
from repro.campaign import Campaign, run_campaign
from repro.core.suite import clear_result_cache
from repro.faults import FaultPlan
from repro.store import ResultStore

TINY = dict(
    shuffle_gbs=(0.02, 0.04),
    networks=("1GigE", "ipoib-qdr"),
    params={"num_maps": 4, "num_reduces": 2,
            "key_size": 256, "value_size": 256},
    slaves=2,
)


@pytest.fixture(autouse=True)
def fresh_memo():
    clear_result_cache()
    yield
    clear_result_cache()


@pytest.fixture()
def populated_store(tmp_path):
    store = ResultStore(tmp_path / "store")
    run_campaign(
        Campaign(name="figx", figure="Fig. X", title="Tiny sweep",
                 **TINY),
        store=store,
    )
    return store


class TestBuildBook:
    def test_renders_index_and_campaign_page(self, populated_store,
                                             tmp_path):
        out = tmp_path / "book"
        written = build_book(populated_store, out)
        assert written[0] == out / "index.md"
        assert (out / "figx.md").exists()
        index = (out / "index.md").read_text()
        assert "[figx](figx.md)" in index
        assert "Fig. X" in index

    def test_page_content_from_store_alone(self, populated_store,
                                           tmp_path):
        # A fresh process only needs the store directory.
        clear_result_cache()
        build_book(ResultStore(populated_store.root), tmp_path / "book")
        page = (tmp_path / "book" / "figx.md").read_text()
        assert "Fig. X — Tiny sweep" in page
        assert "| Shuffle (GB) | 1GigE | IPoIB-QDR(32Gbps) |" in page
        assert "**IPoIB-QDR(32Gbps)** vs 1GigE" in page
        assert "### Phase breakdown" in page
        assert "### Provenance" in page
        assert "[← back to the index](index.md)" in page

    def test_resilience_section_when_faulty(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        run_campaign(
            Campaign(name="faulty",
                     fault_plan=FaultPlan(task_failure_probability=0.2),
                     **TINY),
            store=store,
        )
        build_book(store, tmp_path / "book")
        page = (tmp_path / "book" / "faulty.md").read_text()
        assert "### Resilience under fault injection" in page
        assert "task failures" in page

    def test_empty_store_is_an_error(self, tmp_path):
        with pytest.raises(ValueError, match="no tagged campaign"):
            build_book(ResultStore(tmp_path / "empty"), tmp_path / "book")

    def test_missing_campaign_is_an_error(self, populated_store,
                                          tmp_path):
        with pytest.raises(ValueError, match="figy"):
            build_book(populated_store, tmp_path / "book",
                       campaigns=["figy"])

    def test_campaign_subset(self, populated_store, tmp_path):
        written = build_book(populated_store, tmp_path / "book",
                             campaigns=["figx"])
        assert len(written) == 2  # index + the one page


class TestHelpers:
    def test_collect_campaigns_groups_by_tag(self, populated_store):
        grouped = collect_campaigns(populated_store)
        assert set(grouped) == {"figx"}
        assert len(grouped["figx"]) == 4

    def test_git_describe_never_raises(self):
        assert isinstance(git_describe(), str)
        assert git_describe()
