"""Tests for statistics helpers."""

import pytest

from repro.analysis import (
    geometric_mean,
    improvement_pct,
    mean,
    median,
    percentile,
    speedup,
)


def test_mean():
    assert mean([1, 2, 3]) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        mean([])


def test_median_odd_even():
    assert median([3, 1, 2]) == 2
    assert median([4, 1, 2, 3]) == pytest.approx(2.5)
    with pytest.raises(ValueError):
        median([])


def test_percentile():
    values = list(range(1, 101))
    assert percentile(values, 0) == 1
    assert percentile(values, 100) == 100
    assert percentile(values, 50) == pytest.approx(50.5)
    assert percentile([42], 75) == 42
    with pytest.raises(ValueError):
        percentile(values, 101)
    with pytest.raises(ValueError):
        percentile([], 50)


def test_geometric_mean():
    assert geometric_mean([1, 4]) == pytest.approx(2.0)
    assert geometric_mean([10]) == pytest.approx(10.0)
    with pytest.raises(ValueError):
        geometric_mean([1, 0])
    with pytest.raises(ValueError):
        geometric_mean([])


def test_improvement_pct_matches_paper_convention():
    """100s -> 83s is 'decreases around 17%'."""
    assert improvement_pct(100.0, 83.0) == pytest.approx(17.0)
    assert improvement_pct(100.0, 120.0) == pytest.approx(-20.0)
    with pytest.raises(ValueError):
        improvement_pct(0.0, 1.0)


def test_speedup():
    assert speedup(100.0, 50.0) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        speedup(1.0, 0.0)
