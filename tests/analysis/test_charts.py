"""Tests for terminal chart rendering."""

import pytest

from repro.analysis import bar_chart, line_chart, sweep_chart


class TestBarChart:
    def test_basic(self):
        text = bar_chart(["1GigE", "IPoIB"], [100.0, 76.0], unit="s")
        lines = text.splitlines()
        assert len(lines) == 2
        assert "100.0s" in lines[0]
        assert lines[0].count("#") > lines[1].count("#")

    def test_zero_values(self):
        text = bar_chart(["a", "b"], [0.0, 0.0])
        assert "0.0" in text

    def test_empty(self):
        assert bar_chart([], []) == "(no data)"

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])


class TestLineChart:
    def test_renders_all_series(self):
        chart = line_chart({
            "alpha": ([1, 2, 3], [10, 20, 30]),
            "beta": ([1, 2, 3], [30, 20, 10]),
        })
        assert "o alpha" in chart
        assert "x beta" in chart
        assert "o" in chart and "x" in chart

    def test_empty(self):
        assert line_chart({}) == "(no data)"

    def test_flat_series_does_not_crash(self):
        chart = line_chart({"flat": ([1, 2], [5, 5])})
        assert "flat" in chart

    def test_axis_labels(self):
        chart = line_chart({"s": ([0, 10], [0, 1])}, x_label="GB",
                           y_label="seconds")
        assert "GB" in chart
        assert "seconds" in chart


def test_sweep_chart_end_to_end():
    from repro import MicroBenchmarkSuite, cluster_a

    suite = MicroBenchmarkSuite(cluster=cluster_a(2))
    sweep = suite.sweep("MR-AVG", [0.25, 0.5], ["1GigE", "ipoib-qdr"],
                        num_maps=4, num_reduces=2)
    chart = sweep_chart(sweep)
    assert "1GigE" in chart
    assert "job time (s)" in chart
