"""Tests for ASCII table rendering."""

import pytest

from repro.analysis import format_cell, format_table


def test_format_cell_floats():
    assert format_cell(0.0) == "0"
    assert format_cell(1234.5) == "1234"
    assert format_cell(12.34) == "12.3"
    assert format_cell(0.1234) == "0.123"


def test_format_cell_other():
    assert format_cell("abc") == "abc"
    assert format_cell(7) == "7"


def test_format_table_basic():
    table = format_table(["net", "time"], [["1GigE", 100.0], ["IPoIB", 76.0]])
    lines = table.splitlines()
    assert lines[0].startswith("net")
    assert set(lines[1]) <= {"-", " "}
    assert "1GigE" in lines[2]


def test_format_table_title():
    table = format_table(["a"], [[1]], title="My Title")
    assert table.splitlines()[0] == "My Title"


def test_format_table_aligns_numbers_right():
    table = format_table(["x"], [[1.0], [100.0]])
    rows = table.splitlines()[-2:]
    assert rows[0].endswith("1.0")
    assert rows[1].endswith("100")


def test_ragged_rows_rejected():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [[1]])
