"""Tests for CSV export."""

import pytest

from repro import MicroBenchmarkSuite, cluster_a
from repro.analysis import parse_csv_floats, results_to_csv, sweep_to_csv, write_csv


@pytest.fixture(scope="module")
def sweep():
    suite = MicroBenchmarkSuite(cluster=cluster_a(2))
    return suite.sweep("MR-AVG", [0.25, 0.5], ["1GigE", "ipoib-qdr"],
                       num_maps=4, num_reduces=2)


def test_sweep_to_csv_layout(sweep):
    text = sweep_to_csv(sweep)
    rows = parse_csv_floats(text)
    assert rows[0] == [None, None, None]  # header is non-numeric
    assert len(rows) == 3  # header + 2 sizes
    assert rows[1][0] == 0.25 and rows[2][0] == 0.5


def test_sweep_csv_values_match_sweep(sweep):
    rows = parse_csv_floats(sweep_to_csv(sweep))
    networks = sweep.networks()
    for row in rows[1:]:
        size = row[0]
        for i, net in enumerate(networks):
            assert row[1 + i] == pytest.approx(sweep.time(net, size), abs=0.01)


def test_results_to_csv(sweep):
    results = [row.result for row in sweep.rows]
    text = results_to_csv(results)
    lines = text.strip().splitlines()
    assert lines[0].startswith("benchmark,network")
    assert len(lines) == 1 + len(results)
    assert "MR-AVG" in lines[1]


def test_write_csv(tmp_path, sweep):
    path = tmp_path / "out.csv"
    write_csv(str(path), sweep_to_csv(sweep))
    assert path.read_text().startswith("shuffle_gb")


def test_cli_sweep_mode(capsys, tmp_path):
    from repro.core.cli import main

    csv_path = tmp_path / "sweep.csv"
    rc = main([
        "--benchmark", "MR-AVG", "--sweep", "0.25,0.5",
        "--networks", "1GigE,ipoib-qdr", "--maps", "4", "--reduces", "2",
        "--slaves", "2", "--csv", str(csv_path),
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "Shuffle (GB)" in out
    assert csv_path.exists()


def test_cli_sweep_empty_sizes_fails(capsys):
    from repro.core.cli import main

    rc = main(["--sweep", ",", "--slaves", "2"])
    assert rc == 2


def test_cli_zipf_benchmark(capsys):
    from repro.core.cli import main

    rc = main(["--benchmark", "MR-ZIPF", "--num-pairs", "20000",
               "--maps", "4", "--reduces", "4", "--slaves", "2"])
    assert rc == 0
    assert "MR-ZIPF" in capsys.readouterr().out


class TestChromeTraceExport:
    """Schema checks for the Chrome trace_event exporter."""

    @pytest.fixture(scope="class")
    def traced_result(self):
        from repro.core.config import BenchmarkConfig
        from repro.hadoop.simulation import run_simulated_job
        from repro.sim.trace import Tracer

        config = BenchmarkConfig(num_pairs=100_000, num_maps=4,
                                 num_reduces=2, key_size=256,
                                 value_size=256, network="ipoib-qdr")
        return run_simulated_job(config, cluster=cluster_a(2),
                                 tracer=Tracer())

    def test_top_level_shape(self, traced_result):
        from repro.analysis.export import trace_to_chrome

        doc = trace_to_chrome(traced_result.trace)
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert doc["displayTimeUnit"] == "ms"
        assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]

    def test_event_schema(self, traced_result):
        from repro.analysis.export import trace_to_chrome

        for ev in trace_to_chrome(traced_result.trace)["traceEvents"]:
            assert ev["ph"] in ("M", "X", "i")
            assert isinstance(ev["pid"], int) and isinstance(ev["tid"], int)
            if ev["ph"] == "M":
                assert ev["name"] in ("process_name", "thread_name")
                assert "name" in ev["args"]
            else:
                assert ev["ts"] >= 0.0
            if ev["ph"] == "X":
                assert ev["dur"] >= 0.0

    def test_metadata_precedes_events_per_track(self, traced_result):
        from repro.analysis.export import trace_to_chrome

        events = trace_to_chrome(traced_result.trace)["traceEvents"]
        named_pids = set()
        for ev in events:
            if ev["ph"] == "M" and ev["name"] == "process_name":
                named_pids.add(ev["pid"])
            elif ev["ph"] in ("X", "i"):
                assert ev["pid"] in named_pids

    def test_json_round_trip(self, traced_result, tmp_path):
        import json

        from repro.analysis.export import (chrome_trace_json,
                                           write_chrome_trace)

        text = chrome_trace_json(traced_result.trace)
        parsed = json.loads(text)
        assert parsed["traceEvents"]
        path = tmp_path / "job.trace.json"
        write_chrome_trace(str(path), traced_result.trace)
        assert json.loads(path.read_text()) == parsed

    def test_durations_scale_to_microseconds(self, traced_result):
        from repro.analysis.export import trace_to_chrome
        from repro.sim.trace import CAT_TASK

        doc = trace_to_chrome(traced_result.trace)
        longest = max((e for e in doc["traceEvents"] if e["ph"] == "X"),
                      key=lambda e: e["dur"])
        sim_longest = max(traced_result.trace.spans(),
                          key=lambda ev: ev.duration)
        assert longest["dur"] == pytest.approx(sim_longest.duration * 1e6)


def test_cli_trace_and_phase_report(capsys, tmp_path):
    import json

    from repro.core.cli import main

    trace_path = tmp_path / "job.trace.json"
    rc = main(["--benchmark", "MR-AVG", "--num-pairs", "50000",
               "--maps", "4", "--reduces", "2", "--slaves", "2",
               "--phase-report", "--trace", str(trace_path)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "Phase breakdown (task-seconds)" in out
    assert "spill-merge" in out
    doc = json.loads(trace_path.read_text())
    assert doc["traceEvents"]
