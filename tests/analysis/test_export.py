"""Tests for CSV export."""

import pytest

from repro import MicroBenchmarkSuite, cluster_a
from repro.analysis import parse_csv_floats, results_to_csv, sweep_to_csv, write_csv


@pytest.fixture(scope="module")
def sweep():
    suite = MicroBenchmarkSuite(cluster=cluster_a(2))
    return suite.sweep("MR-AVG", [0.25, 0.5], ["1GigE", "ipoib-qdr"],
                       num_maps=4, num_reduces=2)


def test_sweep_to_csv_layout(sweep):
    text = sweep_to_csv(sweep)
    rows = parse_csv_floats(text)
    assert rows[0] == [None, None, None]  # header is non-numeric
    assert len(rows) == 3  # header + 2 sizes
    assert rows[1][0] == 0.25 and rows[2][0] == 0.5


def test_sweep_csv_values_match_sweep(sweep):
    rows = parse_csv_floats(sweep_to_csv(sweep))
    networks = sweep.networks()
    for row in rows[1:]:
        size = row[0]
        for i, net in enumerate(networks):
            assert row[1 + i] == pytest.approx(sweep.time(net, size), abs=0.01)


def test_results_to_csv(sweep):
    results = [row.result for row in sweep.rows]
    text = results_to_csv(results)
    lines = text.strip().splitlines()
    assert lines[0].startswith("benchmark,network")
    assert len(lines) == 1 + len(results)
    assert "MR-AVG" in lines[1]


def test_write_csv(tmp_path, sweep):
    path = tmp_path / "out.csv"
    write_csv(str(path), sweep_to_csv(sweep))
    assert path.read_text().startswith("shuffle_gb")


def test_cli_sweep_mode(capsys, tmp_path):
    from repro.core.cli import main

    csv_path = tmp_path / "sweep.csv"
    rc = main([
        "--benchmark", "MR-AVG", "--sweep", "0.25,0.5",
        "--networks", "1GigE,ipoib-qdr", "--maps", "4", "--reduces", "2",
        "--slaves", "2", "--csv", str(csv_path),
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "Shuffle (GB)" in out
    assert csv_path.exists()


def test_cli_sweep_empty_sizes_fails(capsys):
    from repro.core.cli import main

    rc = main(["--sweep", ",", "--slaves", "2"])
    assert rc == 2


def test_cli_zipf_benchmark(capsys):
    from repro.core.cli import main

    rc = main(["--benchmark", "MR-ZIPF", "--num-pairs", "20000",
               "--maps", "4", "--reduces", "4", "--slaves", "2"])
    assert rc == 0
    assert "MR-ZIPF" in capsys.readouterr().out
