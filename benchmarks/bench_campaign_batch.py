"""Batch-vs-loop campaign benchmark: speedup with byte-exact parity.

The campaign batch scheduler (``repro.campaign.batch``) collapses
simulation-equivalent points — trials of a seed-independent MR-AVG
sweep, alias spellings of one network — onto a single simulation and
replicates the stored result. This module guards both halves of that
contract:

* **Parity, always.** Every run executes the same campaign through the
  strict per-point loop (``batch=False``) and the batch scheduler
  (``batch=True``) into two fresh stores and asserts the ``objects/``
  trees are byte-identical and every outcome's simulated time is
  hex-exact. This assertion runs in every mode, including plain
  ``pytest benchmarks/bench_campaign_batch.py``.
* **Speed, guarded.** The batch/loop wall-clock ratio of the small
  campaign is floored at :data:`SMALL_SPEEDUP_FLOOR` under
  ``PERF_SMOKE=1`` and recorded in ``benchmarks/BENCH_campaign.json``
  via the shared baseline workflow (see ``bench_perf_regression.py``).

The acceptance-scale measurement — a 1000-point campaign, ≥5x — is in
:func:`bench_campaign_batch_1000_points`, which only runs under
``PERF_FULL=1`` or ``PERF_BASELINE=1`` (it simulates the thousand
points through the per-point loop once, which is exactly the cost the
batch path exists to avoid).
"""

import os
import pathlib
import tempfile
import time

from _harness import check_or_record, one_shot, record

from repro.campaign import Campaign, run_campaign
from repro.core.matrix import clear_matrix_cache
from repro.core.suite import clear_result_cache
from repro.net.fabric import clear_link_table_cache
from repro.store import ResultStore

BASELINE_PATH = pathlib.Path(__file__).parent / "BENCH_campaign.json"

#: Minimum batch-over-loop speedup for the small smoke campaign. The
#: small grid collapses 60 points onto 4 simulations, so the honest
#: floor is well above this; 2.0 keeps slow/loaded CI hosts green.
SMALL_SPEEDUP_FLOOR = 2.0

#: Minimum speedup for the 1000-point acceptance campaign (the ISSUE
#: target).
FULL_SPEEDUP_FLOOR = 5.0

SMALL_PARAMS = {"num_maps": 8, "num_reduces": 4,
                "key_size": 512, "value_size": 512}


def _small_campaign() -> Campaign:
    """60 points: 2 sizes x 2 networks x 15 trials, 4 residue classes."""
    return Campaign(
        name="bench-batch-small",
        benchmark="MR-AVG",
        shuffle_gbs=(0.05, 0.1),
        networks=("1GigE", "ipoib-qdr"),
        trials=15,
        slaves=2,
        params=dict(SMALL_PARAMS),
    )


def _full_campaign() -> Campaign:
    """1000 points: 5 sizes x 5 networks x 40 trials, 25 classes."""
    return Campaign(
        name="bench-batch-1000",
        benchmark="MR-AVG",
        shuffle_gbs=(0.05, 0.1, 0.2, 0.4, 0.8),
        networks=("1GigE", "10GigE", "ipoib-qdr", "ipoib-fdr", "rdma"),
        trials=40,
        slaves=2,
        params=dict(SMALL_PARAMS),
    )


def _clear_process_caches() -> None:
    """Reset every process-wide cache so each phase starts cold."""
    clear_result_cache()
    clear_matrix_cache()
    clear_link_table_cache()


def _object_tree(root) -> dict:
    """Relative path -> raw bytes of every record file under a store."""
    objects = pathlib.Path(root) / "objects"
    return {
        path.relative_to(objects).as_posix(): path.read_bytes()
        for path in sorted(objects.glob("*/*.json"))
    }


def _run_mode(campaign: Campaign, batch: bool):
    """One cold campaign pass; returns (CampaignResult, seconds, root)."""
    root = tempfile.mkdtemp(prefix=f"bench-batch-{batch}-")
    _clear_process_caches()
    start = time.perf_counter()
    outcome = run_campaign(campaign, store=ResultStore(root), batch=batch)
    return outcome, time.perf_counter() - start, root


def _assert_parity(campaign: Campaign, loop, batch,
                   loop_root, batch_root) -> None:
    """Batch results must be indistinguishable from loop results."""
    assert loop.completed and batch.completed
    assert loop.executed == batch.executed == len(loop.outcomes)
    loop_hex = [o.result.execution_time.hex() for o in loop.outcomes]
    batch_hex = [o.result.execution_time.hex() for o in batch.outcomes]
    assert loop_hex == batch_hex, "batch simulated times diverged"
    loop_tree = _object_tree(loop_root)
    batch_tree = _object_tree(batch_root)
    assert loop_tree == batch_tree, (
        "batch store records are not byte-identical to loop records"
    )
    counters = ("puts", "hits", "misses")
    loop_stats = ResultStore(loop_root).stats()
    batch_stats = ResultStore(batch_root).stats()
    assert ({k: loop_stats[k] for k in counters}
            == {k: batch_stats[k] for k in counters})


def bench_campaign_batch_small(benchmark):
    """60-point campaign, loop vs batch: parity always, floor in smoke."""
    campaign = _small_campaign()

    def run():
        loop, loop_seconds, loop_root = _run_mode(campaign, batch=False)
        batch, batch_seconds, batch_root = _run_mode(campaign, batch=True)
        _assert_parity(campaign, loop, batch, loop_root, batch_root)
        return loop, batch, loop_seconds, batch_seconds

    loop, batch, loop_seconds, batch_seconds = one_shot(benchmark, run)
    speedup = loop_seconds / batch_seconds
    record(
        "perf_campaign_batch_small",
        f"campaign batch (60 pts, {batch.unique_simulations} unique): "
        f"loop {loop_seconds:.3f}s, batch {batch_seconds:.3f}s "
        f"({speedup:.1f}x), stores byte-identical",
    )
    if os.environ.get("PERF_SMOKE"):
        assert speedup >= SMALL_SPEEDUP_FLOOR, (
            f"batch speedup {speedup:.2f}x below the "
            f"{SMALL_SPEEDUP_FLOOR}x floor "
            f"(loop {loop_seconds:.3f}s, batch {batch_seconds:.3f}s)"
        )
    check_or_record(
        "campaign_batch_small_60pts",
        {"seconds": batch_seconds, "loop_seconds": loop_seconds,
         "speedup": round(speedup, 2),
         "unique_simulations": batch.unique_simulations},
        BASELINE_PATH,
    )


def bench_campaign_batch_1000_points(benchmark):
    """The ISSUE acceptance run: 1000 points, >=5x, hex-exact.

    Skipped unless ``PERF_FULL=1`` or ``PERF_BASELINE=1`` — the loop
    leg alone simulates 1000 points one at a time.
    """
    import pytest

    if not (os.environ.get("PERF_FULL") or os.environ.get("PERF_BASELINE")):
        pytest.skip("set PERF_FULL=1 (or PERF_BASELINE=1) to run the "
                    "1000-point acceptance benchmark")
    campaign = _full_campaign()

    def run():
        loop, loop_seconds, loop_root = _run_mode(campaign, batch=False)
        batch, batch_seconds, batch_root = _run_mode(campaign, batch=True)
        _assert_parity(campaign, loop, batch, loop_root, batch_root)
        return loop, batch, loop_seconds, batch_seconds

    loop, batch, loop_seconds, batch_seconds = one_shot(benchmark, run)
    speedup = loop_seconds / batch_seconds
    record(
        "perf_campaign_batch_1000",
        f"campaign batch (1000 pts, {batch.unique_simulations} unique): "
        f"loop {loop_seconds:.2f}s, batch {batch_seconds:.2f}s "
        f"({speedup:.1f}x), stores byte-identical",
    )
    assert speedup >= FULL_SPEEDUP_FLOOR, (
        f"1000-point batch speedup {speedup:.2f}x below the "
        f"{FULL_SPEEDUP_FLOOR}x acceptance floor"
    )
    check_or_record(
        "campaign_batch_1000pts",
        {"seconds": batch_seconds, "loop_seconds": loop_seconds,
         "speedup": round(speedup, 2),
         "unique_simulations": batch.unique_simulations},
        BASELINE_PATH,
    )
