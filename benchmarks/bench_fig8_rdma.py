"""Figure 8: the MRoIB case study — RDMA vs IPoIB on Cluster B (FDR).

Paper setup: TACC Stampede (Cluster B), MR-AVG, BytesWritable, 1 KB
pairs, 32 maps / 16 reduces; IPoIB FDR (56 Gbps) vs RDMA-enhanced
MapReduce (MRoIB, RDMA for Apache Hadoop 0.9.9); 8 and 16 slave nodes.

Paper shape: MRoIB improves job time by ~28-30 % on 8 slaves and by
~20-25 % on 16 slaves vs stock Hadoop over IPoIB FDR.
"""

from _harness import one_shot, record, suite_cluster_b
from repro.analysis import format_table, improvement_pct

SIZES_GB = (16.0, 32.0, 64.0)
PARAMS = dict(num_maps=32, num_reduces=16, key_size=512, value_size=512,
              data_type="BytesWritable")


def _run_slaves(slaves, subfig):
    suite = suite_cluster_b(slaves)
    rows = []
    gains = []
    for size in SIZES_GB:
        t_ib = suite.run("MR-AVG", shuffle_gb=size, network="ipoib-fdr",
                         **PARAMS).execution_time
        t_rd = suite.run("MR-AVG", shuffle_gb=size, network="rdma",
                         **PARAMS).execution_time
        gain = improvement_pct(t_ib, t_rd)
        gains.append(gain)
        rows.append([size, round(t_ib, 1), round(t_rd, 1),
                     f"{gain:+.1f}%"])
    text = format_table(
        ["Shuffle (GB)", "IPoIB FDR (s)", "RDMA (s)", "gain"],
        rows,
        title=f"Fig. 8({subfig}) MR-AVG on Cluster B, {slaves} slaves")
    record(f"fig8{subfig}_{slaves}slaves", text)
    return gains


def bench_fig8a_8_slaves(benchmark):
    gains = one_shot(benchmark, lambda: _run_slaves(8, "a"))
    # Paper: 28-30 %; our pipeline model recovers most of it (see
    # EXPERIMENTS.md for the accounting of the residual gap).
    assert all(g > 15 for g in gains)
    assert max(gains) < 45


def bench_fig8b_16_slaves(benchmark):
    gains = one_shot(benchmark, lambda: _run_slaves(16, "b"))
    # Paper: ~20-25 % "even on a larger cluster".
    assert all(g > 15 for g in gains)
