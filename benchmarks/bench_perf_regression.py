"""Wall-clock performance regression harness for the simulation substrate.

Unlike the ``bench_fig*`` modules (which regenerate the paper's figures
and assert their *shape*), this module guards the *speed* of the
simulator itself: the grouped max-min solver and the end-to-end wall
clock of the canonical Fig. 3 job. Measured values are recorded in
``benchmarks/BENCH_fabric.json``.

Workflow:

* ``PERF_BASELINE=1 pytest benchmarks/bench_perf_regression.py`` —
  re-measure and rewrite the committed baseline (do this on the machine
  class the baseline should represent, after a deliberate perf change).
* ``PERF_SMOKE=1 pytest benchmarks/bench_perf_regression.py`` — assert
  no measurement regressed to more than ``PERF_SMOKE_FACTOR`` (default
  2.0) times its committed baseline. CI runs this.
* Neither variable set — just measure and print (no assertion), so the
  benches stay safe on arbitrarily slow machines.

The canonical job also pins its *simulated* time exactly: wall-clock
optimizations must never change simulation results.
"""

import json
import os
import pathlib
import time

from _harness import (
    SMOKE_FACTOR,
    YARN_PARAMS,
    check_or_record,
    one_shot,
    record,
    suite_cluster_a,
)

from repro.core.config import BenchmarkConfig
from repro.hadoop.cluster import cluster_a
from repro.hadoop.simulation import run_simulated_job
from repro.net.solver import compute_max_min, solve_max_min_grouped
from repro.sim.trace import Tracer

BASELINE_PATH = pathlib.Path(__file__).parent / "BENCH_fabric.json"

#: The trace bus promises zero overhead when disabled: emit sites are a
#: single attribute check. This is the allowed regression of the
#: tracing-disabled wall clock vs its committed baseline (tightest when
#: ``PERF_SMOKE_FACTOR`` <= 1.02, i.e. on the baseline machine class).
TRACE_OVERHEAD_LIMIT = 1.02


def _load_baselines() -> dict:
    if BASELINE_PATH.exists():
        return json.loads(BASELINE_PATH.read_text())
    return {}


def _check_or_record(name: str, measured: dict) -> None:
    """Record ``measured`` under ``name`` or compare against baseline
    (see :func:`_harness.check_or_record`; smoke mode skips with a
    clear message when the baseline entry is missing)."""
    check_or_record(name, measured, BASELINE_PATH)


class _SyntheticFlow:
    __slots__ = ("links",)

    def __init__(self, links):
        self.links = links


def _all_to_all_flows(hosts=16, per_pair=2, racks=2):
    """~512 concurrent shuffle flows over a racked 16-host fabric."""
    flows = []
    for s in range(hosts):
        for d in range(hosts):
            if s == d:
                links = (("loop", s),)
            else:
                links = (("out", s), ("in", d))
                if s % racks != d % racks:
                    links += (("rack-up", s % racks),
                              ("rack-down", d % racks))
            for _ in range(per_pair):
                flows.append(_SyntheticFlow(links))
    caps = {}
    for flow in flows:
        for link in flow.links:
            kind = link[0]
            caps[link] = (8000.0 if kind == "loop"
                          else 1500.0 if kind.startswith("rack")
                          else 117.0)
    return flows, caps


def bench_solver_grouped_512_flows(benchmark):
    """Grouped solver throughput on a 512-flow all-to-all set."""
    flows, caps = _all_to_all_flows()

    def run():
        repeats = 20
        start = time.perf_counter()
        for _ in range(repeats):
            rates = solve_max_min_grouped(flows, caps)
        elapsed = (time.perf_counter() - start) / repeats
        assert len(rates) == len(flows)
        return elapsed

    per_solve = one_shot(benchmark, run)
    reference = compute_max_min(flows, caps, lambda f: f.links)
    grouped = solve_max_min_grouped(flows, caps)
    assert all(grouped[f] == reference[f] for f in flows)
    record("perf_solver",
           f"grouped solver, {len(flows)} flows: {per_solve * 1e3:.2f} ms"
           f"/solve ({1.0 / per_solve:.0f} solves/s)")
    _check_or_record("solver_grouped_512_flows",
                     {"seconds": per_solve, "flows": len(flows)})


def bench_fig3_yarn_job_wallclock(benchmark):
    """End-to-end wall clock of the canonical Fig. 3 point:
    MR-AVG, 16 GB shuffle, 1 GigE, YARN, 32M/16R on 8 slaves."""
    suite = suite_cluster_a(slaves=8, version="yarn")

    def run():
        start = time.perf_counter()
        result = suite.run("MR-AVG", shuffle_gb=16, network="1GigE",
                           memoize=False, **YARN_PARAMS)
        return time.perf_counter() - start, result.execution_time

    wall, sim_time = one_shot(benchmark, run)
    record("perf_fig3_job",
           f"Fig. 3 MR-AVG 16GB 1GigE YARN job: {wall:.3f}s wall, "
           f"{sim_time:.4f}s simulated")
    baseline = _load_baselines().get("fig3_yarn_mravg_16gb_1gige")
    if baseline is not None:
        # Perf work must never change simulation results.
        assert sim_time == baseline["sim_time"], (
            f"simulated time drifted: {sim_time!r} != "
            f"{baseline['sim_time']!r}"
        )
    _check_or_record("fig3_yarn_mravg_16gb_1gige",
                     {"seconds": wall, "sim_time": sim_time})


def bench_trace_overhead_disabled(benchmark):
    """Guard the zero-overhead-when-disabled promise of the trace bus.

    With no tracer attached every emit site must cost one attribute
    check, so the disabled-path wall clock may not regress more than
    ~2% (``TRACE_OVERHEAD_LIMIT``) beyond its committed baseline. The
    smoke limit is ``max(TRACE_OVERHEAD_LIMIT, PERF_SMOKE_FACTOR)`` so
    the 2% bound binds on the baseline machine class while arbitrary CI
    hosts keep the usual slack. Independently of wall clock, a traced
    run must reproduce the untraced simulated time bit-for-bit.
    """
    config = BenchmarkConfig.from_shuffle_size(
        1e9, pattern="avg", network="ipoib-qdr",
        num_maps=8, num_reduces=4, key_size=256, value_size=256)
    cluster = cluster_a(2)

    def run():
        best = float("inf")
        sim_time = None
        for _ in range(3):  # min-of-3 to shave scheduler noise
            start = time.perf_counter()
            result = run_simulated_job(config, cluster=cluster)
            best = min(best, time.perf_counter() - start)
            sim_time = result.execution_time
        return best, sim_time

    wall, sim_time = one_shot(benchmark, run)

    traced = run_simulated_job(config, cluster=cluster, tracer=Tracer())
    assert traced.execution_time == sim_time, (
        "tracing perturbed the simulation: "
        f"{traced.execution_time!r} != {sim_time!r}"
    )
    assert len(traced.trace) > 0

    record("perf_trace_overhead",
           f"tracing-disabled MR-AVG 1GB ipoib-qdr job: {wall:.3f}s wall, "
           f"{sim_time:.4f}s simulated ({len(traced.trace)} trace events "
           "when enabled)")

    baseline = _load_baselines().get("trace_overhead_disabled")
    if (baseline is not None and "sim_time" in baseline
            and not os.environ.get("PERF_BASELINE")):
        assert sim_time == baseline["sim_time"], (
            f"simulated time drifted: {sim_time!r} != "
            f"{baseline['sim_time']!r}"
        )
    check_or_record("trace_overhead_disabled",
                    {"seconds": wall, "sim_time": sim_time},
                    BASELINE_PATH,
                    factor=max(TRACE_OVERHEAD_LIMIT, SMOKE_FACTOR))
