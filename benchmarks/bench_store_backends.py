"""Store backend throughput: sharded counters vs the single-lock seed.

The pluggable-backend refactor replaced the seed store's single
``store.lock`` read-modify-write counters with sharded counter files
(one lock per shard) on the filesystem backend, and with transactional
``UPSERT`` statements on the SQLite backend. This module guards the
point of that change:

* **Concurrent writers.** Three worker processes hammer the store
  with counter bumps while a foreground campaign writes its tags — the
  real shape of two campaigns sharing one store. On the single-lock
  seed path the bumpers monopolize ``store.lock`` (a releasing holder
  re-acquires within microseconds, while waiters sleep out their poll
  interval), so the tagger starves; with sharded counter locks and
  per-prefix tag locks the two workloads never touch the same lock
  file. The tagger's throughput must improve by at least
  :data:`SHARDED_SPEEDUP_FLOOR` (the ISSUE acceptance bar), and SQLite
  must be at least at parity with the single-lock path — both floors
  asserted under ``PERF_SMOKE=1`` and recorded in
  ``benchmarks/BENCH_store.json`` via the shared baseline workflow.
  The floors need real parallelism to be measurable: on a single-CPU
  host the OS leaves the CPU with whichever process holds the lock, so
  the seed path loses little aggregate throughput and the ratio is
  scheduler noise — there the floor check skips (the exactness checks
  below still run).
* **Exactness, always.** Whatever the timing, every mode must land on
  the exact final counter totals and tag sets — a fast store that
  drops increments is a broken store.

Counter fsync is disabled for the run (``REPRO_STORE_FSYNC=0``) so the
comparison measures lock contention, not disk flushes — the same
setting the CI perf-smoke step uses.
"""

import multiprocessing
import os
import pathlib
import tempfile
import time

import pytest

os.environ.setdefault("REPRO_STORE_FSYNC", "0")

from _harness import check_or_record, one_shot, record  # noqa: E402

from repro.core.config import BenchmarkConfig  # noqa: E402
from repro.core.suite import MicroBenchmarkSuite  # noqa: E402
from repro.hadoop.cluster import cluster_a  # noqa: E402
from repro.store import (  # noqa: E402
    FilesystemBackend,
    ResultStore,
    StoredResult,
)

BASELINE_PATH = pathlib.Path(__file__).parent / "BENCH_store.json"

#: ISSUE acceptance: sharded counters >= 3x the single-lock seed path.
SHARDED_SPEEDUP_FLOOR = 3.0

#: ISSUE acceptance: SQLite at least at parity with the seed path.
SQLITE_SPEEDUP_FLOOR = 1.0

#: Background counter-bumping processes per run.
BUMPERS = 3

#: Timed foreground tag merges per run (enough samples to average
#: out single-core scheduler luck in the contended modes).
TAGS = 100

#: Pre-seeded records (the tag targets).
RECORDS = 8


def _open_store(mode, root):
    """A ResultStore of one contender mode."""
    if mode == "fs-single":
        # The seed path: every counter bump and tag contends on one
        # store-wide lock file.
        return ResultStore(root, backend=FilesystemBackend(
            pathlib.Path(root), sharded=False))
    return ResultStore(root)


def _tag_keys():
    """The tag-target records (distinct per-prefix lock files)."""
    return [f"{i:02x}" + "e" * 62 for i in range(RECORDS)]


def _bumper(args):
    """Background worker: hammer the miss counter until told to stop.

    Returns how many bumps it issued, so the parent can assert the
    final counter total is exact.
    """
    mode, root, worker_id, stop_path = args
    store = _open_store(mode, root)
    count = 0
    while not os.path.exists(stop_path):
        store.get(f"{count % 16:02x}missing-{worker_id}-{count}")
        count += 1
    return count


def _seed_payload():
    """One real (tiny) simulation to serialize into the seeded records."""
    config = BenchmarkConfig.from_shuffle_size(
        2e7, pattern="avg", network="1GigE", num_maps=4, num_reduces=2,
        key_size=256, value_size=256)
    suite = MicroBenchmarkSuite(cluster=cluster_a(2))
    return StoredResult.from_sim_result(
        suite.run_config(config, memoize=False))


def _noop(_):
    """Pool warm-up task (forks the workers before any timing starts)."""


def _run_mode(mode, payload, pool):
    """One contended tagging pass; returns (seconds, store, bumps).

    ``seconds`` is the wall-clock the foreground campaign spent writing
    its :data:`TAGS` tags while the background bumpers ran. The worker
    pool is created (and warmed) by the caller so fork startup never
    lands inside the timed window.
    """
    tmp = tempfile.mkdtemp(prefix=f"bench-store-{mode}-")
    if mode == "sqlite":
        root = f"sqlite:{tmp}/store.sqlite"
    elif mode == "fs-sharded":
        root = f"file:{tmp}/store"
    else:
        root = f"{tmp}/store"
    store = _open_store(mode, root)
    keys = _tag_keys()
    for key in keys:
        store.put(key, payload)
    stop_path = os.path.join(tmp, "stop")
    pending = pool.map_async(
        _bumper,
        [(mode, root, w, stop_path) for w in range(BUMPERS)])
    # Only start the clock once every bumper is demonstrably running.
    poll = _open_store(mode, root)
    deadline = time.monotonic() + 30
    while poll.backend.counters().get("misses", 0) < BUMPERS:
        assert time.monotonic() < deadline, "bumpers never started"
        time.sleep(0.01)
    start = time.perf_counter()
    for i in range(TAGS):
        store.tag(keys[i % RECORDS], "fg-campaign", {"i": i})
    seconds = time.perf_counter() - start
    pathlib.Path(stop_path).touch()
    bumps = sum(pending.get(timeout=120))
    return seconds, _open_store(mode, root), bumps


def _assert_exact(store, bumps):
    """Exact totals and complete tag sets, whatever the timing."""
    stats = store.stats()
    assert stats["misses"] == bumps
    assert stats["puts"] == RECORDS
    assert stats["records"] == RECORDS
    tagged = {key: set(rec["tags"]) for key, rec in store.records()}
    for key in _tag_keys():
        assert tagged[key] == {"fg-campaign"}


def bench_store_concurrent_writers(benchmark):
    """Contended tag throughput: sharded fs vs seed lock vs sqlite."""
    payload = _seed_payload()

    def run():
        timings = {}
        with multiprocessing.Pool(BUMPERS) as pool:
            pool.map(_noop, range(BUMPERS))  # fork before the clock
            for mode in ("fs-single", "fs-sharded", "sqlite"):
                seconds, store, bumps = _run_mode(mode, payload, pool)
                _assert_exact(store, bumps)
                timings[mode] = seconds
        return timings

    timings = one_shot(benchmark, run)
    sharded_speedup = timings["fs-single"] / timings["fs-sharded"]
    sqlite_speedup = timings["fs-single"] / timings["sqlite"]
    record(
        "perf_store_backends",
        f"store tag throughput under {BUMPERS} concurrent counter "
        f"writers ({TAGS} tags):\n"
        f"  single-lock seed path: {timings['fs-single']:.3f}s\n"
        f"  sharded filesystem:    {timings['fs-sharded']:.3f}s "
        f"({sharded_speedup:.1f}x)\n"
        f"  sqlite (WAL):          {timings['sqlite']:.3f}s "
        f"({sqlite_speedup:.1f}x)\n",
    )
    check_or_record(
        "store_concurrent_writers",
        {
            "seconds": timings["fs-sharded"],
            "single_lock_seconds": timings["fs-single"],
            "sqlite_seconds": timings["sqlite"],
            "sharded_speedup": round(sharded_speedup, 2),
            "sqlite_speedup": round(sqlite_speedup, 2),
            "tags": TAGS,
            "bumpers": BUMPERS,
        },
        BASELINE_PATH,
        # Contended wall-clock is scheduler-noisy; the speedup floors
        # below are the real acceptance guard.
        factor=4.0,
    )
    if os.environ.get("PERF_SMOKE"):
        if (os.cpu_count() or 1) < 2:
            pytest.skip(
                "single-CPU host: lock-contention speedups are "
                "scheduler noise without real parallelism "
                f"(measured {sharded_speedup:.1f}x sharded, "
                f"{sqlite_speedup:.1f}x sqlite; exactness checks ran)")
        assert sharded_speedup >= SHARDED_SPEEDUP_FLOOR, (
            f"sharded counters only {sharded_speedup:.1f}x the "
            f"single-lock path (floor {SHARDED_SPEEDUP_FLOOR}x)")
        assert sqlite_speedup >= SQLITE_SPEEDUP_FLOOR, (
            f"sqlite below single-lock parity ({sqlite_speedup:.1f}x)")


def bench_store_cold_scan(benchmark):
    """Cold ``stats`` + ``ls`` over a 2000-record corpus, per backend.

    Informational scaling check (guarded only by the generic smoke
    factor): the sqlite backend answers from SQL aggregates and an
    index, the filesystem backend walks ``objects/``.
    """
    n = 2000
    document = {"schema": 1, "provenance": {}, "tags": {},
                "result": {"execution_time": 1.0}}
    timings = {}
    tmp = tempfile.mkdtemp(prefix="bench-store-scan-")
    roots = {"fs": f"file:{tmp}/store", "sqlite": f"sqlite:{tmp}/db.sqlite"}
    for mode, root in roots.items():
        backend = ResultStore(root).backend
        backend.write_records(
            (f"{i:064x}", dict(document, key=f"{i:064x}"))
            for i in range(n))

    def run():
        for mode, root in roots.items():
            cold = ResultStore(root)  # fresh handle = cold scan
            start = time.perf_counter()
            stats = cold.stats()
            keys = list(cold.keys())
            timings[mode] = time.perf_counter() - start
            assert stats["records"] == n and len(keys) == n
        return timings

    one_shot(benchmark, run)
    record(
        "perf_store_cold_scan",
        f"cold stats+ls over {n} records:\n"
        f"  filesystem: {timings['fs']:.3f}s\n"
        f"  sqlite:     {timings['sqlite']:.3f}s\n",
    )
    check_or_record(
        "store_cold_scan_2000",
        {"seconds": timings["sqlite"],
         "filesystem_seconds": timings["fs"],
         "records": n},
        BASELINE_PATH,
    )
