"""Service warm-hit throughput: the query front end under real load.

The benchmark-as-a-service layer's performance claim is that warm hits
are cheap: a stored point answers straight from the backend's read
path as pre-serialized canonical bytes, and hit accounting is batched
(one store-counter write per 64 hits) so the hot path does no
per-request read-modify-write. This bench drives the real stack — the
asyncio HTTP server on a loopback socket, keep-alive ``http.client``
connections — with several client threads hammering one warm point,
and guards two things:

* wall-clock vs the committed baseline (``BENCH_service.json``), via
  the shared :func:`check_or_record` workflow;
* an absolute floor under ``PERF_SMOKE=1``: at least
  :data:`WARM_QPS_FLOOR` warm queries/second end to end. The floor is
  deliberately far below what loopback HTTP manages on any dev box —
  it exists to catch an accidental per-request store walk or counter
  fsync, not to benchmark the host.
"""

import http.client
import json
import os
import pathlib
import tempfile
import threading
import time

os.environ.setdefault("REPRO_STORE_FSYNC", "0")

from _harness import check_or_record, one_shot, record  # noqa: E402

from repro.service import BackgroundServer, BenchmarkService  # noqa: E402

BASELINE_PATH = pathlib.Path(__file__).parent / "BENCH_service.json"

#: Concurrent keep-alive client threads.
CLIENTS = 4

#: Warm queries per client per run.
REQUESTS = 150

#: PERF_SMOKE acceptance: warm-hit throughput must clear this.
WARM_QPS_FLOOR = 500.0

#: The point every client asks for (~2 ms to simulate once).
QUERY = {
    "benchmark": "MR-AVG",
    "shuffle_gb": 0.02,
    "network": "1GigE",
    "slaves": 2,
    "params": {"num_maps": 4, "num_reduces": 2,
               "key_size": 256, "value_size": 256},
}


def _client(address, body, out, index):
    """One keep-alive client: REQUESTS warm queries, count the 200s."""
    conn = http.client.HTTPConnection(*address, timeout=60)
    ok = 0
    payloads = set()
    for _ in range(REQUESTS):
        conn.request("POST", "/v1/points", body=body)
        response = conn.getresponse()
        payloads.add(response.read())
        ok += response.status == 200
    conn.close()
    out[index] = (ok, payloads)


def bench_service_warm_hits(benchmark):
    """Throughput of one warm point under CLIENTS concurrent clients."""
    tmp = tempfile.mkdtemp(prefix="bench-service-")
    service = BenchmarkService(f"file:{tmp}/store")
    body = json.dumps(dict(QUERY, wait=True))
    with BackgroundServer(service) as server:
        # Seed: the first query simulates the point (cold, once).
        seed = http.client.HTTPConnection(*server.address, timeout=120)
        seed.request("POST", "/v1/points", body=body)
        response = seed.getresponse()
        reference = response.read()
        assert response.status == 200
        seed.close()

        def run():
            out = [None] * CLIENTS
            threads = [
                threading.Thread(target=_client,
                                 args=(server.address, body, out, i))
                for i in range(CLIENTS)
            ]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            seconds = time.perf_counter() - start
            assert all(ok == REQUESTS for ok, _ in out)
            # Every response is the same canonical bytes as the seed.
            assert set().union(*(p for _, p in out)) == {reference}
            return seconds

        seconds = one_shot(benchmark, run)
        stats = service.stats(refresh=True)
    total = CLIENTS * REQUESTS
    qps = total / seconds
    # Nothing was re-simulated and no hit was dropped by the batched
    # counter flush (stats() flushes the remainder).
    assert stats["puts"] == 1
    assert stats["hits"] == total
    record(
        "perf_service_warm_hits",
        f"service warm-hit throughput ({CLIENTS} keep-alive clients x "
        f"{REQUESTS} queries):\n"
        f"  {total} requests in {seconds:.3f}s = {qps:,.0f} q/s\n",
    )
    check_or_record(
        "service_warm_hits",
        {"seconds": seconds, "qps": round(qps, 1),
         "clients": CLIENTS, "requests": total},
        BASELINE_PATH,
    )
    if os.environ.get("PERF_SMOKE"):
        assert qps >= WARM_QPS_FLOOR, (
            f"warm-hit throughput {qps:,.0f} q/s is below the "
            f"{WARM_QPS_FLOOR:,.0f} q/s floor")
