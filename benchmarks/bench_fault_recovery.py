"""Fault-recovery demo: a node crash mid-shuffle, IPoIB FDR vs RDMA.

Beyond the paper: the same MR-AVG job on Cluster B loses one slave in
the middle of the shuffle. The fault plan is seeded and declarative, so
both networks see the *same* crash at the same phase fraction; the
faster substrate re-executes the displaced work sooner. The per-phase
breakdown (the ``--phase-report`` table) and a Chrome trace (with
``fault``-category markers for the crash and its recovery) are
persisted under ``benchmarks/results/``.
"""

from _harness import one_shot, record
from repro import JobConf, cluster_b
from repro.analysis import format_table
from repro.analysis.export import write_chrome_trace
from repro.core.config import BenchmarkConfig
from repro.core.report import render_phase_table
from repro.faults import FaultPlan, NodeCrash
from repro.hadoop.simulation import run_simulated_job
from repro.sim.trace import Tracer

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

NETWORKS = ("ipoib-fdr", "rdma")
PARAMS = dict(num_maps=32, num_reduces=16, key_size=512, value_size=512,
              data_type="BytesWritable")
SHUFFLE_GB = 16.0
SLAVES = 8


def _config(network):
    return BenchmarkConfig.from_shuffle_size(
        SHUFFLE_GB * 1e9, pattern="avg", network=network, **PARAMS)


def _run_network(network):
    cluster = cluster_b(SLAVES)
    jobconf = JobConf()
    config = _config(network)
    clean = run_simulated_job(config, cluster=cluster, jobconf=jobconf)
    b = clean.breakdown()
    # Crash one slave once the shuffle is well underway: a third of the
    # way into the slowest reducer's shuffle+merge window.
    crash_t = b["map_phase"] + 0.3 * b["slowest_shuffle"]
    plan = FaultPlan(node_crashes=(NodeCrash("slave1", at_time=crash_t),))
    tracer = Tracer()
    crashed = run_simulated_job(config, cluster=cluster, jobconf=jobconf,
                                fault_plan=plan, tracer=tracer)
    write_chrome_trace(
        str(RESULTS_DIR / f"fault_recovery_{network}.trace.json"), tracer)
    record(f"fault_recovery_phases_{network}",
           render_phase_table(crashed))
    return clean, crashed, crash_t


def _series():
    RESULTS_DIR.mkdir(exist_ok=True)
    rows = []
    out = {}
    for network in NETWORKS:
        clean, crashed, crash_t = _run_network(network)
        report = crashed.resilience
        crash = report.crashes[0]
        rows.append([
            crashed.interconnect_name,
            round(clean.execution_time, 1),
            round(crashed.execution_time, 1),
            f"+{crashed.execution_time - clean.execution_time:.1f}",
            round(crash_t, 1),
            crash.attempts_killed,
            round(crash.recovery_time, 1),
            round(report.wasted_task_seconds, 1),
            round(report.reexecuted_bytes / 1e6),
        ])
        out[network] = (clean, crashed)
    text = format_table(
        ["network", "clean (s)", "crashed (s)", "penalty",
         "crash t (s)", "killed", "recovery (s)", "wasted (s)",
         "redone (MB)"],
        rows,
        title=f"MR-AVG {SHUFFLE_GB:.0f} GB on Cluster B ({SLAVES} slaves), "
              f"slave1 lost mid-shuffle")
    record("fault_recovery_summary", text)
    return out


def bench_fault_recovery(benchmark):
    results = one_shot(benchmark, _series)
    for network, (clean, crashed) in results.items():
        report = crashed.resilience
        # The crash hurts, is survived, and is fully recovered.
        assert crashed.execution_time > clean.execution_time
        assert len(report.crashes) == 1
        assert report.crashes[0].recovered_at is not None
        assert report.attempts_killed_by_crashes >= 1
        # The trace bus carried the fault markers into the export.
        phases = crashed.phase_breakdown()
        assert phases.execution_time == crashed.execution_time
    # The faster wire also finishes the crashed run sooner.
    assert (results["rdma"][1].execution_time
            < results["ipoib-fdr"][1].execution_time)
