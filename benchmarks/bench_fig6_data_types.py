"""Figure 6: impact of the intermediate data type (MR-RAND).

Paper setup: Cluster A, MRv1, 16 maps / 8 reduces on 4 slaves, fixed
1 KB pairs, BytesWritable vs Text, shuffle sizes up to 64 GB.

Paper shape: both data types gain similarly from faster interconnects
(~23-27 % for 10 GigE, up to ~28 % for IPoIB QDR in the paper's runs);
high-speed networks provide "similar improvement potential to both
data types".

The sweep itself is the declarative ``campaigns/fig6.json`` spec — one
campaign with a data-type variant per sub-figure — run through the
shared result store; this module only shapes and asserts.
"""

from _harness import (
    improvement_summary,
    one_shot,
    record,
    run_figure_campaign,
)


def _run_type(data_type, subfig):
    outcome = run_figure_campaign("fig6.json")
    sweep = outcome.sweep_result(variant=data_type)
    text = sweep.to_table(
        title=f"Fig. 6({subfig}) MR-RAND with {data_type}")
    text += "\n" + improvement_summary(sweep, "1GigE")
    record(f"fig6{subfig}_{data_type.lower()}", text)
    return sweep


def bench_fig6a_bytes_writable(benchmark):
    sweep = one_shot(benchmark, lambda: _run_type("BytesWritable", "a"))
    assert sweep.improvement("1GigE", "IPoIB-QDR(32Gbps)") > 15


def bench_fig6b_text(benchmark):
    sweep = one_shot(benchmark, lambda: _run_type("Text", "b"))
    assert sweep.improvement("1GigE", "IPoIB-QDR(32Gbps)") > 15


def bench_fig6_types_gain_similarly(benchmark):
    """'high-speed interconnects provide similar improvement potential
    to both data types'."""

    def run():
        outcome = run_figure_campaign("fig6.json")
        gains = {
            data_type: outcome.sweep_result(variant=data_type)
                              .improvement("1GigE", "IPoIB-QDR(32Gbps)",
                                           shuffle_gb=32.0)
            for data_type in ("BytesWritable", "Text")
        }
        record("fig6_type_similarity",
               "Fig. 6 IPoIB gain by type @32GB: "
               + ", ".join(f"{k}={v:.1f}%" for k, v in gains.items()))
        return gains

    gains = one_shot(benchmark, run)
    assert abs(gains["BytesWritable"] - gains["Text"]) < 5.0
