"""Figure 6: impact of the intermediate data type (MR-RAND).

Paper setup: Cluster A, MRv1, 16 maps / 8 reduces on 4 slaves, fixed
1 KB pairs, BytesWritable vs Text, shuffle sizes up to 64 GB.

Paper shape: both data types gain similarly from faster interconnects
(~23-27 % for 10 GigE, up to ~28 % for IPoIB QDR in the paper's runs);
high-speed networks provide "similar improvement potential to both
data types".
"""

from _harness import (
    CLUSTER_A_NETWORKS,
    improvement_summary,
    one_shot,
    record,
    suite_cluster_a,
)

SIZES_GB = (16.0, 32.0, 64.0)


def _run_type(data_type, subfig):
    suite = suite_cluster_a()
    sweep = suite.sweep("MR-RAND", SIZES_GB, CLUSTER_A_NETWORKS,
                        num_maps=16, num_reduces=8,
                        key_size=512, value_size=512, data_type=data_type)
    text = sweep.to_table(
        title=f"Fig. 6({subfig}) MR-RAND with {data_type}")
    text += "\n" + improvement_summary(sweep, "1GigE")
    record(f"fig6{subfig}_{data_type.lower()}", text)
    return sweep


def bench_fig6a_bytes_writable(benchmark):
    sweep = one_shot(benchmark, lambda: _run_type("BytesWritable", "a"))
    assert sweep.improvement("1GigE", "IPoIB-QDR(32Gbps)") > 15


def bench_fig6b_text(benchmark):
    sweep = one_shot(benchmark, lambda: _run_type("Text", "b"))
    assert sweep.improvement("1GigE", "IPoIB-QDR(32Gbps)") > 15


def bench_fig6_types_gain_similarly(benchmark):
    """'high-speed interconnects provide similar improvement potential
    to both data types'."""

    def run():
        gains = {}
        for data_type in ("BytesWritable", "Text"):
            suite = suite_cluster_a()
            sweep = suite.sweep("MR-RAND", [32.0], CLUSTER_A_NETWORKS,
                                num_maps=16, num_reduces=8,
                                key_size=512, value_size=512,
                                data_type=data_type)
            gains[data_type] = sweep.improvement(
                "1GigE", "IPoIB-QDR(32Gbps)")
        record("fig6_type_similarity",
               "Fig. 6 IPoIB gain by type @32GB: "
               + ", ".join(f"{k}={v:.1f}%" for k, v in gains.items()))
        return gains

    gains = one_shot(benchmark, run)
    assert abs(gains["BytesWritable"] - gains["Text"]) < 5.0
