"""The paper's §7 headline numbers as one reproduction summary table.

"the performance of the MapReduce job improves around 17 % if the
underlying interconnect is changed to 10 GigE from 1 GigE, and up to
23 % when changed to IPoIB QDR... IPoIB QDR improves performance of
the MapReduce job by about 12 % over 10 GigE... RDMA-enhanced
MapReduce design can achieve much better performance than default
Hadoop MapReduce over IPoIB FDR."
"""

from _harness import (
    CLUSTER_A_NETWORKS,
    CLUSTER_A_PARAMS,
    one_shot,
    record,
    suite_cluster_a,
    suite_cluster_b,
)
from repro.analysis import format_table, improvement_pct


def _summary():
    rows = []

    suite = suite_cluster_a()
    sweep = suite.sweep("MR-AVG", [8.0, 16.0, 32.0], CLUSTER_A_NETWORKS,
                        **CLUSTER_A_PARAMS)
    d10 = sweep.improvement("1GigE", "10GigE")
    dib = sweep.improvement("1GigE", "IPoIB-QDR(32Gbps)")
    dib10 = sweep.improvement("10GigE", "IPoIB-QDR(32Gbps)")
    rows.append(["1GigE -> 10GigE (MR-AVG)", "~17%", f"{d10:.1f}%"])
    rows.append(["1GigE -> IPoIB QDR (MR-AVG)", "~23-24%", f"{dib:.1f}%"])
    rows.append(["10GigE -> IPoIB QDR (MR-AVG)", "~8-12%", f"{dib10:.1f}%"])

    bsuite = suite_cluster_b(8)
    t_ib = bsuite.run("MR-AVG", shuffle_gb=32, network="ipoib-fdr",
                      num_maps=32, num_reduces=16).execution_time
    t_rd = bsuite.run("MR-AVG", shuffle_gb=32, network="rdma",
                      num_maps=32, num_reduces=16).execution_time
    rows.append(["IPoIB FDR -> RDMA (8 slaves)", "~28-30%",
                 f"{improvement_pct(t_ib, t_rd):.1f}%"])

    text = format_table(
        ["transition", "paper", "reproduced"], rows,
        title="Reproduction summary: headline improvements (Sect. 7)")
    record("summary_table", text)
    return d10, dib, dib10


def bench_summary_headline_numbers(benchmark):
    d10, dib, dib10 = one_shot(benchmark, _summary)
    assert 10 <= d10 <= 25
    assert 17 <= dib <= 30
    assert 3 <= dib10 <= 15
