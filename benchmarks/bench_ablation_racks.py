"""Ablation A4 (ours): rack oversubscription.

Both paper testbeds use a single non-blocking switch; the paper notes
the network "is an important consideration, especially when expanding
the cluster". This ablation expands the simulated cluster across two
racks and sweeps the uplink oversubscription ratio — quantifying how
much of the all-to-all shuffle survives a typical datacenter topology,
per interconnect.
"""

from _harness import one_shot, record
from repro import BenchmarkConfig, cluster_a, run_simulated_job
from repro.analysis import format_table

RATIOS = (1.0, 2.0, 4.0, 8.0)
NETWORKS = ("1GigE", "ipoib-qdr")


def _sweep_oversubscription():
    grid = {}
    for network in NETWORKS:
        config = BenchmarkConfig.from_shuffle_size(
            16e9, num_maps=16, num_reduces=16, key_size=512, value_size=512,
            network=network)
        flat = run_simulated_job(config, cluster=cluster_a(8)).execution_time
        grid[(network, "flat")] = flat
        for ratio in RATIOS:
            cluster = cluster_a(8).with_racks(2, oversubscription=ratio)
            grid[(network, ratio)] = run_simulated_job(
                config, cluster=cluster).execution_time
    return grid


def bench_ablation_rack_oversubscription(benchmark):
    grid = one_shot(benchmark, _sweep_oversubscription)
    rows = []
    for ratio in RATIOS:
        row = [f"{ratio:g}:1"]
        for network in NETWORKS:
            base = grid[(network, "flat")]
            t = grid[(network, ratio)]
            row.append(round(t, 1))
            row.append(f"{100 * (t - base) / base:+.1f}%")
        rows.append(row)
    headers = ["oversub"]
    for network in NETWORKS:
        headers += [f"{network} (s)", "vs flat"]
    text = format_table(
        headers, rows,
        title="A4: two-rack oversubscription (MR-AVG 16GB, 8 slaves, 16R)")
    record("ablation_racks", text)

    for network in NETWORKS:
        # non-blocking racks match the flat switch...
        assert grid[(network, 1.0)] <= grid[(network, "flat")] * 1.02
        # ...and higher oversubscription monotonically hurts.
        times = [grid[(network, r)] for r in RATIOS]
        assert all(a <= b * 1.001 for a, b in zip(times, times[1:]))
    # The slow wire suffers relatively more from a squeezed uplink.
    slow_penalty = grid[("1GigE", 8.0)] / grid[("1GigE", "flat")]
    fast_penalty = grid[("ipoib-qdr", 8.0)] / grid[("ipoib-qdr", "flat")]
    assert slow_penalty >= fast_penalty * 0.98