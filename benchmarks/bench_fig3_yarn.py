"""Figure 3: the three distribution patterns on Hadoop NextGen
MapReduce (YARN), Cluster A.

Paper setup: 1 KB pairs, 32 map tasks and 16 reduce tasks on 8 slave
nodes, Hadoop 2.x.

Paper shape: MR-AVG improves ~11 % (10 GigE) and ~18 % (IPoIB QDR) vs
1 GigE; MR-RAND ~10 %/~17 %; MR-SKEW ~10-12 %; skew now costs >3x avg
(the slowest reducer dominates despite the added concurrency).
"""

from _harness import (
    CLUSTER_A_NETWORKS,
    JOBS,
    SHUFFLE_SIZES_GB,
    YARN_PARAMS,
    improvement_summary,
    one_shot,
    record,
    suite_cluster_a,
)


def _run_pattern(pattern_name, subfig):
    suite = suite_cluster_a(slaves=8, version="yarn")
    sweep = suite.sweep(pattern_name, SHUFFLE_SIZES_GB, CLUSTER_A_NETWORKS,
                        jobs=JOBS, **YARN_PARAMS)
    text = sweep.to_table(
        title=f"Fig. 3({subfig}) {pattern_name} job execution time (s), "
              f"Cluster A YARN (32M/16R, 8 slaves)")
    text += "\n" + improvement_summary(sweep, "1GigE")
    record(f"fig3{subfig}_{pattern_name.lower()}", text)
    return sweep


def bench_fig3a_mr_avg_yarn(benchmark):
    sweep = one_shot(benchmark, lambda: _run_pattern("MR-AVG", "a"))
    d10 = sweep.improvement("1GigE", "10GigE")
    dib = sweep.improvement("1GigE", "IPoIB-QDR(32Gbps)")
    # Paper: ~11 % and ~18 %.
    assert 6 <= d10 <= 25
    assert 12 <= dib <= 30
    assert dib > d10


def bench_fig3b_mr_rand_yarn(benchmark):
    sweep = one_shot(benchmark, lambda: _run_pattern("MR-RAND", "b"))
    dib = sweep.improvement("1GigE", "IPoIB-QDR(32Gbps)")
    # Paper: up to ~17 %.
    assert 12 <= dib <= 30


def bench_fig3c_mr_skew_yarn(benchmark):
    sweep = one_shot(benchmark, lambda: _run_pattern("MR-SKEW", "c"))
    dib = sweep.improvement("1GigE", "IPoIB-QDR(32Gbps)")
    # Paper: ~10-12 % with high-speed interconnects.
    assert dib > 6


def bench_fig3_skew_exceeds_3x(benchmark):
    """'the skewed data distribution increases the job execution time
    by more than 3X' on YARN."""

    def run():
        suite = suite_cluster_a(slaves=8, version="yarn")
        avg = suite.run("MR-AVG", shuffle_gb=16, network="1GigE",
                        **YARN_PARAMS).execution_time
        skew = suite.run("MR-SKEW", shuffle_gb=16, network="1GigE",
                         **YARN_PARAMS).execution_time
        record("fig3_skew_ratio",
               f"Fig. 3 skew/avg ratio @16GB 1GigE YARN: {skew / avg:.2f}x "
               f"(paper: >3x)")
        return skew / avg

    ratio = one_shot(benchmark, run)
    assert ratio > 3.0
