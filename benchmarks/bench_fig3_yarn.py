"""Figure 3: the three distribution patterns on Hadoop NextGen
MapReduce (YARN), Cluster A.

Paper setup: 1 KB pairs, 32 map tasks and 16 reduce tasks on 8 slave
nodes, Hadoop 2.x.

Paper shape: MR-AVG improves ~11 % (10 GigE) and ~18 % (IPoIB QDR) vs
1 GigE; MR-RAND ~10 %/~17 %; MR-SKEW ~10-12 %; skew now costs >3x avg
(the slowest reducer dominates despite the added concurrency).

The sweep itself is the declarative ``campaigns/fig3.json`` spec run
through the shared result store; this module only shapes and asserts.
"""

from _harness import (
    improvement_summary,
    one_shot,
    record,
    run_figure_campaign,
)


def _run_pattern(pattern_name, subfig):
    outcome = run_figure_campaign("fig3.json", name=f"fig3{subfig}")
    sweep = outcome.sweep_result()
    text = sweep.to_table(
        title=f"Fig. 3({subfig}) {pattern_name} job execution time (s), "
              f"Cluster A YARN (32M/16R, 8 slaves)")
    text += "\n" + improvement_summary(sweep, "1GigE")
    record(f"fig3{subfig}_{pattern_name.lower()}", text)
    return sweep


def bench_fig3a_mr_avg_yarn(benchmark):
    sweep = one_shot(benchmark, lambda: _run_pattern("MR-AVG", "a"))
    d10 = sweep.improvement("1GigE", "10GigE")
    dib = sweep.improvement("1GigE", "IPoIB-QDR(32Gbps)")
    # Paper: ~11 % and ~18 %.
    assert 6 <= d10 <= 25
    assert 12 <= dib <= 30
    assert dib > d10


def bench_fig3b_mr_rand_yarn(benchmark):
    sweep = one_shot(benchmark, lambda: _run_pattern("MR-RAND", "b"))
    dib = sweep.improvement("1GigE", "IPoIB-QDR(32Gbps)")
    # Paper: up to ~17 %.
    assert 12 <= dib <= 30


def bench_fig3c_mr_skew_yarn(benchmark):
    sweep = one_shot(benchmark, lambda: _run_pattern("MR-SKEW", "c"))
    dib = sweep.improvement("1GigE", "IPoIB-QDR(32Gbps)")
    # Paper: ~10-12 % with high-speed interconnects.
    assert dib > 6


def bench_fig3_skew_exceeds_3x(benchmark):
    """'the skewed data distribution increases the job execution time
    by more than 3X' on YARN."""

    def run():
        avg = run_figure_campaign("fig3.json", "fig3a").sweep_result()
        skew = run_figure_campaign("fig3.json", "fig3c").sweep_result()
        ratio = skew.time("1GigE", 16.0) / avg.time("1GigE", 16.0)
        record("fig3_skew_ratio",
               f"Fig. 3 skew/avg ratio @16GB 1GigE YARN: {ratio:.2f}x "
               f"(paper: >3x)")
        return ratio

    ratio = one_shot(benchmark, run)
    assert ratio > 3.0
