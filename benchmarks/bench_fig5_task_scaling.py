"""Figure 5: impact of the number of map and reduce tasks (MR-AVG).

Paper setup: Cluster A, MRv1, 1 KB pairs, 10 GigE vs IPoIB QDR, two
task configurations: 4 maps / 2 reduces (4M-2R) and 8 maps / 4 reduces
(8M-4R); job time vs shuffle size.

Paper shape: IPoIB QDR outperforms 10 GigE in both configurations
(~13 %); doubling the tasks helps both networks, and helps IPoIB more
(32 % vs 24 % at 32 GB) — more concurrent fetch streams keep the fat
pipe busy.
"""

from _harness import one_shot, record, suite_cluster_a
from repro.analysis import format_table, improvement_pct

SIZES_GB = (8.0, 16.0, 32.0)
NETWORKS = ("10GigE", "ipoib-qdr")
TASK_CONFIGS = (("4M-2R", 4, 2), ("8M-4R", 8, 4))


def _sweep_tasks():
    suite = suite_cluster_a()
    grid = {}
    for label, maps, reduces in TASK_CONFIGS:
        for network in NETWORKS:
            sweep = suite.sweep("MR-AVG", SIZES_GB, [network],
                                num_maps=maps, num_reduces=reduces,
                                key_size=512, value_size=512)
            for size in SIZES_GB:
                net_name = sweep.networks()[0]
                grid[(label, net_name, size)] = sweep.time(net_name, size)
    return grid


def bench_fig5_task_scaling(benchmark):
    grid = one_shot(benchmark, _sweep_tasks)
    networks = sorted({k[1] for k in grid})
    headers = ["Shuffle (GB)"] + [
        f"{net} {label}" for net in networks for label, _m, _r in TASK_CONFIGS
    ]
    rows = []
    for size in SIZES_GB:
        row = [size]
        for net in networks:
            for label, _m, _r in TASK_CONFIGS:
                row.append(round(grid[(label, net, size)], 1))
        rows.append(row)
    text = format_table(headers, rows,
                        title="Fig. 5 MR-AVG with varying map/reduce tasks")

    ib = "IPoIB-QDR(32Gbps)"
    ge = "10GigE"
    ib_gain = improvement_pct(grid[("8M-4R", ge, 32.0)],
                              grid[("8M-4R", ib, 32.0)])
    scale_ib = improvement_pct(grid[("4M-2R", ib, 32.0)],
                               grid[("8M-4R", ib, 32.0)])
    scale_ge = improvement_pct(grid[("4M-2R", ge, 32.0)],
                               grid[("8M-4R", ge, 32.0)])
    text += (
        f"\n  IPoIB vs 10GigE (8M-4R @32GB): {ib_gain:+.1f}% (paper ~13%)"
        f"\n  4M-2R -> 8M-4R on IPoIB @32GB: {scale_ib:+.1f}% (paper ~32%)"
        f"\n  4M-2R -> 8M-4R on 10GigE @32GB: {scale_ge:+.1f}% (paper ~24%)"
    )
    record("fig5_task_scaling", text)

    # Shape assertions: IPoIB wins everywhere; doubling tasks helps both;
    # IPoIB gains at least as much from added concurrency.
    for size in SIZES_GB:
        for label, _m, _r in TASK_CONFIGS:
            assert grid[(label, ib, size)] < grid[(label, ge, size)]
        assert grid[("8M-4R", ib, size)] < grid[("4M-2R", ib, size)]
        assert grid[("8M-4R", ge, size)] < grid[("4M-2R", ge, size)]
    assert scale_ib >= scale_ge - 1.0
