"""Figure 2: job execution time for the three intermediate data
distribution patterns on Cluster A (MRv1).

Paper setup: BytesWritable, 1 KB key/value pairs, 16 map tasks and
8 reduce tasks on 4 slave nodes; shuffle data size swept by varying the
number of generated pairs; networks 1 GigE / 10 GigE / IPoIB QDR.

Paper shape: MR-AVG improves ~17 % on 10 GigE and ~24 % on IPoIB QDR
vs 1 GigE; MR-RAND ~16 %/~22 %; MR-SKEW ~11 %/~12 %; IPoIB beats
10 GigE by ~8-10 %; skew roughly doubles the job time vs avg.

The sweep itself is the declarative ``campaigns/fig2.json`` spec run
through the shared result store; this module only shapes and asserts.
"""

from _harness import (
    improvement_summary,
    one_shot,
    record,
    run_figure_campaign,
)


def _run_pattern(pattern_name, subfig):
    outcome = run_figure_campaign("fig2.json", name=f"fig2{subfig}")
    sweep = outcome.sweep_result()
    text = sweep.to_table(
        title=f"Fig. 2({subfig}) {pattern_name} job execution time (s), "
              f"Cluster A MRv1")
    text += "\n" + improvement_summary(sweep, "1GigE")
    record(f"fig2{subfig}_{pattern_name.lower()}", text)
    return sweep


def bench_fig2a_mr_avg(benchmark):
    sweep = one_shot(benchmark, lambda: _run_pattern("MR-AVG", "a"))
    d10 = sweep.improvement("1GigE", "10GigE")
    dib = sweep.improvement("1GigE", "IPoIB-QDR(32Gbps)")
    # Paper: ~17 % and up to ~24 %.
    assert 10 <= d10 <= 25
    assert 17 <= dib <= 32
    assert dib > d10


def bench_fig2b_mr_rand(benchmark):
    sweep = one_shot(benchmark, lambda: _run_pattern("MR-RAND", "b"))
    d10 = sweep.improvement("1GigE", "10GigE")
    dib = sweep.improvement("1GigE", "IPoIB-QDR(32Gbps)")
    # Paper: ~16 % and up to ~22 %.
    assert 10 <= d10 <= 25
    assert 15 <= dib <= 30
    assert dib > d10


def bench_fig2c_mr_skew(benchmark):
    sweep = one_shot(benchmark, lambda: _run_pattern("MR-SKEW", "c"))
    d10 = sweep.improvement("1GigE", "10GigE")
    dib = sweep.improvement("1GigE", "IPoIB-QDR(32Gbps)")
    # Paper: ~11 % and ~12 %; gains smaller than for MR-AVG.
    assert d10 > 4
    assert dib > 8
    assert dib >= d10


def bench_fig2_skew_doubles_avg(benchmark):
    """The 'skewed distribution seems to double the job execution time'
    observation, at the largest sweep point."""

    def run():
        avg = run_figure_campaign("fig2.json", "fig2a").sweep_result()
        skew = run_figure_campaign("fig2.json", "fig2c").sweep_result()
        ratio = skew.time("1GigE", 16.0) / avg.time("1GigE", 16.0)
        record("fig2_skew_ratio",
               f"Fig. 2 skew/avg ratio @16GB 1GigE: {ratio:.2f}x "
               f"(paper: ~2x)")
        return ratio

    ratio = one_shot(benchmark, run)
    assert 1.6 <= ratio <= 2.8
