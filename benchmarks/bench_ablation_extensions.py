"""Ablation A3 (ours): the extension features on the Fig. 2 workload.

The paper's future work asks for "additional features ... so that users
can gain a more concrete understanding of real-world workloads". This
ablation exercises the reproduction's extensions: intermediate-data
compression, a combiner, and the Zipf real-world-skew pattern — each
across the Cluster A networks, because their value depends on how fast
the wire is.
"""

from _harness import CLUSTER_A_PARAMS, one_shot, record, suite_cluster_a
from repro import JobConf, MicroBenchmarkSuite, cluster_a
from repro.analysis import format_table, improvement_pct

WORKLOAD = dict(shuffle_gb=16, **CLUSTER_A_PARAMS)
NETWORKS = ("1GigE", "ipoib-qdr", )


def _time(jobconf, network, benchmark="MR-AVG"):
    suite = MicroBenchmarkSuite(cluster=cluster_a(4), jobconf=jobconf)
    return suite.run(benchmark, network=network, **WORKLOAD).execution_time


def bench_ablation_compression(benchmark):
    """Compression trades codec CPU for wire bytes: a win on 1 GigE,
    a wash (or loss) on IPoIB."""

    def run():
        rows = []
        gains = {}
        for network in NETWORKS:
            plain = _time(JobConf(), network)
            packed = _time(JobConf(compress_map_output=True), network)
            gains[network] = improvement_pct(plain, packed)
            rows.append([network, round(plain, 1), round(packed, 1),
                         f"{gains[network]:+.1f}%"])
        text = format_table(
            ["network", "plain (s)", "compressed (s)", "gain"],
            rows, title="A3: map-output compression (MR-AVG 16GB)")
        record("ablation_compression", text)
        return gains

    gains = one_shot(benchmark, run)
    assert gains["1GigE"] > 3.0           # slow wire: clear win
    assert gains["1GigE"] > gains["ipoib-qdr"]  # fast wire: smaller win


def bench_ablation_combiner(benchmark):
    """A 4x combiner cuts shuffle volume; the win scales with how
    expensive the wire is."""

    def run():
        rows = []
        gains = {}
        for network in NETWORKS:
            plain = _time(JobConf(), network)
            combined = _time(JobConf(combiner_reduction=0.25), network)
            gains[network] = improvement_pct(plain, combined)
            rows.append([network, round(plain, 1), round(combined, 1),
                         f"{gains[network]:+.1f}%"])
        text = format_table(
            ["network", "no combiner (s)", "combiner 4x (s)", "gain"],
            rows, title="A3: combiner (4x reduction, MR-AVG 16GB)")
        record("ablation_combiner", text)
        return gains

    gains = one_shot(benchmark, run)
    assert gains["1GigE"] > 10.0
    assert gains["1GigE"] > gains["ipoib-qdr"]


def bench_ablation_zipf_pattern(benchmark):
    """MR-ZIPF sits between MR-AVG and MR-SKEW in straggler severity."""

    def run():
        suite = suite_cluster_a()
        rows = []
        times = {}
        for name in ("MR-AVG", "MR-ZIPF", "MR-SKEW"):
            t = suite.run(name, network="1GigE", **WORKLOAD).execution_time
            times[name] = t
            rows.append([name, round(t, 1),
                         f"{t / times['MR-AVG']:.2f}x"])
        text = format_table(
            ["benchmark", "time (s)", "vs MR-AVG"],
            rows, title="A3: Zipf real-world skew vs the paper's patterns "
                        "(16GB, 1GigE)")
        record("ablation_zipf", text)
        return times

    times = one_shot(benchmark, run)
    assert times["MR-AVG"] < times["MR-ZIPF"] < times["MR-SKEW"]
