"""Ablation A1: sensitivity to the Hadoop parameters the suite can set.

The paper motivates the suite as a tool for "tuning different internal
parameters to obtain optimal performance". This ablation sweeps the
three most shuffle-relevant JobConf knobs on the Fig. 2 workload and
reports their effect — the kind of study the suite exists to enable.
"""

from _harness import CLUSTER_A_PARAMS, one_shot, record
from repro import JobConf, MicroBenchmarkSuite, cluster_a
from repro.analysis import format_table

MB = 1e6
WORKLOAD = dict(shuffle_gb=16, network="ipoib-qdr", **CLUSTER_A_PARAMS)


def _run_with(jobconf):
    suite = MicroBenchmarkSuite(cluster=cluster_a(4), jobconf=jobconf)
    return suite.run("MR-AVG", **WORKLOAD).execution_time


def bench_ablation_io_sort_mb(benchmark):
    """Bigger sort buffers -> fewer spills -> faster maps."""

    def run():
        rows = []
        for mb in (50, 100, 200, 400):
            t = _run_with(JobConf(io_sort_mb=mb * MB))
            rows.append([mb, round(t, 1)])
        text = format_table(["io.sort.mb (MB)", "time (s)"], rows,
                            title="A1: io.sort.mb sensitivity (MR-AVG 16GB)")
        record("ablation_io_sort_mb", text)
        return [r[1] for r in rows]

    times = one_shot(benchmark, run)
    # With spills absorbed by the page cache, buffer size trades fewer
    # spills against costlier large sorts: the net effect is small.
    assert max(times) / min(times) < 1.10


def bench_ablation_parallel_copies(benchmark):
    """More fetchers -> better overlap, with diminishing returns."""

    def run():
        rows = []
        for copies in (1, 2, 5, 10):
            t = _run_with(JobConf(parallel_copies=copies))
            rows.append([copies, round(t, 1)])
        text = format_table(["parallel copies", "time (s)"], rows,
                            title="A1: mapred.reduce.parallel.copies "
                                  "sensitivity (MR-AVG 16GB)")
        record("ablation_parallel_copies", text)
        return [r[1] for r in rows]

    times = one_shot(benchmark, run)
    assert times[0] >= times[2]  # 1 copier is never faster than 5


def bench_ablation_slowstart(benchmark):
    """Launching reducers earlier overlaps shuffle with map waves."""

    def run():
        rows = []
        jc_waves = dict(map_slots_per_node=2)  # force 2 map waves
        for slowstart in (0.05, 0.5, 1.0):
            t = _run_with(JobConf(reduce_slowstart=slowstart, **jc_waves))
            rows.append([slowstart, round(t, 1)])
        text = format_table(["slowstart", "time (s)"], rows,
                            title="A1: reduce.slowstart sensitivity "
                                  "(MR-AVG 16GB, 2 map waves)")
        record("ablation_slowstart", text)
        return [r[1] for r in rows]

    times = one_shot(benchmark, run)
    assert times[0] <= times[-1]  # early reducers never lose here
