"""Ablation A2: decomposing the MRoIB gain (Sect. 6 case study).

MRoIB changes two things at once: the transport (zero-copy RDMA reads
instead of HTTP-over-sockets) and the pipeline (SEDA-style full overlap
of fetch/merge/reduce). This ablation runs each alone to show where the
Fig. 8 gain comes from.
"""

from _harness import one_shot, record, suite_cluster_b
from repro.analysis import format_table, improvement_pct
from repro.hadoop import overlap_only_transport, zero_copy_only_transport
from repro.net import IPOIB_FDR, RDMA_FDR

PARAMS = dict(num_maps=32, num_reduces=16, key_size=512, value_size=512)


def _decompose():
    suite = suite_cluster_b(8)
    stock = suite.run("MR-AVG", shuffle_gb=32, network="ipoib-fdr",
                      **PARAMS).execution_time
    overlap = suite.run("MR-AVG", shuffle_gb=32, network="ipoib-fdr",
                        transport=overlap_only_transport(IPOIB_FDR),
                        **PARAMS).execution_time
    zero_copy = suite.run("MR-AVG", shuffle_gb=32, network="rdma",
                          transport=zero_copy_only_transport(RDMA_FDR),
                          **PARAMS).execution_time
    full = suite.run("MR-AVG", shuffle_gb=32, network="rdma",
                     **PARAMS).execution_time
    rows = [
        ["stock over IPoIB FDR", round(stock, 1), "-"],
        ["overlap only (SEDA pipeline)", round(overlap, 1),
         f"{improvement_pct(stock, overlap):+.1f}%"],
        ["zero-copy only (RDMA reads)", round(zero_copy, 1),
         f"{improvement_pct(stock, zero_copy):+.1f}%"],
        ["full MRoIB", round(full, 1),
         f"{improvement_pct(stock, full):+.1f}%"],
    ]
    text = format_table(["design", "time (s)", "vs stock"], rows,
                        title="A2: MRoIB gain decomposition "
                              "(MR-AVG 32GB, Cluster B, 8 slaves)")
    record("ablation_rdma_decomposition", text)
    return stock, overlap, zero_copy, full


def bench_ablation_rdma_decomposition(benchmark):
    stock, overlap, zero_copy, full = one_shot(benchmark, _decompose)
    # Each mechanism alone helps; together they help most.
    assert overlap < stock
    assert zero_copy < stock
    assert full < overlap
    assert full < zero_copy
    # The pipeline overlap carries most of the gain on a fat network —
    # the HOMR observation.
    assert (stock - overlap) > (stock - zero_copy) * 0.8
