"""Figure 7: resource utilization of one slave during MR-AVG.

Paper setup: Cluster A, MRv1, MR-AVG at 16 GB, 1 KB BytesWritable
pairs, 16 maps / 8 reduces on 4 slaves; CPU % and network throughput
(MB/s received) sampled on one slave node.

Paper shape: CPU utilization trends are similar across networks
(Fig. 7(a)); network receive throughput peaks at ~110 MB/s (1 GigE),
~520 MB/s (10 GigE) and ~950 MB/s (IPoIB QDR) (Fig. 7(b)). Our model
reports *sustained* shuffle throughput, so the 10 GigE series tops out
near its sustained level rather than the burst peak — see
EXPERIMENTS.md.
"""

from _harness import (
    CLUSTER_A_NETWORKS,
    CLUSTER_A_PARAMS,
    one_shot,
    record,
    suite_cluster_a,
)
from repro.analysis import format_table


def _collect_traces():
    traces = {}
    for network in CLUSTER_A_NETWORKS:
        suite = suite_cluster_a()
        result = suite.run("MR-AVG", shuffle_gb=16, network=network,
                           monitor_interval=2.0, **CLUSTER_A_PARAMS)
        traces[result.interconnect_name] = result
    return traces


def bench_fig7_utilization(benchmark):
    traces = one_shot(benchmark, _collect_traces)

    # (a) CPU utilization samples
    rows = []
    for name, result in traces.items():
        times, cpu = result.monitor.series("cpu_pct")
        samples = ", ".join(f"{v:.0f}" for v in cpu[:20])
        rows.append(f"  {name:<22} cpu% samples: [{samples} ...]")
    cpu_text = "Fig. 7(a) CPU utilization on slave0 (2s samples)\n" + "\n".join(rows)
    record("fig7a_cpu", cpu_text)

    # (b) network throughput peaks
    table_rows = []
    for name, result in traces.items():
        peak_rx = result.monitor.peak("net_rx_mb_s")
        mean_rx = result.monitor.mean("net_rx_mb_s")
        table_rows.append([name, round(peak_rx, 1), round(mean_rx, 1)])
    net_text = format_table(
        ["network", "peak MB/s", "mean MB/s"], table_rows,
        title="Fig. 7(b) network receive throughput on slave0")
    record("fig7b_network", net_text)

    peaks = {name: r.monitor.peak("net_rx_mb_s") for name, r in traces.items()}
    p1 = peaks["1GigE"]
    p10 = peaks["10GigE"]
    pib = peaks["IPoIB-QDR(32Gbps)"]
    # Orderings and rough magnitudes of the paper's peaks.
    assert p1 < p10 < pib
    assert 90 <= p1 <= 120          # paper: ~110 MB/s
    assert pib > 800                # paper: ~950 MB/s
    assert p10 > 2 * p1             # 10 GigE well above 1 GigE

    # (a): CPU trends similar across networks — mean CPU within a band.
    cpu_means = {n: r.monitor.mean("cpu_pct") for n, r in traces.items()}
    lo, hi = min(cpu_means.values()), max(cpu_means.values())
    assert hi - lo < 40.0
