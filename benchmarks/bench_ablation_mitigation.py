"""Ablation A5 (ours): is skew mitigation "worthwhile"?

The paper closes its MR-SKEW discussion with: "By determining the
overhead of running a skewed load, we can determine if it is worthwhile
to find alternative techniques that can mitigate load imbalances in
Hadoop applications." This ablation answers the question inside the
suite: it runs MR-SKEW against its key-splitting mitigation
(``skew-split``) across networks and split factors.
"""

from _harness import CLUSTER_A_PARAMS, one_shot, record, suite_cluster_a
from repro.analysis import format_table, improvement_pct

WORKLOAD = dict(shuffle_gb=16, **CLUSTER_A_PARAMS)


def bench_ablation_skew_mitigation(benchmark):
    def run():
        suite = suite_cluster_a()
        rows = []
        results = {}
        for network in ("1GigE", "ipoib-qdr"):
            avg = suite.run("MR-AVG", network=network,
                            **WORKLOAD).execution_time
            skew = suite.run("MR-SKEW", network=network,
                             **WORKLOAD).execution_time
            mitigated = suite.run("skew-split", network=network,
                                  **WORKLOAD).execution_time
            results[network] = (avg, skew, mitigated)
            rows.append([
                network, round(avg, 1), round(skew, 1), round(mitigated, 1),
                f"{improvement_pct(skew, mitigated):+.1f}%",
                f"{100 * (mitigated - avg) / (skew - avg):.0f}%",
            ])
        text = format_table(
            ["network", "MR-AVG (s)", "MR-SKEW (s)", "mitigated (s)",
             "gain vs skew", "residual penalty"],
            rows,
            title="A5: key-splitting mitigation of MR-SKEW "
                  "(16GB, 16M/8R, split=4)")
        record("ablation_mitigation", text)
        return results

    results = one_shot(benchmark, run)
    for avg, skew, mitigated in results.values():
        # Mitigation recovers well over half of the skew penalty...
        assert (skew - mitigated) > 0.5 * (skew - avg)
        # ...but cannot beat the even baseline.
        assert mitigated >= avg * 0.98
