"""Shared helpers for the figure-regeneration benchmarks.

Every ``bench_fig*.py`` module regenerates one table/figure from the
paper's evaluation section: it sweeps the same parameters, prints the
series the figure plots, and (where the paper states numbers in prose)
asserts the reproduced *shape* — orderings and rough ratios. Absolute
seconds are not compared: the substrate is a simulator, not the 2014
testbeds (see EXPERIMENTS.md).

Results are also written to ``benchmarks/results/*.txt`` so the series
survive pytest's output capture.

The figure sweeps themselves live in ``benchmarks/campaigns/*.json``
as declarative :class:`~repro.campaign.Campaign` specs;
:func:`run_figure_campaign` executes them through the shared on-disk
result store at ``benchmarks/results/store`` (gitignored), so repeated
benchmark runs — and anything else pointed at that store, e.g.
``repro book`` — skip already-simulated points.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Dict, Sequence

import pytest

from repro import MicroBenchmarkSuite, cluster_a, cluster_b, JobConf
from repro.analysis import format_table, improvement_pct

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Allowed wall-clock slack vs a committed baseline in smoke mode.
SMOKE_FACTOR = float(os.environ.get("PERF_SMOKE_FACTOR", "2.0"))

#: Shipped campaign specs (the paper figures as data).
CAMPAIGN_DIR = pathlib.Path(__file__).parent / "campaigns"

#: Shared persistent result store for benchmark runs (regenerable;
#: gitignored). Delete it to force full re-simulation.
STORE_DIR = RESULTS_DIR / "store"

#: Worker processes for sweep execution (``BENCH_JOBS=4 pytest ...``).
#: Results are bit-identical regardless of the setting; the default of 1
#: keeps single-core CI runs free of process-pool overhead.
JOBS = max(1, int(os.environ.get("BENCH_JOBS", "1")))

#: Cluster A experiments (Figs. 2, 4, 5, 6, 7): 16 maps / 8 reduces on
#: 4 slaves, 1 KB key/value pairs, BytesWritable (Sect. 5.2).
CLUSTER_A_PARAMS = dict(num_maps=16, num_reduces=8,
                        key_size=512, value_size=512,
                        data_type="BytesWritable")

#: YARN experiments (Fig. 3): 32 maps / 16 reduces on 8 slaves.
YARN_PARAMS = dict(num_maps=32, num_reduces=16,
                   key_size=512, value_size=512,
                   data_type="BytesWritable")

#: Cluster A network set.
CLUSTER_A_NETWORKS = ("1GigE", "10GigE", "ipoib-qdr")

#: Shuffle-size sweep (GB) used for the job-time figures.
SHUFFLE_SIZES_GB = (4.0, 8.0, 16.0, 32.0)


def suite_cluster_a(slaves: int = 4, version: str = "mrv1") -> MicroBenchmarkSuite:
    return MicroBenchmarkSuite(cluster=cluster_a(slaves),
                               jobconf=JobConf(version=version))


def suite_cluster_b(slaves: int = 8) -> MicroBenchmarkSuite:
    return MicroBenchmarkSuite(cluster=cluster_b(slaves))


def run_figure_campaign(spec_file: str, name: str = None):
    """Run one shipped campaign spec through the shared bench store.

    Returns the :class:`~repro.campaign.CampaignResult`; points already
    in ``benchmarks/results/store`` are served from disk (0 simulations
    on warm re-runs — check with ``repro store stats``).
    """
    from repro.campaign import load_campaign, run_campaign

    campaign = load_campaign(CAMPAIGN_DIR / spec_file, name=name)
    return run_campaign(campaign, store=str(STORE_DIR), jobs=JOBS)


def record(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


def improvement_summary(sweep, baseline: str) -> str:
    """Per-network mean improvement over ``baseline`` for a sweep."""
    lines = []
    for network in sweep.networks():
        if network == baseline:
            continue
        pct = sweep.improvement(baseline, network)
        lines.append(f"  {network:<22} vs {baseline}: {pct:+.1f}%")
    return "\n".join(lines)


def one_shot(benchmark, fn):
    """Run ``fn`` once under pytest-benchmark (simulations are
    deterministic, so repeated rounds add nothing)."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)


def check_or_record(name: str, measured: dict,
                    baseline_path: pathlib.Path,
                    factor: float = None) -> None:
    """Guard one wall-clock measurement against its committed baseline.

    ``measured["seconds"]`` is the guarded value; other keys are
    informational and stored alongside it in ``baseline_path``.

    * ``PERF_BASELINE=1`` — rewrite the baseline entry and return.
    * ``PERF_SMOKE=1`` — assert no regression beyond ``factor`` (default
      :data:`SMOKE_FACTOR`) times the baseline. A bench whose baseline
      entry is missing (or lacks ``seconds``) *skips* with a pointer to
      the recording command instead of erroring, so new benches can
      land before their baselines.
    * Neither — measure-and-print only (safe on arbitrary machines).
    """
    baselines = (json.loads(baseline_path.read_text())
                 if baseline_path.exists() else {})
    if os.environ.get("PERF_BASELINE"):
        baselines[name] = measured
        baseline_path.write_text(json.dumps(baselines, indent=2,
                                            sort_keys=True) + "\n")
        return
    baseline = baselines.get(name)
    if not os.environ.get("PERF_SMOKE"):
        return
    if baseline is None or "seconds" not in baseline:
        pytest.skip(
            f"no committed baseline {name!r} in {baseline_path.name}; "
            f"run PERF_BASELINE=1 pytest {baseline_path.parent.name}/ "
            f"to record one")
    factor = factor if factor is not None else SMOKE_FACTOR
    limit = factor * baseline["seconds"]
    assert measured["seconds"] <= limit, (
        f"{name}: {measured['seconds']:.3f}s exceeds "
        f"{factor}x baseline ({baseline['seconds']:.3f}s)"
    )
