"""Distributed-pool benchmark: parity, failover, and (multi-core) speed.

The ``PoolBackend`` fans a campaign's cold units over socket-connected
``repro worker`` processes with heartbeat leases. This module guards
the contract that makes that worth having:

* **Parity, always.** Every run executes the same campaign through the
  default ``LocalBackend`` and through a two-worker pool into fresh
  stores and asserts the ``objects/`` trees are byte-identical and
  every simulated time hex-exact. Runs in every mode, including plain
  ``pytest benchmarks/bench_distributed.py``.
* **Failover, always.** A third leg runs the pool with the chaos crash
  hook armed — the first dispatch of point 0 SIGKILLs its worker — and
  asserts the campaign still completes with zero quarantines (the unit
  was reassigned, and replay through the content-addressed store is
  idempotent), byte-identical to the undisturbed runs.
* **Speed, when it can exist.** The pool-over-local wall-clock ratio
  is floored under ``PERF_SMOKE=1`` *only on multi-core hosts*
  (``os.cpu_count() >= 2``): two workers on one core cannot beat an
  in-process loop, and pretending otherwise would institutionalize a
  flaky assert. Wall-clock is baselined in
  ``benchmarks/BENCH_distributed.json`` either way.
"""

import os
import pathlib
import tempfile
import time

from _harness import check_or_record, one_shot, record

from repro.campaign import Campaign, PoolBackend, run_campaign
from repro.campaign.backend import ENV_CHAOS_ATTEMPTS, ENV_CHAOS_CRASH
from repro.core.matrix import clear_matrix_cache
from repro.core.suite import clear_result_cache
from repro.net.fabric import clear_link_table_cache
from repro.store import ResultStore

BASELINE_PATH = pathlib.Path(__file__).parent / "BENCH_distributed.json"

#: Minimum pool(2)-over-local speedup, asserted only when the host has
#: at least 2 cores (see module docstring) and PERF_SMOKE=1. The units
#: are coarse (~0.5 s each), so 2 workers should approach 2x; 1.2
#: keeps loaded CI hosts green.
POOL_SPEEDUP_FLOOR = 1.2

PARAMS = {"num_maps": 8, "num_reduces": 4,
          "key_size": 512, "value_size": 512}


def _campaign() -> Campaign:
    """12 single-trial points → 12 distinct units for 2 workers."""
    return Campaign(
        name="bench-distributed",
        benchmark="MR-AVG",
        shuffle_gbs=(0.2, 0.4, 0.6, 0.8, 1.0, 1.2),
        networks=("1GigE", "ipoib-qdr"),
        trials=1,
        slaves=2,
        params=dict(PARAMS),
    )


def _clear_process_caches() -> None:
    clear_result_cache()
    clear_matrix_cache()
    clear_link_table_cache()


def _object_tree(root) -> dict:
    objects = pathlib.Path(root) / "objects"
    return {
        path.relative_to(objects).as_posix(): path.read_bytes()
        for path in sorted(objects.glob("*/*.json"))
    }


def _run_local(campaign):
    root = tempfile.mkdtemp(prefix="bench-dist-local-")
    _clear_process_caches()
    start = time.perf_counter()
    outcome = run_campaign(campaign, store=ResultStore(root))
    return outcome, time.perf_counter() - start, root


def _run_pool(campaign, chaos: bool = False):
    root = tempfile.mkdtemp(prefix="bench-dist-pool-")
    _clear_process_caches()
    if chaos:
        os.environ[ENV_CHAOS_CRASH] = "0"      # first dispatch of pt 0
        os.environ[ENV_CHAOS_ATTEMPTS] = "1"   # the replay recovers
    backend = PoolBackend(workers=2, lease=10.0)
    try:
        start = time.perf_counter()
        outcome = run_campaign(campaign, store=ResultStore(root),
                               backend=backend)
        seconds = time.perf_counter() - start
        counters = dict(backend.counters)
    finally:
        backend.close()
        if chaos:
            os.environ.pop(ENV_CHAOS_CRASH, None)
            os.environ.pop(ENV_CHAOS_ATTEMPTS, None)
    return outcome, seconds, root, counters


def _assert_parity(local, local_root, pooled, pooled_root) -> None:
    assert local.completed and pooled.completed
    assert pooled.failed == 0 and pooled.backend == "pool"
    local_hex = [o.result.execution_time.hex() for o in local.outcomes]
    pool_hex = [o.result.execution_time.hex() for o in pooled.outcomes]
    assert local_hex == pool_hex, "pool simulated times diverged"
    assert _object_tree(local_root) == _object_tree(pooled_root), (
        "pool store records are not byte-identical to local records"
    )
    counters = ("puts", "hits", "misses")
    local_stats = ResultStore(local_root).stats()
    pool_stats = ResultStore(pooled_root).stats()
    assert ({k: local_stats[k] for k in counters}
            == {k: pool_stats[k] for k in counters})
    assert pool_stats["leases"] == 0  # every lease released


def bench_distributed_pool(benchmark):
    """12-unit campaign: local vs pool vs pool-with-a-murdered-worker."""
    campaign = _campaign()

    def run():
        local, local_seconds, local_root = _run_local(campaign)
        pooled, pool_seconds, pool_root, _ = _run_pool(campaign)
        chaos, chaos_seconds, chaos_root, counters = _run_pool(
            campaign, chaos=True)
        _assert_parity(local, local_root, pooled, pool_root)
        _assert_parity(local, local_root, chaos, chaos_root)
        assert counters["workers_lost"] >= 1, "chaos never fired"
        assert counters["reassignments"] >= 1, (
            "the killed worker's unit was not reassigned")
        return local_seconds, pool_seconds, chaos_seconds, counters

    local_seconds, pool_seconds, chaos_seconds, counters = one_shot(
        benchmark, run)
    speedup = local_seconds / pool_seconds
    cores = os.cpu_count() or 1
    record(
        "perf_distributed_pool",
        f"distributed pool (12 units, 2 workers, {cores} core(s)): "
        f"local {local_seconds:.3f}s, pool {pool_seconds:.3f}s "
        f"({speedup:.2f}x), chaos (1 worker SIGKILLed, "
        f"{counters['reassignments']} reassigned) {chaos_seconds:.3f}s, "
        f"all stores byte-identical",
    )
    if os.environ.get("PERF_SMOKE") and cores >= 2:
        assert speedup >= POOL_SPEEDUP_FLOOR, (
            f"pool speedup {speedup:.2f}x below the "
            f"{POOL_SPEEDUP_FLOOR}x floor on a {cores}-core host "
            f"(local {local_seconds:.3f}s, pool {pool_seconds:.3f}s)"
        )
    check_or_record(
        "distributed_pool_12units",
        {"seconds": pool_seconds, "local_seconds": local_seconds,
         "chaos_seconds": chaos_seconds,
         "speedup": round(speedup, 2), "cores": cores},
        BASELINE_PATH,
        # The pool leg's wall-clock depends on core count; allow extra
        # slack so a baseline recorded on an N-core host doesn't flag
        # an M-core one.
        factor=3.0,
    )
