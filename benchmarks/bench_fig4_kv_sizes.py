"""Figure 4: impact of key/value pair size on MR-AVG job time.

Paper setup: Cluster A, MRv1, 16 maps / 8 reduces on 4 slaves,
BytesWritable; pair sizes 100 B, 1 KB, 10 KB (split evenly between key
and value); job time vs shuffle size per network.

Paper shape: every pair size benefits from faster networks (~18-22 %
for 100 B); for a fixed shuffle volume, larger pairs are dramatically
faster (at 16 GB on IPoIB QDR, ~1280 s at 100 B vs ~170 s at 10 KB —
a ~7.5x gap), because per-record framework costs dominate small pairs.

The sweep itself is the declarative ``campaigns/fig4.json`` spec — one
campaign with a pair-size variant per sub-figure — run through the
shared result store; this module only shapes and asserts.
"""

from _harness import one_shot, record, run_figure_campaign

#: Variant labels in the spec, one per sub-figure.
KV_LABELS = ("100B", "1KB", "10KB")


def _run_kv(label, subfig):
    outcome = run_figure_campaign("fig4.json")
    sweep = outcome.sweep_result(variant=label)
    text = sweep.to_table(
        title=f"Fig. 4({subfig}) MR-AVG, key/value pair size {label}")
    record(f"fig4{subfig}_kv_{label.lower()}", text)
    return sweep


def bench_fig4a_kv_100b(benchmark):
    sweep = one_shot(benchmark, lambda: _run_kv(KV_LABELS[0], "a"))
    dib = sweep.improvement("1GigE", "IPoIB-QDR(32Gbps)")
    # Paper: ~22 % for 100 B pairs. In our model the 100 B job is
    # heavily per-record-CPU-bound, so the network share — and the
    # improvement — is much smaller. Documented deviation (EXPERIMENTS
    # E3): we assert only the ordering survives.
    assert dib > 0.5


def bench_fig4b_kv_1kb(benchmark):
    sweep = one_shot(benchmark, lambda: _run_kv(KV_LABELS[1], "b"))
    assert sweep.improvement("1GigE", "IPoIB-QDR(32Gbps)") > 15


def bench_fig4c_kv_10kb(benchmark):
    sweep = one_shot(benchmark, lambda: _run_kv(KV_LABELS[2], "c"))
    assert sweep.improvement("1GigE", "IPoIB-QDR(32Gbps)") > 15


def bench_fig4_pair_size_gap(benchmark):
    """Fixed 16 GB on IPoIB QDR: 100 B pairs are several times slower
    than 10 KB pairs (paper: ~1280 s -> ~170 s, ~7.5x)."""

    def run():
        outcome = run_figure_campaign("fig4.json")
        times = {
            label: outcome.sweep_result(variant=label)
                          .time("IPoIB-QDR(32Gbps)", 16.0)
            for label in KV_LABELS
        }
        lines = ["Fig. 4 pair-size effect @16GB IPoIB QDR:"]
        for label, t in times.items():
            lines.append(f"  {label:>5}: {t:8.1f} s")
        lines.append(f"  100B/10KB ratio: {times['100B'] / times['10KB']:.1f}x"
                     f" (paper ~7.5x)")
        record("fig4_pair_size_gap", "\n".join(lines))
        return times

    times = one_shot(benchmark, run)
    assert times["100B"] > times["1KB"] > times["10KB"]
    assert times["100B"] / times["10KB"] > 4
