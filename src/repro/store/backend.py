"""The pluggable storage contract behind :class:`~repro.store.ResultStore`.

:class:`ResultStore` is a thin facade: all hit/miss accounting, record
envelopes and provenance live there, while everything that actually
touches persistent state goes through a :class:`StoreBackend`. Two
implementations ship:

* :class:`~repro.store.fs.FilesystemBackend` — the original
  human-inspectable ``objects/<aa>/<key>.json`` directory layout,
  upgraded with **sharded counter files** so concurrent writers stop
  contending on a single lock;
* :class:`~repro.store.sqlite.SQLiteBackend` — one SQLite database in
  WAL mode with real transactions and indexed tag/quarantine tables,
  built for read-heavy service use and fast ``ls``/``verify``/
  ``stats`` over millions of records.

Both backends store the *identical* record document (the same JSON
text, byte for byte — see :func:`dump_record_text`), keyed by the same
content address from :mod:`repro.store.keys`, so records migrate
between backends losslessly (``repro store migrate``) and the
bit-identity contract (hex-exact warm starts) holds regardless of
backing.

Root syntax (everywhere a store root is accepted — ``--store``,
``$REPRO_STORE``, ``ResultStore(...)``):

* ``sqlite:PATH`` — SQLite backend at ``PATH`` (URL-style, explicit);
* ``file:PATH`` — filesystem backend at directory ``PATH`` (explicit);
* a path ending in ``.db`` / ``.sqlite`` / ``.sqlite3``, or naming an
  existing regular file — SQLite backend;
* any other path — a directory store. The backend is the filesystem
  one unless ``$REPRO_STORE_BACKEND=sqlite`` is set (the database then
  lives at ``<root>/store.sqlite``) or the directory already holds a
  ``store.sqlite`` from a previous sqlite-backed run.
"""

from __future__ import annotations

import json
import os
import tempfile
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

#: Environment variable selecting the backend for plain directory roots
#: (``filesystem`` — the default — or ``sqlite``).
BACKEND_ENV_VAR = "REPRO_STORE_BACKEND"

#: Environment variable gating fsync durability (default on; set to
#: ``0`` to trade crash-durability for write throughput, e.g. in
#: benchmarks that measure lock contention rather than disk flushes).
FSYNC_ENV_VAR = "REPRO_STORE_FSYNC"

#: Database filename used when a *directory* root is opened with the
#: sqlite backend (``$REPRO_STORE_BACKEND=sqlite``).
SQLITE_FILENAME = "store.sqlite"

#: Known backend names (``ResultStore(root, backend=...)``).
BACKEND_NAMES = ("filesystem", "sqlite")


class ResultStoreWarning(UserWarning):
    """Raised (as a warning) when a store record cannot be used."""


def fsync_enabled() -> bool:
    """Whether record writes flush to stable storage (default: yes)."""
    raw = os.environ.get(FSYNC_ENV_VAR, "1").strip().lower()
    return raw not in ("0", "false", "no", "off")


def _fsync_dir(path: Path) -> None:
    """Flush a directory entry (POSIX); best-effort elsewhere."""
    if not hasattr(os, "O_DIRECTORY"):  # pragma: no cover - non-POSIX
        return
    try:
        fd = os.open(str(path), os.O_RDONLY | os.O_DIRECTORY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync not supported on dirs
        pass
    finally:
        os.close(fd)


def atomic_write_json(path: Path, payload: dict,
                      durable: bool = True) -> None:
    """Publish ``payload`` at ``path`` via temp file + ``os.replace``.

    With ``durable=True`` (the default) the temp file is fsynced
    *before* the rename and the directory entry after it, so a crash —
    even a power cut — can never leave a zero-length or torn file where
    a record used to be. ``durable=False`` skips the flushes for
    throwaway statistics (counter shards) whose loss is harmless.
    ``$REPRO_STORE_FSYNC=0`` disables flushing globally.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    durable = durable and fsync_enabled()
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
            if durable:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp, path)
        if durable:
            _fsync_dir(path.parent)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def dump_record_text(record: dict) -> str:
    """The canonical serialized form of one record document.

    Exactly the bytes :func:`atomic_write_json` puts in a record file;
    the SQLite backend stores the same text, which is what makes
    ``repro store migrate`` byte-identical in both directions.
    """
    return json.dumps(record, indent=1, sort_keys=True)


@dataclass
class VerifyProblem:
    """One integrity failure found by :meth:`StoreBackend.verify`."""

    path: Path
    key: str
    problem: str

    def render(self) -> str:
        """One-line human form (used by ``repro store verify``)."""
        return f"{self.key[:16] or self.path.name}  {self.problem}"


@dataclass
class VerifyReport:
    """What a store fsck pass found (and optionally swept)."""

    checked: int = 0
    ok: int = 0
    meta_ok: bool = True
    problems: List[VerifyProblem] = field(default_factory=list)
    swept: int = 0

    @property
    def clean(self) -> bool:
        """Whether every record (and the metadata) verified."""
        return self.meta_ok and not self.problems


class StoreBackend(ABC):
    """Persistent-state contract one :class:`ResultStore` drives.

    Backends deal in raw record *documents* (plain dicts shaped
    ``{key, schema, provenance, tags, result}``); the facade owns the
    envelope construction, ``StoredResult`` (de)serialization and the
    hit/miss/put accounting policy. A backend must:

    * keep every write atomic from a concurrent reader's view;
    * keep counter read-modify-writes exact under multi-process
      concurrency (the 4-process stress test asserts exact totals);
    * degrade to a warn-once read-only mode on write failure instead of
      raising (the campaign must keep simulating on a full disk);
    * serve ``read_record`` tolerantly — corrupt is a warning and a
      miss, never a crash.
    """

    #: Short backend name (``filesystem`` / ``sqlite``).
    scheme: str = ""

    # -- identity ----------------------------------------------------------

    @abstractmethod
    def describe(self) -> str:
        """One-line human description (``sqlite store at /x.db``)."""

    @property
    @abstractmethod
    def read_only(self) -> bool:
        """Whether the backend degraded to read-only mode."""

    def close(self) -> None:
        """Release any process-local handles (connections, caches).

        The backend stays usable afterwards — operations transparently
        reacquire what they need. The filesystem backend holds nothing
        between operations, so the default is a no-op; the SQLite
        backend closes every connection this process opened.
        """

    # -- records -----------------------------------------------------------

    @abstractmethod
    def read_record(self, key: str) -> Optional[dict]:
        """One usable current-schema record document, or ``None``.

        Corrupt storage warns (:class:`ResultStoreWarning`) and returns
        ``None``; a wrong-schema record is a silent ``None``.
        """

    @abstractmethod
    def write_record(self, key: str, record: dict) -> bool:
        """Publish one record atomically; False when dropped (no counter
        effects either way)."""

    @abstractmethod
    def write_records(self, entries: Iterable[Tuple[str, dict]]) -> int:
        """Publish many record documents; returns how many were written."""

    @abstractmethod
    def update_tags(
        self, entries: Iterable[Tuple[str, str, Optional[dict]]]
    ) -> int:
        """Merge campaign tags into existing records (locked RMW).

        ``entries`` yields ``(key, campaign, meta)``; returns the number
        of records that carry their tag afterwards (missing records are
        skipped).
        """

    # -- counters ----------------------------------------------------------

    @abstractmethod
    def bump_counters(self, deltas: Dict[str, int]) -> None:
        """Add counter deltas; exact under concurrent writers."""

    @abstractmethod
    def counters(self) -> Dict[str, int]:
        """Fresh lifetime counter totals (always re-read, never cached)."""

    # -- quarantine ledger -------------------------------------------------

    @abstractmethod
    def quarantine(self) -> Dict[str, dict]:
        """The quarantine ledger: point key → failure entry."""

    @abstractmethod
    def quarantine_add(self, key: str, entry: dict) -> None:
        """Record one exhausted point in the ledger."""

    @abstractmethod
    def quarantine_clear(self, keys: Optional[Iterable[str]] = None) -> int:
        """Drop ledger entries (all, or just ``keys``); returns count."""

    @abstractmethod
    def quarantine_location(self) -> str:
        """Human pointer to where the ledger lives (CLI messages)."""

    # -- lease ledger ------------------------------------------------------

    @abstractmethod
    def leases(self) -> Dict[str, dict]:
        """Active distributed-execution leases: point key → entry.

        Maintained by the pool coordinator (see
        :mod:`repro.campaign.pool`): an entry appears when a unit is
        dispatched to a worker and disappears when it completes, is
        quarantined, or is reassigned. Normally empty between runs.
        """

    @abstractmethod
    def lease_update(self, key: str, entry: dict) -> None:
        """Record (or refresh) one point's lease."""

    @abstractmethod
    def lease_release(self, keys: Optional[Iterable[str]] = None) -> int:
        """Drop leases (all, or just ``keys``); returns count."""

    # -- campaign checkpoints ----------------------------------------------

    @abstractmethod
    def write_checkpoint(self, campaign: str, payload: dict) -> bool:
        """Publish one campaign's checkpoint; False when dropped."""

    @abstractmethod
    def read_checkpoint(self, campaign: str) -> Optional[dict]:
        """One campaign's checkpoint, if present and parsable."""

    @abstractmethod
    def checkpoints(self) -> Dict[str, dict]:
        """Every parsable checkpoint, by campaign name (migration)."""

    # -- inspection --------------------------------------------------------

    @abstractmethod
    def keys(self) -> Iterator[str]:
        """All record keys present (any schema), sorted."""

    @abstractmethod
    def records(self) -> Iterator[Tuple[str, dict]]:
        """(key, document) for every usable current-schema record."""

    @abstractmethod
    def dump(self) -> Iterator[Tuple[str, dict]]:
        """(key, document) for every *parsable* record, any schema.

        The migration source: stale records are preserved verbatim,
        only unreadable ones are skipped (with a warning).
        """

    @abstractmethod
    def campaign_keys(self, campaign: str) -> List[str]:
        """Sorted keys of the records tagged by one campaign."""

    @abstractmethod
    def stats_counts(self) -> Dict[str, int]:
        """``records`` / ``stale_records`` / ``bytes`` footprint."""

    @abstractmethod
    def verify(self, gc: bool = False) -> VerifyReport:
        """Fsck every record; optionally sweep the ones that fail."""

    @abstractmethod
    def gc(self, remove_all: bool = False) -> int:
        """Remove stale (or, with ``remove_all``, every) record."""


def split_root(
    root: Union[str, Path], backend: Optional[str] = None
) -> Tuple[str, str, str]:
    """Resolve a store root to ``(scheme, location, display_root)``.

    ``scheme`` names the backend, ``location`` is what its constructor
    takes (directory for filesystem, database path for sqlite) and
    ``display_root`` is what the store reports as its root (the
    user-addressed path, e.g. the directory even when the database
    lives inside it). ``backend`` forces a scheme regardless of syntax.
    """
    raw = str(root)
    if raw.startswith("sqlite:"):
        rest = raw[len("sqlite:"):]
        return "sqlite", rest, rest
    if raw.startswith("file:"):
        rest = raw[len("file:"):]
        return "filesystem", rest, rest
    if backend is None:
        env = os.environ.get(BACKEND_ENV_VAR, "").strip().lower()
        backend = env or None
    if backend is not None and backend not in BACKEND_NAMES:
        raise ValueError(
            f"unknown store backend {backend!r} "
            f"(expected one of {', '.join(BACKEND_NAMES)})"
        )
    path = Path(raw)
    looks_sqlite = raw.endswith((".db", ".sqlite", ".sqlite3"))
    if backend == "filesystem":
        if looks_sqlite or path.is_file():
            raise ValueError(
                f"store root {raw!r} names a database file but the "
                f"filesystem backend was requested"
            )
        return "filesystem", raw, raw
    if looks_sqlite or path.is_file():
        return "sqlite", raw, raw
    if backend == "sqlite":
        return "sqlite", str(path / SQLITE_FILENAME), raw
    # A directory created by a previous sqlite-backed run keeps
    # resolving to sqlite even without $REPRO_STORE_BACKEND set.
    if (path / SQLITE_FILENAME).is_file() and not (path / "objects").is_dir():
        return "sqlite", str(path / SQLITE_FILENAME), raw
    return "filesystem", raw, raw


def create_backend(
    root: Union[str, Path], backend: Optional[str] = None
) -> Tuple[StoreBackend, str]:
    """Instantiate the backend a root resolves to.

    Returns ``(backend_instance, display_root)``; see :func:`split_root`
    for the resolution rules.
    """
    scheme, location, display = split_root(root, backend=backend)
    if scheme == "sqlite":
        from repro.store.sqlite import SQLiteBackend

        return SQLiteBackend(location), display
    from repro.store.fs import FilesystemBackend

    return FilesystemBackend(location), display
