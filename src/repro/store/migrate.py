"""Lossless store-to-store migration (``repro store migrate``).

Moves a result corpus between backends — directory tree to SQLite for
service use, SQLite back to a directory for inspection or archival —
key for key, byte for byte. Because both backends persist the
*identical* canonical record text
(:func:`~repro.store.backend.dump_record_text`), a migrated record's
serialized form is indistinguishable from the original: a filesystem →
sqlite → filesystem round trip reproduces the original record files
byte-identically, and warm starts through the copy stay hex-exact.

What migrates:

* **records** — every *parsable* record, any schema version (stale
  records are preserved verbatim so ``gc`` policy stays the owner's
  call), via backend-level writes that bypass the facade's ``puts``
  accounting;
* **counters** — added onto the destination's totals, so migrating
  into an empty store reproduces the source totals exactly;
* **quarantine ledger**, **lease ledger** and **campaign
  checkpoints** — copied entry for entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Union

from repro.store.store import ResultStore


@dataclass
class MigrationReport:
    """What one :func:`migrate_store` run copied."""

    source: str
    destination: str
    records: int = 0
    counters: Dict[str, int] = field(default_factory=dict)
    quarantined: int = 0
    leases: int = 0
    checkpoints: int = 0

    def render(self) -> str:
        """Multi-line human form (used by ``repro store migrate``)."""
        totals = ", ".join(f"{name}={value}" for name, value
                           in sorted(self.counters.items()))
        return (
            f"migrated {self.source} -> {self.destination}\n"
            f"  records:     {self.records}\n"
            f"  counters:    {totals or '(none)'}\n"
            f"  quarantined: {self.quarantined}\n"
            f"  leases:      {self.leases}\n"
            f"  checkpoints: {self.checkpoints}"
        )


def migrate_store(
    source: Union[str, ResultStore],
    destination: Union[str, ResultStore],
) -> MigrationReport:
    """Copy one store into another, losslessly, across backends.

    ``source`` and ``destination`` accept any store root (directory,
    ``sqlite:PATH``, database path) or an opened :class:`ResultStore`.
    Existing destination records with the same key are overwritten with
    the source's bytes; destination counters *accumulate* the source
    totals. Raises ``ValueError`` when source and destination resolve
    to the same location.
    """
    if isinstance(source, str):
        source = ResultStore(source)
    if isinstance(destination, str):
        destination = ResultStore(destination)
    src, dst = source.backend, destination.backend
    if src.describe() == dst.describe():
        raise ValueError(
            f"source and destination are the same store ({src.describe()})")
    report = MigrationReport(source=src.describe(),
                             destination=dst.describe())
    report.records = dst.write_records(src.dump())
    counters = {name: value for name, value in src.counters().items()
                if value}
    dst.bump_counters(counters)
    report.counters = counters
    for key, entry in src.quarantine().items():
        dst.quarantine_add(key, entry)
        report.quarantined += 1
    for key, entry in src.leases().items():
        dst.lease_update(key, entry)
        report.leases += 1
    for campaign, payload in src.checkpoints().items():
        if dst.write_checkpoint(campaign, payload):
            report.checkpoints += 1
    return report
