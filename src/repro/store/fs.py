"""The directory-tree store backend (human-inspectable JSON files).

Layout (all JSON)::

    <root>/
      store.json                # schema stamp (+ legacy counters)
      store.lock                # inter-process metadata lock
      counters/shard-<nn>.json  # sharded lifetime counters
      counters/shard-<nn>.lock  # one lock per shard
      locks/<aa>.lock           # per-key-prefix tag locks
      quarantine.json           # points that exhausted campaign retries
      checkpoints/<name>.json   # per-campaign progress checkpoints
      objects/<k[:2]>/<k>.json  # one record per point key

**Sharded counters.** The seed layout kept all lifetime counters in
``store.json`` behind one ``store.lock``, so every concurrent writer's
read-modify-write serialized on a single fcntl lock (and, under
contention, on the lock's sleep/poll loop). Counters now live in
:data:`COUNTER_SHARDS` shard files: each process bumps only the shard
selected by its PID, under that shard's own lock, so concurrent
campaign runners almost never contend. Totals are the sum over shards
(plus any legacy ``store.json`` counters, which keep counting so
pre-shard stores upgrade in place); :meth:`FilesystemBackend.counters`
aggregates on every read.

**Per-prefix tag locks.** Tag read-modify-writes lock
``locks/<key[:2]>.lock`` instead of the store-wide lock, so concurrent
campaigns tagging different records proceed in parallel (two campaigns
tagging the *same* record still exclude each other).

``FilesystemBackend(root, sharded=False)`` restores the seed
single-lock behavior — kept only as the contention baseline for
``benchmarks/bench_store_backends.py``.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.store.backend import (
    ResultStoreWarning,
    StoreBackend,
    VerifyProblem,
    VerifyReport,
    atomic_write_json,
)
from repro.store.keys import SCHEMA_VERSION, stable_digest
from repro.store.locks import FileLock, store_lock
from repro.store.records import StoredResult

#: Filename of the quarantine ledger inside a store root.
QUARANTINE_FILENAME = "quarantine.json"

#: Filename of the distributed-execution lease ledger.
LEASES_FILENAME = "leases.json"

#: Directory of per-campaign checkpoint files inside a store root.
CHECKPOINT_DIRNAME = "checkpoints"

#: Directory of sharded counter files inside a store root.
COUNTER_DIRNAME = "counters"

#: Directory of per-key-prefix tag locks inside a store root.
LOCK_DIRNAME = "locks"

#: Number of counter shards. Processes map to shards by PID, so up to
#: this many concurrent writers bump counters without sharing a lock.
COUNTER_SHARDS = 16

#: Names every counter file carries (other names are preserved too).
COUNTER_NAMES = ("puts", "hits", "misses")


def _zero_counters() -> Dict[str, int]:
    return {name: 0 for name in COUNTER_NAMES}


class FilesystemBackend(StoreBackend):
    """Content-addressed records as a fanned-out directory of JSON."""

    scheme = "filesystem"

    def __init__(self, root: Union[str, Path], sharded: bool = True):
        """Open (without creating) the directory store at ``root``.

        ``sharded=False`` funnels counters and tags through the single
        ``store.lock`` like the pre-backend store did — the measured
        baseline in ``bench_store_backends.py``, not for production.
        """
        self.root = Path(root)
        self.sharded = sharded
        #: Once True, every write is silently dropped (set on the first
        #: failed write: read-only filesystem, disk full...).
        self._read_only = False

    # -- paths -------------------------------------------------------------

    @property
    def objects_dir(self) -> Path:
        """Directory holding the per-key record files."""
        return self.root / "objects"

    @property
    def meta_path(self) -> Path:
        """Path of the schema-stamp/legacy-counters file."""
        return self.root / "store.json"

    @property
    def counters_dir(self) -> Path:
        """Directory holding the sharded counter files."""
        return self.root / COUNTER_DIRNAME

    @property
    def quarantine_path(self) -> Path:
        """Path of the quarantine ledger."""
        return self.root / QUARANTINE_FILENAME

    @property
    def leases_path(self) -> Path:
        """Path of the distributed-execution lease ledger."""
        return self.root / LEASES_FILENAME

    def checkpoint_path(self, campaign: str) -> Path:
        """Path of one campaign's progress checkpoint."""
        return self.root / CHECKPOINT_DIRNAME / f"{campaign}.json"

    def record_path(self, key: str) -> Path:
        """Path of one record (two-level fan-out, git-object style)."""
        return self.objects_dir / key[:2] / f"{key}.json"

    def shard_path(self, shard: int) -> Path:
        """Path of one counter shard file."""
        return self.counters_dir / f"shard-{shard:02d}.json"

    def _shard_lock(self, shard: int) -> FileLock:
        """The lock guarding one counter shard's read-modify-write."""
        return FileLock(self.counters_dir / f"shard-{shard:02d}.lock")

    def _tag_lock(self, key: str) -> FileLock:
        """The lock guarding tag RMWs on one key prefix."""
        if not self.sharded:
            return store_lock(self.root)
        return FileLock(self.root / LOCK_DIRNAME / f"{key[:2]}.lock")

    def describe(self) -> str:
        """One-line human description of this backend."""
        return f"filesystem store at {self.root}"

    def quarantine_location(self) -> str:
        """Where the quarantine ledger lives."""
        return str(self.quarantine_path)

    # -- degradation -------------------------------------------------------

    @property
    def read_only(self) -> bool:
        """Whether the store has degraded to read-only mode."""
        return self._read_only

    def _degrade(self, exc: OSError) -> None:
        """Flip into read-only mode (warning once, never raising)."""
        if not self._read_only:
            warnings.warn(
                f"store {self.root} is unwritable ({exc}); continuing in "
                f"read-only mode — results are NOT being recorded",
                ResultStoreWarning, stacklevel=4,
            )
            self._read_only = True

    # -- counters ----------------------------------------------------------

    def _read_counter_file(self, path: Path) -> Dict[str, int]:
        """Fresh tolerant read of one counter file (never raises)."""
        counters = _zero_counters()
        try:
            raw = path.read_text()
        except FileNotFoundError:
            return counters
        except OSError as exc:
            warnings.warn(
                f"unreadable store metadata {path}: {exc}",
                ResultStoreWarning, stacklevel=4,
            )
            return counters
        try:
            data = json.loads(raw)
            if not isinstance(data, dict):
                raise ValueError("metadata is not a JSON object")
            for name, value in data.items():
                if name == "schema":
                    continue
                counters[name] = int(value)
        except (ValueError, TypeError) as exc:
            # Truncated/corrupt counter file (e.g. a process killed
            # mid-write on an exotic filesystem): warn and reinitialize
            # — the next write repairs the file.
            warnings.warn(
                f"corrupt store metadata {path} ({exc}); "
                f"reinitializing counters",
                ResultStoreWarning, stacklevel=4,
            )
            counters = _zero_counters()
        return counters

    def _counter_shard(self) -> int:
        """This process's counter shard (stable per PID)."""
        return os.getpid() % COUNTER_SHARDS

    def bump_counters(self, deltas: Dict[str, int]) -> None:
        """Add counter deltas under this process's shard lock.

        In ``sharded=False`` compatibility mode the deltas go into
        ``store.json`` under the store-wide lock instead (the seed
        path, with its cross-process contention).
        """
        deltas = {name: n for name, n in deltas.items() if n}
        if not deltas or self._read_only:
            return
        if self.sharded:
            shard = self._counter_shard()
            lock, path = self._shard_lock(shard), self.shard_path(shard)
        else:
            lock, path = store_lock(self.root), self.meta_path
        try:
            with lock:
                counters = self._read_counter_file(path)
                for name, n in deltas.items():
                    counters[name] = counters.get(name, 0) + n
                # Counter shards are statistics: losing the very last
                # bump in a power cut is harmless, so skip the fsync.
                atomic_write_json(path,
                                  dict(counters, schema=SCHEMA_VERSION),
                                  durable=False)
        except OSError as exc:
            self._degrade(exc)

    def counters(self) -> Dict[str, int]:
        """Totals over every shard plus any legacy ``store.json`` counts."""
        totals = self._read_counter_file(self.meta_path)
        if self.counters_dir.is_dir():
            for path in sorted(self.counters_dir.glob("shard-*.json")):
                for name, value in self._read_counter_file(path).items():
                    totals[name] = totals.get(name, 0) + value
        return totals

    # -- records -----------------------------------------------------------

    def read_record(self, key: str) -> Optional[dict]:
        """Parse one record file; warn and return None if unusable."""
        path = self.record_path(key)
        try:
            data = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as exc:
            warnings.warn(
                f"skipping corrupted store record {path}: {exc}",
                ResultStoreWarning, stacklevel=3,
            )
            return None
        if not isinstance(data, dict) or data.get("schema") != SCHEMA_VERSION:
            return None
        return data

    def write_record(self, key: str, record: dict) -> bool:
        """Atomically publish one record file; False when dropped."""
        if self._read_only:
            return False
        try:
            atomic_write_json(self.record_path(key), record)
        except OSError as exc:
            self._degrade(exc)
            return False
        return True

    def write_records(self, entries: Iterable[Tuple[str, dict]]) -> int:
        """Publish many record files (each one atomic on its own)."""
        written = 0
        for key, record in entries:
            if self.write_record(key, record):
                written += 1
        return written

    def update_tags(
        self, entries: Iterable[Tuple[str, str, Optional[dict]]]
    ) -> int:
        """Merge campaign tags, holding each key-prefix lock once.

        Entries are grouped by lock so a batch over one campaign's
        records acquires each contended lock a single time; concurrent
        campaigns tagging different prefixes don't exclude each other
        (unless ``sharded=False`` forces the store-wide seed lock).
        """
        tagged = 0
        by_prefix: Dict[str, List[Tuple[str, str, Optional[dict]]]] = {}
        for entry in entries:
            group = entry[0][:2] if self.sharded else ""
            by_prefix.setdefault(group, []).append(entry)
        for group in sorted(by_prefix):
            batch = by_prefix[group]
            if self._read_only:
                tagged += sum(1 for key, _c, _m in batch
                              if self.read_record(key) is not None)
                continue
            try:
                with self._tag_lock(batch[0][0]):
                    for key, campaign, meta in batch:
                        data = self.read_record(key)
                        if data is None:
                            continue
                        tags = data.setdefault("tags", {})
                        if tags.get(campaign) != (meta or {}):
                            tags[campaign] = meta or {}
                            atomic_write_json(self.record_path(key), data)
                        tagged += 1
            except OSError as exc:
                self._degrade(exc)
                tagged += sum(1 for key, _c, _m in batch
                              if self.read_record(key) is not None)
        return tagged

    # -- quarantine ledger -------------------------------------------------

    def quarantine(self) -> Dict[str, dict]:
        """The quarantine ledger: point key → failure entry."""
        try:
            data = json.loads(self.quarantine_path.read_text())
        except FileNotFoundError:
            return {}
        except (OSError, ValueError) as exc:
            warnings.warn(
                f"unreadable quarantine ledger {self.quarantine_path}: "
                f"{exc}; treating as empty",
                ResultStoreWarning, stacklevel=3,
            )
            return {}
        entries = data.get("points") if isinstance(data, dict) else None
        return entries if isinstance(entries, dict) else {}

    def quarantine_add(self, key: str, entry: dict) -> None:
        """Record one exhausted point in the ledger (locked RMW)."""
        if self._read_only:
            return
        try:
            with store_lock(self.root):
                entries = self.quarantine()
                entries[key] = entry
                atomic_write_json(self.quarantine_path,
                                  {"schema": SCHEMA_VERSION,
                                   "points": entries})
        except OSError as exc:
            self._degrade(exc)

    def quarantine_clear(self, keys: Optional[Iterable[str]] = None) -> int:
        """Drop ledger entries (all of them, or just ``keys``)."""
        if self._read_only:
            return 0
        try:
            with store_lock(self.root):
                entries = self.quarantine()
                if keys is None:
                    removed = len(entries)
                    entries = {}
                else:
                    removed = 0
                    for key in keys:
                        if entries.pop(key, None) is not None:
                            removed += 1
                if removed:
                    atomic_write_json(self.quarantine_path,
                                      {"schema": SCHEMA_VERSION,
                                       "points": entries})
                return removed
        except OSError as exc:
            self._degrade(exc)
            return 0

    # -- lease ledger ------------------------------------------------------

    def leases(self) -> Dict[str, dict]:
        """Active distributed-execution leases: point key → entry."""
        try:
            data = json.loads(self.leases_path.read_text())
        except FileNotFoundError:
            return {}
        except (OSError, ValueError) as exc:
            warnings.warn(
                f"unreadable lease ledger {self.leases_path}: "
                f"{exc}; treating as empty",
                ResultStoreWarning, stacklevel=3,
            )
            return {}
        entries = data.get("points") if isinstance(data, dict) else None
        return entries if isinstance(entries, dict) else {}

    def lease_update(self, key: str, entry: dict) -> None:
        """Record (or refresh) one point's lease (locked RMW)."""
        if self._read_only:
            return
        try:
            with store_lock(self.root):
                entries = self.leases()
                entries[key] = entry
                atomic_write_json(self.leases_path,
                                  {"schema": SCHEMA_VERSION,
                                   "points": entries},
                                  durable=False)
        except OSError as exc:
            self._degrade(exc)

    def lease_release(self, keys: Optional[Iterable[str]] = None) -> int:
        """Drop leases (all of them, or just ``keys``)."""
        if self._read_only:
            return 0
        try:
            with store_lock(self.root):
                entries = self.leases()
                if keys is None:
                    removed = len(entries)
                    entries = {}
                else:
                    removed = 0
                    for key in keys:
                        if entries.pop(key, None) is not None:
                            removed += 1
                if removed:
                    atomic_write_json(self.leases_path,
                                      {"schema": SCHEMA_VERSION,
                                       "points": entries},
                                      durable=False)
                return removed
        except OSError as exc:
            self._degrade(exc)
            return 0

    # -- campaign checkpoints ----------------------------------------------

    def write_checkpoint(self, campaign: str, payload: dict) -> bool:
        """Publish one campaign's progress checkpoint atomically."""
        if self._read_only:
            return False
        try:
            atomic_write_json(self.checkpoint_path(campaign), payload)
        except OSError as exc:
            self._degrade(exc)
            return False
        return True

    def read_checkpoint(self, campaign: str) -> Optional[dict]:
        """Load one campaign's checkpoint, if present and parsable."""
        try:
            data = json.loads(self.checkpoint_path(campaign).read_text())
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as exc:
            warnings.warn(
                f"unreadable checkpoint for campaign {campaign!r}: {exc}",
                ResultStoreWarning, stacklevel=3,
            )
            return None
        return data if isinstance(data, dict) else None

    def checkpoints(self) -> Dict[str, dict]:
        """Every parsable checkpoint, by campaign name."""
        out: Dict[str, dict] = {}
        checkpoint_dir = self.root / CHECKPOINT_DIRNAME
        if not checkpoint_dir.is_dir():
            return out
        for path in sorted(checkpoint_dir.glob("*.json")):
            data = self.read_checkpoint(path.stem)
            if data is not None:
                out[path.stem] = data
        return out

    # -- inspection --------------------------------------------------------

    def keys(self) -> Iterator[str]:
        """All record keys on disk (any schema), sorted."""
        if not self.objects_dir.is_dir():
            return iter(())
        return iter(sorted(
            path.stem
            for path in self.objects_dir.glob("*/*.json")
        ))

    def records(self) -> Iterator[Tuple[str, dict]]:
        """(key, record) pairs for every usable current-schema record."""
        for key in self.keys():
            data = self.read_record(key)
            if data is not None:
                yield key, data

    def dump(self) -> Iterator[Tuple[str, dict]]:
        """(key, record) for every parsable record, any schema."""
        for key in self.keys():
            path = self.record_path(key)
            try:
                data = json.loads(path.read_text())
            except (OSError, ValueError) as exc:
                warnings.warn(
                    f"skipping corrupted store record {path}: {exc}",
                    ResultStoreWarning, stacklevel=3,
                )
                continue
            if isinstance(data, dict):
                yield key, data

    def campaign_keys(self, campaign: str) -> List[str]:
        """Sorted keys of the records tagged by one campaign (scan)."""
        return [key for key, record in self.records()
                if campaign in (record.get("tags") or {})]

    def stats_counts(self) -> Dict[str, int]:
        """Record/stale counts plus on-disk record bytes."""
        records = 0
        stale = 0
        nbytes = 0
        if self.objects_dir.is_dir():
            for path in self.objects_dir.glob("*/*.json"):
                nbytes += path.stat().st_size
                try:
                    schema = json.loads(path.read_text()).get("schema")
                except (OSError, ValueError):
                    schema = None
                if schema == SCHEMA_VERSION:
                    records += 1
                else:
                    stale += 1
        return {"records": records, "stale_records": stale, "bytes": nbytes}

    def verify(self, gc: bool = False) -> VerifyReport:
        """Fsck every record; optionally sweep the ones that fail.

        Checks, per record file: JSON parses to an object, the embedded
        ``key`` matches the filename, ``schema`` matches
        :data:`SCHEMA_VERSION`, the result payload loads as a
        :class:`StoredResult`, and — when a provenance block is present
        — the provenance hashes back to the record's own key (the
        content-address actually addresses the content). The metadata
        check covers ``store.json`` *and* every counter shard file.
        ``gc=True`` unlinks every failing record file.
        """
        report = VerifyReport()
        meta_files = [self.meta_path]
        if self.counters_dir.is_dir():
            meta_files.extend(sorted(self.counters_dir.glob("shard-*.json")))
        for path in meta_files:
            if not path.exists():
                continue
            try:
                if not isinstance(json.loads(path.read_text()), dict):
                    raise ValueError("metadata is not a JSON object")
            except (OSError, ValueError):
                report.meta_ok = False
        paths = (sorted(self.objects_dir.glob("*/*.json"))
                 if self.objects_dir.is_dir() else [])
        for path in paths:
            report.checked += 1
            problem = self._verify_one(path)
            if problem is None:
                report.ok += 1
                continue
            report.problems.append(
                VerifyProblem(path=path, key=path.stem, problem=problem))
            if gc:
                try:
                    path.unlink()
                    report.swept += 1
                except OSError:  # pragma: no cover - races/permissions
                    pass
        return report

    @staticmethod
    def _verify_one(path: Path) -> Optional[str]:
        """The integrity problem of one record file, or None if sound."""
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            return f"unparsable: {exc}"
        return verify_record(path.stem, data)

    def gc(self, remove_all: bool = False) -> int:
        """Remove stale (wrong-schema or unreadable) records.

        ``remove_all=True`` empties the store instead. Returns the
        number of record files removed.
        """
        removed = 0
        if not self.objects_dir.is_dir():
            return removed
        for path in sorted(self.objects_dir.glob("*/*.json")):
            if not remove_all:
                try:
                    if json.loads(path.read_text()).get("schema") == SCHEMA_VERSION:
                        continue
                except (OSError, ValueError):
                    pass
            path.unlink()
            removed += 1
        return removed


def verify_record(key: str, data: object) -> Optional[str]:
    """The integrity problem of one parsed record, or None if sound.

    Shared by both backends so ``repro store verify`` applies the
    identical contract regardless of backing.
    """
    if not isinstance(data, dict):
        return "not a JSON object"
    if data.get("key") != key:
        return (f"key mismatch: record says "
                f"{str(data.get('key'))[:16]!r}")
    if data.get("schema") != SCHEMA_VERSION:
        return (f"stale schema {data.get('schema')!r} "
                f"(current: {SCHEMA_VERSION})")
    try:
        StoredResult.from_dict(data["result"])
    except (KeyError, TypeError, ValueError) as exc:
        return f"malformed result payload: {exc}"
    provenance = data.get("provenance")
    if provenance:
        try:
            digest = stable_digest(provenance)
        except TypeError as exc:
            return f"unhashable provenance: {exc}"
        if digest != key:
            return "provenance does not hash to the record key"
    return None
