"""The JSON-serializable result payload stored per point.

A full :class:`~repro.hadoop.result.SimJobResult` carries live
simulation objects (event logs, shuffle matrices, tracers) that are
expensive to serialize and unnecessary for the figure/book pipelines.
:class:`StoredResult` is the durable subset: the headline times, the
per-task phase decomposition, the resilience summary, and enough
configuration echo to rebuild sweep rows and report tables.

Disk hits therefore come back as :class:`StoredResult`, not
:class:`~repro.hadoop.result.SimJobResult`. The two share the surface
the sweep/table/book layers consume — ``execution_time``,
``interconnect_name``, ``transport_name``, ``config``,
``phase_breakdown()``, ``summary()``, ``resilience`` — and
:attr:`StoredResult.cached` distinguishes a disk hit from a fresh
simulation. Callers that need task stats, event logs or traces should
bypass the caches (``memoize=False`` or no store).

Floats round-trip exactly: :func:`json.dumps` emits ``repr(float)``
(shortest exact form since Python 3.1), so a warm-start result is
bit-identical to the cold run that produced it — asserted by the
round-trip tests and the campaign acceptance test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import BenchmarkConfig
from repro.hadoop.result import PhaseBreakdown, TaskPhaseRow

#: Format tag inside each record payload (distinct from the key schema:
#: this one guards the *payload* shape for readers).
RESULT_FORMAT = 1


@dataclass
class StoredResult:
    """The durable, JSON-round-trippable view of one simulated job."""

    config: BenchmarkConfig
    interconnect_name: str
    transport_name: str
    execution_time: float
    map_phase_end: float
    first_reduce_start: float
    total_shuffle_bytes: int
    cluster_name: str
    num_slaves: int
    runtime: str
    #: Per-task phase rows (``task``, ``node``, five phase seconds).
    phase_rows: List[TaskPhaseRow] = field(default_factory=list)
    #: ``ResilienceReport.summary()`` of the run, or ``None`` when no
    #: faults were injected.
    resilience: Optional[Dict[str, object]] = None
    #: True on objects deserialized from the disk store.
    cached: bool = field(default=False, compare=False)

    @classmethod
    def from_sim_result(cls, result: "SimJobResult") -> "StoredResult":  # noqa: F821
        """Extract the durable subset of a finished simulation."""
        breakdown = result.phase_breakdown()
        return cls(
            config=result.config,
            interconnect_name=result.interconnect_name,
            transport_name=result.transport_name,
            execution_time=result.execution_time,
            map_phase_end=result.map_phase_end,
            first_reduce_start=result.first_reduce_start,
            total_shuffle_bytes=result.total_shuffle_bytes,
            cluster_name=result.cluster.name,
            num_slaves=result.cluster.num_slaves,
            runtime=result.jobconf.version if result.jobconf else "mrv1",
            phase_rows=breakdown.rows,
            resilience=(dict(result.resilience.summary())
                        if result.resilience is not None else None),
        )

    def phase_breakdown(self) -> PhaseBreakdown:
        """The per-task phase decomposition, rebuilt from stored rows."""
        return PhaseBreakdown(
            rows=list(self.phase_rows),
            execution_time=self.execution_time,
            map_phase_end=self.map_phase_end,
            first_reduce_start=self.first_reduce_start,
        )

    def summary(self) -> Dict[str, object]:
        """Flat summary row, shape-compatible with ``SimJobResult``."""
        return {
            "benchmark": f"MR-{self.config.pattern.upper()}",
            "network": self.interconnect_name,
            "version": self.runtime,
            "slaves": self.num_slaves,
            "maps": self.config.num_maps,
            "reduces": self.config.num_reduces,
            "data_type": self.config.data_type,
            "pair_size": self.config.pair_size,
            "shuffle_gb": self.total_shuffle_bytes / 1e9,
            "execution_time_s": round(self.execution_time, 2),
        }

    # -- JSON round trip ---------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict form (inverse of :meth:`from_dict`)."""
        return {
            "format": RESULT_FORMAT,
            "config": {
                "pattern": self.config.pattern,
                "key_size": self.config.key_size,
                "value_size": self.config.value_size,
                "num_pairs": self.config.num_pairs,
                "num_maps": self.config.num_maps,
                "num_reduces": self.config.num_reduces,
                "data_type": self.config.data_type,
                "network": self.config.network,
                "seed": self.config.seed,
                "key_type": self.config.key_type,
                "value_type": self.config.value_type,
            },
            "interconnect_name": self.interconnect_name,
            "transport_name": self.transport_name,
            "execution_time": self.execution_time,
            "map_phase_end": self.map_phase_end,
            "first_reduce_start": self.first_reduce_start,
            "total_shuffle_bytes": self.total_shuffle_bytes,
            "cluster_name": self.cluster_name,
            "num_slaves": self.num_slaves,
            "runtime": self.runtime,
            "phase_rows": [
                {"task": row.task, "node": row.node,
                 "phases": dict(row.phases)}
                for row in self.phase_rows
            ],
            "resilience": self.resilience,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StoredResult":
        """Rebuild a stored result; raises ``ValueError`` on bad shape."""
        if not isinstance(data, dict):
            raise ValueError(
                f"stored result must be an object, got {type(data).__name__}"
            )
        if data.get("format") != RESULT_FORMAT:
            raise ValueError(
                f"unsupported stored-result format {data.get('format')!r} "
                f"(expected {RESULT_FORMAT})"
            )
        try:
            config = BenchmarkConfig(**data["config"])
            rows = [
                TaskPhaseRow(task=row["task"], node=row["node"],
                             phases=dict(row["phases"]))
                for row in data["phase_rows"]
            ]
            return cls(
                config=config,
                interconnect_name=data["interconnect_name"],
                transport_name=data["transport_name"],
                execution_time=float(data["execution_time"]),
                map_phase_end=float(data["map_phase_end"]),
                first_reduce_start=float(data["first_reduce_start"]),
                total_shuffle_bytes=int(data["total_shuffle_bytes"]),
                cluster_name=data["cluster_name"],
                num_slaves=int(data["num_slaves"]),
                runtime=data["runtime"],
                phase_rows=rows,
                resilience=data.get("resilience"),
                cached=True,
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed stored result: {exc}") from None
