"""Portable inter-process file locking for the result store.

Two concurrent ``repro campaign run`` processes share one store, and
the lifetime counters in ``store.json`` (and the quarantine ledger)
are read-modify-write cycles: without mutual exclusion, increments are
lost. :class:`FileLock` wraps those critical sections in an advisory
exclusive lock on ``<root>/store.lock``:

* POSIX — ``fcntl.flock`` (the normal case; what the multiprocess
  stress test exercises);
* Windows — ``msvcrt.locking`` on the first byte of the lockfile;
* neither available, or the root is unwritable — the lock degrades to
  a no-op so a read-only store never crashes; the store's own
  read-only degradation mode handles the subsequent write failures.

The lock is intentionally *not* reentrant and is always created fresh
per critical section (acquisition costs one ``open`` + one syscall).
Record writes themselves do not need it: they are blind atomic
``os.replace`` publishes, safe under concurrency by construction.

**Thread awareness.** ``flock`` conflicts between two file descriptors
even when both live in the same process, so two *threads* (the
benchmark service's front end and its scheduler, or an asyncio
``to_thread`` pool) contending on one lock path used to fall into the
inter-process sleep/poll loop — cheap exclusion degenerating into a
busy-wait that could burn the whole ``timeout``. Each lock path is now
also guarded by an in-process :class:`threading.Lock` (one per path,
per process — see :func:`_process_lock`): intra-process waiters block
on it directly and wake the moment the holder releases, and only the
single thread holding it ever polls the flock against *other*
processes. The registry is rebuilt after ``fork`` so a child never
inherits a lock an exited parent thread held.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path
from typing import Dict, Optional, Union

try:  # POSIX
    import fcntl
except ImportError:  # pragma: no cover - platform dependent
    fcntl = None  # type: ignore[assignment]

try:  # Windows
    import msvcrt
except ImportError:  # pragma: no cover - platform dependent
    msvcrt = None  # type: ignore[assignment]

#: Lockfile name inside a store root.
LOCK_FILENAME = "store.lock"

#: Per-process registry of intra-process locks, one per lock path.
#: Bounded in practice: a store root uses a few hundred distinct lock
#: paths at most (16 counter shards + 256 tag prefixes + store.lock).
#: Rebuilt wholesale when the PID changes, so a forked child never
#: blocks on a ``threading.Lock`` some parent thread held at fork time.
_REGISTRY: Dict[str, object] = {
    "pid": os.getpid(),
    "guard": threading.Lock(),
    "locks": {},
}


def _process_lock(path: Path) -> threading.Lock:
    """The in-process lock shared by every :class:`FileLock` on ``path``."""
    global _REGISTRY
    if _REGISTRY["pid"] != os.getpid():
        _REGISTRY = {"pid": os.getpid(), "guard": threading.Lock(),
                     "locks": {}}
    registry = _REGISTRY
    key = str(path)
    with registry["guard"]:
        lock = registry["locks"].get(key)
        if lock is None:
            lock = registry["locks"][key] = threading.Lock()
        return lock


class FileLock:
    """An advisory exclusive inter-process lock on one file.

    Use as a context manager::

        with FileLock(root / "store.lock") as lock:
            ...  # read-modify-write
            # lock.acquired tells whether exclusion actually held

    Acquisition never raises: on an unwritable root, a missing lock
    primitive, or a timeout waiting for a peer, the context is entered
    with :attr:`acquired` ``False`` and the caller proceeds best-effort
    (the store's degradation mode catches any write that then fails).
    """

    def __init__(self, path: Union[str, Path], timeout: float = 30.0,
                 poll_interval: float = 0.005):
        """Prepare a lock on ``path``; nothing is opened yet."""
        self.path = Path(path)
        self.timeout = timeout
        self.poll_interval = poll_interval
        #: Whether the exclusive lock is currently held.
        self.acquired = False
        self._handle = None
        self._thread_locked = False

    def acquire(self) -> bool:
        """Try to take the lock; returns whether exclusion held.

        Exclusion is two-level: the path's in-process
        :class:`threading.Lock` first (so intra-process waiters block
        cheaply instead of busy-polling the flock), then the advisory
        file lock against other processes.
        """
        if self.acquired:
            return True
        deadline = time.monotonic() + self.timeout
        thread_lock = _process_lock(self.path)
        if not thread_lock.acquire(timeout=self.timeout):
            return False
        self._thread_locked = True
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a+b")
        except OSError:
            self._handle = None
            self._unlock_thread()
            return False
        if fcntl is None and msvcrt is None:  # pragma: no cover
            # No lock primitive on this platform: the in-process lock
            # and the open handle are all we can do; report best-effort
            # mode (intra-process exclusion still holds via __exit__).
            self._unlock_thread()
            return False
        while True:
            try:
                self._try_lock()
                self.acquired = True
                return True
            except OSError:
                if time.monotonic() >= deadline:
                    self._close()
                    self._unlock_thread()
                    return False
                time.sleep(self.poll_interval)

    def _try_lock(self) -> None:
        """One non-blocking lock attempt (raises OSError when held)."""
        fd = self._handle.fileno()
        if fcntl is not None:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        elif msvcrt is not None:  # pragma: no cover - Windows only
            self._handle.seek(0)
            msvcrt.locking(fd, msvcrt.LK_NBLCK, 1)

    def release(self) -> None:
        """Drop the lock (no-op when it was never acquired)."""
        if self._handle is not None and self.acquired:
            try:
                fd = self._handle.fileno()
                if fcntl is not None:
                    fcntl.flock(fd, fcntl.LOCK_UN)
                elif msvcrt is not None:  # pragma: no cover
                    self._handle.seek(0)
                    msvcrt.locking(fd, msvcrt.LK_UNLCK, 1)
            except OSError:  # pragma: no cover - nothing left to do
                pass
        self.acquired = False
        self._close()
        self._unlock_thread()

    def _unlock_thread(self) -> None:
        """Release the in-process lock if this instance holds it."""
        if self._thread_locked:
            self._thread_locked = False
            try:
                _process_lock(self.path).release()
            except RuntimeError:  # pragma: no cover - fork edge case
                pass

    def _close(self) -> None:
        """Close the lockfile handle, swallowing close errors."""
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:  # pragma: no cover
                pass
            self._handle = None

    def __enter__(self) -> "FileLock":
        """Acquire (best-effort) and enter the critical section."""
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Release on exit, regardless of exceptions."""
        self.release()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        """Release on garbage collection if the caller forgot."""
        self.release()


def store_lock(root: Union[str, Path], timeout: float = 30.0) -> FileLock:
    """The canonical lock guarding a store root's metadata writes."""
    return FileLock(Path(root) / LOCK_FILENAME, timeout=timeout)


def pid_alive(pid: int) -> bool:
    """Best-effort liveness probe used by diagnostics (not the lock)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (OSError, PermissionError):  # pragma: no cover
        return True
    return True
