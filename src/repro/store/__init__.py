"""Persistent, content-addressed storage for simulation results.

The in-process memo cache in :mod:`repro.core.suite` dies with the
interpreter; this package gives the suite a durable backing layer so
repeated campaigns warm-start across processes:

* :mod:`repro.store.keys` — stable SHA-256 keys over the canonical
  JSON of (config, cluster, jobconf, cost model, fault plan, schema
  version); independent of ``PYTHONHASHSEED`` and process identity.
* :mod:`repro.store.records` — :class:`StoredResult`, the durable
  JSON-round-trippable subset of a ``SimJobResult``.
* :mod:`repro.store.backend` — the :class:`StoreBackend` contract the
  facade drives, plus root-URL resolution (``sqlite:PATH`` et al).
* :mod:`repro.store.fs` / :mod:`repro.store.sqlite` — the two
  backends: the human-inspectable record directory (sharded counter
  files) and one WAL-mode SQLite database (indexed tags, fast stats).
* :mod:`repro.store.store` — :class:`ResultStore`, the facade with
  hit/miss/put counters, corruption tolerance, schema invalidation and
  ``gc``/``export`` maintenance.
* :mod:`repro.store.migrate` — lossless, byte-identical store-to-store
  copies across backends (``repro store migrate``).

Attach a store to a suite (``MicroBenchmarkSuite(store=...)``), the
CLI (``--store ROOT``) or a campaign run, and every simulated point is
recorded once and replayed forever — bit-identical, with provenance.
See ``docs/STORE.md``, ``docs/MODEL.md`` ("The caching contract") and
``docs/API.md``.
"""

from repro.store.backend import (
    BACKEND_ENV_VAR,
    BACKEND_NAMES,
    FSYNC_ENV_VAR,
    ResultStoreWarning,
    StoreBackend,
    VerifyProblem,
    VerifyReport,
    atomic_write_json,
    create_backend,
    dump_record_text,
    split_root,
)
from repro.store.fs import FilesystemBackend
from repro.store.keys import (
    SCHEMA_VERSION,
    canonical,
    canonical_json,
    point_components,
    point_key,
    stable_digest,
)
from repro.store.locks import FileLock, store_lock
from repro.store.migrate import MigrationReport, migrate_store
from repro.store.records import StoredResult
from repro.store.sqlite import SQLiteBackend
from repro.store.store import (
    STORE_ENV_VAR,
    ResultStore,
    default_store_root,
    hit_rate,
)

__all__ = [
    "BACKEND_ENV_VAR",
    "BACKEND_NAMES",
    "FSYNC_ENV_VAR",
    "SCHEMA_VERSION",
    "STORE_ENV_VAR",
    "FileLock",
    "FilesystemBackend",
    "MigrationReport",
    "ResultStore",
    "ResultStoreWarning",
    "SQLiteBackend",
    "StoreBackend",
    "StoredResult",
    "VerifyProblem",
    "VerifyReport",
    "atomic_write_json",
    "create_backend",
    "dump_record_text",
    "migrate_store",
    "split_root",
    "store_lock",
    "canonical",
    "canonical_json",
    "default_store_root",
    "hit_rate",
    "point_components",
    "point_key",
    "stable_digest",
]
