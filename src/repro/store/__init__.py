"""Persistent, content-addressed storage for simulation results.

The in-process memo cache in :mod:`repro.core.suite` dies with the
interpreter; this package gives the suite a durable backing layer so
repeated campaigns warm-start across processes:

* :mod:`repro.store.keys` — stable SHA-256 keys over the canonical
  JSON of (config, cluster, jobconf, cost model, fault plan, schema
  version); independent of ``PYTHONHASHSEED`` and process identity.
* :mod:`repro.store.records` — :class:`StoredResult`, the durable
  JSON-round-trippable subset of a ``SimJobResult``.
* :mod:`repro.store.store` — :class:`ResultStore`, the on-disk record
  directory with hit/miss/put counters, corruption tolerance, schema
  invalidation and ``gc``/``export`` maintenance.

Attach a store to a suite (``MicroBenchmarkSuite(store=...)``), the
CLI (``--store DIR``) or a campaign run, and every simulated point is
recorded once and replayed forever — bit-identical, with provenance.
See ``docs/MODEL.md`` ("The caching contract") and ``docs/API.md``.
"""

from repro.store.keys import (
    SCHEMA_VERSION,
    canonical,
    canonical_json,
    point_components,
    point_key,
    stable_digest,
)
from repro.store.locks import FileLock, store_lock
from repro.store.records import StoredResult
from repro.store.store import (
    STORE_ENV_VAR,
    ResultStore,
    ResultStoreWarning,
    VerifyProblem,
    VerifyReport,
    atomic_write_json,
    default_store_root,
)

__all__ = [
    "SCHEMA_VERSION",
    "STORE_ENV_VAR",
    "FileLock",
    "ResultStore",
    "ResultStoreWarning",
    "StoredResult",
    "VerifyProblem",
    "VerifyReport",
    "atomic_write_json",
    "store_lock",
    "canonical",
    "canonical_json",
    "default_store_root",
    "point_components",
    "point_key",
    "stable_digest",
]
