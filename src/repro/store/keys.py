"""Stable, content-addressed keys for simulation results.

The in-process memo cache in :mod:`repro.core.suite` keys results on a
tuple of frozen dataclasses — perfect inside one interpreter, useless
across processes (``hash()`` is salted, tuples don't serialize to
filenames). The disk store instead derives a **stable key**: every key
component is reduced to a canonical JSON document (sorted keys, typed
dataclass envelopes, exact float round-trip via ``repr``) and hashed
with SHA-256. The same inputs produce the same hex key on every
platform, every interpreter launch, and every ``PYTHONHASHSEED`` — the
property the round-trip tests assert with subprocesses.

What goes into a point key (see :func:`point_key`):

* the full :class:`~repro.core.config.BenchmarkConfig` — with the
  ``network`` alias resolved to the interconnect's canonical name, so
  ``"ipoib-qdr"`` and ``"IPoIB-QDR(32Gbps)"`` address the same record;
* the :class:`~repro.hadoop.cluster.ClusterSpec` (nested node spec
  included);
* the :class:`~repro.hadoop.job.JobConf` — this carries the runtime
  generation (``mrv1``/``yarn``) and every framework knob;
* the :class:`~repro.hadoop.costmodel.CostModel` (or ``None`` for the
  default);
* the :class:`~repro.faults.FaultPlan` (or ``None`` for a healthy run);
* the store :data:`SCHEMA_VERSION` — bump it and every old record
  becomes a clean miss (and ``repro store gc`` fodder).

Trial seeds live inside the config (``seed``), so trials are distinct
points by construction.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Optional

from repro.core.config import BenchmarkConfig
from repro.faults import FaultPlan
from repro.hadoop.cluster import ClusterSpec
from repro.hadoop.costmodel import CostModel
from repro.hadoop.job import JobConf

#: Version tag hashed into every key and stamped on every record.
#: Bump when the simulation's observable outputs change (new physics,
#: recalibrated cost model, serialization changes): old records stop
#: matching and ``repro store gc`` can sweep them.
SCHEMA_VERSION = 1


def canonical(obj: object) -> object:
    """Reduce ``obj`` to JSON-serializable canonical form.

    Frozen dataclasses become ``{"__type__": ClassName, ...fields}``
    envelopes (recursively), mappings get sorted by :func:`json.dumps`
    later, and sequences become lists. Raises :class:`TypeError` for
    anything JSON can't represent faithfully.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out = {"__type__": type(obj).__name__}
        for f in dataclasses.fields(obj):
            out[f.name] = canonical(getattr(obj, f.name))
        return out
    if isinstance(obj, dict):
        return {str(k): canonical(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [canonical(v) for v in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(
        f"cannot canonicalize {type(obj).__name__!r} for stable hashing"
    )


def canonical_json(obj: object) -> str:
    """The canonical JSON text of ``obj`` (sorted keys, no whitespace)."""
    return json.dumps(canonical(obj), sort_keys=True, separators=(",", ":"))


def stable_digest(obj: object) -> str:
    """SHA-256 hex digest of ``obj``'s canonical JSON."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def config_components(config: BenchmarkConfig) -> dict:
    """The config's canonical envelope with the network alias resolved."""
    from repro.net.interconnect import get_interconnect

    parts = canonical(config)
    parts["network"] = get_interconnect(config.network).name
    return parts


def point_components(
    config: BenchmarkConfig,
    cluster: ClusterSpec,
    jobconf: Optional[JobConf] = None,
    cost_model: Optional[CostModel] = None,
    fault_plan: Optional[FaultPlan] = None,
    schema_version: int = SCHEMA_VERSION,
) -> dict:
    """The canonical key document of one simulation point.

    This exact document is hashed by :func:`point_key` and stored
    verbatim as each record's provenance block, so a record always
    carries the full, human-readable description of what produced it.
    """
    return {
        "schema": schema_version,
        "config": config_components(config),
        "cluster": canonical(cluster),
        "jobconf": canonical(jobconf),
        "cost_model": canonical(cost_model),
        "fault_plan": canonical(fault_plan),
    }


def point_key(
    config: BenchmarkConfig,
    cluster: ClusterSpec,
    jobconf: Optional[JobConf] = None,
    cost_model: Optional[CostModel] = None,
    fault_plan: Optional[FaultPlan] = None,
    schema_version: int = SCHEMA_VERSION,
) -> str:
    """Stable store key of one fully-specified simulation point."""
    return stable_digest(point_components(
        config, cluster, jobconf=jobconf, cost_model=cost_model,
        fault_plan=fault_plan, schema_version=schema_version,
    ))
