"""The SQLite store backend (one database file, WAL mode).

Built for the read-heavy service end of the ROADMAP: real transactions
instead of lock-file read-modify-writes, an indexed ``tags`` table so
``repro store ls --campaign`` doesn't scan every record, and
``ls``/``stats``/``verify`` that stay fast over millions of records
because they are SQL aggregates, not directory walks.

The record *document* is stored as its canonical JSON text
(:func:`~repro.store.backend.dump_record_text` — the identical bytes
the filesystem backend puts in a record file), so migrating a store
between backends is byte-lossless and the bit-identity contract holds
unchanged. The ``schema`` column and the ``tags`` table are
denormalized indexes over that text, kept in sync inside the same
transaction as every record write.

Concurrency: WAL journal mode (readers never block the writer),
``synchronous=NORMAL`` (safe with WAL), a 30 s busy timeout, and
counter bumps as single ``UPSERT`` statements — exact under concurrent
processes without any advisory lock files. Connections are
per-(process, thread): a :class:`threading.local` cache hands every
thread its own connection (sqlite3 connections have thread affinity —
one shared per-process connection made any second thread, e.g. the
benchmark service's scheduler or an asyncio ``to_thread`` call, raise
``sqlite3.ProgrammingError``), a PID guard reopens after ``fork``, and
an inherited pre-fork connection is never reused, per the SQLite
across-fork rules. :meth:`SQLiteBackend.close` closes every connection
this process opened (they are created ``check_same_thread=False``
precisely so one thread can close all of them; each is still *used*
only by its owning thread).

Write failures (disk full, read-only database) degrade the backend to
warn-once read-only mode, same as the filesystem backend: campaigns
keep simulating, results just stop being recorded.
"""

from __future__ import annotations

import contextlib
import json
import sqlite3
import os
import threading
import time
import warnings
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.store.backend import (
    ResultStoreWarning,
    StoreBackend,
    VerifyProblem,
    VerifyReport,
    dump_record_text,
)
from repro.store.keys import SCHEMA_VERSION

#: Milliseconds a statement waits on a locked database before failing.
BUSY_TIMEOUT_MS = 30_000

#: Write-transaction attempts before a persistent ``SQLITE_BUSY`` is
#: treated as a real failure (each retry backs off a little longer).
BUSY_RETRIES = 5

_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS records (
    key    TEXT PRIMARY KEY,
    schema INTEGER,
    record TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS tags (
    key      TEXT NOT NULL,
    campaign TEXT NOT NULL,
    meta     TEXT,
    PRIMARY KEY (key, campaign)
);
CREATE INDEX IF NOT EXISTS idx_tags_campaign ON tags (campaign, key);
CREATE TABLE IF NOT EXISTS counters (
    name  TEXT PRIMARY KEY,
    value INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS quarantine (
    key   TEXT PRIMARY KEY,
    entry TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS leases (
    key   TEXT PRIMARY KEY,
    entry TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS checkpoints (
    campaign TEXT PRIMARY KEY,
    payload  TEXT NOT NULL
);
"""


def _execute(db: sqlite3.Connection, sql: str,
             params: Tuple = ()) -> sqlite3.Cursor:
    """Run one statement (module-level seam for fault-injection tests).

    Tests monkeypatch this to make writes fail — the container runs as
    root, so permission tricks can't produce a read-only database.
    """
    return db.execute(sql, params)


@contextlib.contextmanager
def _write_txn(db: sqlite3.Connection):
    """An IMMEDIATE write transaction (commit on exit, rollback on error).

    ``BEGIN IMMEDIATE`` takes the database write lock *before* any read
    inside the block, which is what makes read-modify-writes (tag
    merges) safe across processes: a deferred transaction would let two
    writers read the same old row and silently drop each other's
    update. Concurrent writers queue on the busy timeout instead.
    """
    _execute(db, "BEGIN IMMEDIATE")
    try:
        yield
    except BaseException:
        db.rollback()
        raise
    else:
        db.commit()


def _busy(exc: BaseException) -> bool:
    """Whether an error is transient lock contention (retryable)."""
    if not isinstance(exc, sqlite3.OperationalError):
        return False
    message = str(exc).lower()
    return "locked" in message or "busy" in message


class SQLiteBackend(StoreBackend):
    """Content-addressed records in one WAL-mode SQLite database."""

    scheme = "sqlite"

    def __init__(self, location: Union[str, Path]):
        """Open (lazily) the database at ``location``.

        Nothing touches the filesystem until the first operation, so
        constructing a store never creates an empty database.
        """
        self.location = Path(location)
        self._read_only = False
        self._init_conn_state()

    # -- connection --------------------------------------------------------

    def _init_conn_state(self) -> None:
        """(Re)create the per-thread connection cache, empty."""
        #: Thread-local slot: each thread caches its own connection
        #: (plus the pid and generation it was opened under).
        self._local = threading.local()
        #: Every connection this process opened, for close(): a list of
        #: (connection, pid) pairs behind a lock.
        self._conns: List[Tuple[sqlite3.Connection, int]] = []
        self._conns_lock = threading.Lock()
        #: Bumped by close() so threads whose cached connection was
        #: closed from another thread reconnect instead of using it.
        self._generation = 0

    def _db(self) -> sqlite3.Connection:
        """This thread's connection (reopened after ``fork``/``close``).

        sqlite3 connections have thread affinity, so the cache is a
        :class:`threading.local` keyed by pid and close-generation: a
        second thread gets its own connection instead of tripping the
        driver's thread check, a forked child never touches (or even
        closes) an inherited pre-fork connection — the reference is
        simply dropped — and a thread whose connection :meth:`close`
        swept reconnects transparently.
        """
        pid = os.getpid()
        conn = getattr(self._local, "conn", None)
        if (conn is not None and self._local.pid == pid
                and self._local.generation == self._generation):
            return conn
        self._local.conn = None
        self.location.parent.mkdir(parents=True, exist_ok=True)
        # check_same_thread=False lets close() finalize connections
        # opened by other threads; every connection is still *used*
        # exclusively by the thread that opened it.
        conn = sqlite3.connect(str(self.location),
                               timeout=BUSY_TIMEOUT_MS / 1000.0,
                               check_same_thread=False)
        try:
            # Autocommit mode: transactions are managed explicitly via
            # _write_txn (BEGIN IMMEDIATE), never implicitly by the
            # driver.
            conn.isolation_level = None
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
            with conn:
                conn.executescript(_SCHEMA_SQL)
        except BaseException:
            conn.close()
            raise
        self._local.conn = conn
        self._local.pid = pid
        self._local.generation = self._generation
        with self._conns_lock:
            self._conns.append((conn, pid))
        return conn

    def close(self) -> None:
        """Close every connection this process opened.

        Safe to call from any thread (connections are created
        ``check_same_thread=False``); threads that keep using the
        backend afterwards transparently reconnect. Inherited pre-fork
        connections are skipped — only their opener may touch them.
        """
        pid = os.getpid()
        with self._conns_lock:
            remaining: List[Tuple[sqlite3.Connection, int]] = []
            for conn, conn_pid in self._conns:
                if conn_pid != pid:
                    remaining.append((conn, conn_pid))
                    continue
                with contextlib.suppress(sqlite3.Error):
                    conn.close()
            self._conns = remaining
            self._generation += 1

    def __getstate__(self) -> dict:
        """Pickle without the (unpicklable, unshareable) connections."""
        state = dict(self.__dict__)
        for transient in ("_local", "_conns", "_conns_lock"):
            state.pop(transient, None)
        return state

    def __setstate__(self, state: dict) -> None:
        """Unpickle with a fresh, empty connection cache."""
        self.__dict__.update(state)
        self._init_conn_state()

    def describe(self) -> str:
        """One-line human description of this backend."""
        return f"sqlite store at {self.location}"

    def quarantine_location(self) -> str:
        """Where the quarantine ledger lives."""
        return f"{self.location} (quarantine table)"

    # -- degradation -------------------------------------------------------

    @property
    def read_only(self) -> bool:
        """Whether the store has degraded to read-only mode."""
        return self._read_only

    def _degrade(self, exc: Exception) -> None:
        """Flip into read-only mode (warning once, never raising)."""
        if not self._read_only:
            warnings.warn(
                f"store {self.location} is unwritable ({exc}); continuing "
                f"in read-only mode — results are NOT being recorded",
                ResultStoreWarning, stacklevel=4,
            )
            self._read_only = True

    def _write(self, operation):
        """Run one write operation, retrying transient lock contention.

        SQLite's busy handler covers most contention, but a few windows
        return ``SQLITE_BUSY`` without consulting it — the journal-mode
        transition while a freshly created database is still in
        rollback mode, and deadlock avoidance on lock upgrades. Those
        mean "another writer got there first", not "the store is
        unwritable", so they must not trip read-only degradation: roll
        back, back off, try again. A persistent failure propagates to
        the caller (which degrades as usual).
        """
        for attempt in range(BUSY_RETRIES):
            try:
                return operation()
            except sqlite3.OperationalError as exc:
                if not _busy(exc) or attempt == BUSY_RETRIES - 1:
                    raise
                conn = getattr(self._local, "conn", None)
                if conn is not None:
                    with contextlib.suppress(sqlite3.Error):
                        conn.rollback()
                time.sleep(0.01 * (attempt + 1))
        return None  # pragma: no cover - the loop returns or raises

    def _rows(self, sql: str, params: Tuple = ()) -> List[tuple]:
        """Fetch query rows, tolerating an unopenable/corrupt database."""
        try:
            return _execute(self._db(), sql, params).fetchall()
        except (sqlite3.Error, OSError) as exc:
            warnings.warn(
                f"unreadable store database {self.location}: {exc}",
                ResultStoreWarning, stacklevel=4,
            )
            return []

    # -- records -----------------------------------------------------------

    def _parse(self, key: str, text: str) -> Optional[dict]:
        """Parse one record document; warn and return None if corrupt."""
        try:
            data = json.loads(text)
            if not isinstance(data, dict):
                raise ValueError("record is not a JSON object")
        except ValueError as exc:
            warnings.warn(
                f"skipping corrupted store record {key[:16]} in "
                f"{self.location}: {exc}",
                ResultStoreWarning, stacklevel=4,
            )
            return None
        return data

    def read_record(self, key: str) -> Optional[dict]:
        """One usable current-schema record document, or None."""
        rows = self._rows("SELECT record FROM records WHERE key = ?",
                          (key,))
        if not rows:
            return None
        data = self._parse(key, rows[0][0])
        if data is None or data.get("schema") != SCHEMA_VERSION:
            return None
        return data

    @staticmethod
    def _record_statements(
        key: str, record: dict
    ) -> List[Tuple[str, Tuple]]:
        """The statements publishing one record (and its tag index)."""
        statements: List[Tuple[str, Tuple]] = [
            ("INSERT INTO records (key, schema, record) VALUES (?, ?, ?) "
             "ON CONFLICT(key) DO UPDATE SET "
             "schema = excluded.schema, record = excluded.record",
             (key, record.get("schema"), dump_record_text(record))),
            ("DELETE FROM tags WHERE key = ?", (key,)),
        ]
        tags = record.get("tags")
        if isinstance(tags, dict):
            for campaign, meta in tags.items():
                statements.append(
                    ("INSERT INTO tags (key, campaign, meta) "
                     "VALUES (?, ?, ?)",
                     (key, str(campaign), json.dumps(meta, sort_keys=True))))
        return statements

    def write_record(self, key: str, record: dict) -> bool:
        """Publish one record document transactionally."""
        return self.write_records([(key, record)]) == 1

    def write_records(self, entries: Iterable[Tuple[str, dict]]) -> int:
        """Publish many record documents in one transaction."""
        entries = list(entries)
        if not entries or self._read_only:
            return 0

        def publish() -> None:
            db = self._db()
            with _write_txn(db):
                for key, record in entries:
                    for sql, params in self._record_statements(key, record):
                        _execute(db, sql, params)

        try:
            self._write(publish)
        except (sqlite3.Error, OSError) as exc:
            self._degrade(exc)
            return 0
        return len(entries)

    def update_tags(
        self, entries: Iterable[Tuple[str, str, Optional[dict]]]
    ) -> int:
        """Merge campaign tags into existing records (one transaction).

        The record text and the ``tags`` index move together: the tag is
        merged into the parsed document, the canonical text rewritten,
        and the index row upserted — all inside a single transaction, so
        a reader (or a migration) never sees them disagree.
        """
        entries = list(entries)
        if not entries:
            return 0
        if self._read_only:
            return sum(1 for key, _c, _m in entries
                       if self.read_record(key) is not None)

        def merge() -> int:
            tagged = 0
            db = self._db()
            with _write_txn(db):
                for key, campaign, meta in entries:
                    row = _execute(
                        db, "SELECT record FROM records WHERE key = ?",
                        (key,)).fetchone()
                    if row is None:
                        continue
                    data = self._parse(key, row[0])
                    if data is None or data.get("schema") != SCHEMA_VERSION:
                        continue
                    tags = data.setdefault("tags", {})
                    if tags.get(campaign) != (meta or {}):
                        tags[campaign] = meta or {}
                        for sql, params in self._record_statements(key, data):
                            _execute(db, sql, params)
                    tagged += 1
            return tagged

        try:
            return self._write(merge)
        except (sqlite3.Error, OSError) as exc:
            self._degrade(exc)
            return sum(1 for key, _c, _m in entries
                       if self.read_record(key) is not None)

    # -- counters ----------------------------------------------------------

    def bump_counters(self, deltas: Dict[str, int]) -> None:
        """Add counter deltas as upserts (exact under concurrency)."""
        deltas = {name: n for name, n in deltas.items() if n}
        if not deltas or self._read_only:
            return

        def bump() -> None:
            db = self._db()
            with _write_txn(db):
                for name, n in sorted(deltas.items()):
                    _execute(
                        db,
                        "INSERT INTO counters (name, value) VALUES (?, ?) "
                        "ON CONFLICT(name) DO UPDATE SET "
                        "value = value + excluded.value",
                        (name, n))

        try:
            self._write(bump)
        except (sqlite3.Error, OSError) as exc:
            self._degrade(exc)

    def counters(self) -> Dict[str, int]:
        """Fresh lifetime counter totals."""
        totals = {"puts": 0, "hits": 0, "misses": 0}
        for name, value in self._rows("SELECT name, value FROM counters"):
            totals[name] = int(value)
        return totals

    # -- quarantine ledger -------------------------------------------------

    def quarantine(self) -> Dict[str, dict]:
        """The quarantine ledger: point key → failure entry."""
        out: Dict[str, dict] = {}
        for key, text in self._rows(
                "SELECT key, entry FROM quarantine ORDER BY key"):
            try:
                entry = json.loads(text)
            except ValueError:
                entry = {}
            out[key] = entry if isinstance(entry, dict) else {}
        return out

    def quarantine_add(self, key: str, entry: dict) -> None:
        """Record one exhausted point in the ledger (upsert)."""
        if self._read_only:
            return

        def add() -> None:
            db = self._db()
            with _write_txn(db):
                _execute(
                    db,
                    "INSERT INTO quarantine (key, entry) VALUES (?, ?) "
                    "ON CONFLICT(key) DO UPDATE SET entry = excluded.entry",
                    (key, json.dumps(entry, sort_keys=True)))

        try:
            self._write(add)
        except (sqlite3.Error, OSError) as exc:
            self._degrade(exc)

    def quarantine_clear(self, keys: Optional[Iterable[str]] = None) -> int:
        """Drop ledger entries (all of them, or just ``keys``)."""
        if self._read_only:
            return 0
        targets = None if keys is None else list(keys)

        def clear() -> int:
            db = self._db()
            with _write_txn(db):
                if targets is None:
                    return _execute(db, "DELETE FROM quarantine").rowcount
                removed = 0
                for key in targets:
                    cursor = _execute(
                        db, "DELETE FROM quarantine WHERE key = ?", (key,))
                    removed += cursor.rowcount
                return removed

        try:
            return self._write(clear)
        except (sqlite3.Error, OSError) as exc:
            self._degrade(exc)
            return 0

    # -- lease ledger ------------------------------------------------------

    def leases(self) -> Dict[str, dict]:
        """Active distributed-execution leases: point key → entry."""
        out: Dict[str, dict] = {}
        for key, text in self._rows(
                "SELECT key, entry FROM leases ORDER BY key"):
            try:
                entry = json.loads(text)
            except ValueError:
                entry = {}
            out[key] = entry if isinstance(entry, dict) else {}
        return out

    def lease_update(self, key: str, entry: dict) -> None:
        """Record (or refresh) one point's lease (upsert)."""
        if self._read_only:
            return

        def update() -> None:
            db = self._db()
            with _write_txn(db):
                _execute(
                    db,
                    "INSERT INTO leases (key, entry) VALUES (?, ?) "
                    "ON CONFLICT(key) DO UPDATE SET entry = excluded.entry",
                    (key, json.dumps(entry, sort_keys=True)))

        try:
            self._write(update)
        except (sqlite3.Error, OSError) as exc:
            self._degrade(exc)

    def lease_release(self, keys: Optional[Iterable[str]] = None) -> int:
        """Drop leases (all of them, or just ``keys``)."""
        if self._read_only:
            return 0
        targets = None if keys is None else list(keys)

        def release() -> int:
            db = self._db()
            with _write_txn(db):
                if targets is None:
                    return _execute(db, "DELETE FROM leases").rowcount
                removed = 0
                for key in targets:
                    cursor = _execute(
                        db, "DELETE FROM leases WHERE key = ?", (key,))
                    removed += cursor.rowcount
                return removed

        try:
            return self._write(release)
        except (sqlite3.Error, OSError) as exc:
            self._degrade(exc)
            return 0

    # -- campaign checkpoints ----------------------------------------------

    def write_checkpoint(self, campaign: str, payload: dict) -> bool:
        """Publish one campaign's checkpoint (upsert)."""
        if self._read_only:
            return False

        def checkpoint() -> None:
            db = self._db()
            with _write_txn(db):
                _execute(
                    db,
                    "INSERT INTO checkpoints (campaign, payload) "
                    "VALUES (?, ?) ON CONFLICT(campaign) DO UPDATE SET "
                    "payload = excluded.payload",
                    (campaign, json.dumps(payload, sort_keys=True)))

        try:
            self._write(checkpoint)
        except (sqlite3.Error, OSError) as exc:
            self._degrade(exc)
            return False
        return True

    def read_checkpoint(self, campaign: str) -> Optional[dict]:
        """One campaign's checkpoint, if present and parsable."""
        rows = self._rows(
            "SELECT payload FROM checkpoints WHERE campaign = ?",
            (campaign,))
        if not rows:
            return None
        try:
            data = json.loads(rows[0][0])
        except ValueError as exc:
            warnings.warn(
                f"unreadable checkpoint for campaign {campaign!r}: {exc}",
                ResultStoreWarning, stacklevel=3,
            )
            return None
        return data if isinstance(data, dict) else None

    def checkpoints(self) -> Dict[str, dict]:
        """Every parsable checkpoint, by campaign name."""
        out: Dict[str, dict] = {}
        for campaign, _payload in self._rows(
                "SELECT campaign, payload FROM checkpoints "
                "ORDER BY campaign"):
            data = self.read_checkpoint(campaign)
            if data is not None:
                out[campaign] = data
        return out

    # -- inspection --------------------------------------------------------

    def keys(self) -> Iterator[str]:
        """All record keys present (any schema), sorted."""
        return iter([key for (key,) in self._rows(
            "SELECT key FROM records ORDER BY key")])

    def records(self) -> Iterator[Tuple[str, dict]]:
        """(key, document) for every usable current-schema record."""
        for key, text in self._rows(
                "SELECT key, record FROM records ORDER BY key"):
            data = self._parse(key, text)
            if data is not None and data.get("schema") == SCHEMA_VERSION:
                yield key, data

    def dump(self) -> Iterator[Tuple[str, dict]]:
        """(key, document) for every parsable record, any schema."""
        for key, text in self._rows(
                "SELECT key, record FROM records ORDER BY key"):
            data = self._parse(key, text)
            if data is not None:
                yield key, data

    def campaign_keys(self, campaign: str) -> List[str]:
        """Sorted keys of one campaign's records (indexed lookup)."""
        return [key for (key,) in self._rows(
            "SELECT key FROM tags WHERE campaign = ? ORDER BY key",
            (campaign,))]

    def stats_counts(self) -> Dict[str, int]:
        """Record/stale counts plus record-text bytes (SQL aggregates)."""
        rows = self._rows(
            "SELECT COUNT(*), "
            "COALESCE(SUM(schema = ?), 0), "
            "COALESCE(SUM(LENGTH(record)), 0) FROM records",
            (SCHEMA_VERSION,))
        total, current, nbytes = rows[0] if rows else (0, 0, 0)
        return {"records": int(current),
                "stale_records": int(total) - int(current),
                "bytes": int(nbytes)}

    def verify(self, gc: bool = False) -> VerifyReport:
        """Fsck every record row; optionally sweep the failing ones.

        Applies the same per-record contract as the filesystem backend
        (via :func:`repro.store.fs.verify_record`); the metadata check
        is SQLite's own ``PRAGMA quick_check``.
        """
        from repro.store.fs import verify_record

        report = VerifyReport()
        try:
            check = _execute(self._db(), "PRAGMA quick_check").fetchone()
            report.meta_ok = bool(check) and check[0] == "ok"
        except (sqlite3.Error, OSError):
            report.meta_ok = False
        failing: List[str] = []
        for key, text in self._rows(
                "SELECT key, record FROM records ORDER BY key"):
            report.checked += 1
            try:
                data = json.loads(text)
            except ValueError as exc:
                problem: Optional[str] = f"unparsable: {exc}"
            else:
                problem = verify_record(key, data)
            if problem is None:
                report.ok += 1
                continue
            report.problems.append(VerifyProblem(
                path=self.location, key=key, problem=problem))
            failing.append(key)
        if gc and failing:
            report.swept = self._delete_keys(failing)
        return report

    def _delete_keys(self, keys: List[str]) -> int:
        """Drop record rows (and their tag index rows); returns count."""
        if self._read_only:
            return 0

        def drop() -> int:
            removed = 0
            db = self._db()
            with _write_txn(db):
                for key in keys:
                    cursor = _execute(
                        db, "DELETE FROM records WHERE key = ?", (key,))
                    removed += cursor.rowcount
                    _execute(db, "DELETE FROM tags WHERE key = ?", (key,))
            return removed

        try:
            return self._write(drop)
        except (sqlite3.Error, OSError) as exc:
            self._degrade(exc)
            return 0

    def gc(self, remove_all: bool = False) -> int:
        """Remove stale (or, with ``remove_all``, every) record row."""
        stale: List[str] = []
        for key, text in self._rows(
                "SELECT key, record FROM records ORDER BY key"):
            if remove_all:
                stale.append(key)
                continue
            try:
                if json.loads(text).get("schema") == SCHEMA_VERSION:
                    continue
            except (ValueError, AttributeError):
                pass
            stale.append(key)
        return self._delete_keys(stale)
