"""The content-addressed result store (facade over pluggable backends).

:class:`ResultStore` owns the store *policy* — record envelopes,
:class:`~repro.store.records.StoredResult` (de)serialization, warm-start
hit/miss/put accounting — and delegates all persistent state to a
:class:`~repro.store.backend.StoreBackend`:

* :class:`~repro.store.fs.FilesystemBackend` (default) — the
  human-inspectable ``objects/<aa>/<key>.json`` directory layout with
  sharded counter files;
* :class:`~repro.store.sqlite.SQLiteBackend` — one WAL-mode SQLite
  database, selected by a ``sqlite:PATH`` root, a ``*.db``/``*.sqlite``
  path, or ``$REPRO_STORE_BACKEND=sqlite`` (see
  :func:`~repro.store.backend.split_root` for the full rules).

Each record carries the key, the key schema version, a provenance
block (the canonical key components: config, cluster, jobconf, cost
model, fault plan, resolved interconnect), campaign tags added by
:mod:`repro.campaign`, and the :class:`~repro.store.records.StoredResult`
payload. Both backends store the identical record document — the same
canonical JSON text — so ``repro store migrate`` moves stores between
backings byte-for-byte and the bit-identity contract (hex-exact warm
starts) holds regardless of backend.

Design points (the backend contract enforces these; see
:class:`~repro.store.backend.StoreBackend`):

* **Warm starts are observable.** The store keeps lifetime ``puts``
  (simulations executed and recorded), ``hits`` and ``misses``
  counters; ``repro store stats`` prints them, so "the second run
  executed 0 simulations" is a checkable claim (``puts`` did not move).
* **Counters survive concurrency.** Counter updates are exact under
  multi-process concurrency — per-shard file locks on the filesystem
  backend, transactional upserts on SQLite (asserted by a multiprocess
  stress test against both).
* **Corruption is a warning, not a crash.** A record that fails to
  parse or validate is skipped with a :class:`ResultStoreWarning`; the
  point simply re-simulates (and ``repro store verify --gc`` can sweep
  it).
* **Unwritable roots degrade, they don't abort.** The first failed
  write (read-only filesystem, disk full) flips the backend into a
  read-only mode: it warns once, keeps serving reads, and silently
  drops further writes so a long campaign keeps simulating.
* **Schema bumps invalidate.** Records whose ``schema`` differs from
  :data:`~repro.store.keys.SCHEMA_VERSION` never hit; ``gc`` removes
  them.
* **Writes are atomic and durable.** Record files go through temp file
  + fsync + ``os.replace`` (rows through SQLite transactions), so
  concurrent readers never see half a record and a crash never leaves
  a zero-length one.
* **Integrity is checkable.** :meth:`ResultStore.verify` is an fsck:
  every record must parse, match its stored key, match the schema,
  carry a loadable result payload, and (when provenance is present)
  hash back to its own key.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

# Re-exported here for compatibility: these names lived in this module
# before the backend split.
from repro.store.backend import (  # noqa: F401  (re-exports)
    ResultStoreWarning,
    StoreBackend,
    VerifyProblem,
    VerifyReport,
    atomic_write_json,
    create_backend,
)
from repro.store.fs import CHECKPOINT_DIRNAME, QUARANTINE_FILENAME  # noqa: F401
from repro.store.keys import SCHEMA_VERSION
from repro.store.records import StoredResult

#: Environment variable naming the default store root.
STORE_ENV_VAR = "REPRO_STORE"


def default_store_root() -> Optional[str]:
    """The store root named by ``$REPRO_STORE``, if any."""
    root = os.environ.get(STORE_ENV_VAR, "").strip()
    return root or None


def hit_rate(stats: Dict[str, object]) -> Optional[float]:
    """Warm-hit percentage from a stats dict, or ``None``.

    ``None`` (JSON ``null``) when the store has never been looked up —
    a fresh store has no hit rate, and reporting ``0.0`` would read as
    "everything missed". Shared by ``repro store stats --json`` and the
    service's ``/v1/stats`` so the two JSON shapes agree.
    """
    lookups = int(stats.get("hits", 0)) + int(stats.get("misses", 0))
    if not lookups:
        return None
    return 100.0 * int(stats.get("hits", 0)) / lookups


class ResultStore:
    """Content-addressed simulation results over a pluggable backend."""

    def __init__(self, root: Union[str, Path],
                 backend: Union[None, str, StoreBackend] = None):
        """Open (without creating) the store rooted at ``root``.

        ``root`` accepts a directory, a ``sqlite:PATH`` / ``file:PATH``
        URL, or a database path; ``backend`` optionally forces a backend
        by name (``"filesystem"`` / ``"sqlite"``) or supplies a
        ready-made :class:`StoreBackend` instance.
        """
        if isinstance(backend, StoreBackend):
            self.backend = backend
            self.root = Path(root)
        else:
            self.backend, display = create_backend(root, backend=backend)
            self.root = Path(display)
        self._stats_cache: Optional[Dict[str, object]] = None

    def describe(self) -> str:
        """One-line human description (backend and location)."""
        return self.backend.describe()

    # -- paths (filesystem backend only) -----------------------------------

    @property
    def objects_dir(self) -> Path:
        """Directory holding the record files (filesystem backend)."""
        return self.backend.objects_dir

    @property
    def meta_path(self) -> Path:
        """Path of the legacy counters file (filesystem backend)."""
        return self.backend.meta_path

    @property
    def quarantine_path(self) -> Path:
        """Path of the quarantine ledger (filesystem backend)."""
        return self.backend.quarantine_path

    def checkpoint_path(self, campaign: str) -> Path:
        """Path of one campaign's checkpoint (filesystem backend)."""
        return self.backend.checkpoint_path(campaign)

    def record_path(self, key: str) -> Path:
        """Path of one record file (filesystem backend)."""
        return self.backend.record_path(key)

    @property
    def quarantine_location(self) -> str:
        """Human pointer to the quarantine ledger (any backend)."""
        return self.backend.quarantine_location()

    # -- degradation -------------------------------------------------------

    @property
    def read_only(self) -> bool:
        """Whether the store has degraded to read-only mode."""
        return self.backend.read_only

    # -- record access -----------------------------------------------------

    def _record_ref(self, key: str) -> str:
        """How warnings point at one record (path or db+key)."""
        record_path = getattr(self.backend, "record_path", None)
        if record_path is not None:
            return str(record_path(key))
        return f"{key[:16]} in {self.backend.describe()}"

    def _load_result(self, key: str,
                     data: Optional[dict]) -> Optional[StoredResult]:
        """Parse one record document's payload; warn if malformed."""
        if data is None:
            return None
        try:
            return StoredResult.from_dict(data["result"])
        except (KeyError, ValueError) as exc:
            warnings.warn(
                f"skipping malformed store record {self._record_ref(key)}: "
                f"{exc}", ResultStoreWarning, stacklevel=3,
            )
            return None

    def contains(self, key: str) -> bool:
        """Whether a usable record exists (no counter side effects)."""
        return self.backend.read_record(key) is not None

    def fetch_record(self, key: str) -> Optional[dict]:
        """One usable record *document* — no counter side effects.

        The raw envelope dict (``{key, schema, provenance, tags,
        result}``) whose canonical serialization
        (:func:`~repro.store.backend.dump_record_text`) is byte-identical
        to what ``repro store export`` emits; the benchmark service
        serves these bytes directly. Lookups through this path are the
        *caller's* to account (the service keeps request-level counters),
        unlike :meth:`get`, which bumps the store's own hit/miss
        counters.
        """
        return self.backend.read_record(key)

    def get(self, key: str) -> Optional[StoredResult]:
        """Look up a result; counts a hit or a miss."""
        result = self._load_result(key, self.backend.read_record(key))
        self.backend.bump_counters(
            {"hits": 1} if result is not None else {"misses": 1})
        return result

    def get_batch(self, keys: Iterable[str]) -> List[Optional[StoredResult]]:
        """Look up many results; counts every hit/miss in one bump.

        Semantically equivalent to ``[self.get(k) for k in keys]`` —
        same results, same warnings, same final counter values — but
        the counters are updated once instead of once per key.
        """
        results: List[Optional[StoredResult]] = []
        hits = 0
        misses = 0
        for key in keys:
            result = self._load_result(key, self.backend.read_record(key))
            if result is None:
                misses += 1
            else:
                hits += 1
            results.append(result)
        self.backend.bump_counters({"hits": hits, "misses": misses})
        return results

    @staticmethod
    def _envelope(key: str, result: StoredResult,
                  provenance: Optional[dict],
                  tags: Optional[dict]) -> dict:
        """The record document one put persists."""
        return {
            "key": key,
            "schema": SCHEMA_VERSION,
            "provenance": provenance or {},
            "tags": tags or {},
            "result": result.to_dict(),
        }

    def _record_location(self, key: str) -> Path:
        """Where one record lands (file path, or the db for SQLite)."""
        record_path = getattr(self.backend, "record_path", None)
        if record_path is not None:
            return record_path(key)
        return self.backend.location

    def put(
        self,
        key: str,
        result: StoredResult,
        provenance: Optional[dict] = None,
        tags: Optional[dict] = None,
    ) -> Path:
        """Record one simulated point (counts as an executed simulation).

        In read-only degradation mode the write is dropped silently
        (a location is still returned so callers never special-case it).
        """
        record = self._envelope(key, result, provenance, tags)
        if self.backend.write_record(key, record):
            self.backend.bump_counters({"puts": 1})
        return self._record_location(key)

    def put_many(
        self,
        entries: Iterable[Tuple[str, StoredResult, Optional[dict],
                                Optional[dict]]],
    ) -> List[Path]:
        """Record many points with one counter bump at the end.

        ``entries`` yields ``(key, result, provenance, tags)`` tuples.
        Writing campaign tags at put time makes a later
        :meth:`tag`/:meth:`tag_many` of the same ``{campaign: meta}``
        a read-only no-op (records serialize with the same canonical
        formatting either way, so the stored bytes are identical). Each
        record write is still individually atomic; only the ``puts``
        counter update is coalesced. A failed write degrades the store
        exactly like :meth:`put` and drops the remaining writes.
        """
        entries = list(entries)
        written = self.backend.write_records(
            (key, self._envelope(key, result, provenance, tags))
            for key, result, provenance, tags in entries)
        self.backend.bump_counters({"puts": written})
        return [self._record_location(key) for key, _r, _p, _t in entries]

    def tag(self, key: str, campaign: str,
            meta: Optional[dict] = None) -> bool:
        """Stamp a campaign tag onto an existing record.

        Tags are how the Experiment Book finds a campaign's points from
        store contents alone. Returns False when the record is missing.
        The record read-modify-write is locked (or transactional) so two
        concurrent campaigns never drop each other's tags.
        """
        return self.backend.update_tags([(key, campaign, meta)]) == 1

    def tag_many(
        self,
        entries: Iterable[Tuple[str, str, Optional[dict]]],
    ) -> int:
        """Stamp many campaign tags with minimal lock traffic.

        ``entries`` yields ``(key, campaign, meta)`` triples. Returns
        the number of records that carry the tag afterwards (missing
        records are skipped, like :meth:`tag` returning False).
        """
        return self.backend.update_tags(entries)

    # -- quarantine ledger -------------------------------------------------

    def quarantine(self) -> Dict[str, dict]:
        """The quarantine ledger: point key → failure entry."""
        return self.backend.quarantine()

    def quarantine_add(self, key: str, entry: dict) -> None:
        """Record one exhausted point in the ledger."""
        self.backend.quarantine_add(key, entry)

    def quarantine_clear(self, keys: Optional[Iterable[str]] = None) -> int:
        """Drop ledger entries (all of them, or just ``keys``).

        Returns the number of entries removed. Used by
        ``repro campaign resume`` so quarantined points get a fresh set
        of attempts.
        """
        return self.backend.quarantine_clear(keys)

    # -- lease ledger ------------------------------------------------------

    def leases(self) -> Dict[str, dict]:
        """Active distributed-execution leases: point key → entry.

        Written by the pool coordinator
        (:mod:`repro.campaign.pool`) when units are dispatched to
        workers; released on completion, quarantine or reassignment.
        Non-empty between runs means a coordinator died hard — the
        entries say which worker held which point.
        """
        return self.backend.leases()

    def lease_update(self, key: str, entry: dict) -> None:
        """Record (or refresh) one point's lease."""
        self.backend.lease_update(key, entry)

    def lease_release(self, keys: Optional[Iterable[str]] = None) -> int:
        """Drop leases (all of them, or just ``keys``)."""
        return self.backend.lease_release(keys)

    # -- campaign checkpoints ----------------------------------------------

    def write_checkpoint(self, campaign: str,
                         payload: dict) -> Optional[Path]:
        """Publish one campaign's progress checkpoint atomically."""
        if not self.backend.write_checkpoint(
                campaign, dict(payload, schema=SCHEMA_VERSION)):
            return None
        checkpoint_path = getattr(self.backend, "checkpoint_path", None)
        if checkpoint_path is not None:
            return checkpoint_path(campaign)
        return self.backend.location

    def read_checkpoint(self, campaign: str) -> Optional[dict]:
        """Load one campaign's checkpoint, if present and parsable."""
        return self.backend.read_checkpoint(campaign)

    # -- inspection --------------------------------------------------------

    def keys(self) -> Iterator[str]:
        """All record keys present (any schema), sorted."""
        return self.backend.keys()

    def records(self) -> Iterator[Tuple[str, dict]]:
        """(key, record) pairs for every usable current-schema record."""
        return self.backend.records()

    def campaign_keys(self, campaign: str) -> List[str]:
        """Sorted keys of the records one campaign tagged."""
        return self.backend.campaign_keys(campaign)

    def stats(self, cached: bool = False) -> Dict[str, object]:
        """Counters plus storage footprint.

        By default counters are re-read from the backend so a long-lived
        handle sees bumps made by concurrent processes, not a stale
        cache — but the full pass also walks/aggregates every record
        (the footprint counts), which makes ``stats()`` a disk-heavy
        call. ``cached=True`` returns the last computed snapshot when
        one exists (copied, so callers can annotate it freely), only
        falling back to a fresh read the first time; a hot stats
        endpoint serves the cache and refreshes on its own schedule via
        ``stats()`` / :meth:`refresh_stats`.
        """
        if cached and self._stats_cache is not None:
            return dict(self._stats_cache)
        counters: Dict[str, object] = dict(self.backend.counters())
        counters.update(self.backend.stats_counts())
        counters.update(
            root=str(self.root), schema=SCHEMA_VERSION,
            backend=self.backend.scheme,
            quarantined=len(self.quarantine()),
            leases=len(self.leases()),
        )
        self._stats_cache = dict(counters)
        return counters

    def refresh_stats(self) -> Dict[str, object]:
        """Force a fresh stats read (and repopulate the cache)."""
        return self.stats(cached=False)

    def close(self) -> None:
        """Release backend handles; the store stays usable afterwards."""
        self.backend.close()

    def verify(self, gc: bool = False) -> VerifyReport:
        """Fsck every record; optionally sweep the ones that fail.

        Checks, per record: it parses to an object, the embedded ``key``
        matches the stored key, ``schema`` matches
        :data:`~repro.store.keys.SCHEMA_VERSION`, the result payload
        loads as a :class:`StoredResult`, and — when a provenance block
        is present — the provenance hashes back to the record's own key
        (the content-address actually addresses the content).
        ``gc=True`` sweeps every failing record (exactly the set that
        would otherwise warn as :class:`ResultStoreWarning` or never
        hit).
        """
        return self.backend.verify(gc=gc)

    def gc(self, remove_all: bool = False) -> int:
        """Remove stale (wrong-schema or unreadable) records.

        ``remove_all=True`` empties the store instead. Returns the
        number of records removed.
        """
        return self.backend.gc(remove_all=remove_all)

    def export(self) -> Iterator[str]:
        """Each usable record as one JSON line (``repro store export``)."""
        for _key, record in self.records():
            yield json.dumps(record, sort_keys=True)
