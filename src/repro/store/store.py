"""The content-addressed, on-disk result store.

Layout (all JSON, human-inspectable)::

    <root>/
      store.json              # schema version + lifetime counters
      objects/<k[:2]>/<k>.json  # one record per point key

Each record carries the key, the key schema version, a provenance
block (the canonical key components: config, cluster, jobconf, cost
model, fault plan, resolved interconnect), campaign tags added by
:mod:`repro.campaign`, and the :class:`~repro.store.records.StoredResult`
payload.

Design points:

* **Warm starts are observable.** The store keeps lifetime ``puts``
  (simulations executed and recorded), ``hits`` and ``misses`` counters
  in ``store.json``; ``repro store stats`` prints them, so "the second
  run executed 0 simulations" is a checkable claim (``puts`` did not
  move).
* **Corruption is a warning, not a crash.** A record that fails to
  parse or validate is skipped with a :class:`ResultStoreWarning`; the
  point simply re-simulates (and :meth:`ResultStore.gc` can sweep the
  bad file).
* **Schema bumps invalidate.** Records whose ``schema`` differs from
  :data:`~repro.store.keys.SCHEMA_VERSION` never hit; ``gc`` removes
  them.
* **Writes are atomic.** Records and counters go through a temp file +
  :func:`os.replace`, so concurrent readers never see half a record.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

from repro.store.keys import SCHEMA_VERSION
from repro.store.records import StoredResult

#: Environment variable naming the default store directory.
STORE_ENV_VAR = "REPRO_STORE"


class ResultStoreWarning(UserWarning):
    """Raised (as a warning) when a store record cannot be used."""


def default_store_root() -> Optional[str]:
    """The store directory named by ``$REPRO_STORE``, if any."""
    root = os.environ.get(STORE_ENV_VAR, "").strip()
    return root or None


class ResultStore:
    """A directory of content-addressed simulation results."""

    def __init__(self, root: Union[str, Path]):
        """Open (without creating) the store rooted at ``root``."""
        self.root = Path(root)
        self._counters: Optional[Dict[str, int]] = None

    # -- paths -------------------------------------------------------------

    @property
    def objects_dir(self) -> Path:
        """Directory holding the per-key record files."""
        return self.root / "objects"

    @property
    def meta_path(self) -> Path:
        """Path of the counters/metadata file."""
        return self.root / "store.json"

    def record_path(self, key: str) -> Path:
        """Path of one record (two-level fan-out, git-object style)."""
        return self.objects_dir / key[:2] / f"{key}.json"

    # -- counters ----------------------------------------------------------

    def _load_counters(self) -> Dict[str, int]:
        if self._counters is None:
            counters = {"puts": 0, "hits": 0, "misses": 0}
            try:
                data = json.loads(self.meta_path.read_text())
                for name in counters:
                    counters[name] = int(data.get(name, 0))
            except FileNotFoundError:
                pass
            except (OSError, ValueError) as exc:
                warnings.warn(
                    f"unreadable store metadata {self.meta_path}: {exc}",
                    ResultStoreWarning, stacklevel=3,
                )
            self._counters = counters
        return self._counters

    def _bump(self, counter: str) -> None:
        counters = self._load_counters()
        counters[counter] += 1
        self._write_json(self.meta_path,
                         dict(counters, schema=SCHEMA_VERSION))

    @staticmethod
    def _write_json(path: Path, payload: dict) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, indent=1, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- record access -----------------------------------------------------

    def _read_record(self, key: str) -> Optional[dict]:
        """Parse one record file; warn and return None if unusable."""
        path = self.record_path(key)
        try:
            data = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as exc:
            warnings.warn(
                f"skipping corrupted store record {path}: {exc}",
                ResultStoreWarning, stacklevel=3,
            )
            return None
        if not isinstance(data, dict) or data.get("schema") != SCHEMA_VERSION:
            return None
        return data

    def contains(self, key: str) -> bool:
        """Whether a usable record exists (no counter side effects)."""
        return self._read_record(key) is not None

    def get(self, key: str) -> Optional[StoredResult]:
        """Look up a result; counts a hit or a miss."""
        data = self._read_record(key)
        if data is None:
            self._bump("misses")
            return None
        try:
            result = StoredResult.from_dict(data["result"])
        except (KeyError, ValueError) as exc:
            warnings.warn(
                f"skipping malformed store record {self.record_path(key)}: "
                f"{exc}", ResultStoreWarning, stacklevel=2,
            )
            self._bump("misses")
            return None
        self._bump("hits")
        return result

    def put(
        self,
        key: str,
        result: StoredResult,
        provenance: Optional[dict] = None,
        tags: Optional[dict] = None,
    ) -> Path:
        """Record one simulated point (counts as an executed simulation)."""
        record = {
            "key": key,
            "schema": SCHEMA_VERSION,
            "provenance": provenance or {},
            "tags": tags or {},
            "result": result.to_dict(),
        }
        path = self.record_path(key)
        self._write_json(path, record)
        self._bump("puts")
        return path

    def tag(self, key: str, campaign: str, meta: Optional[dict] = None) -> bool:
        """Stamp a campaign tag onto an existing record.

        Tags are how the Experiment Book finds a campaign's points from
        store contents alone. Returns False when the record is missing.
        """
        data = self._read_record(key)
        if data is None:
            return False
        tags = data.setdefault("tags", {})
        existing = tags.get(campaign)
        if existing == (meta or {}):
            return True
        tags[campaign] = meta or {}
        self._write_json(self.record_path(key), data)
        return True

    # -- inspection --------------------------------------------------------

    def keys(self) -> Iterator[str]:
        """All record keys on disk (any schema), sorted."""
        if not self.objects_dir.is_dir():
            return iter(())
        return iter(sorted(
            path.stem
            for path in self.objects_dir.glob("*/*.json")
        ))

    def records(self) -> Iterator[Tuple[str, dict]]:
        """(key, record) pairs for every usable current-schema record."""
        for key in self.keys():
            data = self._read_record(key)
            if data is not None:
                yield key, data

    def stats(self) -> Dict[str, object]:
        """Counters plus on-disk footprint."""
        counters = dict(self._load_counters())
        records = 0
        stale = 0
        nbytes = 0
        if self.objects_dir.is_dir():
            for path in self.objects_dir.glob("*/*.json"):
                nbytes += path.stat().st_size
                try:
                    schema = json.loads(path.read_text()).get("schema")
                except (OSError, ValueError):
                    schema = None
                if schema == SCHEMA_VERSION:
                    records += 1
                else:
                    stale += 1
        counters.update(
            root=str(self.root), schema=SCHEMA_VERSION,
            records=records, stale_records=stale, bytes=nbytes,
        )
        return counters

    def gc(self, remove_all: bool = False) -> int:
        """Remove stale (wrong-schema or unreadable) records.

        ``remove_all=True`` empties the store instead. Returns the
        number of record files removed.
        """
        removed = 0
        if not self.objects_dir.is_dir():
            return removed
        for path in sorted(self.objects_dir.glob("*/*.json")):
            if not remove_all:
                try:
                    if json.loads(path.read_text()).get("schema") == SCHEMA_VERSION:
                        continue
                except (OSError, ValueError):
                    pass
            path.unlink()
            removed += 1
        return removed

    def export(self) -> Iterator[str]:
        """Each usable record as one JSON line (``repro store export``)."""
        for _key, record in self.records():
            yield json.dumps(record, sort_keys=True)
