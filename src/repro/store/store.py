"""The content-addressed, on-disk result store.

Layout (all JSON, human-inspectable)::

    <root>/
      store.json              # schema version + lifetime counters
      store.lock              # inter-process metadata lock
      quarantine.json         # points that exhausted campaign retries
      checkpoints/<name>.json # per-campaign progress checkpoints
      objects/<k[:2]>/<k>.json  # one record per point key

Each record carries the key, the key schema version, a provenance
block (the canonical key components: config, cluster, jobconf, cost
model, fault plan, resolved interconnect), campaign tags added by
:mod:`repro.campaign`, and the :class:`~repro.store.records.StoredResult`
payload.

Design points:

* **Warm starts are observable.** The store keeps lifetime ``puts``
  (simulations executed and recorded), ``hits`` and ``misses`` counters
  in ``store.json``; ``repro store stats`` prints them, so "the second
  run executed 0 simulations" is a checkable claim (``puts`` did not
  move).
* **Counters survive concurrency.** The counter read-modify-write runs
  under an inter-process :class:`~repro.store.locks.FileLock`, so two
  concurrent ``repro campaign run`` processes never lose increments
  (asserted by a multiprocess stress test).
* **Corruption is a warning, not a crash.** A record that fails to
  parse or validate is skipped with a :class:`ResultStoreWarning`; the
  point simply re-simulates (and :meth:`ResultStore.gc` or
  ``repro store verify --gc`` can sweep the bad file). A truncated
  ``store.json`` reinitializes the counters with a warning.
* **Unwritable roots degrade, they don't abort.** The first failed
  write (read-only filesystem, disk full) flips the store into a
  read-only mode: it warns once, keeps serving reads, and silently
  drops further writes so a long campaign keeps simulating.
* **Schema bumps invalidate.** Records whose ``schema`` differs from
  :data:`~repro.store.keys.SCHEMA_VERSION` never hit; ``gc`` removes
  them.
* **Writes are atomic.** Records and counters go through a temp file +
  :func:`os.replace`, so concurrent readers never see half a record.
* **Integrity is checkable.** :meth:`ResultStore.verify` is an fsck:
  every record must parse, match its filename key, match the schema,
  carry a loadable result payload, and (when provenance is present)
  hash back to its own key.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.store.keys import SCHEMA_VERSION, stable_digest
from repro.store.locks import store_lock
from repro.store.records import StoredResult

#: Environment variable naming the default store directory.
STORE_ENV_VAR = "REPRO_STORE"

#: Filename of the quarantine ledger inside a store root.
QUARANTINE_FILENAME = "quarantine.json"

#: Directory of per-campaign checkpoint files inside a store root.
CHECKPOINT_DIRNAME = "checkpoints"


class ResultStoreWarning(UserWarning):
    """Raised (as a warning) when a store record cannot be used."""


def default_store_root() -> Optional[str]:
    """The store directory named by ``$REPRO_STORE``, if any."""
    root = os.environ.get(STORE_ENV_VAR, "").strip()
    return root or None


def atomic_write_json(path: Path, payload: dict) -> None:
    """Publish ``payload`` at ``path`` via temp file + ``os.replace``."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


@dataclass
class VerifyProblem:
    """One integrity failure found by :meth:`ResultStore.verify`."""

    path: Path
    key: str
    problem: str

    def render(self) -> str:
        """One-line human form (used by ``repro store verify``)."""
        return f"{self.key[:16] or self.path.name}  {self.problem}"


@dataclass
class VerifyReport:
    """What a store fsck pass found (and optionally swept)."""

    checked: int = 0
    ok: int = 0
    meta_ok: bool = True
    problems: List[VerifyProblem] = field(default_factory=list)
    swept: int = 0

    @property
    def clean(self) -> bool:
        """Whether every record (and the metadata file) verified."""
        return self.meta_ok and not self.problems


class ResultStore:
    """A directory of content-addressed simulation results."""

    def __init__(self, root: Union[str, Path]):
        """Open (without creating) the store rooted at ``root``."""
        self.root = Path(root)
        self._counters: Optional[Dict[str, int]] = None
        #: Once True, every write is silently dropped (set on the first
        #: failed write: read-only filesystem, disk full...).
        self._read_only = False

    # -- paths -------------------------------------------------------------

    @property
    def objects_dir(self) -> Path:
        """Directory holding the per-key record files."""
        return self.root / "objects"

    @property
    def meta_path(self) -> Path:
        """Path of the counters/metadata file."""
        return self.root / "store.json"

    @property
    def quarantine_path(self) -> Path:
        """Path of the quarantine ledger."""
        return self.root / QUARANTINE_FILENAME

    def checkpoint_path(self, campaign: str) -> Path:
        """Path of one campaign's progress checkpoint."""
        return self.root / CHECKPOINT_DIRNAME / f"{campaign}.json"

    def record_path(self, key: str) -> Path:
        """Path of one record (two-level fan-out, git-object style)."""
        return self.objects_dir / key[:2] / f"{key}.json"

    # -- degradation -------------------------------------------------------

    @property
    def read_only(self) -> bool:
        """Whether the store has degraded to read-only mode."""
        return self._read_only

    def _degrade(self, exc: OSError) -> None:
        """Flip into read-only mode (warning once, never raising)."""
        if not self._read_only:
            warnings.warn(
                f"store {self.root} is unwritable ({exc}); continuing in "
                f"read-only mode — results are NOT being recorded",
                ResultStoreWarning, stacklevel=4,
            )
            self._read_only = True

    # -- counters ----------------------------------------------------------

    def _read_counters_file(self) -> Dict[str, int]:
        """Fresh tolerant read of ``store.json`` (never raises)."""
        counters = {"puts": 0, "hits": 0, "misses": 0}
        try:
            raw = self.meta_path.read_text()
        except FileNotFoundError:
            return counters
        except OSError as exc:
            warnings.warn(
                f"unreadable store metadata {self.meta_path}: {exc}",
                ResultStoreWarning, stacklevel=4,
            )
            return counters
        try:
            data = json.loads(raw)
            if not isinstance(data, dict):
                raise ValueError("metadata is not a JSON object")
            for name in counters:
                counters[name] = int(data.get(name, 0))
        except (ValueError, TypeError) as exc:
            # Truncated/corrupt store.json (e.g. a process killed before
            # the os.replace landed on an exotic filesystem): warn and
            # reinitialize — the next write repairs the file.
            warnings.warn(
                f"corrupt store metadata {self.meta_path} ({exc}); "
                f"reinitializing counters",
                ResultStoreWarning, stacklevel=4,
            )
            counters = {"puts": 0, "hits": 0, "misses": 0}
        return counters

    def _load_counters(self) -> Dict[str, int]:
        if self._counters is None:
            self._counters = self._read_counters_file()
        return self._counters

    def _bump_many(self, deltas: Dict[str, int]) -> None:
        """Add several counter deltas under one lock acquisition.

        Batched campaign stages funnel a whole batch's worth of
        hits/misses/puts through here, turning O(points) locked
        read-modify-writes into one.
        """
        deltas = {name: n for name, n in deltas.items() if n}
        if not deltas or self._read_only:
            return
        try:
            with store_lock(self.root):
                counters = self._read_counters_file()
                for name, n in deltas.items():
                    counters[name] = counters.get(name, 0) + n
                atomic_write_json(self.meta_path,
                                  dict(counters, schema=SCHEMA_VERSION))
                self._counters = counters
        except OSError as exc:
            self._degrade(exc)

    def _bump(self, counter: str) -> None:
        """Increment one lifetime counter (locked read-modify-write)."""
        self._bump_many({counter: 1})

    @staticmethod
    def _write_json(path: Path, payload: dict) -> None:
        atomic_write_json(path, payload)

    # -- record access -----------------------------------------------------

    def _read_record(self, key: str) -> Optional[dict]:
        """Parse one record file; warn and return None if unusable."""
        path = self.record_path(key)
        try:
            data = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as exc:
            warnings.warn(
                f"skipping corrupted store record {path}: {exc}",
                ResultStoreWarning, stacklevel=3,
            )
            return None
        if not isinstance(data, dict) or data.get("schema") != SCHEMA_VERSION:
            return None
        return data

    def contains(self, key: str) -> bool:
        """Whether a usable record exists (no counter side effects)."""
        return self._read_record(key) is not None

    def get(self, key: str) -> Optional[StoredResult]:
        """Look up a result; counts a hit or a miss."""
        data = self._read_record(key)
        if data is None:
            self._bump("misses")
            return None
        try:
            result = StoredResult.from_dict(data["result"])
        except (KeyError, ValueError) as exc:
            warnings.warn(
                f"skipping malformed store record {self.record_path(key)}: "
                f"{exc}", ResultStoreWarning, stacklevel=2,
            )
            self._bump("misses")
            return None
        self._bump("hits")
        return result

    def get_batch(self, keys: Iterable[str]) -> List[Optional[StoredResult]]:
        """Look up many results; counts every hit/miss in one bump.

        Semantically equivalent to ``[self.get(k) for k in keys]`` —
        same results, same warnings, same final counter values — but
        the counter file is locked and rewritten once instead of once
        per key.
        """
        results: List[Optional[StoredResult]] = []
        hits = 0
        misses = 0
        for key in keys:
            data = self._read_record(key)
            result = None
            if data is not None:
                try:
                    result = StoredResult.from_dict(data["result"])
                except (KeyError, ValueError) as exc:
                    warnings.warn(
                        f"skipping malformed store record "
                        f"{self.record_path(key)}: {exc}",
                        ResultStoreWarning, stacklevel=2,
                    )
            if result is None:
                misses += 1
            else:
                hits += 1
            results.append(result)
        self._bump_many({"hits": hits, "misses": misses})
        return results

    def put(
        self,
        key: str,
        result: StoredResult,
        provenance: Optional[dict] = None,
        tags: Optional[dict] = None,
    ) -> Path:
        """Record one simulated point (counts as an executed simulation).

        In read-only degradation mode the write is dropped silently
        (the path is still returned so callers never special-case it).
        """
        record = {
            "key": key,
            "schema": SCHEMA_VERSION,
            "provenance": provenance or {},
            "tags": tags or {},
            "result": result.to_dict(),
        }
        path = self.record_path(key)
        if self._read_only:
            return path
        try:
            atomic_write_json(path, record)
        except OSError as exc:
            self._degrade(exc)
            return path
        self._bump("puts")
        return path

    def put_many(
        self,
        entries: Iterable[Tuple[str, StoredResult, Optional[dict],
                                Optional[dict]]],
    ) -> List[Path]:
        """Record many points with one counter bump at the end.

        ``entries`` yields ``(key, result, provenance, tags)`` tuples.
        Writing campaign tags at put time makes a later
        :meth:`tag`/:meth:`tag_many` of the same ``{campaign: meta}``
        a read-only no-op (records are dumped with the same sorted-key
        formatting either way, so the bytes are identical). Each record
        file is still written atomically on its own (readers never see
        a half record); only the ``puts`` counter read-modify-write is
        coalesced. A failed write degrades the store exactly like
        :meth:`put` and skips the remaining writes.
        """
        paths: List[Path] = []
        written = 0
        for key, result, provenance, tags in entries:
            record = {
                "key": key,
                "schema": SCHEMA_VERSION,
                "provenance": provenance or {},
                "tags": tags or {},
                "result": result.to_dict(),
            }
            path = self.record_path(key)
            paths.append(path)
            if self._read_only:
                continue
            try:
                atomic_write_json(path, record)
            except OSError as exc:
                self._degrade(exc)
                continue
            written += 1
        self._bump_many({"puts": written})
        return paths

    def tag(self, key: str, campaign: str, meta: Optional[dict] = None) -> bool:
        """Stamp a campaign tag onto an existing record.

        Tags are how the Experiment Book finds a campaign's points from
        store contents alone. Returns False when the record is missing.
        The record read-modify-write runs under the store lock so two
        concurrent campaigns never drop each other's tags.
        """
        if self._read_only:
            return self.contains(key)
        try:
            with store_lock(self.root):
                data = self._read_record(key)
                if data is None:
                    return False
                tags = data.setdefault("tags", {})
                existing = tags.get(campaign)
                if existing == (meta or {}):
                    return True
                tags[campaign] = meta or {}
                atomic_write_json(self.record_path(key), data)
                return True
        except OSError as exc:
            self._degrade(exc)
            return self.contains(key)

    def tag_many(
        self,
        entries: Iterable[Tuple[str, str, Optional[dict]]],
    ) -> int:
        """Stamp many campaign tags under one store-lock acquisition.

        ``entries`` yields ``(key, campaign, meta)`` triples. Returns
        the number of records that carry the tag afterwards (missing
        records are skipped, like :meth:`tag` returning False).
        """
        entries = list(entries)
        if self._read_only:
            return sum(1 for key, _c, _m in entries if self.contains(key))
        tagged = 0
        try:
            with store_lock(self.root):
                for key, campaign, meta in entries:
                    data = self._read_record(key)
                    if data is None:
                        continue
                    tags = data.setdefault("tags", {})
                    if tags.get(campaign) != (meta or {}):
                        tags[campaign] = meta or {}
                        atomic_write_json(self.record_path(key), data)
                    tagged += 1
        except OSError as exc:
            self._degrade(exc)
        return tagged

    # -- quarantine ledger -------------------------------------------------

    def quarantine(self) -> Dict[str, dict]:
        """The quarantine ledger: point key → failure entry."""
        try:
            data = json.loads(self.quarantine_path.read_text())
        except FileNotFoundError:
            return {}
        except (OSError, ValueError) as exc:
            warnings.warn(
                f"unreadable quarantine ledger {self.quarantine_path}: "
                f"{exc}; treating as empty",
                ResultStoreWarning, stacklevel=3,
            )
            return {}
        entries = data.get("points") if isinstance(data, dict) else None
        return entries if isinstance(entries, dict) else {}

    def quarantine_add(self, key: str, entry: dict) -> None:
        """Record one exhausted point in the ledger (locked RMW)."""
        if self._read_only:
            return
        try:
            with store_lock(self.root):
                entries = self.quarantine()
                entries[key] = entry
                atomic_write_json(self.quarantine_path,
                                  {"schema": SCHEMA_VERSION,
                                   "points": entries})
        except OSError as exc:
            self._degrade(exc)

    def quarantine_clear(self, keys: Optional[Iterable[str]] = None) -> int:
        """Drop ledger entries (all of them, or just ``keys``).

        Returns the number of entries removed. Used by
        ``repro campaign resume`` so quarantined points get a fresh set
        of attempts.
        """
        if self._read_only:
            return 0
        try:
            with store_lock(self.root):
                entries = self.quarantine()
                if keys is None:
                    removed = len(entries)
                    entries = {}
                else:
                    removed = 0
                    for key in keys:
                        if entries.pop(key, None) is not None:
                            removed += 1
                if removed:
                    atomic_write_json(self.quarantine_path,
                                      {"schema": SCHEMA_VERSION,
                                       "points": entries})
                return removed
        except OSError as exc:
            self._degrade(exc)
            return 0

    # -- campaign checkpoints ----------------------------------------------

    def write_checkpoint(self, campaign: str, payload: dict) -> Optional[Path]:
        """Publish one campaign's progress checkpoint atomically."""
        path = self.checkpoint_path(campaign)
        if self._read_only:
            return None
        try:
            atomic_write_json(path, dict(payload, schema=SCHEMA_VERSION))
        except OSError as exc:
            self._degrade(exc)
            return None
        return path

    def read_checkpoint(self, campaign: str) -> Optional[dict]:
        """Load one campaign's checkpoint, if present and parsable."""
        try:
            data = json.loads(self.checkpoint_path(campaign).read_text())
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as exc:
            warnings.warn(
                f"unreadable checkpoint for campaign {campaign!r}: {exc}",
                ResultStoreWarning, stacklevel=3,
            )
            return None
        return data if isinstance(data, dict) else None

    # -- inspection --------------------------------------------------------

    def keys(self) -> Iterator[str]:
        """All record keys on disk (any schema), sorted."""
        if not self.objects_dir.is_dir():
            return iter(())
        return iter(sorted(
            path.stem
            for path in self.objects_dir.glob("*/*.json")
        ))

    def records(self) -> Iterator[Tuple[str, dict]]:
        """(key, record) pairs for every usable current-schema record."""
        for key in self.keys():
            data = self._read_record(key)
            if data is not None:
                yield key, data

    def stats(self) -> Dict[str, object]:
        """Counters plus on-disk footprint.

        Counters are re-read from disk so a long-lived handle sees
        bumps made by concurrent processes, not its own stale cache.
        """
        self._counters = self._read_counters_file()
        counters = dict(self._counters)
        records = 0
        stale = 0
        nbytes = 0
        if self.objects_dir.is_dir():
            for path in self.objects_dir.glob("*/*.json"):
                nbytes += path.stat().st_size
                try:
                    schema = json.loads(path.read_text()).get("schema")
                except (OSError, ValueError):
                    schema = None
                if schema == SCHEMA_VERSION:
                    records += 1
                else:
                    stale += 1
        counters.update(
            root=str(self.root), schema=SCHEMA_VERSION,
            records=records, stale_records=stale, bytes=nbytes,
            quarantined=len(self.quarantine()),
        )
        return counters

    def verify(self, gc: bool = False) -> VerifyReport:
        """Fsck every record; optionally sweep the ones that fail.

        Checks, per record file: JSON parses to an object, the embedded
        ``key`` matches the filename, ``schema`` matches
        :data:`SCHEMA_VERSION`, the result payload loads as a
        :class:`StoredResult`, and — when a provenance block is present
        — the provenance hashes back to the record's own key (the
        content-address actually addresses the content). ``gc=True``
        unlinks every failing file (exactly the set that would
        otherwise warn as :class:`ResultStoreWarning` or never hit).
        """
        report = VerifyReport()
        meta = None
        if self.meta_path.exists():
            try:
                meta = json.loads(self.meta_path.read_text())
                if not isinstance(meta, dict):
                    raise ValueError("metadata is not a JSON object")
            except (OSError, ValueError):
                report.meta_ok = False
        paths = (sorted(self.objects_dir.glob("*/*.json"))
                 if self.objects_dir.is_dir() else [])
        for path in paths:
            report.checked += 1
            problem = self._verify_one(path)
            if problem is None:
                report.ok += 1
                continue
            report.problems.append(
                VerifyProblem(path=path, key=path.stem, problem=problem))
            if gc:
                try:
                    path.unlink()
                    report.swept += 1
                except OSError:  # pragma: no cover - races/permissions
                    pass
        return report

    @staticmethod
    def _verify_one(path: Path) -> Optional[str]:
        """The integrity problem of one record file, or None if sound."""
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            return f"unparsable: {exc}"
        if not isinstance(data, dict):
            return "not a JSON object"
        if data.get("key") != path.stem:
            return (f"key mismatch: record says "
                    f"{str(data.get('key'))[:16]!r}")
        if data.get("schema") != SCHEMA_VERSION:
            return (f"stale schema {data.get('schema')!r} "
                    f"(current: {SCHEMA_VERSION})")
        try:
            StoredResult.from_dict(data["result"])
        except (KeyError, TypeError, ValueError) as exc:
            return f"malformed result payload: {exc}"
        provenance = data.get("provenance")
        if provenance:
            try:
                digest = stable_digest(provenance)
            except TypeError as exc:
                return f"unhashable provenance: {exc}"
            if digest != path.stem:
                return "provenance does not hash to the record key"
        return None

    def gc(self, remove_all: bool = False) -> int:
        """Remove stale (wrong-schema or unreadable) records.

        ``remove_all=True`` empties the store instead. Returns the
        number of record files removed.
        """
        removed = 0
        if not self.objects_dir.is_dir():
            return removed
        for path in sorted(self.objects_dir.glob("*/*.json")):
            if not remove_all:
                try:
                    if json.loads(path.read_text()).get("schema") == SCHEMA_VERSION:
                        continue
                except (OSError, ValueError):
                    pass
            path.unlink()
            removed += 1
        return removed

    def export(self) -> Iterator[str]:
        """Each usable record as one JSON line (``repro store export``)."""
        for _key, record in self.records():
            yield json.dumps(record, sort_keys=True)
