"""Simulated Hadoop MapReduce framework (the paper's substrate).

The paper measures Apache Hadoop 1.2.1 (MRv1) and 2.x (YARN), stock
and RDMA-enhanced (MRoIB), on two physical clusters. This subpackage
substitutes a discrete-event model of those systems:

* :mod:`repro.hadoop.cluster` — testbed hardware specs (Cluster A/B).
* :mod:`repro.hadoop.costmodel` — calibrated per-record/byte CPU costs.
* :mod:`repro.hadoop.job` — JobConf (io.sort.mb, slowstart, copies...).
* :mod:`repro.hadoop.node` — slave runtime: CPU tracking, page-cache
  aware storage.
* :mod:`repro.hadoop.maptask` / :mod:`repro.hadoop.shuffle` /
  :mod:`repro.hadoop.reducetask` — the task pipeline.
* :mod:`repro.hadoop.runtime` — the shared :class:`Runtime` protocol
  (task lifecycle, waves, speculation) and the runtime registry.
* :mod:`repro.hadoop.jobtracker` / :mod:`repro.hadoop.yarn` — MRv1
  slots vs YARN containers, as thin :class:`Runtime` policies.
* :mod:`repro.hadoop.rdma` — the MRoIB case-study transport + ablations.
* :mod:`repro.hadoop.simulation` — :func:`run_simulated_job`.
"""

from repro.hadoop.cluster import (
    ClusterSpec,
    NodeSpec,
    STAMPEDE_NODE,
    WESTMERE_NODE,
    cluster_a,
    cluster_b,
)
from repro.hadoop.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.hadoop.counters import counters_dict, format_counters, job_counters
from repro.hadoop.events_log import JobEvent, JobEventLog
from repro.hadoop.history import history_json, job_history, render_timeline
from repro.hadoop.job import DEFAULT_JOB_CONF, JobConf, MRV1, YARN
from repro.hadoop.maptask import MapOutput, MapTask, MapTaskStats
from repro.hadoop.node import SimNode, StorageService
from repro.hadoop.reducetask import ReduceTask, ReduceTaskStats
from repro.hadoop.result import SimJobResult
from repro.hadoop.rdma import (
    mroib_transport,
    overlap_only_transport,
    zero_copy_only_transport,
)
from repro.hadoop.shuffle import MapOutputRegistry, ReducerShuffle, ShuffleStats
from repro.hadoop.autotune import TuningResult, grid_search
from repro.hadoop.simulation import JOB_OVERHEAD, TaskFailedError, run_simulated_job
from repro.hadoop.multijob import (
    ConcurrentJobResult,
    JobRequest,
    run_concurrent_jobs,
)
from repro.hadoop.runtime import (
    JobExecution,
    Runtime,
    available_runtimes,
    create_runtime,
    register_runtime,
)
from repro.hadoop.jobtracker import JobTrackerScheduler
from repro.hadoop.yarn import YarnScheduler

__all__ = [
    "ClusterSpec",
    "ConcurrentJobResult",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "DEFAULT_JOB_CONF",
    "JOB_OVERHEAD",
    "JobConf",
    "JobEvent",
    "JobEventLog",
    "JobExecution",
    "JobRequest",
    "JobTrackerScheduler",
    "MRV1",
    "MapOutput",
    "MapOutputRegistry",
    "MapTask",
    "MapTaskStats",
    "NodeSpec",
    "ReduceTask",
    "ReduceTaskStats",
    "ReducerShuffle",
    "Runtime",
    "STAMPEDE_NODE",
    "ShuffleStats",
    "SimJobResult",
    "SimNode",
    "StorageService",
    "TaskFailedError",
    "TuningResult",
    "WESTMERE_NODE",
    "YARN",
    "YarnScheduler",
    "available_runtimes",
    "cluster_a",
    "cluster_b",
    "counters_dict",
    "create_runtime",
    "format_counters",
    "grid_search",
    "history_json",
    "job_counters",
    "job_history",
    "mroib_transport",
    "overlap_only_transport",
    "register_runtime",
    "render_timeline",
    "run_concurrent_jobs",
    "run_simulated_job",
    "zero_copy_only_transport",
]
