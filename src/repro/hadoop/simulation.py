"""The simulated-job driver: wire everything together and run.

:func:`run_simulated_job` is the package's main performance entry
point: given a :class:`~repro.core.config.BenchmarkConfig` (which names
the network), a cluster, and a :class:`~repro.hadoop.job.JobConf`, it
builds the discrete-event world (fabric, nodes, scheduler), runs the
job, and returns a :class:`~repro.hadoop.result.SimJobResult` whose
``execution_time`` is the paper's reported metric.

Beyond the paper's baseline behaviour the driver also supports the
JobConf's fault-tolerance knobs:

* **failure injection** (``task_failure_probability``) — a seeded,
  per-(task, attempt) coin decides whether an attempt's output is lost;
  failed attempts are re-executed up to ``max_task_attempts``;
* **speculative execution** — once most maps have finished, stragglers
  get a backup attempt on another node; the first finisher wins and the
  loser is killed (its slot and CPU released deterministically).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.core.config import BenchmarkConfig
from repro.core.matrix import ShuffleMatrix, compute_shuffle_matrix
from repro.hadoop.cluster import ClusterSpec, cluster_a
from repro.hadoop.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.hadoop.events_log import JobEventLog
from repro.hadoop.job import DEFAULT_JOB_CONF, JobConf, MRV1
from repro.hadoop.jobtracker import JobTrackerScheduler
from repro.hadoop.maptask import MapTask
from repro.hadoop.node import SimNode
from repro.hadoop.reducetask import ReduceTask
from repro.hadoop.result import SimJobResult
from repro.hadoop.shuffle import MapOutputRegistry
from repro.hadoop.yarn import YarnScheduler
from repro.net.fabric import NetworkFabric
from repro.net.interconnect import get_interconnect
from repro.net.transport import TransportModel, transport_for
from repro.sim.events import AllOf
from repro.sim.kernel import Simulator
from repro.sim.monitor import ResourceMonitor

#: Fixed job bring-up/teardown overhead (submission, setup/cleanup
#: tasks) added to the reported execution time, seconds.
JOB_OVERHEAD = 4.0

#: Speculation policy: consider backups once this fraction of maps is
#: done, for tasks running this factor beyond the mean duration.
SPECULATION_THRESHOLD = 0.75
SPECULATION_SLOWDOWN = 1.25


class TaskFailedError(RuntimeError):
    """A task exhausted ``max_task_attempts``."""


def _attempt_fails(jobconf: JobConf, seed: int, kind: str, task_id: int,
                   attempt: int) -> bool:
    """Seeded per-(task, attempt) failure coin (order-independent)."""
    if jobconf.task_failure_probability <= 0.0:
        return False
    key = (seed * 1_000_003 + task_id * 101 + attempt * 7
           + (0 if kind == "map" else 499_979))
    return random.Random(key).random() < jobconf.task_failure_probability


def run_simulated_job(
    config: BenchmarkConfig,
    cluster: Optional[ClusterSpec] = None,
    jobconf: Optional[JobConf] = None,
    cost_model: Optional[CostModel] = None,
    transport: Optional[TransportModel] = None,
    monitor_interval: Optional[float] = None,
    matrix: Optional[ShuffleMatrix] = None,
) -> SimJobResult:
    """Simulate one micro-benchmark job end to end.

    Parameters
    ----------
    config:
        The benchmark parameters (pattern, sizes, task counts, network).
    cluster:
        Hardware; defaults to the paper's Cluster A with 4 slaves.
    jobconf:
        Framework knobs; defaults to Hadoop 1.2.1 defaults (MRv1).
    cost_model:
        CPU cost calibration; defaults to :data:`DEFAULT_COST_MODEL`.
    transport:
        Shuffle transport override (used by the RDMA ablations);
        defaults to the transport the interconnect implies.
    monitor_interval:
        If set, sample slave0's CPU % and NIC MB/s every that many
        simulated seconds (the Fig. 7 traces).
    matrix:
        Pre-computed shuffle matrix (reused across a sweep); defaults
        to computing it from ``config``.
    """
    cluster = cluster if cluster is not None else cluster_a()
    jobconf = jobconf if jobconf is not None else DEFAULT_JOB_CONF
    base_costs = cost_model if cost_model is not None else DEFAULT_COST_MODEL
    interconnect = get_interconnect(config.network)
    transport = transport if transport is not None else transport_for(interconnect)
    costs = base_costs.scaled(cluster.node.clock_ghz)
    if matrix is None:
        matrix = compute_shuffle_matrix(config)
    elif matrix.config != config:
        raise ValueError("supplied matrix was computed for a different config")

    sim = Simulator()
    uplink = None
    if cluster.racks > 1:
        uplink = cluster.rack_uplink_bandwidth(
            interconnect.sustained_bandwidth
        )
    fabric = NetworkFabric(sim, interconnect, rack_uplink_bandwidth=uplink)
    nodes: List[SimNode] = [
        SimNode(sim, name, cluster.node, fabric, rack=cluster.rack_of(i))
        for i, name in enumerate(cluster.slave_names())
    ]

    if jobconf.version == MRV1:
        scheduler = JobTrackerScheduler(sim, nodes, jobconf, costs)
    else:
        scheduler = YarnScheduler(sim, nodes, jobconf, costs)
    scheduler.job_started()

    events = JobEventLog()
    registry = MapOutputRegistry(sim, config.num_maps)

    monitor = None
    if monitor_interval is not None:
        monitor = ResourceMonitor(sim, interval=monitor_interval)
        slave0 = nodes[0]
        monitor.register_gauge(
            "cpu_pct",
            lambda: 100.0 * slave0.total_cpu_level() / slave0.spec.cores,
        )
        monitor.register_rate("net_rx_mb_s", slave0.fabric_node.rx, scale=1e-6)
        monitor.register_rate("net_tx_mb_s", slave0.fabric_node.tx, scale=1e-6)
        monitor.register_rate(
            "disk_mb_s", slave0.storage.disk.bytes_served, scale=1e-6
        )
        monitor.install()

    # --- map phase --------------------------------------------------------
    slowstart_target = max(
        0, int(round(jobconf.reduce_slowstart * config.num_maps))
    )
    slowstart_fired = sim.event(name="slowstart")
    if slowstart_target == 0:
        slowstart_fired.succeed()
        events.record(sim.now, JobEventLog.SLOWSTART, "0 maps required")

    winning_map: Dict[int, MapTask] = {}
    running_since: Dict[int, float] = {}
    running_attempt: Dict[int, "Process"] = {}  # noqa: F821
    completed_durations: List[float] = []
    speculated: set = set()

    def make_map_task(map_id: int, node: SimNode) -> MapTask:
        return MapTask(
            map_id=map_id,
            node=node,
            segment_bytes=matrix.bytes[map_id],
            segment_records=matrix.records[map_id],
            jobconf=jobconf,
            costs=costs,
            start_extra=scheduler.task_start_extra,
        )

    def register_map(map_id: int, task: MapTask) -> None:
        if map_id in winning_map:
            return
        winning_map[map_id] = task
        registry.register(task.output)
        events.record(sim.now, JobEventLog.MAP_FINISH, f"map{map_id}")
        completed_durations.append(task.stats.duration)
        loser = running_attempt.pop(map_id, None)
        if loser is not None and loser.is_alive:
            loser.kill()
        if (len(winning_map) >= slowstart_target
                and not slowstart_fired.triggered):
            slowstart_fired.succeed()
            events.record(sim.now, JobEventLog.SLOWSTART,
                          f"{slowstart_target} maps done")

    def run_map(map_id: int, node: SimNode, first_attempt: int = 0):
        for attempt in range(first_attempt, jobconf.max_task_attempts):
            if map_id in winning_map:
                return
            grant = scheduler.acquire_map(node)
            yield grant
            if map_id in winning_map:
                scheduler.release_map(node)
                return
            yield sim.timeout(costs.heartbeat_interval * 0.5)
            events.record(sim.now, JobEventLog.MAP_START,
                          f"map{map_id} attempt{attempt}")
            task = make_map_task(map_id, node)
            running_since.setdefault(map_id, sim.now)
            task_proc = sim.process(task.run(), name=f"map{map_id}.{attempt}")
            if map_id not in running_attempt:
                running_attempt[map_id] = task_proc
            try:
                yield task_proc
            finally:
                scheduler.release_map(node)
            if task_proc.value is None:
                return  # killed: a speculative sibling won
            if _attempt_fails(jobconf, config.seed, "map", map_id, attempt):
                events.record(sim.now, JobEventLog.TASK_FAILED,
                              f"map{map_id} attempt{attempt} lost output")
                # running_since is intentionally kept: speculation judges
                # elapsed time since the FIRST attempt, so repeatedly
                # failing tasks qualify as stragglers.
                running_attempt.pop(map_id, None)
                continue
            register_map(map_id, task)
            return
        raise TaskFailedError(
            f"map {map_id} failed {jobconf.max_task_attempts} attempts"
        )

    map_procs = [
        sim.process(run_map(m, scheduler.map_node(m)), name=f"sched-map{m}")
        for m in range(config.num_maps)
    ]

    speculative_procs: List["Process"] = []  # noqa: F821
    if jobconf.speculative_execution:

        def speculation_watcher():
            while len(winning_map) < config.num_maps:
                yield sim.timeout(costs.heartbeat_interval)
                if len(winning_map) < SPECULATION_THRESHOLD * config.num_maps:
                    continue
                if not completed_durations:
                    continue
                mean_duration = (
                    sum(completed_durations) / len(completed_durations)
                )
                for map_id in range(config.num_maps):
                    if map_id in winning_map or map_id in speculated:
                        continue
                    started = running_since.get(map_id)
                    if started is None:
                        continue
                    if sim.now - started > SPECULATION_SLOWDOWN * mean_duration:
                        speculated.add(map_id)
                        backup_node = scheduler.map_node(map_id + 1)
                        events.record(
                            sim.now, JobEventLog.SPECULATIVE,
                            f"map{map_id} backup on {backup_node.name}")
                        speculative_procs.append(sim.process(
                            run_map(map_id, backup_node,
                                    first_attempt=jobconf.max_task_attempts - 1),
                            name=f"spec-map{map_id}",
                        ))

        sim.process(speculation_watcher(), name="speculation-watcher")

    # --- reduce phase -------------------------------------------------------
    reduce_stats_by_id: Dict[int, ReduceTask] = {}
    first_reduce_start = {"time": None}

    def run_reduce(reduce_id: int, node: SimNode):
        yield slowstart_fired
        for attempt in range(jobconf.max_task_attempts):
            grant = scheduler.acquire_reduce(node)
            yield grant
            if first_reduce_start["time"] is None:
                first_reduce_start["time"] = sim.now
            events.record(sim.now, JobEventLog.REDUCE_START,
                          f"reduce{reduce_id} attempt{attempt}")
            task = ReduceTask(
                reduce_id=reduce_id,
                node=node,
                registry=registry,
                fabric=fabric,
                transport=transport,
                jobconf=jobconf,
                costs=costs,
                start_extra=scheduler.task_start_extra,
            )
            try:
                yield sim.process(task.run(), name=f"reduce{reduce_id}.{attempt}")
            finally:
                scheduler.release_reduce(node)
            if _attempt_fails(jobconf, config.seed, "reduce", reduce_id, attempt):
                events.record(sim.now, JobEventLog.TASK_FAILED,
                              f"reduce{reduce_id} attempt{attempt}")
                continue
            reduce_stats_by_id[reduce_id] = task
            events.record(sim.now, JobEventLog.REDUCE_FINISH,
                          f"reduce{reduce_id}")
            return
        raise TaskFailedError(
            f"reduce {reduce_id} failed {jobconf.max_task_attempts} attempts"
        )

    reduce_procs = [
        sim.process(run_reduce(r, scheduler.reduce_node(r)),
                    name=f"sched-reduce{r}")
        for r in range(config.num_reduces)
    ]

    job_done = AllOf(sim, map_procs + reduce_procs)
    sim.run_until_event(job_done)
    scheduler.job_finished()
    events.record(sim.now, JobEventLog.JOB_FINISH, "")
    if monitor is not None:
        monitor.stop()

    map_phase_end = max(t.stats.finished_at for t in winning_map.values())
    reduce_stats = [
        reduce_stats_by_id[r].stats for r in range(config.num_reduces)
    ]
    return SimJobResult(
        config=config,
        cluster=cluster,
        jobconf=jobconf,
        interconnect_name=interconnect.name,
        transport_name=transport.name,
        execution_time=sim.now + JOB_OVERHEAD,
        map_phase_end=map_phase_end,
        first_reduce_start=first_reduce_start["time"] or 0.0,
        map_stats=[winning_map[m].stats for m in range(config.num_maps)],
        reduce_stats=reduce_stats,
        matrix=matrix,
        events=events,
        monitor=monitor,
    )
