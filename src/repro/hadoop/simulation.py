"""The simulated-job driver: wire everything together and run.

:func:`run_simulated_job` is the package's main performance entry
point: given a :class:`~repro.core.config.BenchmarkConfig` (which names
the network), a cluster, and a :class:`~repro.hadoop.job.JobConf`, it
builds the discrete-event world (fabric, nodes, runtime), drives the
job's task lifecycle through a
:class:`~repro.hadoop.runtime.JobExecution`, and returns a
:class:`~repro.hadoop.result.SimJobResult` whose ``execution_time`` is
the paper's reported metric.

The framework generation (MRv1 slots vs YARN containers) is selected
*by name* from the :mod:`repro.hadoop.runtime` registry — the driver
never branches on scheduler classes. The lifecycle itself (waves,
failure injection, speculative execution, slowstart) lives in
:class:`~repro.hadoop.runtime.JobExecution`.

Pass a :class:`~repro.sim.trace.Tracer` to record the structured
phase trace (task spans, shuffle sub-phases, fabric flows); tracing is
guaranteed not to perturb the simulation — traced and untraced runs
produce bit-identical times.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.config import BenchmarkConfig
from repro.core.matrix import ShuffleMatrix, compute_shuffle_matrix
from repro.faults import FaultInjector, FaultPlan
from repro.hadoop.cluster import ClusterSpec, cluster_a
from repro.hadoop.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.hadoop.events_log import JobEventLog
from repro.hadoop.job import DEFAULT_JOB_CONF, JobConf
from repro.hadoop.node import SimNode
from repro.hadoop.result import SimJobResult
from repro.hadoop.runtime import (  # noqa: F401 - re-exported compat names
    SPECULATION_SLOWDOWN,
    SPECULATION_THRESHOLD,
    JobExecution,
    TaskFailedError,
    attempt_fails as _attempt_fails,
    create_runtime,
)
from repro.net.fabric import (
    DEFAULT_LOOPBACK_BANDWIDTH,
    NetworkFabric,
    link_table_for,
)
from repro.net.interconnect import get_interconnect
from repro.net.transport import TransportModel, transport_for
from repro.sim.kernel import Simulator
from repro.sim.monitor import ResourceMonitor
from repro.sim.trace import CAT_JOB, Tracer

#: Fixed job bring-up/teardown overhead (submission, setup/cleanup
#: tasks) added to the reported execution time, seconds.
JOB_OVERHEAD = 4.0


def run_simulated_job(
    config: BenchmarkConfig,
    cluster: Optional[ClusterSpec] = None,
    jobconf: Optional[JobConf] = None,
    cost_model: Optional[CostModel] = None,
    transport: Optional[TransportModel] = None,
    monitor_interval: Optional[float] = None,
    matrix: Optional[ShuffleMatrix] = None,
    tracer: Optional[Tracer] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> SimJobResult:
    """Simulate one micro-benchmark job end to end.

    Parameters
    ----------
    config:
        The benchmark parameters (pattern, sizes, task counts, network).
    cluster:
        Hardware; defaults to the paper's Cluster A with 4 slaves.
    jobconf:
        Framework knobs; defaults to Hadoop 1.2.1 defaults (MRv1).
    cost_model:
        CPU cost calibration; defaults to :data:`DEFAULT_COST_MODEL`.
    transport:
        Shuffle transport override (used by the RDMA ablations);
        defaults to the transport the interconnect implies.
    monitor_interval:
        If set, sample slave0's CPU % and NIC MB/s every that many
        simulated seconds (the Fig. 7 traces).
    matrix:
        Pre-computed shuffle matrix (reused across a sweep); defaults
        to computing it from ``config``.
    tracer:
        If set, record the structured phase trace onto it (returned as
        ``result.trace``); does not change simulated times.
    fault_plan:
        If set (and not a no-op), inject the plan's faults — task
        failures, node crashes, stragglers, link degradation — and
        attach the resulting :class:`~repro.faults.ResilienceReport`
        as ``result.resilience``. ``None`` (or an empty plan) is
        bit-identical to the pre-fault-injection code.
    """
    cluster = cluster if cluster is not None else cluster_a()
    jobconf = jobconf if jobconf is not None else DEFAULT_JOB_CONF
    base_costs = cost_model if cost_model is not None else DEFAULT_COST_MODEL
    interconnect = get_interconnect(config.network)
    transport = transport if transport is not None else transport_for(interconnect)
    costs = base_costs.scaled(cluster.node.clock_ghz)
    if matrix is None:
        matrix = compute_shuffle_matrix(config)
    elif matrix.config != config:
        raise ValueError("supplied matrix was computed for a different config")

    sim = Simulator()
    if tracer is not None:
        sim.tracer = tracer.bind(sim)
    uplink = None
    if cluster.racks > 1:
        uplink = cluster.rack_uplink_bandwidth(
            interconnect.sustained_bandwidth
        )
    hosts = tuple(
        (name, cluster.rack_of(i))
        for i, name in enumerate(cluster.slave_names())
    )
    fabric = NetworkFabric(
        sim,
        interconnect,
        rack_uplink_bandwidth=uplink,
        link_table=link_table_for(
            interconnect, DEFAULT_LOOPBACK_BANDWIDTH, uplink, hosts
        ),
    )
    nodes: List[SimNode] = [
        SimNode(sim, name, cluster.node, fabric, rack=cluster.rack_of(i))
        for i, name in enumerate(cluster.slave_names())
    ]

    runtime = create_runtime(jobconf.version, sim, nodes, jobconf, costs)
    runtime.job_started()

    faults = None
    if fault_plan is not None and not fault_plan.is_noop():
        faults = FaultInjector(fault_plan, sim, fabric, nodes)
        faults.install()

    events = JobEventLog()

    monitor = None
    if monitor_interval is not None:
        monitor = ResourceMonitor(sim, interval=monitor_interval)
        slave0 = nodes[0]
        monitor.register_gauge(
            "cpu_pct",
            lambda: 100.0 * slave0.total_cpu_level() / slave0.spec.cores,
        )
        monitor.register_rate("net_rx_mb_s", slave0.fabric_node.rx, scale=1e-6)
        monitor.register_rate("net_tx_mb_s", slave0.fabric_node.tx, scale=1e-6)
        monitor.register_rate(
            "disk_mb_s", slave0.storage.disk.bytes_served, scale=1e-6
        )
        monitor.install()

    execution = JobExecution(
        sim=sim,
        runtime=runtime,
        config=config,
        jobconf=jobconf,
        costs=costs,
        fabric=fabric,
        transport=transport,
        matrix=matrix,
        events=events,
        faults=faults,
    )
    job_span = (sim.tracer.begin("job", CAT_JOB, "job", "job",
                                 framework=jobconf.version,
                                 network=interconnect.name)
                if sim.tracer.enabled else None)
    job_done = execution.start()
    sim.run_until_event(job_done)
    runtime.job_finished()
    events.record(sim.now, JobEventLog.JOB_FINISH, "")
    if job_span is not None:
        job_span.end()
    if monitor is not None:
        monitor.stop()

    return SimJobResult(
        config=config,
        cluster=cluster,
        jobconf=jobconf,
        interconnect_name=interconnect.name,
        transport_name=transport.name,
        execution_time=sim.now + JOB_OVERHEAD,
        map_phase_end=execution.map_phase_end,
        first_reduce_start=execution.first_reduce_start or 0.0,
        map_stats=execution.map_stats(),
        reduce_stats=execution.reduce_stats(),
        matrix=matrix,
        events=events,
        monitor=monitor,
        trace=tracer,
        resilience=faults.report if faults is not None else None,
    )
