"""MRoIB: the RDMA-enhanced MapReduce design (Sect. 6 case study).

The paper uses the micro-benchmark suite to evaluate MRoIB — the
OSU "RDMA for Apache Hadoop" MapReduce — against stock Hadoop over
IPoIB FDR on Cluster B. MRoIB changes the shuffle in two ways the
simulation captures:

1. **Zero-copy, kernel-bypass transfers** — map output segments move
   via RDMA reads posted by the reducer: near-zero per-byte CPU,
   microsecond setup, and no servlet disk read on the hot path
   (segments are registered and served from cache).
2. **SEDA-style pipelining (HOMR)** — fetch, merge, and reduce stages
   overlap fully, hiding the reduce-side merge behind the transfers.

Selecting ``network="RDMA-FDR(56Gbps)"`` (alias ``rdma``) in a
benchmark config picks both up automatically via
:func:`repro.net.transport.transport_for`. The ablation helpers below
separate the two effects, for the A2 ablation benchmark.
"""

from __future__ import annotations

from dataclasses import replace

from repro.net.interconnect import IPOIB_FDR, RDMA_FDR, InterconnectSpec
from repro.net.transport import (
    HTTP_SHUFFLE_OVERLAP,
    RDMA_SHUFFLE_OVERLAP,
    TransportModel,
    transport_for,
)


def mroib_transport(interconnect: InterconnectSpec = RDMA_FDR) -> TransportModel:
    """The full MRoIB shuffle engine (zero-copy + full overlap)."""
    if not interconnect.rdma:
        raise ValueError(
            f"MRoIB requires an RDMA-capable interconnect, got {interconnect.name}"
        )
    return transport_for(interconnect)


def overlap_only_transport(
    interconnect: InterconnectSpec = IPOIB_FDR,
) -> TransportModel:
    """Ablation: HOMR-style full pipelining *without* zero-copy.

    Runs over the sockets transport (IPoIB bandwidth, HTTP-style
    per-fetch costs, server disk reads) but with a fully-overlapped
    merge — isolates the scheduling contribution of MRoIB.
    """
    base = transport_for(interconnect)
    return replace(
        base,
        name=f"overlap-only/{interconnect.name}",
        merge_overlap=RDMA_SHUFFLE_OVERLAP,
        pipelined_final_merge=True,
        zero_copy=False,
    )


def zero_copy_only_transport(
    interconnect: InterconnectSpec = RDMA_FDR,
) -> TransportModel:
    """Ablation: RDMA transfers with the *stock* merge pipeline.

    Zero-copy segments and cached serving, but the merge overlaps only
    as much as the stock MergeManager manages — isolates the transport
    contribution of MRoIB.
    """
    if not interconnect.rdma:
        raise ValueError(
            f"zero-copy ablation requires RDMA, got {interconnect.name}"
        )
    base = transport_for(interconnect)
    return replace(
        base,
        name=f"zero-copy-only/{interconnect.name}",
        merge_overlap=HTTP_SHUFFLE_OVERLAP,
        pipelined_final_merge=False,
        zero_copy=True,
    )
