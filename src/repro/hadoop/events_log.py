"""Structured job event log.

The real suite prints task transitions alongside the final job time;
tests and the report module consume this log to check phase ordering
(maps before slowstart firing, reducers after, etc.).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional


@dataclass(frozen=True)
class JobEvent:
    time: float
    kind: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.time:10.3f}s] {self.kind:<16} {self.detail}"


class JobEventLog:
    """Append-only, time-ordered record of job milestones."""

    MAP_START = "MAP_START"
    MAP_FINISH = "MAP_FINISH"
    SLOWSTART = "SLOWSTART"
    REDUCE_START = "REDUCE_START"
    SHUFFLE_DONE = "SHUFFLE_DONE"
    REDUCE_FINISH = "REDUCE_FINISH"
    TASK_FAILED = "TASK_FAILED"
    SPECULATIVE = "SPECULATIVE"
    JOB_FINISH = "JOB_FINISH"

    def __init__(self) -> None:
        self._events: List[JobEvent] = []

    def record(self, time: float, kind: str, detail: str = "") -> None:
        if self._events and time < self._events[-1].time - 1e-9:
            raise ValueError(
                f"event at t={time} is earlier than the last logged event"
            )
        self._events.append(JobEvent(time, kind, detail))

    def __iter__(self) -> Iterator[JobEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def of_kind(self, kind: str) -> List[JobEvent]:
        return [ev for ev in self._events if ev.kind == kind]

    def first(self, kind: str) -> Optional[JobEvent]:
        events = self.of_kind(kind)
        return events[0] if events else None

    def last(self, kind: str) -> Optional[JobEvent]:
        events = self.of_kind(kind)
        return events[-1] if events else None

    def dump(self) -> str:
        return "\n".join(str(ev) for ev in self._events)
