"""YARN (MRv2) scheduling: ResourceManager containers.

Apache Hadoop NextGen MapReduce replaces fixed slots with fungible
containers: every NodeManager offers ``containers_per_node`` of them,
map and reduce tasks draw from the same pool, and the job's
ApplicationMaster itself occupies one container for the lifetime of the
job. Containers cost an extra allocation/launch round trip per task.

This is the framework the paper's Fig. 3 runs (Hadoop 2.x on 8 slaves
with 32 maps / 16 reduces).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.hadoop.costmodel import CostModel
from repro.hadoop.job import JobConf, YARN
from repro.hadoop.node import SimNode
from repro.sim.events import Event
from repro.sim.kernel import Simulator
from repro.sim.resources import SlotResource


class YarnScheduler:
    """Container-based task placement with an AppMaster container."""

    version = YARN

    def __init__(
        self,
        sim: Simulator,
        nodes: List[SimNode],
        jobconf: JobConf,
        costs: CostModel,
    ):
        self.sim = sim
        self.nodes = nodes
        self.jobconf = jobconf
        self.costs = costs
        self._containers: Dict[str, SlotResource] = {
            node.name: SlotResource(
                sim,
                jobconf.containers(node.spec.cores),
                name=f"{node.name}:containers",
            )
            for node in nodes
        }
        self._appmaster_node: Optional[SimNode] = None

    @property
    def task_start_extra(self) -> float:
        return self.costs.yarn_container_start_extra

    def map_node(self, map_id: int) -> SimNode:
        return self.nodes[map_id % len(self.nodes)]

    def reduce_node(self, reduce_id: int) -> SimNode:
        return self.nodes[reduce_id % len(self.nodes)]

    def acquire_map(self, node: SimNode) -> Event:
        return self._containers[node.name].request()

    def release_map(self, node: SimNode) -> None:
        self._containers[node.name].release()

    def acquire_reduce(self, node: SimNode) -> Event:
        return self._containers[node.name].request()

    def release_reduce(self, node: SimNode) -> None:
        self._containers[node.name].release()

    def job_started(self) -> None:
        """Pin the AppMaster's container on the first NodeManager."""
        node = self.nodes[0]
        grant = self._containers[node.name].request()
        if not grant.triggered:  # pragma: no cover - capacity >= 2 always
            raise RuntimeError("no container available for the AppMaster")
        self._appmaster_node = node

    def job_finished(self) -> None:
        if self._appmaster_node is not None:
            self._containers[self._appmaster_node.name].release()
            self._appmaster_node = None

    def containers_available(self, node: SimNode) -> int:
        return self._containers[node.name].available
