"""YARN (MRv2) scheduling policy: ResourceManager containers.

Apache Hadoop NextGen MapReduce replaces fixed slots with fungible
containers: every NodeManager offers ``containers_per_node`` of them,
map and reduce tasks draw from the same pool, and the job's
ApplicationMaster itself occupies one container for the lifetime of the
job. Containers cost an extra allocation/launch round trip per task.

This is the framework the paper's Fig. 3 runs (Hadoop 2.x on 8 slaves
with 32 maps / 16 reduces).

All lifecycle mechanics live in :class:`repro.hadoop.runtime.Runtime`;
this class only supplies the shared container pool and the AppMaster
bring-up/teardown hooks.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.hadoop.job import YARN
from repro.hadoop.node import SimNode
from repro.hadoop.runtime import Runtime, register_runtime
from repro.sim.resources import SlotResource


@register_runtime
class YarnScheduler(Runtime):
    """Container-based task placement with an AppMaster container."""

    name = YARN

    def _build_pools(self) -> None:
        self._containers: Dict[str, SlotResource] = {
            node.name: SlotResource(
                self.sim,
                self.jobconf.containers(node.spec.cores),
                name=f"{node.name}:containers",
            )
            for node in self.nodes
        }
        self._appmaster_node: Optional[SimNode] = None

    def map_pool(self, node: SimNode) -> SlotResource:
        return self._containers[node.name]

    def reduce_pool(self, node: SimNode) -> SlotResource:
        return self._containers[node.name]

    @property
    def task_start_extra(self) -> float:
        return self.costs.yarn_container_start_extra

    def job_started(self) -> None:
        """Pin the AppMaster's container on the first NodeManager."""
        node = self.nodes[0]
        grant = self._containers[node.name].request()
        if not grant.triggered:  # pragma: no cover - capacity >= 2 always
            raise RuntimeError("no container available for the AppMaster")
        self._appmaster_node = node

    def job_finished(self) -> None:
        if self._appmaster_node is not None:
            self._containers[self._appmaster_node.name].release()
            self._appmaster_node = None

    def containers_available(self, node: SimNode) -> int:
        return self._containers[node.name].available
