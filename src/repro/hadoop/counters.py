"""Hadoop-style job counters derived from a simulated run.

Real Hadoop prints a counter block at job completion; this module
produces the equivalent from a :class:`~repro.hadoop.result.SimJobResult`
so reports and tests can assert on the familiar names.
"""

from __future__ import annotations

from typing import Dict

from repro.engine.context import Counters
from repro.hadoop.result import SimJobResult

#: Extra counter names beyond the engine's task-level set.
SHUFFLE_WIRE_BYTES = "SHUFFLE_WIRE_BYTES"
SHUFFLE_LOCAL_FETCHES = "SHUFFLE_LOCAL_FETCHES"
SHUFFLE_REMOTE_FETCHES = "SHUFFLE_REMOTE_FETCHES"
REDUCE_SPILLED_BYTES = "REDUCE_SPILLED_BYTES"
MAP_SPILLS = "MAP_SPILLS"
MILLIS_MAPS = "MILLIS_MAPS"
MILLIS_REDUCES = "MILLIS_REDUCES"


def job_counters(result: SimJobResult) -> Counters:
    """Assemble the job-level counter block."""
    counters = Counters()
    config = result.config

    counters.increment(Counters.MAP_INPUT_RECORDS, config.num_maps)
    counters.increment(Counters.MAP_OUTPUT_RECORDS, config.num_pairs)
    counters.increment(Counters.MAP_OUTPUT_BYTES, int(config.shuffle_bytes))
    counters.increment(MAP_SPILLS, sum(s.spills for s in result.map_stats))
    counters.increment(
        MILLIS_MAPS,
        int(sum(s.duration for s in result.map_stats) * 1000),
    )

    records = sum(s.records for s in result.reduce_stats)
    counters.increment(Counters.REDUCE_INPUT_RECORDS, records)
    counters.increment(
        Counters.REDUCE_SHUFFLE_BYTES,
        int(sum(s.bytes_fetched for s in result.reduce_stats)),
    )
    counters.increment(SHUFFLE_WIRE_BYTES, int(
        sum(s.bytes_fetched for s in result.reduce_stats)
    ))
    counters.increment(REDUCE_SPILLED_BYTES, int(
        sum(s.bytes_spilled for s in result.reduce_stats)
    ))
    counters.increment(
        MILLIS_REDUCES,
        int(sum(s.duration for s in result.reduce_stats) * 1000),
    )
    # NullOutputFormat: nothing leaves the reducers.
    counters.increment(Counters.REDUCE_OUTPUT_RECORDS, 0)
    return counters


def format_counters(counters: Counters) -> str:
    """Hadoop's familiar indented counter block."""
    lines = ["Counters:"]
    for name, value in sorted(counters.as_dict().items()):
        lines.append(f"    {name}={value:,}")
    return "\n".join(lines)


def counters_dict(result: SimJobResult) -> Dict[str, int]:
    """Convenience: the counter block as a plain dict."""
    return job_counters(result).as_dict()
