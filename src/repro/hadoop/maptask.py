"""The simulated map task.

A micro-benchmark map task (Sect. 4.1):

1. task start (JVM spawn, split localization — the split is a dummy);
2. generate the configured pairs in memory, partition and collect them
   into the ``io.sort.mb`` buffer — spilling a sorted run to local disk
   every time the buffer passes ``io.sort.spill.percent``;
3. if more than one spill was written, merge them (``io.sort.factor``
   streams at a time) into the single map-output file the shuffle
   servlet serves.

All CPU segments occupy one core on the node's tracker; all I/O goes
through the page-cache-aware :class:`~repro.hadoop.node.StorageService`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.hadoop.costmodel import CostModel
from repro.hadoop.job import JobConf
from repro.hadoop.node import SimNode
from repro.sim.trace import CAT_PHASE, CAT_TASK


@dataclass
class MapOutput:
    """What a finished map publishes to the shuffle service.

    ``segment_bytes`` is what crosses the wire (post-combine,
    post-compression); ``segment_logical_bytes`` is the uncompressed
    volume the reduce-side merge actually processes.
    """

    map_id: int
    node: SimNode
    #: on-wire serialized bytes per reduce partition.
    segment_bytes: np.ndarray
    #: records per reduce partition (post-combine).
    segment_records: np.ndarray
    #: uncompressed serialized bytes per reduce partition.
    segment_logical_bytes: Optional[np.ndarray] = None
    finished_at: float = 0.0

    def __post_init__(self) -> None:
        if self.segment_logical_bytes is None:
            self.segment_logical_bytes = self.segment_bytes

    def bytes_for(self, reduce_id: int) -> float:
        return float(self.segment_bytes[reduce_id])

    def logical_bytes_for(self, reduce_id: int) -> float:
        return float(self.segment_logical_bytes[reduce_id])

    def records_for(self, reduce_id: int) -> int:
        return int(self.segment_records[reduce_id])

    @property
    def total_bytes(self) -> float:
        return float(self.segment_bytes.sum())


@dataclass
class MapTaskStats:
    """Phase timings of one map task (for reports and tests)."""

    map_id: int
    node: str
    started_at: float = 0.0
    finished_at: float = 0.0
    #: when the map-side spill merge began (== ``finished_at`` when a
    #: single spill needed no merge); splits the task into the ``map``
    #: and ``spill_merge`` phases of the breakdown.
    merge_started_at: float = 0.0
    spills: int = 0
    merge_passes: int = 0

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at


class MapTask:
    """One simulated map task; drive with ``sim.process(task.run())``."""

    def __init__(
        self,
        map_id: int,
        node: SimNode,
        segment_bytes: np.ndarray,
        segment_records: np.ndarray,
        jobconf: JobConf,
        costs: CostModel,
        start_extra: float = 0.0,
    ):
        self.map_id = map_id
        self.node = node
        self.segment_bytes = segment_bytes
        self.segment_records = segment_records
        self.jobconf = jobconf
        self.costs = costs
        self.start_extra = start_extra
        self.stats = MapTaskStats(map_id=map_id, node=node.name)
        self.output: Optional[MapOutput] = None

    @property
    def total_bytes(self) -> float:
        return float(self.segment_bytes.sum())

    @property
    def total_records(self) -> int:
        return int(self.segment_records.sum())

    def run(self):
        """The map task process (generator for the sim kernel)."""
        sim = self.node.sim
        costs = self.costs
        jobconf = self.jobconf
        self.stats.started_at = sim.now
        tracer = sim.tracer
        lane = f"map{self.map_id}"
        task_span = (
            tracer.begin("map-task", CAT_TASK, self.node.name, lane,
                         map_id=self.map_id)
            if tracer.enabled else None
        )

        yield from self.node.cpu_burst(costs.map_task_start + self.start_extra)

        generated_bytes = self.total_bytes
        generated_records = self.total_records
        # The combiner shrinks records/bytes before they are spilled;
        # compression shrinks bytes on disk and on the wire.
        combined_bytes = generated_bytes * jobconf.combine_fraction
        combined_records = generated_records * jobconf.combine_fraction
        nbytes = combined_bytes * jobconf.wire_fraction
        records = combined_records
        spill_size = jobconf.spill_threshold_bytes
        nspills = max(1, math.ceil(combined_bytes / spill_size))
        self.stats.spills = nspills
        recs_per_spill = records / nspills
        bytes_per_spill = nbytes / nspills

        collect_span = (
            tracer.begin("collect-spill", CAT_PHASE, self.node.name, lane,
                         spills=nspills)
            if tracer.enabled else None
        )
        for _spill in range(nspills):
            # Fill the buffer: generate + partition + collect (full,
            # pre-combine record stream).
            yield from self.node.cpu_burst(
                costs.map_generate_time(
                    generated_records / nspills, generated_bytes / nspills
                )
            )
            if jobconf.streaming:
                # Records cross the pipe to the external mapper and back.
                yield from self.node.cpu_burst(
                    (generated_records / nspills) * costs.cpu_per_record_streaming
                )
            if jobconf.combiner_reduction is not None:
                yield from self.node.cpu_burst(
                    (generated_records / nspills) * costs.cpu_per_record_combine
                )
            # Sort the run and write it out (spill files are transient:
            # the merge below deletes them before they are ever flushed).
            yield from self.node.cpu_burst(
                costs.sort_time(int(recs_per_spill))
            )
            if jobconf.compress_map_output:
                yield from self.node.cpu_burst(
                    (combined_bytes / nspills) * costs.cpu_per_byte_compress
                )
            # A lone spill *is* the final map output and persists;
            # multi-spill runs are deleted by the merge below.
            yield self.node.storage.write(
                bytes_per_spill, transient=(nspills > 1)
            )
        if collect_span is not None:
            collect_span.end()
        self.stats.merge_started_at = sim.now

        if nspills > 1:
            merge_span = (
                tracer.begin("spill-merge", CAT_PHASE, self.node.name, lane)
                if tracer.enabled else None
            )
            # Hadoop merges intermediate rounds only while more than
            # ``io.sort.factor`` runs remain; the extra I/O is the slice
            # of data that participates in those early rounds.
            factor = self.jobconf.sort_factor
            extra_fraction = max(0.0, (nspills - factor) / nspills)
            self.stats.merge_passes = 1 + (1 if extra_fraction > 0 else 0)
            read_bytes = nbytes * (1.0 + extra_fraction)
            read_done = self.node.storage.read(read_bytes, transient=True)
            # Intermediate merged runs are transient; the final merged
            # map-output file persists for the shuffle servlet.
            inter_done = self.node.storage.write(
                nbytes * extra_fraction, transient=True
            )
            write_done = self.node.storage.write(nbytes)
            # Merge CPU overlaps the I/O: do the CPU burst, then wait
            # for whichever of the streams is still behind.
            yield from self.node.cpu_burst(
                costs.map_merge_time(records) * (1.0 + extra_fraction)
            )
            yield read_done
            yield inter_done
            yield write_done
            if merge_span is not None:
                merge_span.end()

        self.stats.finished_at = sim.now
        if task_span is not None:
            task_span.end(spills=self.stats.spills)
        scale = jobconf.combine_fraction
        self.output = MapOutput(
            map_id=self.map_id,
            node=self.node,
            segment_bytes=self.segment_bytes * scale * jobconf.wire_fraction,
            segment_records=(self.segment_records * scale).astype(np.int64),
            segment_logical_bytes=self.segment_bytes * scale,
            finished_at=sim.now,
        )
        return self.output
