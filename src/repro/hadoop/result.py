"""The result of one simulated job."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import BenchmarkConfig
from repro.core.matrix import ShuffleMatrix
from repro.hadoop.cluster import ClusterSpec
from repro.hadoop.events_log import JobEventLog
from repro.hadoop.job import JobConf
from repro.hadoop.maptask import MapTaskStats
from repro.hadoop.reducetask import ReduceTaskStats
from repro.sim.monitor import ResourceMonitor


@dataclass
class SimJobResult:
    """Everything a finished simulated job reports.

    ``execution_time`` is the paper's headline metric — wall-clock job
    time, including the fixed job setup/cleanup overhead.
    """

    config: BenchmarkConfig
    cluster: ClusterSpec
    jobconf: JobConf
    interconnect_name: str
    transport_name: str
    execution_time: float
    map_phase_end: float
    first_reduce_start: float
    map_stats: List[MapTaskStats]
    reduce_stats: List[ReduceTaskStats]
    matrix: ShuffleMatrix
    events: JobEventLog
    monitor: Optional[ResourceMonitor] = None

    @property
    def total_shuffle_bytes(self) -> int:
        return self.matrix.total_bytes

    @property
    def slowest_reduce(self) -> ReduceTaskStats:
        return max(self.reduce_stats, key=lambda s: s.finished_at)

    @property
    def reduce_phase_time(self) -> float:
        """Time from the first reducer launch to the last reducer finish."""
        return self.slowest_reduce.finished_at - self.first_reduce_start

    def breakdown(self) -> Dict[str, float]:
        """Coarse phase decomposition of the job time."""
        shuffle_time = max(
            (s.shuffle_duration for s in self.reduce_stats), default=0.0
        )
        reduce_time = max(
            (s.reduce_duration for s in self.reduce_stats), default=0.0
        )
        return {
            "execution_time": self.execution_time,
            "map_phase": self.map_phase_end,
            "slowest_shuffle": shuffle_time,
            "slowest_reduce_fn": reduce_time,
        }

    def summary(self) -> Dict[str, object]:
        """Flat summary row (benchmark harness / CSV output)."""
        return {
            "benchmark": f"MR-{self.config.pattern.upper()}",
            "network": self.interconnect_name,
            "version": self.jobconf.version,
            "slaves": self.cluster.num_slaves,
            "maps": self.config.num_maps,
            "reduces": self.config.num_reduces,
            "data_type": self.config.data_type,
            "pair_size": self.config.pair_size,
            "shuffle_gb": self.total_shuffle_bytes / 1e9,
            "execution_time_s": round(self.execution_time, 2),
        }
