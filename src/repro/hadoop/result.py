"""The result of one simulated job, including its phase decomposition.

The paper's headline metric is the scalar job time, but its figures are
really *per-phase* stories (map, shuffle, merge, reduce under five
interconnects), so :class:`SimJobResult` also exposes a structured
:meth:`~SimJobResult.phase_breakdown`: per-task and per-node seconds in
each of the five phases (``map``, ``spill_merge``, ``shuffle``,
``merge``, ``reduce``), derived from the task stats the simulated
framework records. When the job ran with a
:class:`~repro.sim.trace.Tracer`, the full span-level trace is carried
in :attr:`~SimJobResult.trace` for Chrome ``trace_event`` export.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import BenchmarkConfig
from repro.core.matrix import ShuffleMatrix
from repro.faults import ResilienceReport
from repro.hadoop.cluster import ClusterSpec
from repro.hadoop.events_log import JobEventLog
from repro.hadoop.job import JobConf
from repro.hadoop.maptask import MapTaskStats
from repro.hadoop.reducetask import ReduceTaskStats
from repro.sim.monitor import ResourceMonitor
from repro.sim.trace import Tracer

#: The five phases of the decomposition, in pipeline order.
PHASES = ("map", "spill_merge", "shuffle", "merge", "reduce")


@dataclass
class TaskPhaseRow:
    """Per-phase seconds of one task (map or reduce)."""

    task: str
    node: str
    phases: Dict[str, float]

    @property
    def total(self) -> float:
        return sum(self.phases.values())


@dataclass
class PhaseBreakdown:
    """The job's per-phase decomposition (per task, per node, total).

    Built by :meth:`SimJobResult.phase_breakdown`. Phase seconds are
    *task-time*: each task's wall interval split over the five phases,
    so one task's phases sum to its duration exactly (asserted by
    :meth:`consistent`). Because tasks overlap, the job-level totals
    are task-seconds, not wall seconds; the wall-clock windows are
    carried separately (``map_phase_end``, ``first_reduce_start``,
    ``execution_time``).
    """

    rows: List[TaskPhaseRow]
    execution_time: float
    map_phase_end: float
    first_reduce_start: float

    def totals(self) -> Dict[str, float]:
        """Task-seconds summed over all tasks, per phase."""
        out = {phase: 0.0 for phase in PHASES}
        for row in self.rows:
            for phase, seconds in row.phases.items():
                out[phase] += seconds
        return out

    def by_node(self) -> Dict[str, Dict[str, float]]:
        """Task-seconds per node, per phase (node order preserved)."""
        out: Dict[str, Dict[str, float]] = {}
        for row in self.rows:
            node = out.setdefault(row.node,
                                  {phase: 0.0 for phase in PHASES})
            for phase, seconds in row.phases.items():
                node[phase] += seconds
        return out

    def consistent(self, durations: Dict[str, float],
                   rel: float = 1e-9) -> bool:
        """Every task's phase sum matches its recorded duration."""
        for row in self.rows:
            want = durations[row.task]
            tol = rel * max(1.0, abs(want))
            if abs(row.total - want) > tol:
                return False
        return True


@dataclass
class SimJobResult:
    """Everything a finished simulated job reports.

    ``execution_time`` is the paper's headline metric — wall-clock job
    time, including the fixed job setup/cleanup overhead.
    """

    config: BenchmarkConfig
    cluster: ClusterSpec
    jobconf: JobConf
    interconnect_name: str
    transport_name: str
    execution_time: float
    map_phase_end: float
    first_reduce_start: float
    map_stats: List[MapTaskStats]
    reduce_stats: List[ReduceTaskStats]
    matrix: ShuffleMatrix
    events: JobEventLog
    monitor: Optional[ResourceMonitor] = None
    #: The structured phase trace, when the job ran with a tracer.
    trace: Optional[Tracer] = None
    #: What fault injection did to this run (``None`` on healthy runs).
    resilience: Optional[ResilienceReport] = None

    @property
    def total_shuffle_bytes(self) -> int:
        return self.matrix.total_bytes

    @property
    def slowest_reduce(self) -> ReduceTaskStats:
        return max(self.reduce_stats, key=lambda s: s.finished_at)

    @property
    def reduce_phase_time(self) -> float:
        """Time from the first reducer launch to the last reducer finish."""
        return self.slowest_reduce.finished_at - self.first_reduce_start

    def breakdown(self) -> Dict[str, float]:
        """Coarse phase decomposition of the job time."""
        shuffle_time = max(
            (s.shuffle_duration for s in self.reduce_stats), default=0.0
        )
        reduce_time = max(
            (s.reduce_duration for s in self.reduce_stats), default=0.0
        )
        return {
            "execution_time": self.execution_time,
            "map_phase": self.map_phase_end,
            "slowest_shuffle": shuffle_time,
            "slowest_reduce_fn": reduce_time,
        }

    def phase_breakdown(self) -> PhaseBreakdown:
        """Structured per-task phase decomposition.

        Map tasks split into ``map`` (generate + partition + spill) and
        ``spill_merge`` (the map-side multi-spill merge); reduce tasks
        split into ``shuffle`` (startup + fetch window), ``merge``
        (exposed shuffle-merge + sort + final merge) and ``reduce``
        (the reduce function). Each task's phases sum to its duration.
        """
        rows: List[TaskPhaseRow] = []
        for m in self.map_stats:
            rows.append(TaskPhaseRow(
                task=f"map{m.map_id}",
                node=m.node,
                phases={
                    "map": m.merge_started_at - m.started_at,
                    "spill_merge": m.finished_at - m.merge_started_at,
                    "shuffle": 0.0,
                    "merge": 0.0,
                    "reduce": 0.0,
                },
            ))
        for r in self.reduce_stats:
            rows.append(TaskPhaseRow(
                task=f"reduce{r.reduce_id}",
                node=r.node,
                phases={
                    "map": 0.0,
                    "spill_merge": 0.0,
                    "shuffle": r.fetch_finished_at - r.started_at,
                    "merge": r.merge_finished_at - r.fetch_finished_at,
                    "reduce": r.finished_at - r.merge_finished_at,
                },
            ))
        return PhaseBreakdown(
            rows=rows,
            execution_time=self.execution_time,
            map_phase_end=self.map_phase_end,
            first_reduce_start=self.first_reduce_start,
        )

    def task_durations(self) -> Dict[str, float]:
        """Task name -> wall duration (for consistency checks)."""
        out: Dict[str, float] = {}
        for m in self.map_stats:
            out[f"map{m.map_id}"] = m.duration
        for r in self.reduce_stats:
            out[f"reduce{r.reduce_id}"] = r.duration
        return out

    def summary(self) -> Dict[str, object]:
        """Flat summary row (benchmark harness / CSV output)."""
        return {
            "benchmark": f"MR-{self.config.pattern.upper()}",
            "network": self.interconnect_name,
            "version": self.jobconf.version,
            "slaves": self.cluster.num_slaves,
            "maps": self.config.num_maps,
            "reduces": self.config.num_reduces,
            "data_type": self.config.data_type,
            "pair_size": self.config.pair_size,
            "shuffle_gb": self.total_shuffle_bytes / 1e9,
            "execution_time_s": round(self.execution_time, 2),
        }
