"""Concurrent jobs: multi-tenant interference on one simulated cluster.

The paper measures one job at a time; production clusters run many.
This extension submits several micro-benchmark jobs to a *shared*
simulated world — same TaskTracker slots (or YARN containers), same
NICs, same disks — and reports each job's latency, so the suite can
quantify shuffle interference ("how much slower is my job when a
skewed neighbour is shuffling?").

Kept deliberately simpler than the single-job driver: no failure
injection or speculation here; the paper-grade fidelity lives in
:func:`repro.hadoop.simulation.run_simulated_job`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import BenchmarkConfig
from repro.core.matrix import compute_shuffle_matrix
from repro.hadoop.cluster import ClusterSpec, cluster_a
from repro.hadoop.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.hadoop.job import DEFAULT_JOB_CONF, JobConf, MRV1
from repro.hadoop.jobtracker import JobTrackerScheduler
from repro.hadoop.maptask import MapTask
from repro.hadoop.node import SimNode
from repro.hadoop.reducetask import ReduceTask
from repro.hadoop.shuffle import MapOutputRegistry
from repro.hadoop.simulation import JOB_OVERHEAD
from repro.hadoop.yarn import YarnScheduler
from repro.net.fabric import NetworkFabric
from repro.net.interconnect import get_interconnect
from repro.net.transport import transport_for
from repro.sim.events import AllOf
from repro.sim.kernel import Simulator


@dataclass(frozen=True)
class JobRequest:
    """One job submission: a config plus its arrival time."""

    config: BenchmarkConfig
    submit_at: float = 0.0

    def __post_init__(self) -> None:
        if self.submit_at < 0:
            raise ValueError(f"submit_at must be >= 0, got {self.submit_at}")


@dataclass
class ConcurrentJobResult:
    """What one job of a concurrent batch measured."""

    config: BenchmarkConfig
    submit_at: float
    started_at: float
    finished_at: float

    @property
    def execution_time(self) -> float:
        """Wall time from submission to completion (incl. overhead)."""
        return self.finished_at - self.submit_at + JOB_OVERHEAD

    @property
    def queueing_delay(self) -> float:
        return self.started_at - self.submit_at


def run_concurrent_jobs(
    requests: List[JobRequest],
    cluster: Optional[ClusterSpec] = None,
    jobconf: Optional[JobConf] = None,
    cost_model: Optional[CostModel] = None,
) -> List[ConcurrentJobResult]:
    """Run several jobs on one shared cluster; returns per-job results.

    All jobs must name the same network (they share one fabric). Jobs
    contend for slots/containers, NIC bandwidth, and disks; nothing is
    partitioned between them — pure FIFO free-for-all, like a default
    Hadoop scheduler.
    """
    if not requests:
        raise ValueError("run_concurrent_jobs needs at least one request")
    cluster = cluster if cluster is not None else cluster_a()
    jobconf = jobconf if jobconf is not None else DEFAULT_JOB_CONF
    base_costs = cost_model if cost_model is not None else DEFAULT_COST_MODEL
    costs = base_costs.scaled(cluster.node.clock_ghz)

    networks = {req.config.network for req in requests}
    interconnects = {get_interconnect(n).name for n in networks}
    if len(interconnects) > 1:
        raise ValueError(
            f"concurrent jobs must share one network, got {sorted(interconnects)}"
        )
    interconnect = get_interconnect(requests[0].config.network)
    transport = transport_for(interconnect)

    sim = Simulator()
    uplink = None
    if cluster.racks > 1:
        uplink = cluster.rack_uplink_bandwidth(interconnect.sustained_bandwidth)
    fabric = NetworkFabric(sim, interconnect, rack_uplink_bandwidth=uplink)
    nodes: List[SimNode] = [
        SimNode(sim, name, cluster.node, fabric, rack=cluster.rack_of(i))
        for i, name in enumerate(cluster.slave_names())
    ]
    if jobconf.version == MRV1:
        scheduler = JobTrackerScheduler(sim, nodes, jobconf, costs)
    else:
        scheduler = YarnScheduler(sim, nodes, jobconf, costs)

    results: List[ConcurrentJobResult] = []
    job_procs = []

    for job_index, request in enumerate(requests):
        result = ConcurrentJobResult(
            config=request.config,
            submit_at=request.submit_at,
            started_at=0.0,
            finished_at=0.0,
        )
        results.append(result)
        job_procs.append(
            sim.process(
                _run_one_job(sim, scheduler, fabric, transport, jobconf,
                             costs, request, result, job_index),
                name=f"job{job_index}",
            )
        )

    sim.run_until_event(AllOf(sim, job_procs))
    return results


def _run_one_job(sim, scheduler, fabric, transport, jobconf, costs,
                 request: JobRequest, result: ConcurrentJobResult,
                 job_index: int):
    """One job's orchestration inside the shared world."""
    config = request.config
    if request.submit_at > 0:
        yield sim.timeout(request.submit_at)
    result.started_at = sim.now

    matrix = compute_shuffle_matrix(config)
    registry = MapOutputRegistry(sim, config.num_maps)
    slowstart_target = max(
        0, int(round(jobconf.reduce_slowstart * config.num_maps))
    )
    slowstart = sim.event(name=f"job{job_index}:slowstart")
    if slowstart_target == 0:
        slowstart.succeed()
    done = {"maps": 0}

    def run_map(map_id: int):
        node = scheduler.map_node(map_id + job_index)  # offset placement
        grant = scheduler.acquire_map(node)
        yield grant
        yield sim.timeout(costs.heartbeat_interval * 0.5)
        task = MapTask(
            map_id=map_id,
            node=node,
            segment_bytes=matrix.bytes[map_id],
            segment_records=matrix.records[map_id],
            jobconf=jobconf,
            costs=costs,
            start_extra=scheduler.task_start_extra,
        )
        try:
            output = yield sim.process(task.run())
        finally:
            scheduler.release_map(node)
        registry.register(output)
        done["maps"] += 1
        if done["maps"] == slowstart_target and not slowstart.triggered:
            slowstart.succeed()

    def run_reduce(reduce_id: int):
        yield slowstart
        node = scheduler.reduce_node(reduce_id + job_index)
        grant = scheduler.acquire_reduce(node)
        yield grant
        task = ReduceTask(
            reduce_id=reduce_id,
            node=node,
            registry=registry,
            fabric=fabric,
            transport=transport,
            jobconf=jobconf,
            costs=costs,
            start_extra=scheduler.task_start_extra,
        )
        try:
            yield sim.process(task.run())
        finally:
            scheduler.release_reduce(node)

    procs = [sim.process(run_map(m)) for m in range(config.num_maps)]
    procs += [sim.process(run_reduce(r)) for r in range(config.num_reduces)]
    yield AllOf(sim, procs)
    result.finished_at = sim.now
