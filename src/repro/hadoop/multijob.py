"""Concurrent jobs: multi-tenant interference on one simulated cluster.

The paper measures one job at a time; production clusters run many.
This extension submits several micro-benchmark jobs to a *shared*
simulated world — same TaskTracker slots (or YARN containers), same
NICs, same disks — and reports each job's latency, so the suite can
quantify shuffle interference ("how much slower is my job when a
skewed neighbour is shuffling?").

Each job drives the same :class:`~repro.hadoop.runtime.JobExecution`
lifecycle engine as the dedicated driver (wave scheduling, failure
retries, speculation, slowstart), with its round-robin placement offset
by the job index so batches do not pile onto the same first node. The
runtime (MRv1 slots vs YARN containers) is selected by name from the
:mod:`repro.hadoop.runtime` registry. The shared runtime's
``job_started``/``job_finished`` hooks are *not* invoked per job: the
batch models one long-lived tenant framework, not per-job AppMasters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.config import BenchmarkConfig
from repro.core.matrix import compute_shuffle_matrix
from repro.faults import FaultInjector, FaultPlan, ResilienceReport
from repro.hadoop.cluster import ClusterSpec, cluster_a
from repro.hadoop.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.hadoop.events_log import JobEventLog
from repro.hadoop.job import DEFAULT_JOB_CONF, JobConf
from repro.hadoop.node import SimNode
from repro.hadoop.runtime import JobExecution, create_runtime
from repro.hadoop.simulation import JOB_OVERHEAD
from repro.net.fabric import NetworkFabric
from repro.net.interconnect import get_interconnect
from repro.net.transport import transport_for
from repro.sim.events import AllOf
from repro.sim.kernel import Simulator
from repro.sim.trace import Tracer


@dataclass(frozen=True)
class JobRequest:
    """One job submission: a config plus its arrival time."""

    config: BenchmarkConfig
    submit_at: float = 0.0

    def __post_init__(self) -> None:
        if self.submit_at < 0:
            raise ValueError(f"submit_at must be >= 0, got {self.submit_at}")


@dataclass
class ConcurrentJobResult:
    """What one job of a concurrent batch measured."""

    config: BenchmarkConfig
    submit_at: float
    started_at: float
    finished_at: float
    #: This job's lifecycle event log (slowstart, task starts/finishes).
    events: JobEventLog = field(default_factory=JobEventLog)
    #: The batch's shared fault/resilience report (``None`` on healthy
    #: runs; the same object on every job of one batch — faults are
    #: cluster-wide, not per-job).
    resilience: Optional[ResilienceReport] = None

    @property
    def execution_time(self) -> float:
        """Wall time from submission to completion (incl. overhead)."""
        return self.finished_at - self.submit_at + JOB_OVERHEAD

    @property
    def queueing_delay(self) -> float:
        return self.started_at - self.submit_at


def run_concurrent_jobs(
    requests: List[JobRequest],
    cluster: Optional[ClusterSpec] = None,
    jobconf: Optional[JobConf] = None,
    cost_model: Optional[CostModel] = None,
    tracer: Optional[Tracer] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> List[ConcurrentJobResult]:
    """Run several jobs on one shared cluster; returns per-job results.

    All jobs must name the same network (they share one fabric). Jobs
    contend for slots/containers, NIC bandwidth, and disks; nothing is
    partitioned between them — pure FIFO free-for-all, like a default
    Hadoop scheduler. Pass a :class:`~repro.sim.trace.Tracer` to record
    the batch's structured phase trace (lanes are prefixed ``job0:``,
    ``job1:``, ... per job).
    """
    if not requests:
        raise ValueError("run_concurrent_jobs needs at least one request")
    cluster = cluster if cluster is not None else cluster_a()
    jobconf = jobconf if jobconf is not None else DEFAULT_JOB_CONF
    base_costs = cost_model if cost_model is not None else DEFAULT_COST_MODEL
    costs = base_costs.scaled(cluster.node.clock_ghz)

    networks = {req.config.network for req in requests}
    interconnects = {get_interconnect(n).name for n in networks}
    if len(interconnects) > 1:
        raise ValueError(
            f"concurrent jobs must share one network, got {sorted(interconnects)}"
        )
    interconnect = get_interconnect(requests[0].config.network)
    transport = transport_for(interconnect)

    sim = Simulator()
    if tracer is not None:
        sim.tracer = tracer.bind(sim)
    uplink = None
    if cluster.racks > 1:
        uplink = cluster.rack_uplink_bandwidth(interconnect.sustained_bandwidth)
    fabric = NetworkFabric(sim, interconnect, rack_uplink_bandwidth=uplink)
    nodes: List[SimNode] = [
        SimNode(sim, name, cluster.node, fabric, rack=cluster.rack_of(i))
        for i, name in enumerate(cluster.slave_names())
    ]
    runtime = create_runtime(jobconf.version, sim, nodes, jobconf, costs)

    # One injector serves the whole batch: node crashes and link faults
    # hit every tenant; the per-job placement offset salts the failure
    # coins so jobs fail independently.
    faults = None
    if fault_plan is not None and not fault_plan.is_noop():
        faults = FaultInjector(fault_plan, sim, fabric, nodes)
        faults.install()

    results: List[ConcurrentJobResult] = []
    job_procs = []

    for job_index, request in enumerate(requests):
        result = ConcurrentJobResult(
            config=request.config,
            submit_at=request.submit_at,
            started_at=0.0,
            finished_at=0.0,
            resilience=faults.report if faults is not None else None,
        )
        results.append(result)
        job_procs.append(
            sim.process(
                _run_one_job(sim, runtime, fabric, transport, jobconf,
                             costs, request, result, job_index, faults),
                name=f"job{job_index}",
            )
        )

    sim.run_until_event(AllOf(sim, job_procs))
    return results


def _run_one_job(sim, runtime, fabric, transport, jobconf, costs,
                 request: JobRequest, result: ConcurrentJobResult,
                 job_index: int, faults: Optional[FaultInjector] = None):
    """One job's orchestration inside the shared world."""
    config = request.config
    if request.submit_at > 0:
        yield sim.timeout(request.submit_at)
    result.started_at = sim.now

    execution = JobExecution(
        sim=sim,
        runtime=runtime,
        config=config,
        jobconf=jobconf,
        costs=costs,
        fabric=fabric,
        transport=transport,
        matrix=compute_shuffle_matrix(config),
        events=result.events,
        placement_offset=job_index,
        label=f"job{job_index}:",
        faults=faults,
    )
    yield execution.start()
    result.finished_at = sim.now
