"""Job history: structured run records and task timelines.

Real Hadoop writes a JobHistory file per job (task attempts, phase
times, counters) that tools like the history server visualize. This
module produces the equivalent from a simulated run:

* :func:`job_history` — a JSON-serializable dict with the job's
  configuration, per-task phases, counters, and milestones;
* :func:`render_timeline` — an ASCII Gantt chart of map and reduce
  tasks (launch → phases → finish), which makes wave scheduling,
  slowstart, stragglers and speculative rescues visible at a glance.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.hadoop.counters import counters_dict
from repro.hadoop.result import SimJobResult


def job_history(result: SimJobResult) -> Dict:
    """The job's history record (plain dict; ``json.dumps``-able)."""
    return {
        "job": {
            "benchmark": f"MR-{result.config.pattern.upper()}",
            "framework": result.jobconf.version,
            "cluster": result.cluster.name,
            "slaves": result.cluster.num_slaves,
            "racks": result.cluster.racks,
            "network": result.interconnect_name,
            "transport": result.transport_name,
            "execution_time_s": round(result.execution_time, 3),
        },
        "config": result.config.describe(),
        "counters": counters_dict(result),
        "maps": [
            {
                "task": f"map{s.map_id}",
                "node": s.node,
                "start_s": round(s.started_at, 3),
                "finish_s": round(s.finished_at, 3),
                "spills": s.spills,
                "merge_passes": s.merge_passes,
            }
            for s in result.map_stats
        ],
        "reduces": [
            {
                "task": f"reduce{s.reduce_id}",
                "node": s.node,
                "start_s": round(s.started_at, 3),
                "shuffle_end_s": round(s.shuffle_finished_at, 3),
                "finish_s": round(s.finished_at, 3),
                "bytes_fetched": int(s.bytes_fetched),
                "bytes_spilled": int(s.bytes_spilled),
            }
            for s in result.reduce_stats
        ],
        "events": [
            {"t": round(ev.time, 3), "kind": ev.kind, "detail": ev.detail}
            for ev in result.events
        ],
    }


def history_json(result: SimJobResult, indent: int = 2) -> str:
    """The history record serialized as JSON text."""
    return json.dumps(job_history(result), indent=indent)


def _bar(start: float, end: float, span: float, width: int,
         fill: str) -> str:
    begin = int(round(width * start / span))
    finish = max(begin + 1, int(round(width * end / span)))
    return " " * begin + fill * (finish - begin)


def render_timeline(result: SimJobResult, width: int = 64) -> str:
    """ASCII Gantt chart of all tasks.

    Map tasks render as ``m``; reduce tasks show their shuffle phase as
    ``s`` and the merge+reduce tail as ``r``.
    """
    span = max(result.execution_time, 1e-9)
    label_width = max(
        [len(f"map{s.map_id}@{s.node}") for s in result.map_stats]
        + [len(f"reduce{s.reduce_id}@{s.node}") for s in result.reduce_stats]
    )
    lines: List[str] = [
        f"0s {' ' * (label_width + width - 10)}{result.execution_time:.1f}s"
    ]
    for s in result.map_stats:
        label = f"map{s.map_id}@{s.node}".ljust(label_width)
        lines.append(
            f"{label} |{_bar(s.started_at, s.finished_at, span, width, 'm')}"
        )
    for s in result.reduce_stats:
        label = f"reduce{s.reduce_id}@{s.node}".ljust(label_width)
        shuffle = _bar(s.started_at, s.shuffle_finished_at, span, width, "s")
        tail_width = max(
            0,
            int(round(width * s.finished_at / span))
            - int(round(width * s.shuffle_finished_at / span)),
        )
        lines.append(f"{label} |{shuffle}{'r' * tail_width}")
    lines.append(" " * label_width + "  m=map  s=shuffle  r=merge+reduce")
    return "\n".join(lines)
