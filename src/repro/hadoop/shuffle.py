"""The shuffle service: fetchers, flows, and the reduce-side merge.

This is the paper's subject — "the heart of MapReduce". Per reducer:

* ``mapred.reduce.parallel.copies`` fetcher threads pull segments from
  map hosts as map outputs are published;
* each fetch is a network flow on the max-min-fair fabric, preceded by
  the transport's per-fetch setup and (for the HTTP servlet) a
  server-side read of the map-output file;
* arriving segments accumulate merge work; segments beyond the
  in-memory budget spill to local disk (asynchronously) and are read
  back during the sort phase;
* the merge thread runs concurrently with fetching — the transport's
  ``merge_overlap`` says how much of the merge the pipeline can hide
  (the stock HTTP shuffle hides some; MRoIB's SEDA pipeline hides all).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

from repro.hadoop.costmodel import CostModel
from repro.hadoop.job import JobConf
from repro.hadoop.maptask import MapOutput
from repro.hadoop.node import SimNode
from repro.net.fabric import NetworkFabric
from repro.net.transport import TransportModel
from repro.sim.events import AllOf, Event
from repro.sim.kernel import Simulator
from repro.sim.resources import SlotResource
from repro.sim.trace import CAT_PHASE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults import FaultInjector

#: Back-off before re-issuing a failed fetch (seconds). Real Hadoop
#: penalizes flaky hosts with an exponential back-off; a flat delay
#: keeps the model simple and deterministic.
FETCH_RETRY_DELAY = 1.0

#: Hard ceiling on per-segment retries so an adversarial
#: ``fetch_failure_probability`` cannot hang a run.
_MAX_FETCH_ATTEMPTS = 256


class MapOutputRegistry:
    """Publishes finished map outputs to waiting reducers."""

    def __init__(self, sim: Simulator, num_maps: int):
        self.sim = sim
        self.num_maps = num_maps
        self.outputs: List[MapOutput] = []
        self._waiters: List[Event] = []

    def register(self, output: MapOutput) -> None:
        if len(self.outputs) >= self.num_maps:
            raise RuntimeError("more map outputs than map tasks")
        self.outputs.append(output)
        waiters, self._waiters = self._waiters, []
        for ev in waiters:
            ev.succeed()

    def wait_for_more(self) -> Event:
        """Event fired when the next map output is registered."""
        ev = self.sim.event(name="map-output-available")
        self._waiters.append(ev)
        return ev

    @property
    def complete(self) -> bool:
        return len(self.outputs) >= self.num_maps


@dataclass
class ShuffleStats:
    """What one reducer's shuffle measured."""

    reduce_id: int
    bytes_fetched: float = 0.0
    #: uncompressed volume (== bytes_fetched without compression).
    logical_bytes_fetched: float = 0.0
    records_fetched: int = 0
    local_fetches: int = 0
    remote_fetches: int = 0
    #: Fetches re-issued by fault injection (flaky-fetch coin).
    fetch_retries: int = 0
    bytes_spilled: float = 0.0
    shuffle_started_at: float = 0.0
    fetch_finished_at: float = 0.0
    merge_finished_at: float = 0.0
    #: merge CPU-seconds hidden behind fetching vs exposed after it.
    merge_work_total: float = 0.0
    merge_work_exposed: float = 0.0


class ReducerShuffle:
    """Runs the shuffle (and trailing merge) for one reduce task."""

    def __init__(
        self,
        reduce_id: int,
        node: SimNode,
        registry: MapOutputRegistry,
        fabric: NetworkFabric,
        transport: TransportModel,
        jobconf: JobConf,
        costs: CostModel,
        faults: Optional["FaultInjector"] = None,
        fault_salt: int = 0,
    ):
        self.reduce_id = reduce_id
        self.node = node
        self.registry = registry
        self.fabric = fabric
        self.transport = transport
        self.jobconf = jobconf
        self.costs = costs
        self.faults = faults
        self.fault_salt = fault_salt
        self.stats = ShuffleStats(reduce_id=reduce_id)
        self._fetch_slots = SlotResource(
            node.sim, jobconf.parallel_copies, name=f"r{reduce_id}:fetchers"
        )
        self._in_memory_bytes = 0.0
        self._pending_spills: List[Event] = []
        self._merge_work = 0.0

    # -- fetching ----------------------------------------------------------

    def _fetch(self, output: MapOutput):
        """Fetch one map's segment for this reducer (fetcher process)."""
        seg_bytes = output.bytes_for(self.reduce_id)
        seg_logical = output.logical_bytes_for(self.reduce_id)
        seg_records = output.records_for(self.reduce_id)
        grant = self._fetch_slots.request()
        yield grant
        try:
            if seg_bytes <= 0:
                return
            server = output.node
            attempt = 0
            while True:
                if self.transport.reads_map_output_from_disk:
                    yield server.storage.read(seg_bytes)
                flow = self.fabric.start_flow(
                    server.name,
                    self.node.name,
                    seg_bytes,
                    delay=self.transport.fetch_setup + self.costs.fetch_client_overhead,
                )
                try:
                    yield flow.done
                finally:
                    # Only reachable on faulted paths: the fetcher was
                    # killed (node crash) with the transfer in flight.
                    if flow.finished_at is None:
                        self.fabric.abort_flow(flow)
                if (self.faults is not None
                        and attempt < _MAX_FETCH_ATTEMPTS
                        and self.faults.fetch_fails(
                            self.reduce_id, output.map_id, attempt,
                            self.fault_salt)):
                    attempt += 1
                    self.stats.fetch_retries += 1
                    self.faults.note_fetch_retry(seg_bytes)
                    yield self.node.sim.timeout(FETCH_RETRY_DELAY)
                    continue
                break
            if server is self.node:
                self.stats.local_fetches += 1
            else:
                self.stats.remote_fetches += 1
            self.stats.bytes_fetched += seg_bytes
            self.stats.logical_bytes_fetched += seg_logical
            self.stats.records_fetched += seg_records
            self._merge_work += self.costs.shuffle_merge_time(
                seg_records, seg_logical, zero_copy=self.transport.zero_copy
            )
            if seg_logical > seg_bytes:  # compressed on the wire
                self._merge_work += (
                    seg_logical * self.costs.cpu_per_byte_decompress
                )
            self._account_memory(seg_logical)
        finally:
            self._fetch_slots.release()

    def _account_memory(self, seg_bytes: float) -> None:
        """Track the in-memory budget; overflow spills to disk (async)."""
        budget = self.jobconf.shuffle_memory_bytes
        room = max(0.0, budget - self._in_memory_bytes)
        in_mem = min(seg_bytes, room)
        overflow = seg_bytes - in_mem
        self._in_memory_bytes += in_mem
        if overflow > 0:
            # Merge-to-disk frees memory: write the overflow out. The
            # runs are deleted by the final merge — transient I/O.
            self.stats.bytes_spilled += overflow
            self._pending_spills.append(
                self.node.storage.write(overflow, transient=True)
            )

    # -- the shuffle phase ---------------------------------------------------

    def run(self):
        """Shuffle + merge process; returns ShuffleStats."""
        sim = self.node.sim
        self.stats.shuffle_started_at = sim.now
        tracer = sim.tracer
        lane = f"reduce{self.reduce_id}"
        fetch_span = (
            tracer.begin("shuffle-fetch", CAT_PHASE, self.node.name, lane)
            if tracer.enabled else None
        )
        fetch_procs = []
        try:
            next_idx = 0
            # Hadoop's fetcher shuffles its host list so the reducers do
            # not all hammer the same servers in lock step; dispatch
            # available outputs in a per-reducer pseudo-random order.
            rng = random.Random(0x5EED ^ (self.reduce_id * 7919))
            pending: List[MapOutput] = []
            while next_idx < self.registry.num_maps or pending:
                while next_idx < len(self.registry.outputs):
                    pending.append(self.registry.outputs[next_idx])
                    next_idx += 1
                while pending:
                    output = pending.pop(rng.randrange(len(pending)))
                    fetch_procs.append(sim.process(self._fetch(output)))
                if next_idx < self.registry.num_maps:
                    yield self.registry.wait_for_more()
            if fetch_procs:
                yield AllOf(sim, fetch_procs)
        finally:
            # Only reachable on faulted paths: the shuffle was killed
            # (node crash) — take the fetchers (and their flows) down
            # with it. On a normal exit every fetcher is already done.
            for proc in fetch_procs:
                if proc.is_alive:
                    proc.kill()
        self.stats.fetch_finished_at = sim.now
        if fetch_span is not None:
            fetch_span.end(
                bytes=self.stats.bytes_fetched,
                local=self.stats.local_fetches,
                remote=self.stats.remote_fetches,
            )
        merge_span = (
            tracer.begin("shuffle-merge", CAT_PHASE, self.node.name, lane)
            if tracer.enabled else None
        )

        # Merge work that fetching could not hide runs now. The merge
        # thread had one core for the whole fetch window; the transport
        # says how efficiently the pipeline used it. Fully pipelined
        # engines (MRoIB) defer this accounting to the reduce task,
        # which models the whole reduce side as a bottleneck pipeline.
        fetch_window = self.stats.fetch_finished_at - self.stats.shuffle_started_at
        self.stats.merge_work_total = self._merge_work
        if self.transport.pipelined_final_merge:
            exposed = 0.0
        else:
            absorbed = min(
                self._merge_work, self.transport.merge_overlap * fetch_window
            )
            exposed = self._merge_work - absorbed
        self.stats.merge_work_exposed = exposed
        if exposed > 0:
            yield from self.node.cpu_burst(exposed)

        if self.transport.pipelined_final_merge:
            # Spill runs stream within the SEDA pipeline; their cost is
            # cache-bandwidth load already charged at write time, not a
            # serial barrier.
            pass
        else:
            if self._pending_spills:
                yield AllOf(sim, self._pending_spills)
            if self.stats.bytes_spilled > 0:
                # Sort phase: read the just-written runs back for the
                # final merge (still cache-resident).
                yield self.node.storage.read(
                    self.stats.bytes_spilled, transient=True
                )
            # The final merge needs every run, so in the stock framework
            # it serializes between the last fetch and the reduce
            # function. A pipelined engine streams it instead (the
            # reduce task models that pipeline).
            final_merge = self.costs.final_merge_time(
                self.stats.records_fetched, self.stats.logical_bytes_fetched
            )
            if final_merge > 0:
                yield from self.node.cpu_burst(final_merge)
        self.stats.merge_finished_at = sim.now
        if merge_span is not None:
            merge_span.end(
                exposed_cpu=self.stats.merge_work_exposed,
                spilled=self.stats.bytes_spilled,
            )
        return self.stats
