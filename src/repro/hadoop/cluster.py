"""Cluster hardware specifications.

The paper's two testbeds (Sect. 5.1):

* **Cluster A** — nine Intel Westmere nodes: dual quad-core Xeon at
  2.67 GHz (8 cores), 24 GB RAM, two 1 TB HDDs, 1 GigE + NetEffect
  NE020 10 GigE + Mellanox QDR IB. Experiments use 4 or 8 slave nodes.
* **Cluster B** — TACC Stampede: dual octa-core Sandy Bridge E5-2680 at
  2.7 GHz (16 cores), 32 GB RAM, a single 80 GB HDD, Mellanox FDR IB.
  Experiments use 8 or 16 slave nodes.

Only the capacity *ratios* matter for reproducing the paper's shapes;
the specs below use vendor-typical numbers for the 2012-14 parts.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List

GB = 1e9
MB = 1e6


@dataclass(frozen=True)
class NodeSpec:
    """Hardware of one slave node."""

    cores: int
    clock_ghz: float
    ram_bytes: float
    #: Number of local data disks and per-disk sequential bandwidth.
    disks: int
    disk_bandwidth: float
    #: Fraction of RAM the OS page cache effectively lends to shuffle
    #: I/O (dirty-page buffering + read cache of just-written files).
    page_cache_fraction: float = 0.5
    #: Service bandwidth for cache-absorbed I/O (memcpy speed).
    cache_bandwidth: float = 2.5e9

    def __post_init__(self) -> None:
        if self.cores < 1 or self.disks < 1:
            raise ValueError("cores and disks must be >= 1")
        if self.clock_ghz <= 0 or self.ram_bytes <= 0 or self.disk_bandwidth <= 0:
            raise ValueError("clock, RAM and disk bandwidth must be positive")
        if not 0.0 <= self.page_cache_fraction <= 1.0:
            raise ValueError("page_cache_fraction must be in [0, 1]")

    @property
    def aggregate_disk_bandwidth(self) -> float:
        """Combined sequential bandwidth of the node's data disks."""
        return self.disks * self.disk_bandwidth

    @property
    def page_cache_bytes(self) -> float:
        """I/O bytes the page cache can absorb before hitting platters."""
        return self.ram_bytes * self.page_cache_fraction


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of slave nodes (plus an implicit master).

    Both paper testbeds hang off a single non-blocking switch
    (``racks=1``). The multi-rack extension places slaves round-robin
    into ``racks`` racks whose uplinks carry
    ``nodes_per_rack * NIC / rack_oversubscription`` — the classic
    datacenter oversubscription knob the paper's "expanding the
    cluster" discussion alludes to.
    """

    name: str
    node: NodeSpec
    num_slaves: int
    racks: int = 1
    rack_oversubscription: float = 1.0

    def __post_init__(self) -> None:
        if self.num_slaves < 1:
            raise ValueError(f"num_slaves must be >= 1, got {self.num_slaves}")
        if self.racks < 1:
            raise ValueError(f"racks must be >= 1, got {self.racks}")
        if self.rack_oversubscription < 1.0:
            raise ValueError(
                "rack_oversubscription must be >= 1 "
                f"(1 = non-blocking), got {self.rack_oversubscription}"
            )

    def slave_names(self) -> List[str]:
        return [f"slave{i}" for i in range(self.num_slaves)]

    def rack_of(self, slave_index: int) -> int:
        """Round-robin rack placement of a slave."""
        return slave_index % self.racks

    @property
    def nodes_per_rack(self) -> int:
        """Slaves in the fullest rack."""
        return -(-self.num_slaves // self.racks)

    def rack_uplink_bandwidth(self, nic_bandwidth: float) -> float:
        """Uplink capacity per rack for a given per-NIC bandwidth."""
        return self.nodes_per_rack * nic_bandwidth / self.rack_oversubscription

    def with_slaves(self, num_slaves: int) -> "ClusterSpec":
        """Same hardware, different slave count."""
        return replace(self, num_slaves=num_slaves)

    def with_racks(self, racks: int,
                   oversubscription: float = 1.0) -> "ClusterSpec":
        """Same hardware, multi-rack topology."""
        return replace(self, racks=racks,
                       rack_oversubscription=oversubscription)


#: Cluster A node: Intel Westmere (Xeon dual quad-core @ 2.67 GHz).
WESTMERE_NODE = NodeSpec(
    cores=8,
    clock_ghz=2.67,
    ram_bytes=24 * GB,
    disks=2,
    disk_bandwidth=120 * MB,
)

#: Cluster B node: TACC Stampede (dual octa-core E5-2680 @ 2.7 GHz).
STAMPEDE_NODE = NodeSpec(
    cores=16,
    clock_ghz=2.7,
    ram_bytes=32 * GB,
    disks=1,
    disk_bandwidth=110 * MB,
)


def cluster_a(num_slaves: int = 4) -> ClusterSpec:
    """The paper's Intel Westmere cluster (Sect. 5.1, Cluster A)."""
    return ClusterSpec(name="ClusterA-Westmere", node=WESTMERE_NODE,
                       num_slaves=num_slaves)


def cluster_b(num_slaves: int = 8) -> ClusterSpec:
    """The paper's TACC Stampede cluster (Sect. 5.1, Cluster B)."""
    return ClusterSpec(name="ClusterB-Stampede", node=STAMPEDE_NODE,
                       num_slaves=num_slaves)
