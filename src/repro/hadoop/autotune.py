"""Parameter auto-tuning: the suite's raison d'être, automated.

The paper motivates the suite with "to get optimal performance, it is
necessary to tune and optimize these factors, based on cluster and
workload characteristics". With a simulator under the suite, the tuning
loop itself becomes cheap: :func:`grid_search` sweeps JobConf knobs for
a given workload/cluster/network and returns the best configuration
with the full trial table.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import BenchmarkConfig
from repro.hadoop.cluster import ClusterSpec, cluster_a
from repro.hadoop.job import DEFAULT_JOB_CONF, JobConf
from repro.hadoop.simulation import run_simulated_job

MB = 1e6

#: The default tuning space: the three knobs the paper's §5 sweeps
#: cross-cut (buffer sizing, fetch parallelism, phase overlap).
DEFAULT_SPACE: Dict[str, Sequence[object]] = {
    "io_sort_mb": (50 * MB, 100 * MB, 200 * MB),
    "parallel_copies": (2, 5, 10),
    "reduce_slowstart": (0.05, 0.5, 1.0),
}


@dataclass
class Trial:
    """One evaluated configuration."""

    params: Dict[str, object]
    execution_time: float

    def __str__(self) -> str:
        inner = ", ".join(f"{k}={v:g}" if isinstance(v, float) else f"{k}={v}"
                          for k, v in self.params.items())
        return f"{self.execution_time:8.2f}s  {inner}"


@dataclass
class TuningResult:
    """Outcome of a grid search."""

    trials: List[Trial] = field(default_factory=list)
    base_jobconf: JobConf = DEFAULT_JOB_CONF

    @property
    def best(self) -> Trial:
        if not self.trials:
            raise ValueError("no trials recorded")
        return min(self.trials, key=lambda t: t.execution_time)

    @property
    def worst(self) -> Trial:
        if not self.trials:
            raise ValueError("no trials recorded")
        return max(self.trials, key=lambda t: t.execution_time)

    @property
    def spread_pct(self) -> float:
        """How much tuning matters: (worst - best) / worst * 100."""
        worst = self.worst.execution_time
        return 100.0 * (worst - self.best.execution_time) / worst

    def best_jobconf(self) -> JobConf:
        """The winning JobConf (base conf + best parameters)."""
        return replace(self.base_jobconf, **self.best.params)

    def table(self, top: Optional[int] = None) -> str:
        ordered = sorted(self.trials, key=lambda t: t.execution_time)
        if top is not None:
            ordered = ordered[:top]
        return "\n".join(str(t) for t in ordered)


def grid_search(
    config: BenchmarkConfig,
    space: Optional[Dict[str, Sequence[object]]] = None,
    cluster: Optional[ClusterSpec] = None,
    base_jobconf: Optional[JobConf] = None,
) -> TuningResult:
    """Exhaustively evaluate a JobConf parameter grid for one workload.

    ``space`` maps JobConf field names to candidate values; every
    combination is simulated (deterministically) and ranked by job
    execution time.
    """
    space = space if space is not None else DEFAULT_SPACE
    cluster = cluster if cluster is not None else cluster_a()
    base = base_jobconf if base_jobconf is not None else DEFAULT_JOB_CONF
    for name in space:
        if not hasattr(base, name):
            raise ValueError(f"unknown JobConf field {name!r}")
    result = TuningResult(base_jobconf=base)
    names = list(space)
    for values in itertools.product(*(space[n] for n in names)):
        params = dict(zip(names, values))
        jobconf = replace(base, **params)
        job = run_simulated_job(config, cluster=cluster, jobconf=jobconf)
        result.trials.append(Trial(params=params,
                                   execution_time=job.execution_time))
    return result
