"""The Runtime protocol: one task-lifecycle engine, two scheduling policies.

The paper benchmarks two framework generations — Hadoop 1.x (MRv1
JobTracker slots) and 2.x (YARN containers). Both run the *same* job
lifecycle: place tasks round-robin, hand out execution grants from
per-node pools in waves, launch attempts after half a heartbeat, retry
failures, fire reduce slowstart, and book completions. Only the *pool
policy* differs (dedicated map/reduce slots vs one fungible container
pool plus an AppMaster).

This module factors that split:

* :class:`Runtime` — the shared base: placement, grant acquisition and
  release, wave accounting, and lifecycle hooks. Concrete runtimes
  (:class:`~repro.hadoop.jobtracker.JobTrackerScheduler`,
  :class:`~repro.hadoop.yarn.YarnScheduler`) override only the pool
  construction and framework-specific hooks, and register themselves by
  name so drivers select a runtime with a string instead of branching.
* :class:`JobExecution` — the task-lifecycle engine extracted from the
  single-job and multi-job drivers: wave scheduling over the runtime's
  grants, seeded failure injection, speculative backup attempts,
  slowstart, and completion bookkeeping. Both
  :func:`repro.hadoop.simulation.run_simulated_job` and
  :func:`repro.hadoop.multijob.run_concurrent_jobs` drive it.

Every lifecycle step also emits structured spans onto the simulator's
:class:`~repro.sim.trace.Tracer` (``sched`` category: grant waits,
slowstart, speculation) — zero-overhead no-ops when tracing is off.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set, Type

from repro.hadoop.costmodel import CostModel
from repro.hadoop.events_log import JobEventLog
from repro.hadoop.job import JobConf
from repro.hadoop.maptask import MapTask
from repro.hadoop.node import SimNode
from repro.hadoop.reducetask import ReduceTask
from repro.hadoop.shuffle import MapOutputRegistry
from repro.sim.events import AllOf, AnyOf, Event
from repro.sim.kernel import Simulator
from repro.sim.resources import SlotResource
from repro.sim.trace import CAT_JOB, CAT_SCHED

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import BenchmarkConfig
    from repro.faults import FaultInjector
    from repro.net.fabric import NetworkFabric
    from repro.net.transport import TransportModel
    from repro.sim.process import Process

#: Speculation policy: consider backups once this fraction of maps is
#: done, for tasks running this factor beyond the mean duration.
SPECULATION_THRESHOLD = 0.75
SPECULATION_SLOWDOWN = 1.25


class TaskFailedError(RuntimeError):
    """A task exhausted ``max_task_attempts``."""


class Runtime:
    """Shared scheduling substrate for a Hadoop framework generation.

    Subclasses supply the pool policy by implementing :meth:`_build_pools`
    and :meth:`map_pool` / :meth:`reduce_pool`, plus the lifecycle hooks
    (:meth:`job_started`, :meth:`job_finished`, :attr:`task_start_extra`).
    Everything else — placement, grant bookkeeping, wave accounting — is
    implemented here once.
    """

    #: Registry key (also the ``JobConf.version`` value it serves).
    name: str = ""

    def __init__(
        self,
        sim: Simulator,
        nodes: List[SimNode],
        jobconf: JobConf,
        costs: CostModel,
    ):
        self.sim = sim
        self.nodes = nodes
        self.jobconf = jobconf
        self.costs = costs
        self._build_pools()

    # -- policy hooks (subclass responsibility) ---------------------------

    def _build_pools(self) -> None:
        """Create the per-node grant pools (slots or containers)."""
        raise NotImplementedError

    def map_pool(self, node: SimNode) -> SlotResource:
        """The pool a map task on ``node`` draws its grant from."""
        raise NotImplementedError

    def reduce_pool(self, node: SimNode) -> SlotResource:
        """The pool a reduce task on ``node`` draws its grant from."""
        raise NotImplementedError

    @property
    def task_start_extra(self) -> float:
        """Extra per-task start latency this framework generation adds."""
        return 0.0

    def job_started(self) -> None:
        """Hook for framework bring-up (e.g. the YARN AppMaster)."""

    def job_finished(self) -> None:
        """Hook for framework teardown."""

    # -- shared implementation --------------------------------------------

    @property
    def version(self) -> str:
        """Alias of :attr:`name` (the historical scheduler attribute)."""
        return self.name

    def map_node(self, map_id: int) -> SimNode:
        """Round-robin map placement (no data locality: no HDFS)."""
        return self.nodes[map_id % len(self.nodes)]

    def reduce_node(self, reduce_id: int) -> SimNode:
        return self.nodes[reduce_id % len(self.nodes)]

    def acquire_map(self, node: SimNode) -> Event:
        return self.map_pool(node).request()

    def release_map(self, node: SimNode) -> None:
        self.map_pool(node).release()

    def acquire_reduce(self, node: SimNode) -> Event:
        return self.reduce_pool(node).request()

    def release_reduce(self, node: SimNode) -> None:
        self.reduce_pool(node).release()

    def map_wave_count(self, num_maps: int) -> int:
        """How many grant waves the map phase needs (diagnostics)."""
        total = sum(self.map_pool(node).capacity for node in self.nodes)
        return -(-num_maps // total)


#: name -> Runtime subclass. Populated by :func:`register_runtime`.
RUNTIMES: Dict[str, Type[Runtime]] = {}


def register_runtime(cls: Type[Runtime]) -> Type[Runtime]:
    """Class decorator: publish a :class:`Runtime` under its ``name``."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must set a non-empty name")
    RUNTIMES[cls.name] = cls
    return cls


def _ensure_builtin_runtimes() -> None:
    # The built-in runtimes live in sibling modules that import this
    # one; importing them lazily here avoids the cycle while letting
    # create_runtime() work without repro.hadoop being fully imported.
    if "mrv1" not in RUNTIMES or "yarn" not in RUNTIMES:
        import repro.hadoop.jobtracker  # noqa: F401
        import repro.hadoop.yarn  # noqa: F401


def available_runtimes() -> List[str]:
    """Registered runtime names (sorted)."""
    _ensure_builtin_runtimes()
    return sorted(RUNTIMES)


def create_runtime(
    name: str,
    sim: Simulator,
    nodes: List[SimNode],
    jobconf: JobConf,
    costs: CostModel,
) -> Runtime:
    """Instantiate the runtime registered under ``name``.

    This is how the drivers select a framework generation — by the
    ``JobConf.version`` string, not by branching on classes.
    """
    _ensure_builtin_runtimes()
    try:
        cls = RUNTIMES[name]
    except KeyError:
        raise ValueError(
            f"unknown runtime {name!r}; known: {sorted(RUNTIMES)}"
        ) from None
    return cls(sim, nodes, jobconf, costs)


def attempt_fails(jobconf: JobConf, seed: int, kind: str, task_id: int,
                  attempt: int) -> bool:
    """Seeded per-(task, attempt) failure coin (order-independent)."""
    if jobconf.task_failure_probability <= 0.0:
        return False
    import random

    key = (seed * 1_000_003 + task_id * 101 + attempt * 7
           + (0 if kind == "map" else 499_979))
    return random.Random(key).random() < jobconf.task_failure_probability


class JobExecution:
    """One job's task lifecycle on a :class:`Runtime`.

    Owns the wave scheduling (grant acquisition per attempt), failure
    retries, speculative execution, slowstart, and completion
    bookkeeping that used to be duplicated across the single-job and
    concurrent-job drivers. Construct it with the shared world objects,
    then ``yield execution.start()`` (or ``run_until_event`` it) and
    read the completion state off the instance.

    ``placement_offset`` shifts the round-robin placement — the
    concurrent-job driver staggers jobs so they do not all pile onto
    the same first node.
    """

    def __init__(
        self,
        sim: Simulator,
        runtime: Runtime,
        config: "BenchmarkConfig",
        jobconf: JobConf,
        costs: CostModel,
        fabric: "NetworkFabric",
        transport: "TransportModel",
        matrix: "ShuffleMatrix",  # noqa: F821 - repro.core.matrix
        events: Optional[JobEventLog] = None,
        placement_offset: int = 0,
        label: str = "",
        faults: Optional["FaultInjector"] = None,
    ):
        self.sim = sim
        self.runtime = runtime
        self.config = config
        self.jobconf = jobconf
        self.costs = costs
        self.fabric = fabric
        self.transport = transport
        self.matrix = matrix
        self.events = events if events is not None else JobEventLog()
        self.placement_offset = placement_offset
        #: Lane prefix in trace output ("" for single jobs, "job2:"...).
        self.label = label
        #: Fault injection (``None`` on healthy runs — every fault hook
        #: below is guarded so the no-plan path is bit-identical).
        self.faults = faults
        self.registry = MapOutputRegistry(sim, config.num_maps)

        self.slowstart_target = max(
            0, int(round(jobconf.reduce_slowstart * config.num_maps))
        )
        self.slowstart_fired = sim.event(name=f"{label}slowstart")
        if self.slowstart_target == 0:
            self.slowstart_fired.succeed()
            self.events.record(sim.now, JobEventLog.SLOWSTART,
                               "0 maps required")

        # -- completion bookkeeping --
        self.winning_map: Dict[int, MapTask] = {}
        self.reduce_stats_by_id: Dict[int, ReduceTask] = {}
        self.first_reduce_start: Optional[float] = None
        self._running_since: Dict[int, float] = {}
        self._running_attempt: Dict[int, "Process"] = {}
        self._completed_durations: List[float] = []
        self._speculated: Set[int] = set()

    # -- map lifecycle ----------------------------------------------------

    def _make_map_task(self, map_id: int, node: SimNode) -> MapTask:
        return MapTask(
            map_id=map_id,
            node=node,
            segment_bytes=self.matrix.bytes[map_id],
            segment_records=self.matrix.records[map_id],
            jobconf=self.jobconf,
            costs=self.costs,
            start_extra=self.runtime.task_start_extra,
        )

    def _register_map(self, map_id: int, task: MapTask) -> None:
        sim = self.sim
        if map_id in self.winning_map:
            return
        self.winning_map[map_id] = task
        self.registry.register(task.output)
        self.events.record(sim.now, JobEventLog.MAP_FINISH, f"map{map_id}")
        self._completed_durations.append(task.stats.duration)
        loser = self._running_attempt.pop(map_id, None)
        if loser is not None and loser.is_alive:
            loser.kill()
        if (len(self.winning_map) >= self.slowstart_target
                and not self.slowstart_fired.triggered):
            self.slowstart_fired.succeed()
            self.events.record(sim.now, JobEventLog.SLOWSTART,
                               f"{self.slowstart_target} maps done")
            tracer = sim.tracer
            if tracer.enabled:
                tracer.instant("slowstart", CAT_JOB, "job",
                               f"{self.label}job",
                               maps_done=len(self.winning_map))

    def _run_map(self, map_id: int, node: SimNode, first_attempt: int = 0,
                 speculative: bool = False):
        sim = self.sim
        runtime = self.runtime
        jobconf = self.jobconf
        faults = self.faults
        lane = f"{self.label}map{map_id}"
        attempt = first_attempt
        while attempt < jobconf.max_task_attempts:
            if map_id in self.winning_map:
                return
            if faults is not None and faults.node_dead(node.name):
                node = faults.reroute(runtime.nodes,
                                      map_id + self.placement_offset)
            tracer = sim.tracer
            wait = (tracer.begin("grant-wait", CAT_SCHED, node.name, lane,
                                 attempt=attempt)
                    if tracer.enabled else None)
            grant = runtime.acquire_map(node)
            if faults is not None and faults.may_crash(node.name):
                # Wait for the grant OR the node's crash, whichever
                # happens first: a crash drains the pool (queued
                # requests withdraw and reschedule elsewhere; no
                # attempt is burned).
                yield AnyOf(sim, [grant, faults.crash_event(node.name)])
                if not grant.triggered:
                    runtime.map_pool(node).cancel(grant)
                    continue
                if faults.node_dead(node.name):
                    # Granted in the same instant the node died.
                    runtime.release_map(node)
                    continue
            else:
                yield grant
            if wait is not None:
                wait.end()
            if map_id in self.winning_map:
                runtime.release_map(node)
                return
            yield sim.timeout(self.costs.heartbeat_interval * 0.5)
            if faults is not None and faults.node_dead(node.name):
                runtime.release_map(node)
                continue
            self.events.record(sim.now, JobEventLog.MAP_START,
                               f"map{map_id} attempt{attempt}")
            task = self._make_map_task(map_id, node)
            self._running_since.setdefault(map_id, sim.now)
            attempt_started = sim.now
            task_proc = sim.process(task.run(),
                                    name=f"{self.label}map{map_id}.{attempt}")
            if map_id not in self._running_attempt:
                self._running_attempt[map_id] = task_proc
            if faults is not None:
                faults.track_attempt(node.name, task_proc, "map", map_id,
                                     task.total_bytes, self.placement_offset)
            try:
                yield task_proc
            finally:
                runtime.release_map(node)
                if faults is not None:
                    faults.untrack_attempt(node.name, task_proc)
            if task_proc.value is None:
                if faults is not None and faults.was_crash_killed(task_proc):
                    self.events.record(
                        sim.now, JobEventLog.TASK_FAILED,
                        f"map{map_id} attempt{attempt} node crashed")
                    tracer = sim.tracer
                    if tracer.enabled:
                        tracer.instant("task-failed", CAT_SCHED, node.name,
                                       lane, attempt=attempt, crash=True)
                    if self._running_attempt.get(map_id) is task_proc:
                        self._running_attempt.pop(map_id, None)
                    if speculative:
                        return  # the original attempt is still running
                    attempt += 1
                    continue
                return  # killed: a speculative sibling won
            injected = False
            failed = attempt_fails(jobconf, self.config.seed, "map", map_id,
                                   attempt)
            if not failed and faults is not None:
                failed = injected = faults.attempt_fails(
                    "map", map_id, attempt, self.placement_offset)
            if failed:
                self.events.record(sim.now, JobEventLog.TASK_FAILED,
                                   f"map{map_id} attempt{attempt} lost output")
                tracer = sim.tracer
                if tracer.enabled:
                    tracer.instant("task-failed", CAT_SCHED, node.name, lane,
                                   attempt=attempt)
                # _running_since is intentionally kept: speculation judges
                # elapsed time since the FIRST attempt, so repeatedly
                # failing tasks qualify as stragglers.
                self._running_attempt.pop(map_id, None)
                if faults is not None:
                    faults.note_failed_attempt(
                        "map", map_id, node.name, injected,
                        sim.now - attempt_started, task.total_bytes)
                attempt += 1
                continue
            won = map_id not in self.winning_map
            self._register_map(map_id, task)
            if faults is not None and won:
                faults.task_finished("map", map_id, node.name,
                                     self.placement_offset)
                if speculative:
                    faults.note_speculative_win()
            return
        raise TaskFailedError(
            f"map {map_id} failed {jobconf.max_task_attempts} attempts"
        )

    def _speculation_watcher(self):
        sim = self.sim
        config = self.config
        while len(self.winning_map) < config.num_maps:
            yield sim.timeout(self.costs.heartbeat_interval)
            if len(self.winning_map) < SPECULATION_THRESHOLD * config.num_maps:
                continue
            if not self._completed_durations:
                continue
            mean_duration = (
                sum(self._completed_durations) / len(self._completed_durations)
            )
            for map_id in range(config.num_maps):
                if map_id in self.winning_map or map_id in self._speculated:
                    continue
                started = self._running_since.get(map_id)
                if started is None:
                    continue
                if sim.now - started > SPECULATION_SLOWDOWN * mean_duration:
                    self._speculated.add(map_id)
                    backup_node = self.runtime.map_node(
                        map_id + self.placement_offset + 1
                    )
                    self.events.record(
                        sim.now, JobEventLog.SPECULATIVE,
                        f"map{map_id} backup on {backup_node.name}")
                    tracer = sim.tracer
                    if tracer.enabled:
                        tracer.instant(
                            "speculative-backup", CAT_SCHED,
                            backup_node.name, f"{self.label}map{map_id}")
                    if self.faults is not None:
                        self.faults.note_speculative_launch()
                    self._speculative_procs.append(sim.process(
                        self._run_map(
                            map_id, backup_node,
                            first_attempt=self.jobconf.max_task_attempts - 1,
                            speculative=True),
                        name=f"{self.label}spec-map{map_id}",
                    ))

    # -- reduce lifecycle -------------------------------------------------

    def _run_reduce(self, reduce_id: int, node: SimNode):
        sim = self.sim
        runtime = self.runtime
        jobconf = self.jobconf
        faults = self.faults
        lane = f"{self.label}reduce{reduce_id}"
        yield self.slowstart_fired
        attempt = 0
        while attempt < jobconf.max_task_attempts:
            if faults is not None and faults.node_dead(node.name):
                node = faults.reroute(runtime.nodes,
                                      reduce_id + self.placement_offset)
            tracer = sim.tracer
            wait = (tracer.begin("grant-wait", CAT_SCHED, node.name, lane,
                                 attempt=attempt)
                    if tracer.enabled else None)
            grant = runtime.acquire_reduce(node)
            if faults is not None and faults.may_crash(node.name):
                yield AnyOf(sim, [grant, faults.crash_event(node.name)])
                if not grant.triggered:
                    runtime.reduce_pool(node).cancel(grant)
                    continue
                if faults.node_dead(node.name):
                    runtime.release_reduce(node)
                    continue
            else:
                yield grant
            if wait is not None:
                wait.end()
            if self.first_reduce_start is None:
                self.first_reduce_start = sim.now
            self.events.record(sim.now, JobEventLog.REDUCE_START,
                               f"reduce{reduce_id} attempt{attempt}")
            task = ReduceTask(
                reduce_id=reduce_id,
                node=node,
                registry=self.registry,
                fabric=self.fabric,
                transport=self.transport,
                jobconf=jobconf,
                costs=self.costs,
                start_extra=runtime.task_start_extra,
                faults=faults,
                fault_salt=self.placement_offset,
            )
            attempt_started = sim.now
            task_proc = sim.process(
                task.run(),
                name=f"{self.label}reduce{reduce_id}.{attempt}")
            if faults is not None:
                faults.track_attempt(
                    node.name, task_proc, "reduce", reduce_id,
                    task.fetched_so_far, self.placement_offset)
            try:
                yield task_proc
            finally:
                runtime.release_reduce(node)
                if faults is not None:
                    faults.untrack_attempt(node.name, task_proc)
            if task_proc.value is None:
                if faults is not None and faults.was_crash_killed(task_proc):
                    self.events.record(
                        sim.now, JobEventLog.TASK_FAILED,
                        f"reduce{reduce_id} attempt{attempt} node crashed")
                    tracer = sim.tracer
                    if tracer.enabled:
                        tracer.instant("task-failed", CAT_SCHED, node.name,
                                       lane, attempt=attempt, crash=True)
                    attempt += 1
                    continue
                return  # killed by the driver (job abandoned)
            injected = False
            failed = attempt_fails(jobconf, self.config.seed, "reduce",
                                   reduce_id, attempt)
            if not failed and faults is not None:
                failed = injected = faults.attempt_fails(
                    "reduce", reduce_id, attempt, self.placement_offset)
            if failed:
                self.events.record(sim.now, JobEventLog.TASK_FAILED,
                                   f"reduce{reduce_id} attempt{attempt}")
                tracer = sim.tracer
                if tracer.enabled:
                    tracer.instant("task-failed", CAT_SCHED, node.name, lane,
                                   attempt=attempt)
                if faults is not None:
                    faults.note_failed_attempt(
                        "reduce", reduce_id, node.name, injected,
                        sim.now - attempt_started,
                        task.stats.bytes_fetched)
                attempt += 1
                continue
            self.reduce_stats_by_id[reduce_id] = task
            self.events.record(sim.now, JobEventLog.REDUCE_FINISH,
                               f"reduce{reduce_id}")
            if faults is not None:
                faults.task_finished("reduce", reduce_id, node.name,
                                     self.placement_offset)
            return
        raise TaskFailedError(
            f"reduce {reduce_id} failed {jobconf.max_task_attempts} attempts"
        )

    # -- driving ----------------------------------------------------------

    def start(self) -> Event:
        """Spawn every task-lifecycle process; returns the completion
        event (an :class:`~repro.sim.events.AllOf` over all of them)."""
        sim = self.sim
        config = self.config
        offset = self.placement_offset
        map_procs = [
            sim.process(
                self._run_map(m, self.runtime.map_node(m + offset)),
                name=f"{self.label}sched-map{m}")
            for m in range(config.num_maps)
        ]
        self._speculative_procs: List["Process"] = []
        if self.jobconf.speculative_execution:
            sim.process(self._speculation_watcher(),
                        name=f"{self.label}speculation-watcher")
        reduce_procs = [
            sim.process(
                self._run_reduce(r, self.runtime.reduce_node(r + offset)),
                name=f"{self.label}sched-reduce{r}")
            for r in range(config.num_reduces)
        ]
        return AllOf(sim, map_procs + reduce_procs)

    # -- completion accessors ---------------------------------------------

    @property
    def map_phase_end(self) -> float:
        return max(t.stats.finished_at for t in self.winning_map.values())

    def map_stats(self) -> List["MapTaskStats"]:  # noqa: F821
        return [self.winning_map[m].stats
                for m in range(self.config.num_maps)]

    def reduce_stats(self) -> List["ReduceTaskStats"]:  # noqa: F821
        return [self.reduce_stats_by_id[r].stats
                for r in range(self.config.num_reduces)]
