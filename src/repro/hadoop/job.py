"""Job configuration: the Hadoop parameters the suite can set.

The paper notes the suite "can also dynamically set the Hadoop
MapReduce configuration parameters"; :class:`JobConf` carries the ones
the simulated framework honours, with Hadoop 1.2.1 defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

MB = 1e6

#: Framework generations.
MRV1 = "mrv1"
YARN = "yarn"
VERSIONS = (MRV1, YARN)


@dataclass(frozen=True)
class JobConf:
    """Framework-level knobs (names follow the Hadoop properties)."""

    #: ``io.sort.mb`` — map-side sort buffer, bytes.
    io_sort_mb: float = 100 * MB
    #: ``io.sort.spill.percent`` — buffer fill fraction that triggers a spill.
    sort_spill_percent: float = 0.80
    #: ``io.sort.factor`` — streams merged at once.
    sort_factor: int = 10
    #: ``mapred.reduce.parallel.copies`` — concurrent fetchers per reducer.
    parallel_copies: int = 5
    #: ``mapred.reduce.slowstart.completed.maps`` — fraction of maps that
    #: must finish before reducers launch.
    reduce_slowstart: float = 0.05
    #: Reduce-side in-memory shuffle budget (heap * input buffer pct).
    #: Hadoop 1.x: 200 MB child heap x 0.70.
    shuffle_memory_bytes: float = 140 * MB
    #: MRv1 slots per TaskTracker; ``None`` derives from the node size
    #: (cores/2 map slots, cores/4 reduce slots — common 2012 practice).
    map_slots_per_node: Optional[int] = None
    reduce_slots_per_node: Optional[int] = None
    #: YARN containers per NodeManager; ``None`` derives cores-1.
    containers_per_node: Optional[int] = None
    #: Framework generation running the job.
    version: str = MRV1
    #: ``mapred.compress.map.output`` — compress intermediate data.
    compress_map_output: bool = False
    #: Compressed-size fraction when compression is on (snappy-like
    #: ratios on binary benchmark payloads).
    compression_ratio: float = 0.45
    #: Fraction of map-output records surviving the combiner, or
    #: ``None`` for no combiner (the paper's benchmarks run without
    #: one; the suite supports it as a tunable).
    combiner_reduction: Optional[float] = None
    #: ``mapred.map.tasks.speculative.execution`` (and reduce): launch
    #: backup attempts for stragglers.
    speculative_execution: bool = False
    #: Per-task failure probability (failure-injection test hook; a
    #: failed task is re-attempted from scratch).
    task_failure_probability: float = 0.0
    #: Maximum attempts per task before the job fails
    #: (``mapred.map.max.attempts``).
    max_task_attempts: int = 4
    #: Hadoop Streaming: run map/reduce functions as external processes
    #: connected over pipes. Adds per-record serialization/pipe costs on
    #: both sides — how much slower a streaming-based benchmark suite
    #: would measure the same job.
    streaming: bool = False

    def __post_init__(self) -> None:
        if self.version not in VERSIONS:
            raise ValueError(f"version must be one of {VERSIONS}, got {self.version!r}")
        if self.io_sort_mb <= 0:
            raise ValueError("io_sort_mb must be positive")
        if not 0.0 < self.sort_spill_percent <= 1.0:
            raise ValueError("sort_spill_percent must be in (0, 1]")
        if self.sort_factor < 2:
            raise ValueError("sort_factor must be >= 2")
        if self.parallel_copies < 1:
            raise ValueError("parallel_copies must be >= 1")
        if not 0.0 <= self.reduce_slowstart <= 1.0:
            raise ValueError("reduce_slowstart must be in [0, 1]")
        if self.shuffle_memory_bytes <= 0:
            raise ValueError("shuffle_memory_bytes must be positive")
        for field_name in ("map_slots_per_node", "reduce_slots_per_node",
                           "containers_per_node"):
            value = getattr(self, field_name)
            if value is not None and value < 1:
                raise ValueError(f"{field_name} must be >= 1 when set")
        if not 0.0 < self.compression_ratio <= 1.0:
            raise ValueError("compression_ratio must be in (0, 1]")
        if self.combiner_reduction is not None and not (
            0.0 < self.combiner_reduction <= 1.0
        ):
            raise ValueError("combiner_reduction must be in (0, 1] or None")
        if not 0.0 <= self.task_failure_probability < 1.0:
            raise ValueError("task_failure_probability must be in [0, 1)")
        if self.max_task_attempts < 1:
            raise ValueError("max_task_attempts must be >= 1")

    # -- derived -----------------------------------------------------------

    @property
    def spill_threshold_bytes(self) -> float:
        """Map output bytes that trigger one spill."""
        return self.io_sort_mb * self.sort_spill_percent

    @property
    def wire_fraction(self) -> float:
        """Bytes-on-wire per map-output byte (compression effect)."""
        return self.compression_ratio if self.compress_map_output else 1.0

    @property
    def combine_fraction(self) -> float:
        """Records surviving the combiner (1.0 when disabled)."""
        return 1.0 if self.combiner_reduction is None else self.combiner_reduction

    def map_slots(self, cores: int) -> int:
        if self.map_slots_per_node is not None:
            return self.map_slots_per_node
        return max(2, cores // 2)

    def reduce_slots(self, cores: int) -> int:
        if self.reduce_slots_per_node is not None:
            return self.reduce_slots_per_node
        return max(1, cores // 4)

    def containers(self, cores: int) -> int:
        if self.containers_per_node is not None:
            return self.containers_per_node
        return max(2, cores - 1)

    def for_yarn(self) -> "JobConf":
        return replace(self, version=YARN)

    def for_mrv1(self) -> "JobConf":
        return replace(self, version=MRV1)


DEFAULT_JOB_CONF = JobConf()
