"""MRv1 scheduling: JobTracker/TaskTracker fixed slots.

Hadoop 1.x runs a fixed number of map slots and reduce slots per
TaskTracker; tasks are handed out on heartbeats. The micro-benchmarks
on Cluster A (16 maps / 8 reduces on 4 slaves) run as one map wave of
4 per node and 2 reducers per node with the defaults derived from the
8-core Westmere nodes.
"""

from __future__ import annotations

from typing import Dict, List

from repro.hadoop.costmodel import CostModel
from repro.hadoop.job import JobConf, MRV1
from repro.hadoop.node import SimNode
from repro.sim.events import Event
from repro.sim.kernel import Simulator
from repro.sim.resources import SlotResource


class JobTrackerScheduler:
    """Slot-based task placement, round-robin across TaskTrackers."""

    version = MRV1

    def __init__(
        self,
        sim: Simulator,
        nodes: List[SimNode],
        jobconf: JobConf,
        costs: CostModel,
    ):
        self.sim = sim
        self.nodes = nodes
        self.jobconf = jobconf
        self.costs = costs
        self._map_slots: Dict[str, SlotResource] = {}
        self._reduce_slots: Dict[str, SlotResource] = {}
        for node in nodes:
            cores = node.spec.cores
            self._map_slots[node.name] = SlotResource(
                sim, jobconf.map_slots(cores), name=f"{node.name}:map-slots"
            )
            self._reduce_slots[node.name] = SlotResource(
                sim, jobconf.reduce_slots(cores), name=f"{node.name}:reduce-slots"
            )

    #: extra per-task start latency this framework generation adds.
    @property
    def task_start_extra(self) -> float:
        return 0.0

    def map_node(self, map_id: int) -> SimNode:
        """Round-robin map placement (no data locality: no HDFS)."""
        return self.nodes[map_id % len(self.nodes)]

    def reduce_node(self, reduce_id: int) -> SimNode:
        return self.nodes[reduce_id % len(self.nodes)]

    def acquire_map(self, node: SimNode) -> Event:
        return self._map_slots[node.name].request()

    def release_map(self, node: SimNode) -> None:
        self._map_slots[node.name].release()

    def acquire_reduce(self, node: SimNode) -> Event:
        return self._reduce_slots[node.name].request()

    def release_reduce(self, node: SimNode) -> None:
        self._reduce_slots[node.name].release()

    def job_started(self) -> None:
        """Hook for framework bring-up (nothing extra in MRv1)."""

    def job_finished(self) -> None:
        """Hook for framework teardown (nothing extra in MRv1)."""

    def map_wave_count(self, num_maps: int) -> int:
        """How many slot waves the map phase needs (diagnostics)."""
        total_slots = sum(r.capacity for r in self._map_slots.values())
        return -(-num_maps // total_slots)
