"""MRv1 scheduling policy: JobTracker/TaskTracker fixed slots.

Hadoop 1.x runs a fixed number of map slots and reduce slots per
TaskTracker; tasks are handed out on heartbeats. The micro-benchmarks
on Cluster A (16 maps / 8 reduces on 4 slaves) run as one map wave of
4 per node and 2 reducers per node with the defaults derived from the
8-core Westmere nodes.

All lifecycle mechanics live in :class:`repro.hadoop.runtime.Runtime`;
this class only binds map and reduce tasks to their dedicated slot
pools.
"""

from __future__ import annotations

from typing import Dict

from repro.hadoop.job import MRV1
from repro.hadoop.node import SimNode
from repro.hadoop.runtime import Runtime, register_runtime
from repro.sim.resources import SlotResource


@register_runtime
class JobTrackerScheduler(Runtime):
    """Slot-based task placement, round-robin across TaskTrackers."""

    name = MRV1

    def _build_pools(self) -> None:
        self._map_slots: Dict[str, SlotResource] = {}
        self._reduce_slots: Dict[str, SlotResource] = {}
        for node in self.nodes:
            cores = node.spec.cores
            self._map_slots[node.name] = SlotResource(
                self.sim, self.jobconf.map_slots(cores),
                name=f"{node.name}:map-slots"
            )
            self._reduce_slots[node.name] = SlotResource(
                self.sim, self.jobconf.reduce_slots(cores),
                name=f"{node.name}:reduce-slots"
            )

    def map_pool(self, node: SimNode) -> SlotResource:
        return self._map_slots[node.name]

    def reduce_pool(self, node: SimNode) -> SlotResource:
        return self._reduce_slots[node.name]
