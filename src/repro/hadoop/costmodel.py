"""The framework cost model: where CPU time goes, per record and byte.

Every constant here is a *calibration input* to the simulation — kept in
one place, documented, and exercised by the ablation benchmarks. The
values are derived from well-known Hadoop 1.x per-record overheads on
~2.6 GHz Westmere cores (task JVM startup of a second-plus, a few
microseconds of framework path per record through collect/spill/merge/
reduce). Costs scale inversely with node clock speed relative to
:attr:`base_clock_ghz`.

Nothing in this file is fit to the paper's *outputs*; the shapes in
Figs. 2-8 must emerge from the interaction of these inputs with the
network, disk, and scheduling models.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CostModel:
    """Per-operation CPU costs (seconds on a ``base_clock_ghz`` core)."""

    #: Clock speed the constants are expressed for.
    base_clock_ghz: float = 2.67

    #: Task launch overhead: JVM spawn + localization + report (MRv1).
    map_task_start: float = 2.5
    reduce_task_start: float = 1.5
    #: YARN adds container allocation/launch round trips.
    yarn_container_start_extra: float = 0.8

    #: Map side: generate one key/value pair, run the partitioner, and
    #: collect it into the sort buffer (object churn + copies).
    cpu_per_record_generate: float = 16.0e-6
    #: Map side: per output byte (payload fill + serialize copy).
    cpu_per_byte_generate: float = 8.0e-9

    #: Sort: per record per comparison level (multiplied by log2 of the
    #: spill's record count).
    cpu_per_record_sort: float = 1.0e-6

    #: Map-side merge of spill files: per record through the heap.
    cpu_per_record_map_merge: float = 1.2e-6

    #: Reduce side: incremental (in-memory) merge per record / per byte,
    #: runs behind the fetchers to the extent the transport overlaps.
    cpu_per_record_shuffle_merge: float = 1.2e-6
    cpu_per_byte_shuffle_merge: float = 0.5e-9

    #: Reduce side: the *final* merge of accumulated runs. It needs all
    #: segments, so in stock Hadoop it serializes between the last fetch
    #: and the reduce function; MRoIB's SEDA pipeline streams it.
    cpu_per_record_final_merge: float = 4.5e-6
    cpu_per_byte_final_merge: float = 4.0e-9

    #: Per-byte merge cost surviving under zero-copy (RDMA): buffers are
    #: pre-registered and merged in place, leaving only pointer churn.
    zero_copy_byte_factor: float = 0.2

    #: Reduce function: iterate + discard (NullOutputFormat).
    cpu_per_record_reduce: float = 5.0e-6
    cpu_per_byte_reduce: float = 1.5e-9

    #: Hadoop Streaming: per record piped to/from the external process
    #: (text (de)serialization + pipe syscalls), charged on whichever
    #: side runs the streaming executable.
    cpu_per_record_streaming: float = 6.0e-6

    #: Combiner: per map-output record fed through the combine function.
    cpu_per_record_combine: float = 1.5e-6
    #: Map-output compression / reduce-side decompression, per logical
    #: (uncompressed) byte. Snappy-class codec costs.
    cpu_per_byte_compress: float = 9.0e-9
    cpu_per_byte_decompress: float = 3.0e-9

    #: Per-fetch client-side handling (issue request, stream copy
    #: loop setup) — on top of the transport's own setup cost.
    fetch_client_overhead: float = 0.4e-3

    #: Heartbeat-driven task assignment latency (MRv1 JobTracker).
    heartbeat_interval: float = 0.6

    def scaled(self, clock_ghz: float) -> "CostModel":
        """Rescale CPU costs for a node of a different clock speed."""
        if clock_ghz <= 0:
            raise ValueError(f"clock must be positive, got {clock_ghz}")
        factor = self.base_clock_ghz / clock_ghz
        return replace(
            self,
            base_clock_ghz=clock_ghz,
            cpu_per_record_generate=self.cpu_per_record_generate * factor,
            cpu_per_byte_generate=self.cpu_per_byte_generate * factor,
            cpu_per_record_sort=self.cpu_per_record_sort * factor,
            cpu_per_record_map_merge=self.cpu_per_record_map_merge * factor,
            cpu_per_record_shuffle_merge=self.cpu_per_record_shuffle_merge * factor,
            cpu_per_byte_shuffle_merge=self.cpu_per_byte_shuffle_merge * factor,
            cpu_per_record_final_merge=self.cpu_per_record_final_merge * factor,
            cpu_per_byte_final_merge=self.cpu_per_byte_final_merge * factor,
            cpu_per_record_reduce=self.cpu_per_record_reduce * factor,
            cpu_per_byte_reduce=self.cpu_per_byte_reduce * factor,
            cpu_per_record_streaming=self.cpu_per_record_streaming * factor,
            cpu_per_record_combine=self.cpu_per_record_combine * factor,
            cpu_per_byte_compress=self.cpu_per_byte_compress * factor,
            cpu_per_byte_decompress=self.cpu_per_byte_decompress * factor,
        )

    # -- composite costs ---------------------------------------------------

    def map_generate_time(self, records: int, nbytes: float) -> float:
        """CPU seconds to generate/partition/collect a map's output."""
        return records * self.cpu_per_record_generate + nbytes * self.cpu_per_byte_generate

    def sort_time(self, records: int) -> float:
        """CPU seconds to quicksort ``records`` serialized records."""
        if records <= 1:
            return 0.0
        return records * self.cpu_per_record_sort * math.log2(records)

    def map_merge_time(self, records: int) -> float:
        """CPU seconds for the map-side merge of spill files."""
        return records * self.cpu_per_record_map_merge

    def shuffle_merge_time(
        self, records: int, nbytes: float, zero_copy: bool = False
    ) -> float:
        """CPU seconds for the reduce-side merge of fetched segments."""
        byte_cost = nbytes * self.cpu_per_byte_shuffle_merge
        if zero_copy:
            byte_cost *= self.zero_copy_byte_factor
        return records * self.cpu_per_record_shuffle_merge + byte_cost

    def final_merge_time(
        self, records: int, nbytes: float, zero_copy: bool = False
    ) -> float:
        """CPU seconds for the reduce-side final merge of all runs."""
        byte_cost = nbytes * self.cpu_per_byte_final_merge
        if zero_copy:
            byte_cost *= self.zero_copy_byte_factor
        return records * self.cpu_per_record_final_merge + byte_cost

    def reduce_time(self, records: int, nbytes: float) -> float:
        """CPU seconds for the reduce function (iterate + discard)."""
        return records * self.cpu_per_record_reduce + nbytes * self.cpu_per_byte_reduce


#: The default calibration.
DEFAULT_COST_MODEL = CostModel()
