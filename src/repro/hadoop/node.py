"""The simulated slave node runtime: CPU accounting and storage.

Each slave node owns:

* a CPU utilization tracker (busy cores over time — combined with the
  fabric's protocol-CPU tracker it yields the Fig. 7(a) trace);
* a :class:`StorageService` modeling its local disks *behind the OS
  page cache*: writes are absorbed at memory speed while the dirty-page
  budget lasts and are flushed to disk in the background; reads of
  recently-written data (map outputs being shuffled!) mostly hit cache.
  This is essential to the paper's results — if every spill paid raw
  platter bandwidth, the shuffle would be disk-bound and no network
  upgrade could show a 24 % gain.
"""

from __future__ import annotations

from typing import Generator, List

from repro.hadoop.cluster import NodeSpec
from repro.net.fabric import FabricNode, NetworkFabric
from repro.sim.events import AllOf, Event
from repro.sim.kernel import Simulator
from repro.sim.monitor import UtilizationTracker
from repro.sim.resources import FairShareResource


class StorageService:
    """Page-cache-aware local storage of one node."""

    def __init__(self, sim: Simulator, spec: NodeSpec, name: str):
        self.sim = sim
        self.spec = spec
        self.cache = FairShareResource(
            sim, spec.cache_bandwidth, name=f"{name}:cache"
        )
        self.disk = FairShareResource(
            sim, spec.aggregate_disk_bandwidth, name=f"{name}:disk"
        )
        self._dirty = 0.0
        self._total_written = 0.0

    @property
    def dirty_bytes(self) -> float:
        """Dirty page backlog awaiting background writeback."""
        return self._dirty

    @property
    def total_written(self) -> float:
        return self._total_written

    def write(self, nbytes: float, transient: bool = False) -> Event:
        """Write ``nbytes``; returns the foreground completion event.

        ``transient`` marks short-lived files — spill runs that the
        framework deletes after the next merge. On a real node these
        live and die in the page cache and are rarely flushed (the
        kernel drops their dirty pages on unlink), so they cost a
        memory copy, not platter bandwidth. Persistent writes (the
        final map output) are absorbed by the dirty-page budget and
        flushed in the background; overflow throttles to disk speed,
        as the kernel does when dirty ratios are exceeded.
        """
        if nbytes < 0:
            raise ValueError(f"negative write size: {nbytes}")
        if transient:
            return self.cache.submit(nbytes)
        self._total_written += nbytes
        budget_left = max(0.0, self.spec.page_cache_bytes - self._dirty)
        cached = min(nbytes, budget_left)
        direct = nbytes - cached
        events: List[Event] = []
        if cached > 0:
            self._dirty += cached
            events.append(self.cache.submit(cached))
            writeback = self.disk.submit(cached)
            writeback.add_callback(lambda _ev, c=cached: self._flushed(c))
        if direct > 0:
            events.append(self.disk.submit(direct))
        if not events:
            done = self.sim.event()
            done.succeed()
            return done
        if len(events) == 1:
            return events[0]
        return AllOf(self.sim, events)

    def _flushed(self, nbytes: float) -> None:
        self._dirty = max(0.0, self._dirty - nbytes)

    def read(self, nbytes: float, transient: bool = False) -> Event:
        """Read ``nbytes``; recently-written bytes hit the page cache.

        ``transient`` reads target just-written spill runs — always
        cached. For persistent data the hit fraction decays as the
        working set outgrows the cache:
        ``min(1, cache_bytes / total_written)``.
        """
        if nbytes < 0:
            raise ValueError(f"negative read size: {nbytes}")
        if transient:
            return self.cache.submit(nbytes)
        if self._total_written <= 0:
            hit_fraction = 1.0
        else:
            hit_fraction = min(1.0, self.spec.page_cache_bytes / self._total_written)
        cached = nbytes * hit_fraction
        direct = nbytes - cached
        events: List[Event] = []
        if cached > 0:
            events.append(self.cache.submit(cached))
        if direct > 0:
            events.append(self.disk.submit(direct))
        if not events:
            done = self.sim.event()
            done.succeed()
            return done
        if len(events) == 1:
            return events[0]
        return AllOf(self.sim, events)


class SimNode:
    """One slave: CPU tracker, storage, and its NIC on the fabric."""

    def __init__(self, sim: Simulator, name: str, spec: NodeSpec,
                 fabric: NetworkFabric, rack: int = 0):
        self.sim = sim
        self.name = name
        self.spec = spec
        self.storage = StorageService(sim, spec, name)
        self.cpu = UtilizationTracker(sim, capacity=spec.cores)
        self.fabric_node: FabricNode = fabric.add_node(
            name, cores=spec.cores, rack=rack
        )
        #: Straggler injection: every CPU burst on this node is
        #: multiplied by this factor (see :mod:`repro.faults`).
        self.cpu_slowdown = 1.0

    def cpu_burst(self, duration: float) -> Generator:
        """Occupy one core for ``duration`` seconds (sub-generator).

        Usage inside a process: ``yield from node.cpu_burst(t)``.
        """
        if duration <= 0:
            return
        if self.cpu_slowdown != 1.0:
            duration = duration * self.cpu_slowdown
        self.cpu.adjust(+1)
        try:
            yield self.sim.timeout(duration)
        finally:
            self.cpu.adjust(-1)

    def total_cpu_level(self) -> float:
        """Busy cores right now: task work + protocol processing."""
        return min(
            float(self.spec.cores),
            self.cpu.level + self.fabric_node.protocol_cpu.level,
        )

    def __repr__(self) -> str:
        return f"<SimNode {self.name}>"
