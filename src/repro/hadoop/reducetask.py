"""The simulated reduce task: shuffle, final merge, reduce, discard.

The reduce function of the micro-benchmark "aggregates intermediate
data from the map phase, iterates over them and discards it to
/dev/null" (Sect. 4.1) — there is no output I/O, by construction of
``NullOutputFormat``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.hadoop.costmodel import CostModel
from repro.hadoop.job import JobConf
from repro.hadoop.node import SimNode
from repro.hadoop.shuffle import MapOutputRegistry, ReducerShuffle, ShuffleStats
from repro.net.fabric import NetworkFabric
from repro.net.transport import TransportModel
from repro.sim.trace import CAT_PHASE, CAT_TASK

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults import FaultInjector


@dataclass
class ReduceTaskStats:
    """Phase timings of one reduce task."""

    reduce_id: int
    node: str
    started_at: float = 0.0
    shuffle_finished_at: float = 0.0
    finished_at: float = 0.0
    #: when the last segment fetch completed (start of the exposed
    #: merge); splits the task into the breakdown's ``shuffle`` phase.
    fetch_finished_at: float = 0.0
    #: when the reduce-side merge (exposed merge + sort + final merge)
    #: completed; what follows is the ``reduce`` function proper.
    merge_finished_at: float = 0.0
    bytes_fetched: float = 0.0
    records: int = 0
    bytes_spilled: float = 0.0
    merge_work_exposed: float = 0.0

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at

    @property
    def shuffle_duration(self) -> float:
        return self.shuffle_finished_at - self.started_at

    @property
    def reduce_duration(self) -> float:
        return self.finished_at - self.shuffle_finished_at


class ReduceTask:
    """One simulated reduce task; drive with ``sim.process(task.run())``."""

    def __init__(
        self,
        reduce_id: int,
        node: SimNode,
        registry: MapOutputRegistry,
        fabric: NetworkFabric,
        transport: TransportModel,
        jobconf: JobConf,
        costs: CostModel,
        start_extra: float = 0.0,
        faults: Optional["FaultInjector"] = None,
        fault_salt: int = 0,
    ):
        self.reduce_id = reduce_id
        self.node = node
        self.registry = registry
        self.fabric = fabric
        self.transport = transport
        self.jobconf = jobconf
        self.costs = costs
        self.start_extra = start_extra
        self.faults = faults
        self.fault_salt = fault_salt
        self.stats = ReduceTaskStats(reduce_id=reduce_id, node=node.name)
        #: The live shuffle, once :meth:`run` creates it (lets fault
        #: accounting read bytes fetched so far at a mid-shuffle crash).
        self.shuffle: Optional[ReducerShuffle] = None

    def fetched_so_far(self) -> float:
        """Bytes this attempt has fetched so far (crash accounting)."""
        if self.shuffle is not None:
            return self.shuffle.stats.bytes_fetched
        return 0.0

    def run(self):
        """The reduce task process (generator for the sim kernel)."""
        sim = self.node.sim
        self.stats.started_at = sim.now
        tracer = sim.tracer
        lane = f"reduce{self.reduce_id}"
        task_span = (
            tracer.begin("reduce-task", CAT_TASK, self.node.name, lane,
                         reduce_id=self.reduce_id)
            if tracer.enabled else None
        )

        yield from self.node.cpu_burst(
            self.costs.reduce_task_start + self.start_extra
        )

        shuffle = ReducerShuffle(
            reduce_id=self.reduce_id,
            node=self.node,
            registry=self.registry,
            fabric=self.fabric,
            transport=self.transport,
            jobconf=self.jobconf,
            costs=self.costs,
            faults=self.faults,
            fault_salt=self.fault_salt,
        )
        self.shuffle = shuffle
        shuffle_proc = sim.process(
            shuffle.run(), name=f"shuffle-r{self.reduce_id}"
        )
        try:
            shuffle_stats: ShuffleStats = yield shuffle_proc
        finally:
            # Only reachable on faulted paths: this task was killed (node
            # crash) mid-shuffle — take the shuffle down too, so its
            # fetchers and flows stop consuming fabric bandwidth.
            if shuffle_proc.is_alive:
                shuffle_proc.kill()
        self.stats.shuffle_finished_at = sim.now
        self.stats.fetch_finished_at = shuffle_stats.fetch_finished_at
        self.stats.merge_finished_at = shuffle_stats.merge_finished_at
        self.stats.bytes_fetched = shuffle_stats.bytes_fetched
        self.stats.records = shuffle_stats.records_fetched
        self.stats.bytes_spilled = shuffle_stats.bytes_spilled
        self.stats.merge_work_exposed = shuffle_stats.merge_work_exposed

        # The reduce function: iterate the merged stream and discard.
        reduce_work = self.costs.reduce_time(
            shuffle_stats.records_fetched, shuffle_stats.logical_bytes_fetched
        )
        if self.jobconf.streaming:
            # Records cross the pipe to the external reducer.
            reduce_work += (
                shuffle_stats.records_fetched
                * self.costs.cpu_per_record_streaming
            )
        if self.transport.pipelined_final_merge:
            # A fully pipelined engine (MRoIB/HOMR) runs fetch, merge
            # and reduce as concurrent stages: completion is governed by
            # the slowest stage, not their sum. The fetch window has
            # already elapsed; what remains is the slack of the slower
            # of the merge/reduce stages beyond that window.
            merge_work = shuffle_stats.merge_work_total + (
                self.costs.final_merge_time(
                    shuffle_stats.records_fetched,
                    shuffle_stats.logical_bytes_fetched,
                    zero_copy=self.transport.zero_copy,
                )
            )
            window = (
                shuffle_stats.fetch_finished_at
                - shuffle_stats.shuffle_started_at
            )
            reduce_work = max(0.0, max(merge_work, reduce_work) - window)
        reduce_span = (
            tracer.begin("reduce-fn", CAT_PHASE, self.node.name, lane,
                         records=shuffle_stats.records_fetched)
            if tracer.enabled else None
        )
        yield from self.node.cpu_burst(reduce_work)
        self.stats.finished_at = sim.now
        if reduce_span is not None:
            reduce_span.end()
        if task_span is not None:
            task_span.end(bytes_fetched=self.stats.bytes_fetched)
        return self.stats
