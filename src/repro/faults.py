"""Deterministic fault injection and resilience reporting.

The paper isolates the shuffle because it is the phase most sensitive
to network behaviour; this module lets the suite ask the follow-on
questions a healthy-fabric benchmark cannot — what happens to each
interconnect's advantage when a node dies mid-shuffle, when a NIC is
degraded, or when tasks fail and re-execute?

Everything is declarative and seeded. A :class:`FaultPlan` describes

* per-task failure injection (a generalization of the
  ``JobConf.task_failure_probability`` coin, plus flaky shuffle
  fetches),
* node crashes at a simulated time or after a number of completed
  tasks (every running attempt on the node dies, its slot/container
  pool drains, and retries reschedule on surviving nodes),
* straggler/slow-node injection (per-node CPU and NIC slowdown
  factors), and
* network degradation (per-link capacity cuts, optionally windowed in
  time — "flaky links" — on the max-min fabric).

The :class:`FaultInjector` threads the plan through a running
simulation: it arms timers on the kernel, kills task processes on a
crash, scales link capacities on the fabric, and keeps the
:class:`ResilienceReport` (recovery time, wasted work, re-executed
bytes, speculation effectiveness) that
:class:`~repro.hadoop.result.SimJobResult` carries back.

No-plan discipline
------------------
Like the :data:`~repro.sim.trace.NULL_TRACER`, fault injection must be
a *provable no-op* when unused: drivers only construct an injector when
``plan.is_noop()`` is false, and every hook in the task lifecycle is
guarded by ``if faults is not None``. A run without a plan (or with an
empty :class:`FaultPlan`) is bit-identical to the pre-fault-injection
code — the golden-times suite asserts this hex-exactly.

Determinism
-----------
All failure coins are pure functions of ``(plan.seed, kind, task id,
attempt, salt)`` — independent of wall clock, process, scheduling
order, and ``PYTHONHASHSEED`` — so the same plan reproduces the same
job times and resilience metrics across runs and across
``sweep(jobs=N)`` worker processes. Crashes and link windows fire at
exact simulated times through the kernel's deterministic event queue.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field, replace
from typing import (TYPE_CHECKING, Dict, Hashable, List, Optional, Sequence,
                    Set, Tuple)

from repro.sim.events import Event
from repro.sim.trace import CAT_FAULT

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hadoop.node import SimNode
    from repro.net.fabric import NetworkFabric
    from repro.sim.kernel import Simulator
    from repro.sim.process import Process

__all__ = [
    "CrashRecord",
    "FaultInjector",
    "FaultPlan",
    "LinkFault",
    "NodeCrash",
    "ResilienceReport",
    "SlowNode",
]


# ---------------------------------------------------------------------------
# The declarative plan
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NodeCrash:
    """Kill one node, either at a simulated time or after it has
    completed a number of tasks (exactly one trigger must be set)."""

    node: str
    #: Absolute simulated time of the crash, seconds.
    at_time: Optional[float] = None
    #: Crash after this many task completions on the node.
    after_tasks: Optional[int] = None

    def __post_init__(self) -> None:
        if (self.at_time is None) == (self.after_tasks is None):
            raise ValueError(
                f"NodeCrash({self.node!r}) needs exactly one of "
                f"at_time / after_tasks"
            )
        if self.at_time is not None and self.at_time < 0:
            raise ValueError(f"at_time must be >= 0, got {self.at_time}")
        if self.after_tasks is not None and self.after_tasks < 1:
            raise ValueError(
                f"after_tasks must be >= 1, got {self.after_tasks}"
            )


@dataclass(frozen=True)
class SlowNode:
    """Straggler injection: slow one node's CPU and/or NIC.

    Factors are *slowdowns* (>= 1.0): ``cpu_factor=2`` doubles every
    CPU burst on the node; ``nic_factor=4`` quarters the node's NIC
    ingress and egress capacity on the fabric.
    """

    node: str
    cpu_factor: float = 1.0
    nic_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.cpu_factor < 1.0 or self.nic_factor < 1.0:
            raise ValueError(
                f"SlowNode({self.node!r}) factors must be >= 1.0, got "
                f"cpu={self.cpu_factor} nic={self.nic_factor}"
            )


@dataclass(frozen=True)
class LinkFault:
    """Degrade one node's NIC link(s) — optionally only for a window.

    ``factor`` is a *capacity multiplier* in (0, 1]: ``0.25`` leaves a
    quarter of the bandwidth. ``direction`` picks the ingress link,
    the egress link, or both. With ``end=None`` the cut is permanent
    from ``start`` on; otherwise the link recovers at ``end`` (a
    "flaky link" window).
    """

    node: str
    factor: float
    direction: str = "both"
    start: float = 0.0
    end: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.factor <= 1.0:
            raise ValueError(
                f"LinkFault({self.node!r}) factor must be in (0, 1], "
                f"got {self.factor}"
            )
        if self.direction not in ("in", "out", "both"):
            raise ValueError(
                f"LinkFault direction must be 'in', 'out' or 'both', "
                f"got {self.direction!r}"
            )
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.end is not None and self.end <= self.start:
            raise ValueError(
                f"end ({self.end}) must be after start ({self.start})"
            )

    def links(self) -> Tuple[Hashable, ...]:
        """The fabric link keys this fault degrades."""
        if self.direction == "in":
            return (("in", self.node),)
        if self.direction == "out":
            return (("out", self.node),)
        return (("in", self.node), ("out", self.node))


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seeded description of the faults to inject.

    Hashable and picklable by construction, so plans participate in
    the sweep memo-cache key and cross worker-process boundaries.
    """

    seed: int = 20140901
    #: Per-attempt failure probability for map and reduce tasks
    #: (generalizes ``JobConf.task_failure_probability``; both coins
    #: may be active and are independent).
    task_failure_probability: float = 0.0
    #: Per-attempt probability that a shuffle fetch must be retried.
    fetch_failure_probability: float = 0.0
    node_crashes: Tuple[NodeCrash, ...] = ()
    slow_nodes: Tuple[SlowNode, ...] = ()
    link_faults: Tuple[LinkFault, ...] = ()

    def __post_init__(self) -> None:
        for name, p in (
            ("task_failure_probability", self.task_failure_probability),
            ("fetch_failure_probability", self.fetch_failure_probability),
        ):
            if not 0.0 <= p < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {p}")
        # Tolerate (and normalize) lists from from_dict callers.
        object.__setattr__(self, "node_crashes", tuple(self.node_crashes))
        object.__setattr__(self, "slow_nodes", tuple(self.slow_nodes))
        object.__setattr__(self, "link_faults", tuple(self.link_faults))
        crashed = [c.node for c in self.node_crashes]
        if len(crashed) != len(set(crashed)):
            raise ValueError(f"duplicate node in node_crashes: {crashed}")
        slowed = [s.node for s in self.slow_nodes]
        if len(slowed) != len(set(slowed)):
            raise ValueError(f"duplicate node in slow_nodes: {slowed}")

    def is_noop(self) -> bool:
        """True when the plan injects nothing at all. Drivers skip the
        injector entirely then, keeping runs bit-identical to no-plan
        runs."""
        return (
            self.task_failure_probability == 0.0
            and self.fetch_failure_probability == 0.0
            and not self.node_crashes
            and not self.slow_nodes
            and not self.link_faults
        )

    def node_names(self) -> Set[str]:
        """Every node the plan refers to (for validation)."""
        names = {c.node for c in self.node_crashes}
        names.update(s.node for s in self.slow_nodes)
        names.update(f.node for f in self.link_faults)
        return names

    # -- (de)serialization ------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-ready; inverse of :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        if not isinstance(data, dict):
            raise ValueError(f"fault plan must be a JSON object, got "
                             f"{type(data).__name__}")
        known = {
            "seed", "task_failure_probability", "fetch_failure_probability",
            "node_crashes", "slow_nodes", "link_faults",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown fault plan keys {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        kwargs = dict(data)
        try:
            kwargs["node_crashes"] = tuple(
                NodeCrash(**c) for c in data.get("node_crashes", ())
            )
            kwargs["slow_nodes"] = tuple(
                SlowNode(**s) for s in data.get("slow_nodes", ())
            )
            kwargs["link_faults"] = tuple(
                LinkFault(**f) for f in data.get("link_faults", ())
            )
        except TypeError as exc:
            raise ValueError(f"malformed fault plan entry: {exc}") from None
        return cls(**kwargs)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"fault plan is not valid JSON: {exc}") from None
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        """Read a plan from a JSON file (the ``--fault-plan`` flag)."""
        with open(path) as handle:
            return cls.from_json(handle.read())

    def with_overrides(
        self,
        task_failure_probability: Optional[float] = None,
        node_crashes: Sequence[NodeCrash] = (),
        slow_nodes: Sequence[SlowNode] = (),
    ) -> "FaultPlan":
        """CLI convenience: layer flag-level faults over this plan."""
        out = self
        if task_failure_probability is not None:
            out = replace(out,
                          task_failure_probability=task_failure_probability)
        if node_crashes:
            out = replace(out,
                          node_crashes=out.node_crashes + tuple(node_crashes))
        if slow_nodes:
            out = replace(out, slow_nodes=out.slow_nodes + tuple(slow_nodes))
        return out


# ---------------------------------------------------------------------------
# The resilience report
# ---------------------------------------------------------------------------


@dataclass
class CrashRecord:
    """One injected node crash and its recovery."""

    node: str
    time: float
    #: Running task attempts killed by the crash.
    attempts_killed: int = 0
    #: When the last displaced task completed again (``None`` if the
    #: job ended first — e.g. the job failed, or nothing was running).
    recovered_at: Optional[float] = None

    @property
    def recovery_time(self) -> Optional[float]:
        """Seconds from the crash until all displaced work re-ran."""
        if self.recovered_at is None:
            return None
        return self.recovered_at - self.time


@dataclass
class ResilienceReport:
    """What the fault injection did to one run, and what it cost.

    Pure bookkeeping: counters are updated as side effects of events
    the simulation produces anyway, never by creating events — so the
    report itself cannot perturb simulated time. Picklable (it carries
    no simulator references), so it survives the sweep process pool.
    """

    plan: FaultPlan
    #: Failed task attempts from the failure coins (plan + JobConf).
    task_failures: int = 0
    #: The subset of :attr:`task_failures` injected by the *plan* coin.
    injected_task_failures: int = 0
    #: Shuffle fetches that had to be retried (flaky-fetch coin).
    fetch_retries: int = 0
    #: Wire bytes transferred again because a fetch was retried.
    refetched_bytes: float = 0.0
    #: Task-seconds of work thrown away (failed + crash-killed attempts).
    wasted_task_seconds: float = 0.0
    #: Map-output bytes that had to be produced again.
    reexecuted_bytes: float = 0.0
    speculative_launched: int = 0
    speculative_won: int = 0
    crashes: List[CrashRecord] = field(default_factory=list)

    @property
    def attempts_killed_by_crashes(self) -> int:
        return sum(c.attempts_killed for c in self.crashes)

    @property
    def total_recovery_seconds(self) -> float:
        """Summed recovery time of the crashes that recovered."""
        return sum(c.recovery_time for c in self.crashes
                   if c.recovery_time is not None)

    @property
    def speculation_effectiveness(self) -> Optional[float]:
        """Fraction of launched backups that won (None if none ran)."""
        if self.speculative_launched == 0:
            return None
        return self.speculative_won / self.speculative_launched

    def summary(self) -> Dict[str, object]:
        """Flat dict for reports/CSV."""
        return {
            "task_failures": self.task_failures,
            "injected_task_failures": self.injected_task_failures,
            "fetch_retries": self.fetch_retries,
            "refetched_mb": round(self.refetched_bytes / 1e6, 2),
            "node_crashes": len(self.crashes),
            "attempts_killed": self.attempts_killed_by_crashes,
            "wasted_task_seconds": round(self.wasted_task_seconds, 2),
            "reexecuted_mb": round(self.reexecuted_bytes / 1e6, 2),
            "total_recovery_seconds": round(self.total_recovery_seconds, 2),
            "speculative_launched": self.speculative_launched,
            "speculative_won": self.speculative_won,
        }


# ---------------------------------------------------------------------------
# The injector
# ---------------------------------------------------------------------------


class _AttemptInfo:
    """Bookkeeping for one running task attempt on a node."""

    __slots__ = ("kind", "task_id", "salt", "started_at", "work_bytes")

    def __init__(self, kind: str, task_id: int, salt: int,
                 started_at: float, work_bytes: float):
        self.kind = kind
        self.task_id = task_id
        self.salt = salt
        self.started_at = started_at
        self.work_bytes = work_bytes


class FaultInjector:
    """Executes a :class:`FaultPlan` against one simulated world.

    Construct with the shared world objects, call :meth:`install`
    before the job starts (it arms crash timers and link-fault windows
    and applies slow-node factors), and pass the injector to every
    :class:`~repro.hadoop.runtime.JobExecution` in the world (the
    multi-job driver shares one injector across jobs; the per-job
    ``placement_offset`` salts the coins so jobs fail independently).
    """

    def __init__(
        self,
        plan: FaultPlan,
        sim: "Simulator",
        fabric: "NetworkFabric",
        nodes: Sequence["SimNode"],
    ):
        self.plan = plan
        self.sim = sim
        self.fabric = fabric
        self.nodes = {node.name: node for node in nodes}
        unknown = plan.node_names() - set(self.nodes)
        if unknown:
            raise ValueError(
                f"fault plan names unknown nodes {sorted(unknown)}; "
                f"cluster has {sorted(self.nodes)}"
            )
        self.report = ResilienceReport(plan=plan)
        self._dead: Set[str] = set()
        self._crash_specs: Dict[str, NodeCrash] = {
            c.node: c for c in plan.node_crashes
        }
        self._crash_events: Dict[str, Event] = {}
        #: node -> {task attempt Process: its bookkeeping}.
        self._running: Dict[str, Dict["Process", _AttemptInfo]] = {
            name: {} for name in self.nodes
        }
        self._crash_killed: Set["Process"] = set()
        self._completed_on: Dict[str, int] = {}
        #: open crashes awaiting recovery: (record, displaced task keys).
        self._displaced: List[Tuple[CrashRecord, Set[Tuple[str, int, int]]]] = []
        #: link -> current composite capacity factor.
        self._link_state: Dict[Hashable, float] = {}
        self._installed = False

    # -- installation -----------------------------------------------------

    def install(self) -> None:
        """Apply static faults and arm the time-triggered ones."""
        if self._installed:
            raise RuntimeError("FaultInjector.install() called twice")
        self._installed = True
        sim = self.sim
        tracer = sim.tracer
        for spec in self.plan.slow_nodes:
            node = self.nodes[spec.node]
            node.cpu_slowdown = spec.cpu_factor
            if spec.nic_factor != 1.0:
                factor = 1.0 / spec.nic_factor
                self._scale_link(("in", spec.node), factor)
                self._scale_link(("out", spec.node), factor)
            if tracer.enabled:
                tracer.instant("slow-node", CAT_FAULT, spec.node, "fault",
                               cpu_factor=spec.cpu_factor,
                               nic_factor=spec.nic_factor)
        for fault in self.plan.link_faults:
            self._arm_link_fault(fault)
        for name, spec in self._crash_specs.items():
            self._crash_events[name] = sim.event(name=f"crash:{name}")
            if spec.at_time is not None:
                sim.call_at(spec.at_time,
                            lambda n=name: self._crash(n))

    def _arm_link_fault(self, fault: LinkFault) -> None:
        sim = self.sim

        def degrade() -> None:
            for link in fault.links():
                self._scale_link(link, fault.factor)
            tracer = sim.tracer
            if tracer.enabled:
                tracer.instant("link-degrade", CAT_FAULT, fault.node,
                               "fault", factor=fault.factor,
                               direction=fault.direction)

        def restore() -> None:
            for link in fault.links():
                self._scale_link(link, 1.0 / fault.factor)
            tracer = sim.tracer
            if tracer.enabled:
                tracer.instant("link-restore", CAT_FAULT, fault.node,
                               "fault", direction=fault.direction)

        if fault.start <= sim.now:
            degrade()
        else:
            sim.call_at(fault.start, degrade)
        if fault.end is not None:
            sim.call_at(fault.end, restore)

    def _scale_link(self, link: Hashable, multiplier: float) -> None:
        """Compose a capacity multiplier onto a link (windows overlap)."""
        factor = self._link_state.get(link, 1.0) * multiplier
        if abs(factor - 1.0) < 1e-12:
            factor = 1.0
        self._link_state[link] = factor
        self.fabric.set_link_factor(link, factor)

    # -- failure coins ----------------------------------------------------

    def attempt_fails(self, kind: str, task_id: int, attempt: int,
                      salt: int = 0) -> bool:
        """Plan-seeded per-(task, attempt) failure coin."""
        p = self.plan.task_failure_probability
        if p <= 0.0:
            return False
        key = (self.plan.seed * 1_000_003 + task_id * 101 + attempt * 7
               + (0 if kind == "map" else 499_979) + salt * 613_261)
        return random.Random(key ^ 0xFA17B17).random() < p

    def fetch_fails(self, reduce_id: int, map_id: int, attempt: int,
                    salt: int = 0) -> bool:
        """Plan-seeded flaky-fetch coin for one (reducer, map) segment."""
        p = self.plan.fetch_failure_probability
        if p <= 0.0:
            return False
        key = (self.plan.seed * 1_000_003 + reduce_id * 7_907
               + map_id * 104_729 + attempt * 13 + salt * 613_261)
        return random.Random(key ^ 0xF37C4).random() < p

    # -- node liveness ----------------------------------------------------

    def node_dead(self, name: str) -> bool:
        return name in self._dead

    def may_crash(self, name: str) -> bool:
        """True if the plan could still crash this node (schedulers then
        wait on the crash event alongside the slot grant)."""
        return name in self._crash_events

    def crash_event(self, name: str) -> Event:
        return self._crash_events[name]

    def reroute(self, nodes: Sequence["SimNode"], index: int) -> "SimNode":
        """Deterministic placement over the surviving nodes."""
        alive = [n for n in nodes if n.name not in self._dead]
        if not alive:
            from repro.hadoop.runtime import TaskFailedError

            raise TaskFailedError("all cluster nodes have crashed")
        return alive[index % len(alive)]

    def _crash(self, name: str) -> None:
        if name in self._dead:
            return
        self._dead.add(name)
        now = self.sim.now
        record = CrashRecord(node=name, time=now)
        self.report.crashes.append(record)
        victims = list(self._running[name].items())
        self._running[name].clear()
        displaced: Set[Tuple[str, int, int]] = set()
        for proc, info in victims:
            if not proc.is_alive:
                continue
            self._crash_killed.add(proc)
            # Read the attempt's lost-work size BEFORE the kill: a
            # callable (reduce attempts) inspects live shuffle state.
            work = info.work_bytes
            if callable(work):
                work = work()
            proc.kill()
            record.attempts_killed += 1
            self.report.wasted_task_seconds += now - info.started_at
            self.report.reexecuted_bytes += work
            displaced.add((info.kind, info.task_id, info.salt))
        if displaced:
            self._displaced.append((record, displaced))
        else:
            record.recovered_at = now
        # Kills first, then the event: processes blocked on a slot grant
        # observe any grant freed by the kills before the crash wakes
        # them, keeping slot accounting exact (see JobExecution).
        event = self._crash_events.get(name)
        if event is not None and not event.triggered:
            event.succeed()
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.instant("node-crash", CAT_FAULT, name, "fault",
                           attempts_killed=record.attempts_killed)

    # -- lifecycle hooks (called by JobExecution / the shuffle) -----------

    def track_attempt(self, node_name: str, proc: "Process", kind: str,
                      task_id: int, work_bytes: float, salt: int = 0) -> None:
        """Register a launched task attempt as running on a node."""
        self._running[node_name][proc] = _AttemptInfo(
            kind, task_id, salt, self.sim.now, work_bytes
        )

    def untrack_attempt(self, node_name: str, proc: "Process") -> None:
        self._running[node_name].pop(proc, None)

    def was_crash_killed(self, proc: "Process") -> bool:
        """True (once) if this attempt died in a node crash — the
        scheduler retries it elsewhere instead of treating the kill as
        a lost speculative race."""
        try:
            self._crash_killed.remove(proc)
            return True
        except KeyError:
            return False

    def note_failed_attempt(self, kind: str, task_id: int, node_name: str,
                            injected: bool, wasted_seconds: float,
                            work_bytes: float) -> None:
        """Book a coin-failed attempt (plan coin or JobConf coin)."""
        self.report.task_failures += 1
        if injected:
            self.report.injected_task_failures += 1
        self.report.wasted_task_seconds += wasted_seconds
        self.report.reexecuted_bytes += work_bytes
        if injected:
            tracer = self.sim.tracer
            if tracer.enabled:
                tracer.instant("injected-failure", CAT_FAULT, node_name,
                               "fault", task=f"{kind}{task_id}")

    def note_fetch_retry(self, nbytes: float) -> None:
        self.report.fetch_retries += 1
        self.report.refetched_bytes += nbytes

    def note_speculative_launch(self) -> None:
        self.report.speculative_launched += 1

    def note_speculative_win(self) -> None:
        self.report.speculative_won += 1

    def task_finished(self, kind: str, task_id: int, node_name: str,
                      salt: int = 0) -> None:
        """Book a successful task completion: closes crash recovery
        windows and drives ``after_tasks`` crash triggers."""
        key = (kind, task_id, salt)
        for record, displaced in self._displaced:
            if key in displaced:
                displaced.discard(key)
                if not displaced and record.recovered_at is None:
                    record.recovered_at = self.sim.now
                    tracer = self.sim.tracer
                    if tracer.enabled:
                        tracer.instant(
                            "crash-recovered", CAT_FAULT, record.node,
                            "fault", recovery_time=record.recovery_time)
        count = self._completed_on.get(node_name, 0) + 1
        self._completed_on[node_name] = count
        spec = self._crash_specs.get(node_name)
        if (spec is not None and spec.after_tasks is not None
                and count >= spec.after_tasks
                and node_name not in self._dead):
            self._crash(node_name)
