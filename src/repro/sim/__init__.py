"""Discrete-event simulation kernel.

This subpackage is the lowest substrate of the reproduction: a small,
deterministic, generator-based discrete-event simulator in the style of
SimPy, plus the shared-resource models (slots, fair-share servers) and the
resource-utilization monitor that the simulated Hadoop framework and the
network fabric are built on.

Public API
----------
:class:`~repro.sim.kernel.Simulator`
    The event loop: a virtual clock and a priority queue of events.
:class:`~repro.sim.events.Event`, :class:`~repro.sim.events.Timeout`
    Primitive events; processes wait on them with ``yield``.
:class:`~repro.sim.process.Process`
    A generator-based simulated activity.
:class:`~repro.sim.resources.SlotResource`
    FIFO counting semaphore (task slots, fetcher threads...).
:class:`~repro.sim.resources.FairShareResource`
    Processor-sharing byte server (disks).
:class:`~repro.sim.monitor.ResourceMonitor`
    Periodic sampling of utilization counters (Figure 7 traces).
"""

from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    SimulationError,
    Timeout,
)
from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.sim.resources import FairShareResource, SlotResource
from repro.sim.monitor import ByteCounter, ResourceMonitor, UtilizationTracker
from repro.sim.trace import (
    NULL_TRACER,
    NullTracer,
    PhaseSpan,
    TraceEvent,
    Tracer,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "ByteCounter",
    "Event",
    "FairShareResource",
    "Interrupt",
    "NULL_TRACER",
    "NullTracer",
    "PhaseSpan",
    "Process",
    "ResourceMonitor",
    "SimulationError",
    "Simulator",
    "SlotResource",
    "Timeout",
    "TraceEvent",
    "Tracer",
    "UtilizationTracker",
]
