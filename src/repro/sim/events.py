"""Event primitives for the discrete-event kernel.

An :class:`Event` is a one-shot occurrence at a point in simulated time.
Processes (see :mod:`repro.sim.process`) wait on events by ``yield``-ing
them; the kernel resumes the process when the event is *processed*.

Events follow the usual two-stage lifecycle:

``untriggered`` --(succeed/fail)--> ``triggered`` --(kernel pops it)-->
``processed`` (callbacks run).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence


class SimulationError(RuntimeError):
    """Raised for kernel misuse (double-trigger, running a dead simulator)."""


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The ``cause`` attribute carries the value passed by the interrupter.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


#: Sentinel for "no value set yet" (``None`` is a legal event value).
_UNSET = object()


class Event:
    """A one-shot occurrence processes can wait for.

    Parameters
    ----------
    sim:
        The owning :class:`~repro.sim.kernel.Simulator`.
    name:
        Optional label used in ``repr`` and error messages.
    """

    #: Events are the most-allocated objects in a simulation (every
    #: timeout, flow completion and resource grant is one), so they are
    #: slotted. ``_defused`` is intentionally *unset* until a failure is
    #: observed — ``hasattr`` checks rely on that.
    __slots__ = ("sim", "name", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim: "Simulator", name: Optional[str] = None):  # noqa: F821
        self.sim = sim
        self.name = name
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _UNSET
        self._ok: Optional[bool] = None

    # -- state ---------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """True once the kernel has run the callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded. Only valid once triggered."""
        if self._ok is None:
            raise SimulationError(f"{self!r} has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception of the event."""
        if self._value is _UNSET:
            raise SimulationError(f"{self!r} has no value yet")
        return self._value

    # -- triggering ----------------------------------------------------

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Mark the event successful and schedule its callbacks.

        ``delay`` defers processing by simulated seconds (default: now,
        still after the current event finishes, preserving causality).
        """
        if self._ok is not None:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Mark the event failed; waiting processes get ``exception`` thrown."""
        if self._ok is not None:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        # Failures are "defused" once at least one waiter saw them.
        self._defused = False
        self.sim._schedule(self, delay)
        return self

    # -- waiting -------------------------------------------------------

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event is processed.

        If the event has already been processed, the callback runs
        immediately (synchronously) — this keeps "wait on an event that
        already happened" race-free for resources and flows.
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def remove_callback(self, callback: Callable[["Event"], None]) -> bool:
        """Remove a pending callback; returns True if it was present."""
        if self.callbacks is None:
            return False
        try:
            self.callbacks.remove(callback)
            return True
        except ValueError:
            return False

    def __repr__(self) -> str:
        label = self.name or self.__class__.__name__
        state = (
            "processed"
            if self.processed
            else ("triggered" if self.triggered else "pending")
        )
        return f"<{label} {state} at t={self.sim.now:.6f}>"


class Timeout(Event):
    """An event that succeeds ``delay`` simulated seconds after creation."""

    __slots__ = ()

    def __init__(
        self,
        sim: "Simulator",  # noqa: F821
        delay: float,
        value: Any = None,
        name: Optional[str] = None,
    ):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim, name=name or f"Timeout({delay:g})")
        self._ok = True
        self._value = value
        sim._schedule(self, delay)


class _Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf`.

    The condition's value is a dict mapping each *triggered* constituent
    event to its value at the moment the condition fired.
    """

    __slots__ = ("_events", "_pending")

    def __init__(self, sim: "Simulator", events: Sequence[Event]):  # noqa: F821
        super().__init__(sim)
        self._events = list(events)
        for ev in self._events:
            if ev.sim is not sim:
                raise SimulationError("condition mixes events from two simulators")
        self._pending = 0
        for ev in self._events:
            if ev.processed:
                self._observe(ev)
            else:
                self._pending += 1
                ev.add_callback(self._observe)
        if not self.triggered:
            self._check(initial=True)

    def _observe(self, event: Event) -> None:
        if not event.ok:
            if not self.triggered:
                event._defused = True  # type: ignore[attr-defined]
                self.fail(event.value)
            return
        self._pending -= 1
        if not self.triggered:
            self._check(initial=False)

    def _collect(self) -> dict:
        # Only *processed* events count as "happened": a Timeout is
        # triggered at creation but has not occurred until the kernel
        # reaches its scheduled time.
        return {ev: ev.value for ev in self._events if ev.processed and ev.ok}

    def _check(self, initial: bool) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Succeeds when *all* constituent events have succeeded."""

    __slots__ = ()

    def _check(self, initial: bool) -> None:
        remaining = sum(1 for ev in self._events if not ev.processed)
        if remaining == 0 and all(ev.ok for ev in self._events if ev.triggered):
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Succeeds when *any* constituent event has succeeded.

    An empty event list succeeds immediately (vacuously true), mirroring
    SimPy semantics.
    """

    __slots__ = ()

    def _check(self, initial: bool) -> None:
        if not self._events:
            self.succeed({})
            return
        if any(ev.processed and ev.ok for ev in self._events):
            self.succeed(self._collect())
