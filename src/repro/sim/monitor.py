"""Resource accounting and time-series sampling.

The paper's micro-benchmark suite reports per-node CPU utilization and
network throughput traces during the job (Figure 7). In the simulated
substrate these traces are produced by integrating resource occupancy
over simulated time (:class:`UtilizationTracker`), accumulating bytes
moved (:class:`ByteCounter`) and sampling both on a fixed interval
(:class:`ResourceMonitor`).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple


class UtilizationTracker:
    """Integrates an occupancy level (e.g. busy cores) over simulated time.

    ``adjust(+1)`` when a unit becomes busy, ``adjust(-1)`` when it goes
    idle. ``integral()`` returns unit-seconds of occupancy, from which a
    sampler derives average utilization between two samples.
    """

    __slots__ = ("sim", "capacity", "_level", "_integral", "_last")

    def __init__(self, sim: "Simulator", capacity: float = 1.0):  # noqa: F821
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = float(capacity)
        self._level = 0.0
        self._integral = 0.0
        self._last = sim.now

    def _advance(self) -> None:
        now = self.sim.now
        if now > self._last:
            self._integral += self._level * (now - self._last)
            self._last = now

    @property
    def level(self) -> float:
        """Current occupancy level (units in use)."""
        return self._level

    def adjust(self, delta: float) -> None:
        """Change the occupancy level by ``delta`` at the current instant."""
        self._advance()
        new_level = self._level + delta
        if new_level < -1e-9:
            raise ValueError(
                f"occupancy would go negative ({self._level} + {delta})"
            )
        self._level = max(0.0, new_level)

    def set_level(self, level: float) -> None:
        """Set the absolute occupancy level at the current instant."""
        self.adjust(level - self._level)

    def integral(self) -> float:
        """Occupancy integral (unit-seconds) up to the current instant."""
        self._advance()
        return self._integral

    def mean_utilization(self, since: float = 0.0) -> float:
        """Average fraction of capacity in use since time ``since``."""
        elapsed = self.sim.now - since
        if elapsed <= 0:
            return 0.0
        return self.integral() / (elapsed * self.capacity)


class ByteCounter:
    """Monotone byte accumulator (NIC receive/send, disk bytes...)."""

    __slots__ = ("_total",)

    def __init__(self) -> None:
        self._total = 0.0

    def add(self, nbytes: float) -> None:
        if nbytes < 0:
            raise ValueError(f"cannot add negative bytes: {nbytes}")
        self._total += nbytes

    @property
    def total(self) -> float:
        return self._total


class ResourceMonitor:
    """Samples registered metrics every ``interval`` simulated seconds.

    Two metric flavors:

    * *utilization* — backed by a :class:`UtilizationTracker`; each sample
      is the mean percent-of-capacity over the elapsed interval,
      equivalent to what ``sar``/``dstat`` report on the paper's slaves.
    * *rate* — backed by a :class:`ByteCounter`; each sample is the byte
      delta divided by the interval (optionally scaled, e.g. to MB/s).

    The monitor is *passive*: call :meth:`install` after creating it and
    the owning model must keep the simulator running past the times of
    interest (``Simulator.run(until=...)`` advances the clock even when
    the event queue drains first).
    """

    def __init__(self, sim: "Simulator", interval: float = 1.0):  # noqa: F821
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.sim = sim
        self.interval = float(interval)
        self._samplers: Dict[str, Callable[[float], float]] = {}
        self.samples: Dict[str, List[Tuple[float, float]]] = {}
        self._installed = False
        self._stopped = False

    # -- metric registration -------------------------------------------

    def register_utilization(
        self, name: str, tracker: UtilizationTracker, percent: bool = True
    ) -> None:
        """Sample mean utilization of ``tracker`` per interval."""
        state = {"integral": tracker.integral(), "time": self.sim.now}

        def sample(now: float) -> float:
            integral = tracker.integral()
            elapsed = now - state["time"]
            delta = integral - state["integral"]
            state["integral"] = integral
            state["time"] = now
            if elapsed <= 0:
                return 0.0
            frac = delta / (elapsed * tracker.capacity)
            return 100.0 * frac if percent else frac

        self._add(name, sample)

    def register_rate(
        self, name: str, counter: ByteCounter, scale: float = 1.0
    ) -> None:
        """Sample ``counter`` deltas as a rate (units/second * scale)."""
        state = {"total": counter.total, "time": self.sim.now}

        def sample(now: float) -> float:
            total = counter.total
            elapsed = now - state["time"]
            delta = total - state["total"]
            state["total"] = total
            state["time"] = now
            if elapsed <= 0:
                return 0.0
            return scale * delta / elapsed

        self._add(name, sample)

    def register_gauge(self, name: str, fn: Callable[[], float]) -> None:
        """Sample an instantaneous value returned by ``fn()``."""
        self._add(name, lambda _now: fn())

    def _add(self, name: str, sampler: Callable[[float], float]) -> None:
        if name in self._samplers:
            raise ValueError(f"metric {name!r} already registered")
        self._samplers[name] = sampler
        self.samples[name] = []

    # -- sampling loop ---------------------------------------------------

    def install(self) -> None:
        """Start the periodic sampling process."""
        if self._installed:
            raise RuntimeError("monitor already installed")
        self._installed = True
        self.sim.process(self._run(), name="resource-monitor")

    def stop(self) -> None:
        """Stop sampling after the next tick."""
        self._stopped = True

    def _run(self):
        while not self._stopped:
            yield self.sim.timeout(self.interval)
            now = self.sim.now
            for name, sampler in self._samplers.items():
                self.samples[name].append((now, sampler(now)))

    # -- access -----------------------------------------------------------

    def series(self, name: str) -> Tuple[List[float], List[float]]:
        """Return (times, values) for a metric."""
        pts = self.samples[name]
        return [t for t, _v in pts], [v for _t, v in pts]

    def peak(self, name: str) -> float:
        """Maximum sampled value of a metric (0.0 if no samples)."""
        pts = self.samples[name]
        return max((v for _t, v in pts), default=0.0)

    def mean(self, name: str) -> float:
        """Mean sampled value of a metric (0.0 if no samples)."""
        pts = self.samples[name]
        if not pts:
            return 0.0
        return sum(v for _t, v in pts) / len(pts)
