"""Shared-resource models built on the event kernel.

:class:`SlotResource`
    A FIFO counting semaphore. Models Hadoop MRv1 map/reduce slots,
    YARN container capacity, and per-reducer fetcher threads.

:class:`FairShareResource`
    An egalitarian processor-sharing byte server: all active requests
    progress at ``capacity / n_active``. Models local disks serving
    concurrent spills and merges. (NIC bandwidth sharing is *not* this —
    it needs max-min fairness across node pairs and lives in
    :mod:`repro.net.fabric`.)
"""

from __future__ import annotations

from typing import Deque, List
from collections import deque

from repro.sim.events import Event, SimulationError
from repro.sim.monitor import ByteCounter, UtilizationTracker

#: Float-comparison slack for "work finished" checks (bytes).
_EPS = 1e-6


class SlotResource:
    """FIFO counting semaphore.

    Processes acquire with ``yield resource.request()`` and must call
    :meth:`release` exactly once per granted request. Occupancy over time
    is exposed through :attr:`tracker` for utilization monitoring.
    """

    def __init__(self, sim: "Simulator", capacity: int, name: str = "slots"):  # noqa: F821
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        self.tracker = UtilizationTracker(sim, capacity=capacity)

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    @property
    def queued(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiters)

    def request(self) -> Event:
        """Return an event that succeeds when a slot is granted."""
        ev = self.sim.event(name=f"{self.name}:request")
        if self._in_use < self.capacity and not self._waiters:
            self._grant(ev)
        else:
            self._waiters.append(ev)
        return ev

    def _grant(self, ev: Event) -> None:
        self._in_use += 1
        self.tracker.adjust(+1)
        ev.succeed()

    def cancel(self, ev: Event) -> bool:
        """Withdraw a still-queued request (e.g. the requester died).

        Returns ``True`` if the request was waiting and got removed.
        A request that was already granted cannot be cancelled — the
        holder must :meth:`release` instead.
        """
        try:
            self._waiters.remove(ev)
        except ValueError:
            return False
        return True

    def release(self) -> None:
        """Free one slot; hands it to the oldest waiter, if any."""
        if self._in_use <= 0:
            raise SimulationError(f"{self.name}: release without request")
        self._in_use -= 1
        self.tracker.adjust(-1)
        if self._waiters:
            self._grant(self._waiters.popleft())


class _LiveServedCounter(ByteCounter):
    """Byte counter whose total includes service accrued since the last
    change point, so monitor samples between events see live progress."""

    __slots__ = ("_resource",)

    def __init__(self, resource: "FairShareResource"):
        super().__init__()
        self._resource = resource

    @property
    def total(self) -> float:
        res = self._resource
        accrued = 0.0
        if res._jobs:
            accrued = res.capacity * (res.sim.now - res._last)
        return self._total + accrued


class _FairJob:
    __slots__ = ("amount", "remaining", "event")

    def __init__(self, amount: float, event: Event):
        self.amount = amount
        self.remaining = amount
        self.event = event


class FairShareResource:
    """Egalitarian processor-sharing server for byte-sized work.

    All active jobs receive ``capacity / n_active`` service rate; rates
    are recomputed whenever a job arrives or finishes. Service is exact
    (piecewise-constant rates integrated between change points).

    Used for node-local disks: concurrent map-output spills and reduce
    merges share the aggregate disk bandwidth of the node.
    """

    def __init__(
        self,
        sim: "Simulator",  # noqa: F821
        capacity: float,
        name: str = "fairshare",
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = float(capacity)
        self.name = name
        self._jobs: List[_FairJob] = []
        self._last = sim.now
        self._timer_id = 0
        self.tracker = UtilizationTracker(sim, capacity=1.0)
        self.bytes_served: ByteCounter = _LiveServedCounter(self)

    @property
    def active_jobs(self) -> int:
        return len(self._jobs)

    def submit(self, amount: float) -> Event:
        """Submit ``amount`` units of work; returns its completion event.

        Zero-sized work completes at the current instant.
        """
        if amount < 0:
            raise ValueError(f"negative work amount: {amount}")
        ev = self.sim.event(name=f"{self.name}:job")
        if amount == 0:
            ev.succeed()
            return ev
        self._advance()
        if not self._jobs:
            self.tracker.set_level(1.0)
        self._jobs.append(_FairJob(amount, ev))
        self._reschedule()
        return ev

    # -- internals -----------------------------------------------------

    def _rate(self) -> float:
        return self.capacity / len(self._jobs) if self._jobs else 0.0

    def _advance(self) -> None:
        """Apply service received since the last change point."""
        now = self.sim.now
        if now <= self._last:
            self._last = now
            return
        if self._jobs:
            served = self._rate() * (now - self._last)
            for job in self._jobs:
                job.remaining -= served
            self.bytes_served.add(served * len(self._jobs))
        self._last = now

    def _reschedule(self) -> None:
        """Complete any finished jobs, then set a timer for the next one."""
        while True:
            finished = [j for j in self._jobs if j.remaining <= _EPS]
            if finished:
                self._jobs = [j for j in self._jobs if j.remaining > _EPS]
                for job in finished:
                    job.event.succeed(job.amount)
            if not self._jobs:
                self.tracker.set_level(0.0)
                self._timer_id += 1  # invalidate outstanding timers
                return
            rate = self._rate()
            next_done = min(j.remaining for j in self._jobs) / rate
            when = self.sim.now + next_done
            if when > self.sim.now:
                break
            # The remainder is below float time resolution: consuming it
            # cannot advance the clock, so finish those jobs now instead
            # of spinning on zero-delay timers.
            threshold = min(j.remaining for j in self._jobs) + _EPS
            for job in self._jobs:
                if job.remaining <= threshold:
                    job.remaining = 0.0
        self._timer_id += 1
        timer_id = self._timer_id

        def on_timer() -> None:
            if timer_id != self._timer_id:
                return  # superseded by a later arrival/departure
            self._advance()
            self._reschedule()

        self.sim.call_at(when, on_timer)
