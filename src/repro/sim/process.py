"""Generator-based simulated processes.

A process is a Python generator that ``yield``-s :class:`Event` objects.
The kernel resumes the generator with the event's value when the event is
processed, or throws the event's exception into it when the event failed.
A :class:`Process` is itself an :class:`Event` that succeeds with the
generator's return value — so processes can wait on each other.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.events import Event, Interrupt, SimulationError


class Process(Event):
    """A running simulated activity.

    Created via :meth:`Simulator.process`; do not instantiate two
    processes from the same generator.
    """

    __slots__ = ("_generator", "_target")

    def __init__(
        self,
        sim: "Simulator",  # noqa: F821
        generator: Generator,
        name: Optional[str] = None,
    ):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"Process requires a generator, got {type(generator)!r}")
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self._generator = generator
        self._target: Optional[Event] = None
        # Kick off the generator at the current instant via an initial event.
        init = Event(sim, name=f"{self.name}:init")
        init._ok = True
        init._value = None
        sim._schedule(init)
        init.add_callback(self._resume)
        self._target = init

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def kill(self) -> None:
        """Terminate the process at the current instant.

        The generator is closed (``GeneratorExit`` raised at its current
        ``yield``), so its ``finally`` blocks — resource releases, CPU
        tracker decrements — run deterministically *now*. The process
        event succeeds with ``None``. Used for losing speculative task
        attempts.
        """
        if self.triggered:
            return
        if self._target is not None:
            self._target.remove_callback(self._resume)
            self._target = None
        self._generator.close()
        self.succeed(None)

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        The interrupted process stops waiting on its current target event
        (the event itself is unaffected and may still fire later).
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished {self!r}")
        if self._target is None:  # pragma: no cover - defensive
            raise SimulationError(f"{self!r} has no wait target")
        # Detach from the current target so its eventual firing is ignored.
        self._target.remove_callback(self._resume)
        self._target = None
        wakeup = Event(self.sim, name=f"{self.name}:interrupt")
        wakeup._ok = False
        wakeup._value = Interrupt(cause)
        wakeup._defused = True
        self.sim._schedule(wakeup)
        wakeup.add_callback(self._resume)
        self._target = wakeup

    # -- kernel plumbing -------------------------------------------------

    def _resume(self, event: Event) -> None:
        self._target = None
        try:
            if event.ok:
                next_event = self._generator.send(event.value)
            else:
                if hasattr(event, "_defused"):
                    event._defused = True  # type: ignore[attr-defined]
                next_event = self._generator.throw(event.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        if not isinstance(next_event, Event):
            error = SimulationError(
                f"{self.name} yielded {next_event!r}; processes must yield Events"
            )
            try:
                self._generator.throw(error)
            except StopIteration as stop:
                self.succeed(stop.value)
            except BaseException as exc:
                self.fail(exc)
            return
        self._target = next_event
        next_event.add_callback(self._resume)
