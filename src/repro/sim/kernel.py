"""The discrete-event simulator core: virtual clock + event heap.

The kernel is deterministic: ties in time are broken by a monotonically
increasing sequence number, so two runs of the same model with the same
seeds produce identical traces — a property the test suite asserts and
the benchmark harness relies on.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.sim.events import Event, SimulationError, Timeout
from repro.sim.process import Process
from repro.sim.trace import NULL_TRACER

#: Priority levels: URGENT events (resource bookkeeping) are processed
#: before NORMAL events scheduled at the same instant.
URGENT = 0
NORMAL = 1


def _run_call(event: "_Call") -> None:
    event._fn()


class _Call(Event):
    """A pre-triggered event that invokes a plain function when processed.

    :meth:`Simulator.call_at` used to build a :class:`Timeout` plus a
    wrapping lambda per timer; fabric and fair-share resources arm a
    timer on *every* flow/job change point, making this the kernel's
    hottest allocation site. ``_Call`` carries the function directly —
    one slotted object and one callback list, no closure cells.
    """

    __slots__ = ("_fn",)

    def __init__(self, sim: "Simulator", delay: float, fn: Callable[[], None]):
        # Bypasses Event.__init__ (hot path); keep field init in sync.
        self.sim = sim
        self.name = None
        self._value = None
        self._ok = True
        self._fn = fn
        self.callbacks = [_run_call]
        sim._schedule(self, delay)


class Simulator:
    """Event loop with a virtual clock.

    Usage::

        sim = Simulator()

        def worker(sim):
            yield sim.timeout(3.0)
            return "done"

        proc = sim.process(worker(sim))
        sim.run()
        assert sim.now == 3.0 and proc.value == "done"
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._seq = 0
        self._event_count = 0
        #: The structured trace bus (:mod:`repro.sim.trace`). Defaults
        #: to the shared disabled tracer; drivers install a live
        #: :class:`~repro.sim.trace.Tracer` bound to this simulator.
        #: Emit sites guard on ``tracer.enabled``, so tracing costs one
        #: attribute check when off and never creates kernel events.
        self.tracer = NULL_TRACER

    # -- clock ----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events the kernel has processed (diagnostics)."""
        return self._event_count

    # -- event factories -------------------------------------------------

    def event(self, name: Optional[str] = None) -> Event:
        """Create an untriggered :class:`Event` owned by this simulator."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value=value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a new simulated :class:`Process` from a generator."""
        return Process(self, generator, name=name)

    # -- scheduling (kernel internal, used by Event) ----------------------

    def _schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, priority, self._seq, event))

    def call_at(self, when: float, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` at absolute simulated time ``when`` (>= now)."""
        if when < self._now:
            raise SimulationError(f"call_at({when}) is in the past (now={self._now})")
        return _Call(self, when - self._now, fn)

    # -- running -----------------------------------------------------------

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._heap:
            raise SimulationError("step() on an empty event queue")
        when, _prio, _seq, event = heapq.heappop(self._heap)
        if when < self._now:  # pragma: no cover - guarded by _schedule
            raise SimulationError("event scheduled in the past")
        self._now = when
        self._event_count += 1
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks or ():
            callback(event)
        if event._ok is False and not getattr(event, "_defused", True):
            # A failure nobody waited for must not pass silently.
            raise event.value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock reaches ``until``.

        When ``until`` is given, the clock is advanced to exactly
        ``until`` even if no event falls on it (convenient for monitors).
        """
        if until is not None and until < self._now:
            raise SimulationError(f"run(until={until}) is in the past (now={self._now})")
        # Inlined event loop: identical to repeated step()/peek() calls,
        # minus the per-event method dispatch (this loop processes every
        # event of every simulation).
        heap = self._heap
        pop = heapq.heappop
        count = 0
        try:
            while heap:
                when = heap[0][0]
                if until is not None and when > until:
                    break
                when, _prio, _seq, event = pop(heap)
                self._now = when
                count += 1
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks or ():
                    callback(event)
                if event._ok is False and not getattr(event, "_defused", True):
                    # A failure nobody waited for must not pass silently.
                    raise event.value
        finally:
            self._event_count += count
        if until is not None and self._now < until:
            self._now = until

    def run_until_event(self, event: Event) -> Any:
        """Run until ``event`` is processed; return its value.

        Raises the event's exception if it failed, or
        :class:`SimulationError` if the queue drains first.
        """
        heap = self._heap
        pop = heapq.heappop
        count = 0
        try:
            while event.callbacks is not None:  # i.e. not yet processed
                if not heap:
                    raise SimulationError(f"queue drained before {event!r} fired")
                when, _prio, _seq, popped = pop(heap)
                self._now = when
                count += 1
                callbacks, popped.callbacks = popped.callbacks, None
                for callback in callbacks or ():
                    callback(popped)
                if popped._ok is False and not getattr(popped, "_defused", True):
                    raise popped.value
        finally:
            self._event_count += count
        if not event.ok:
            if hasattr(event, "_defused"):
                event._defused = True  # type: ignore[attr-defined]
            raise event.value
        return event.value
