"""Structured phase-trace bus: spans and instants over simulated time.

The paper's headline results are really *per-phase* stories — map,
shuffle, merge and reduce overlap differently under each interconnect —
so the simulation stack emits structured trace events instead of ad-hoc
timing fields. Every layer (kernel, fabric flows, map/reduce tasks,
shuffle, runtimes) publishes :class:`PhaseSpan` intervals and instant
markers onto one :class:`Tracer`, and the analysis layer renders them
as a phase table or exports Chrome ``trace_event`` JSON viewable in
Perfetto (see ``docs/TRACING.md``).

Zero overhead when disabled
---------------------------
Tracing must never perturb the simulation: a traced run and an untraced
run are bit-identical because the tracer only *records* ``(sim.now,
metadata)`` tuples — it creates no kernel events, timers or processes.
When tracing is off, every emit site is guarded by a single attribute
check against :data:`NULL_TRACER` (``enabled`` is ``False``), so the
disabled cost is one boolean test per site.

Vocabulary
----------
``track``
    The horizontal grouping in a trace viewer — a node name
    (``slave0``), ``net`` for fabric flows, or ``job`` for
    framework-level events. Maps to the Chrome ``pid``.
``lane``
    A row within a track — one task (``map3``, ``reduce1``) or flow
    endpoint. Maps to the Chrome ``tid``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = [
    "CAT_FAULT",
    "CAT_HARNESS",
    "CAT_JOB",
    "CAT_NET",
    "CAT_PHASE",
    "CAT_SCHED",
    "CAT_TASK",
    "NULL_TRACER",
    "NullTracer",
    "PhaseSpan",
    "TraceEvent",
    "Tracer",
]

#: Event categories (the Chrome ``cat`` field, filterable in Perfetto).
CAT_TASK = "task"     #: whole map/reduce task attempts
CAT_PHASE = "phase"   #: sub-phases inside a task (spill, merge, fetch...)
CAT_NET = "net"       #: fabric flows
CAT_SCHED = "sched"   #: slot/container waits, speculation, slowstart
CAT_JOB = "job"       #: job-level markers
CAT_FAULT = "fault"   #: injected faults and their recoveries
CAT_HARNESS = "harness"  #: campaign-harness events (retries, timeouts,
#: worker crashes, quarantines) — wall-clock times, not simulated time


class TraceEvent:
    """One recorded interval (``duration > 0``) or instant marker.

    Times are simulated seconds. ``args`` carries free-form metadata
    (bytes moved, attempt number...) surfaced in the trace viewer.
    """

    __slots__ = ("name", "cat", "track", "lane", "start", "duration", "args")

    def __init__(
        self,
        name: str,
        cat: str,
        track: str,
        lane: str,
        start: float,
        duration: float = 0.0,
        args: Optional[Dict[str, Any]] = None,
    ):
        self.name = name
        self.cat = cat
        self.track = track
        self.lane = lane
        self.start = start
        self.duration = duration
        self.args = args

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def is_instant(self) -> bool:
        return self.duration == 0.0

    def __repr__(self) -> str:
        return (
            f"<TraceEvent {self.cat}:{self.name} {self.track}/{self.lane} "
            f"@{self.start:.4f}+{self.duration:.4f}>"
        )


class PhaseSpan:
    """An open interval; :meth:`end` seals it onto the tracer.

    Obtained from :meth:`Tracer.begin`. A span that is never ended
    (e.g. a task killed by speculation) records nothing — unfinished
    work has no duration to report.
    """

    __slots__ = ("_tracer", "name", "cat", "track", "lane", "start", "args")

    def __init__(self, tracer: "Tracer", name: str, cat: str, track: str,
                 lane: str, start: float,
                 args: Optional[Dict[str, Any]] = None):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.track = track
        self.lane = lane
        self.start = start
        self.args = args

    def end(self, **args: Any) -> None:
        """Seal the span at the current simulated time."""
        tracer = self._tracer
        if args:
            merged = dict(self.args) if self.args else {}
            merged.update(args)
            self.args = merged
        tracer.events.append(TraceEvent(
            self.name, self.cat, self.track, self.lane, self.start,
            max(0.0, tracer.now() - self.start), self.args,
        ))


class _NullSpan:
    """Span returned by the disabled tracer; ``end`` is a no-op."""

    __slots__ = ()

    def end(self, **args: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects :class:`TraceEvent` records against a simulator clock.

    Bind to a :class:`~repro.sim.kernel.Simulator` before use (the
    drivers do this: ``run_simulated_job(..., tracer=t)``). One tracer
    serves one run; reuse across runs concatenates events.
    """

    enabled = True

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self._sim: Optional[Any] = None

    # -- binding -----------------------------------------------------------

    def bind(self, sim: Any) -> "Tracer":
        """Attach to a simulator; its clock stamps all events."""
        self._sim = sim
        return self

    def now(self) -> float:
        if self._sim is None:
            raise RuntimeError("tracer is not bound to a simulator")
        return self._sim.now

    # -- emitting ----------------------------------------------------------

    def begin(self, name: str, cat: str, track: str, lane: str,
              **args: Any) -> PhaseSpan:
        """Open a span at the current simulated time."""
        return PhaseSpan(self, name, cat, track, lane, self.now(),
                         args or None)

    def complete(self, name: str, cat: str, track: str, lane: str,
                 start: float, end: float, **args: Any) -> None:
        """Record a finished interval whose endpoints are already known."""
        self.events.append(TraceEvent(
            name, cat, track, lane, start, max(0.0, end - start),
            args or None,
        ))

    def instant(self, name: str, cat: str, track: str, lane: str,
                **args: Any) -> None:
        """Record a zero-duration marker at the current simulated time."""
        self.events.append(TraceEvent(
            name, cat, track, lane, self.now(), 0.0, args or None,
        ))

    # -- querying ----------------------------------------------------------

    def spans(self, cat: Optional[str] = None) -> List[TraceEvent]:
        """Finished intervals, optionally filtered by category."""
        return [ev for ev in self.events
                if not ev.is_instant and (cat is None or ev.cat == cat)]

    def total_time(self, name: str) -> float:
        """Sum of durations of all spans with the given name."""
        return sum(ev.duration for ev in self.events if ev.name == name)

    def __len__(self) -> int:
        return len(self.events)


class NullTracer:
    """The disabled tracer: every method is a no-op.

    A single shared instance (:data:`NULL_TRACER`) is the default
    ``Simulator.tracer``; emit sites guard on ``tracer.enabled`` so the
    disabled path costs one attribute check.
    """

    enabled = False

    __slots__ = ()

    @property
    def events(self) -> List[TraceEvent]:
        return []

    def bind(self, sim: Any) -> "NullTracer":
        return self

    def now(self) -> float:
        return 0.0

    def begin(self, name: str, cat: str, track: str, lane: str,
              **args: Any) -> _NullSpan:
        return _NULL_SPAN

    def complete(self, name: str, cat: str, track: str, lane: str,
                 start: float, end: float, **args: Any) -> None:
        pass

    def instant(self, name: str, cat: str, track: str, lane: str,
                **args: Any) -> None:
        pass


#: The shared disabled tracer (default for every simulator).
NULL_TRACER = NullTracer()
