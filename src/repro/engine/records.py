"""In-memory map-output buffers and merge machinery.

A :class:`MapOutputBuffer` plays the role of Hadoop's ``MapOutputBuffer``
(the ``io.sort.mb`` circular buffer): it collects serialized records per
partition and produces *sorted* IFile segments. Reducers merge segments
from all maps with :func:`merge_sorted_segments` — a k-way merge over
raw key bytes, exactly the comparator the real framework uses.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, Iterator, List, Tuple, Type

from repro.datatypes.comparator import writable_sort_key
from repro.datatypes.serialization import IFileReader, IFileWriter
from repro.datatypes.varint import write_vint
from repro.datatypes.writable import Writable


class MapOutputBuffer:
    """Collects one map task's output, partitioned and sorted.

    Records are stored serialized (key bytes, value bytes) per
    partition; :meth:`segments` sorts each partition by raw key bytes
    and emits IFile segments, mirroring the sort-on-spill behaviour.
    """

    def __init__(self, num_partitions: int):
        if num_partitions < 1:
            raise ValueError(f"num_partitions must be >= 1, got {num_partitions}")
        self.num_partitions = num_partitions
        self._partitions: List[List[Tuple[bytes, bytes]]] = [
            [] for _ in range(num_partitions)
        ]
        self.records_collected = 0
        self.bytes_collected = 0

    def collect(self, key: Writable, value: Writable, partition: int) -> None:
        """Add one record to a partition."""
        if not 0 <= partition < self.num_partitions:
            raise IndexError(
                f"partition {partition} out of range [0, {self.num_partitions})"
            )
        key_bytes = key.to_bytes()
        value_bytes = value.to_bytes()
        sort_key = writable_sort_key(key)
        self._partitions[partition].append((sort_key, key_bytes, value_bytes))
        self.records_collected += 1
        self.bytes_collected += len(key_bytes) + len(value_bytes)

    def records_per_partition(self) -> List[int]:
        return [len(p) for p in self._partitions]

    def segments(self) -> Dict[int, bytes]:
        """Sorted IFile segment per non-empty partition."""
        out: Dict[int, bytes] = {}
        for partition, records in enumerate(self._partitions):
            writer = IFileWriter()
            for _sort_key, key_bytes, value_bytes in sorted(
                records, key=lambda kv: kv[0]
            ):
                # Records are already serialized; re-frame them directly.
                write_vint(writer._buf, len(key_bytes))
                write_vint(writer._buf, len(value_bytes))
                writer._buf.extend(key_bytes)
                writer._buf.extend(value_bytes)
                writer.records_written += 1
            out[partition] = writer.close()
        return out


def _iter_segment(
    segment: bytes, key_class: Type[Writable], value_class: Type[Writable]
) -> Iterator[Tuple[bytes, Writable, Writable]]:
    """Yield (comparator sort key, key, value) triples from a segment."""
    for key, value in IFileReader(segment, key_class, value_class):
        yield writable_sort_key(key), key, value


def merge_sorted_segments(
    segments: Iterable[bytes],
    key_class: Type[Writable],
    value_class: Type[Writable],
) -> Iterator[Tuple[Writable, Writable]]:
    """K-way merge of sorted IFile segments by raw key bytes.

    Mirrors the reduce-side ``Merger``: the output is globally sorted,
    so the grouping iterator can detect key boundaries with a single
    comparison per record.
    """
    iterators = [_iter_segment(seg, key_class, value_class) for seg in segments]
    # heapq needs a tiebreaker before the (unorderable) Writables.
    merged = heapq.merge(
        *(
            ((raw, idx, key, value) for raw, key, value in it)
            for idx, it in enumerate(iterators)
        ),
        key=lambda item: (item[0], item[1]),
    )
    for _raw, _idx, key, value in merged:
        yield key, value


def group_by_key(
    sorted_records: Iterable[Tuple[Writable, Writable]],
) -> Iterator[Tuple[Writable, List[Writable]]]:
    """Group a sorted record stream into (key, [values...]) runs."""
    current_key = None
    current_raw = None
    values: List[Writable] = []
    for key, value in sorted_records:
        raw = key.to_bytes()
        if current_raw is None:
            current_key, current_raw = key, raw
            values = [value]
        elif raw == current_raw:
            values.append(value)
        else:
            yield current_key, values
            current_key, current_raw = key, raw
            values = [value]
    if current_raw is not None:
        yield current_key, values
