"""The local job runner: really executes a micro-benchmark job.

Pipeline (all on real bytes, single process):

1. ``NullInputFormat`` fabricates one dummy split per map task.
2. Each map task runs the *benchmark mapper*: ignore the dummy record,
   generate the configured key/value pairs, ``emit`` each through the
   configured partitioner into a :class:`MapOutputBuffer`.
3. The buffer yields sorted IFile segments per partition ("spills").
4. Each reduce task merges its segments from all maps (k-way by raw key
   bytes), groups by key, and feeds groups to the *discarding reducer*
   backed by ``NullOutputFormat``.

The runner records the per-(map, reduce) byte matrix it actually moved,
which the integration tests compare against the analytic
:func:`repro.core.compute_shuffle_matrix` used by the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import BenchmarkConfig
from repro.core.datagen import KeyValueGenerator
from repro.core.formats import NullInputFormat, NullOutputFormat
from repro.core.partitioners import make_partitioner
from repro.engine.context import Counters, MapContext, ReduceContext
from repro.engine.records import MapOutputBuffer, group_by_key, merge_sorted_segments

#: A mapper: (config, map_id, context) -> None, emitting via the context.
MapperFn = Callable[[BenchmarkConfig, int, MapContext], None]
#: A reducer: (key, values, context) -> None.
ReducerFn = Callable[[object, List[object], ReduceContext], None]


def benchmark_mapper(config: BenchmarkConfig, map_id: int, ctx: MapContext) -> None:
    """The suite's mapper: generate the configured pairs in memory."""
    for key, value in KeyValueGenerator(config, map_id):
        ctx.emit(key, value)


def discarding_reducer(key, values, ctx: ReduceContext) -> None:
    """The suite's reducer: iterate the group and discard (/dev/null)."""
    ctx.consume(key, values)


@dataclass
class JobResult:
    """Everything a finished functional job reports."""

    config: BenchmarkConfig
    counters: Counters
    #: records moved, per (map, reduce) cell — the *observed* shuffle matrix.
    shuffle_records: np.ndarray
    #: serialized bytes moved, per (map, reduce) cell.
    shuffle_bytes: np.ndarray
    reduce_input_records: List[int] = field(default_factory=list)

    @property
    def total_shuffled_bytes(self) -> int:
        return int(self.shuffle_bytes.sum())

    def reducer_loads(self) -> List[int]:
        return [int(self.shuffle_records[:, r].sum())
                for r in range(self.config.num_reduces)]


class LocalJobRunner:
    """Executes one stand-alone MapReduce job in-process."""

    def __init__(
        self,
        config: BenchmarkConfig,
        mapper: MapperFn = benchmark_mapper,
        reducer: ReducerFn = discarding_reducer,
    ):
        self.config = config
        self.mapper = mapper
        self.reducer = reducer

    def run(self) -> JobResult:
        config = self.config
        job_counters = Counters()
        num_maps, num_reduces = config.num_maps, config.num_reduces
        shuffle_records = np.zeros((num_maps, num_reduces), dtype=np.int64)
        shuffle_bytes = np.zeros((num_maps, num_reduces), dtype=np.int64)

        # --- Map phase -------------------------------------------------
        # segment_store[(map_id, reduce_id)] -> sorted IFile segment
        segment_store: Dict[Tuple[int, int], bytes] = {}
        for split in NullInputFormat.get_splits(num_maps):
            reader = NullInputFormat.create_record_reader(split)
            task_counters = Counters()
            for _dummy_key, _dummy_value in reader:
                task_counters.increment(Counters.MAP_INPUT_RECORDS)
            partitioner = make_partitioner(
                config.pattern, num_reduces, seed=config.seed + split.map_id
            )
            buffer = MapOutputBuffer(num_reduces)
            ctx = MapContext(split.map_id, partitioner, buffer, task_counters)
            self.mapper(config, split.map_id, ctx)
            task_counters.increment(
                Counters.SPILLED_RECORDS, buffer.records_collected
            )
            for reduce_id, segment in buffer.segments().items():
                segment_store[(split.map_id, reduce_id)] = segment
                count = buffer.records_per_partition()[reduce_id]
                shuffle_records[split.map_id, reduce_id] = count
                shuffle_bytes[split.map_id, reduce_id] = len(segment)
            job_counters.merge(task_counters)

        # --- Shuffle + Reduce phase --------------------------------------
        key_writable = config.key_writable
        value_writable = config.value_writable
        reduce_inputs: List[int] = []
        for reduce_id in range(num_reduces):
            task_counters = Counters()
            segments = [
                segment_store[(m, reduce_id)]
                for m in range(num_maps)
                if (m, reduce_id) in segment_store
            ]
            task_counters.increment(
                Counters.REDUCE_SHUFFLE_BYTES, sum(len(s) for s in segments)
            )
            writer = NullOutputFormat.create_record_writer()
            ctx = ReduceContext(reduce_id, writer, task_counters)
            merged = merge_sorted_segments(segments, key_writable, value_writable)
            for key, values in group_by_key(merged):
                self.reducer(key, values, ctx)
            writer.close()
            reduce_inputs.append(task_counters.value(Counters.REDUCE_INPUT_RECORDS))
            job_counters.merge(task_counters)

        return JobResult(
            config=config,
            counters=job_counters,
            shuffle_records=shuffle_records,
            shuffle_bytes=shuffle_bytes,
            reduce_input_records=reduce_inputs,
        )
