"""Functional (really-executing) local MapReduce engine.

The performance of the paper's jobs is *simulated* (see
:mod:`repro.hadoop`), but the semantics of the suite — what the
partitioners do to real records, that no byte is lost between map and
reduce, that reducers see sorted, grouped input — are validated by this
substrate, which executes the whole map → partition → sort → shuffle →
merge → reduce pipeline on real in-memory bytes.

It also cross-validates the simulator: the per-(map, reduce) byte
matrix observed here must equal :func:`repro.core.compute_shuffle_matrix`
for the same configuration (asserted in the integration tests).
"""

from repro.engine.context import Counters, MapContext, ReduceContext
from repro.engine.records import (
    MapOutputBuffer,
    group_by_key,
    merge_sorted_segments,
)
from repro.engine.localrunner import JobResult, LocalJobRunner, benchmark_mapper

__all__ = [
    "Counters",
    "JobResult",
    "LocalJobRunner",
    "MapContext",
    "MapOutputBuffer",
    "ReduceContext",
    "benchmark_mapper",
    "group_by_key",
    "merge_sorted_segments",
]
