"""Task contexts and counters for the functional engine."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core.partitioners import Partitioner
from repro.datatypes.writable import Writable
from repro.engine.records import MapOutputBuffer


class Counters:
    """A Hadoop-style named counter group."""

    #: Counter names matching the framework's familiar ones.
    MAP_INPUT_RECORDS = "MAP_INPUT_RECORDS"
    MAP_OUTPUT_RECORDS = "MAP_OUTPUT_RECORDS"
    MAP_OUTPUT_BYTES = "MAP_OUTPUT_BYTES"
    REDUCE_SHUFFLE_BYTES = "REDUCE_SHUFFLE_BYTES"
    REDUCE_INPUT_RECORDS = "REDUCE_INPUT_RECORDS"
    REDUCE_INPUT_GROUPS = "REDUCE_INPUT_GROUPS"
    REDUCE_OUTPUT_RECORDS = "REDUCE_OUTPUT_RECORDS"
    SPILLED_RECORDS = "SPILLED_RECORDS"

    def __init__(self) -> None:
        self._values: Dict[str, int] = {}

    def increment(self, name: str, amount: int = 1) -> None:
        self._values[name] = self._values.get(name, 0) + amount

    def value(self, name: str) -> int:
        return self._values.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._values)

    def merge(self, other: "Counters") -> None:
        """Accumulate another task's counters into this (job-level) one."""
        for name, amount in other._values.items():
            self.increment(name, amount)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._values.items()))
        return f"Counters({inner})"


class MapContext:
    """What a mapper sees: ``emit`` plus its task identity and counters.

    ``emit`` partitions the pair with the configured partitioner and
    collects it into the map-output buffer, updating counters exactly
    as ``MapTask`` does.
    """

    def __init__(
        self,
        map_id: int,
        partitioner: Partitioner,
        buffer: MapOutputBuffer,
        counters: Optional[Counters] = None,
    ):
        self.map_id = map_id
        self.partitioner = partitioner
        self.buffer = buffer
        self.counters = counters if counters is not None else Counters()

    def emit(self, key: Writable, value: Writable) -> int:
        """Emit one intermediate pair; returns the chosen partition."""
        partition = self.partitioner.get_partition(key, value)
        self.buffer.collect(key, value, partition)
        self.counters.increment(Counters.MAP_OUTPUT_RECORDS)
        self.counters.increment(
            Counters.MAP_OUTPUT_BYTES,
            key.serialized_size() + value.serialized_size(),
        )
        return partition


class ReduceContext:
    """What a reducer sees: its partition id, output writer, counters."""

    def __init__(self, reduce_id: int, writer, counters: Optional[Counters] = None):
        self.reduce_id = reduce_id
        self.writer = writer
        self.counters = counters if counters is not None else Counters()

    def write(self, key: Writable, value: Writable) -> None:
        self.writer.write(key, value)
        self.counters.increment(Counters.REDUCE_OUTPUT_RECORDS)

    def consume(self, key: Writable, values: Iterable[Writable]) -> List[Writable]:
        """Iterate a value group (counting), returning it as a list."""
        out = []
        for value in values:
            self.counters.increment(Counters.REDUCE_INPUT_RECORDS)
            out.append(value)
        self.counters.increment(Counters.REDUCE_INPUT_GROUPS)
        return out
