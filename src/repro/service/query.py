"""Benchmark-point queries: the service's request vocabulary.

A query names one grid point in the same coordinates a campaign spec
uses — benchmark, shuffle size, network, cluster/slaves, runtime,
parameter overrides, trial, optional fault plan — and resolves to the
same content-addressed store key a campaign run would compute for that
point. That shared key space is the whole design: a point simulated by
``repro campaign run`` is a warm hit for the service, and a point the
service simulated is ``0 simulated`` for a later campaign.

Validation is delegated to :class:`~repro.campaign.spec.Campaign`
(a query is a degenerate one-point campaign), so the service accepts
exactly the vocabulary campaign specs accept — same benchmark names,
same cluster/runtime sets, same trial seed derivation — and rejects
the rest with the same messages. Every parse failure raises
:class:`ValueError`; the HTTP layer maps that to a 400.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.campaign.spec import Campaign, CampaignPoint
from repro.core.config import BenchmarkConfig
from repro.faults import FaultPlan
from repro.store import canonical_json, point_key

#: Fields a point query may carry (everything else is a 400).
QUERY_KEYS = frozenset({
    "benchmark", "shuffle_gb", "network", "cluster", "slaves",
    "runtime", "params", "trial", "fault_plan",
})

#: Fields a query must carry.
REQUIRED_KEYS = frozenset({"shuffle_gb", "network"})


@dataclass
class PointQuery:
    """One parsed benchmark-point query, fully resolved.

    ``signature`` groups queries that can share one
    :class:`~repro.core.suite.MicroBenchmarkSuite` (same cluster,
    slave count, runtime and fault plan) — the scheduler batches cold
    points per signature so the executor's equivalence classes can
    collapse them.
    """

    campaign: Campaign
    point: CampaignPoint
    config: BenchmarkConfig
    #: Content-addressed store key (identical to a campaign run's).
    key: str
    #: Human label for progress lines and tickets.
    label: str
    #: Suite-compatibility group (hashable).
    signature: Tuple[str, ...]

    def describe(self) -> Dict[str, object]:
        """The query's coordinates, for ticket/err JSON payloads."""
        out: Dict[str, object] = {
            "benchmark": self.campaign.benchmark,
            "shuffle_gb": self.point.shuffle_gb,
            "network": self.point.network,
            "cluster": self.campaign.cluster,
            "runtime": self.campaign.runtime,
            "trial": self.point.trial,
        }
        if self.campaign.slaves is not None:
            out["slaves"] = self.campaign.slaves
        if self.campaign.fault_plan is not None:
            out["faulty"] = True
        return out


def _parse_trial(body: dict) -> int:
    raw = body.get("trial", 0)
    if isinstance(raw, bool) or not isinstance(raw, int):
        raise ValueError(f"trial must be an integer, got {raw!r}")
    if raw < 0:
        raise ValueError(f"trial must be >= 0, got {raw}")
    return raw


def parse_point_query(body: object) -> PointQuery:
    """Parse one request body into a :class:`PointQuery`.

    Raises :class:`ValueError` on anything malformed — unknown keys,
    missing coordinates, bad types, unknown benchmarks/networks/
    runtimes — with a message fit to return to the client.
    """
    if not isinstance(body, dict):
        raise ValueError(
            f"point query must be a JSON object, got "
            f"{type(body).__name__}")
    unknown = set(body) - QUERY_KEYS
    if unknown:
        raise ValueError(
            f"unknown query keys {sorted(unknown)}; "
            f"known: {sorted(QUERY_KEYS)}")
    missing = REQUIRED_KEYS - set(body)
    if missing:
        raise ValueError(f"point query needs {sorted(missing)}")
    try:
        shuffle_gb = float(body["shuffle_gb"])
    except (TypeError, ValueError):
        raise ValueError(
            f"shuffle_gb must be a number, got "
            f"{body['shuffle_gb']!r}") from None
    if shuffle_gb <= 0:
        raise ValueError(f"shuffle_gb must be > 0, got {shuffle_gb:g}")
    trial = _parse_trial(body)
    params = body.get("params") or {}
    if not isinstance(params, dict):
        raise ValueError(
            f"params must be an object, got {type(params).__name__}")
    fault_plan: Optional[FaultPlan] = None
    if body.get("fault_plan") is not None:
        try:
            fault_plan = FaultPlan.from_dict(body["fault_plan"])
        except (TypeError, ValueError, KeyError) as exc:
            raise ValueError(f"malformed fault_plan: {exc}") from None
    try:
        # A query is a one-point campaign: Campaign.__post_init__ is
        # the validator, Campaign.points() the seed/config derivation —
        # so service keys match campaign keys by construction.
        campaign = Campaign(
            name="service-query",
            benchmark=str(body.get("benchmark", "MR-AVG")),
            shuffle_gbs=(shuffle_gb,),
            networks=(str(body["network"]),),
            cluster=str(body.get("cluster", "a")),
            slaves=body.get("slaves"),
            runtime=str(body.get("runtime", "mrv1")),
            params=dict(params),
            trials=trial + 1,
            fault_plan=fault_plan,
        )
        # points() nests trial innermost; with one size and one network
        # the list is exactly [trial 0, ..., trial N].
        point = campaign.points()[trial]
        key = point_key(point.config, campaign.cluster_spec(),
                        jobconf=campaign.jobconf(),
                        fault_plan=campaign.fault_plan)
    except KeyError as exc:
        raise ValueError(str(exc.args[0]) if exc.args else str(exc)) \
            from None
    except TypeError as exc:
        raise ValueError(f"bad query parameter: {exc}") from None
    plan_json = (canonical_json(campaign.fault_plan.to_dict())
                 if campaign.fault_plan is not None else "")
    signature = (campaign.cluster, str(campaign.slaves or ""),
                 campaign.runtime, plan_json)
    return PointQuery(campaign=campaign, point=point,
                      config=point.config, key=key,
                      label=point.label() or f"{shuffle_gb:g}GB",
                      signature=signature)
