"""The background worker that turns cold tickets into store records.

One daemon thread drains a bounded queue of admitted tickets and runs
them through the existing :class:`~repro.campaign.executor.\
CampaignExecutor` — the same retry/backoff/timeout policy, the same
quarantine ledger, the same batch scheduler — so a point simulated for
a service client is indistinguishable from one simulated by
``repro campaign run`` (same record bytes, same provenance, same
failure handling).

Batching: each drain pass groups its tickets by suite signature
(cluster, slaves, runtime, fault plan) and executes one group per
:class:`~repro.core.suite.MicroBenchmarkSuite`, letting the executor's
equivalence classes collapse simulation-equivalent points. The
executor runs with ``campaign=""`` (no checkpoint churn per drain) and
``handle_signals=False`` (the service owns signal handling; shutdown
goes through :meth:`ColdScheduler.stop`).

Shutdown: ``stop(drain=True)`` finishes everything already queued;
``stop(drain=False)`` is the SIGINT path — the in-flight executor pass
stops launching new units (completed points are already durable in the
store), and every unstarted ticket resolves ``cancelled``.
"""

from __future__ import annotations

import queue
import threading
from typing import Dict, List, Optional, Tuple

from repro.campaign.backend import ExecutionBackend
from repro.campaign.executor import (
    STATUS_FAILED,
    CampaignExecutor,
    RetryPolicy,
)
from repro.core.suite import MicroBenchmarkSuite
from repro.service.singleflight import (
    CANCELLED,
    DONE,
    FAILED,
    RUNNING,
    SingleFlight,
    Ticket,
)
from repro.store import ResultStore

#: Default bound on the cold-point queue (excess queries get a 503).
DEFAULT_MAX_QUEUE = 256

#: Most tickets one drain pass batches into executor calls.
DRAIN_LIMIT = 64


class ColdScheduler:
    """Single background thread executing admitted cold tickets."""

    def __init__(
        self,
        store: ResultStore,
        flight: SingleFlight,
        policy: Optional[RetryPolicy] = None,
        jobs: int = 1,
        batch: Optional[bool] = None,
        max_queue: int = DEFAULT_MAX_QUEUE,
        execution_backend: Optional[ExecutionBackend] = None,
    ):
        """Wire the scheduler to a store and the single-flight table.

        ``execution_backend`` swaps the engine cold units run on
        (default: a per-pass :class:`LocalBackend`); a supplied backend
        is shared across drain passes and *borrowed* — the caller owns
        its lifecycle.
        """
        self.store = store
        self.flight = flight
        self.policy = policy if policy is not None else RetryPolicy()
        self.jobs = jobs
        self.batch = batch
        self.execution_backend = execution_backend
        self._queue: "queue.Queue[Ticket]" = queue.Queue(maxsize=max_queue)
        self._stop = threading.Event()
        self._drain = True
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._executor: Optional[CampaignExecutor] = None
        self._running = 0
        #: Points this scheduler resolved, by terminal state.
        self.resolved: Dict[str, int] = {DONE: 0, FAILED: 0, CANCELLED: 0}
        #: Cold units simulated over the scheduler's lifetime.
        self.cold_units = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Launch the worker thread (idempotent)."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="repro-service-scheduler", daemon=True)
        self._thread.start()

    def stop(self, drain: bool = True,
             timeout: Optional[float] = None) -> None:
        """Stop the worker.

        ``drain=True`` finishes everything already queued first;
        ``drain=False`` interrupts the in-flight executor pass (its
        running unit completes and is recorded — completed points stay
        durable) and cancels every unstarted ticket.
        """
        self._drain = drain
        self._stop.set()
        if not drain:
            with self._lock:
                if self._executor is not None:
                    self._executor.request_stop()
        if self._thread is not None:
            self._thread.join(timeout)

    @property
    def depth(self) -> int:
        """Tickets admitted but not yet picked up by the worker."""
        return self._queue.qsize()

    @property
    def alive(self) -> bool:
        """Whether the worker thread is running."""
        return self._thread is not None and self._thread.is_alive()

    @property
    def running(self) -> int:
        """Tickets currently inside an executor pass."""
        with self._lock:
            return self._running

    def scheduler_stats(self) -> Dict[str, object]:
        """Execution-depth snapshot for ``BenchmarkService.stats()``."""
        backend = self.execution_backend
        return {
            "queued": self.depth,
            "running": self.running,
            "cold_units": self.cold_units,
            "backend": backend.name if backend is not None else "local",
        }

    # -- admission ---------------------------------------------------------

    def submit(self, ticket: Ticket) -> bool:
        """Enqueue one created ticket; False when the queue is full."""
        if self._stop.is_set():
            return False
        try:
            self._queue.put_nowait(ticket)
        except queue.Full:
            return False
        return True

    # -- worker ------------------------------------------------------------

    def _run(self) -> None:
        while True:
            try:
                first = self._queue.get(timeout=0.05)
            except queue.Empty:
                if self._stop.is_set():
                    return
                continue
            tickets = [first]
            while len(tickets) < DRAIN_LIMIT:
                try:
                    tickets.append(self._queue.get_nowait())
                except queue.Empty:
                    break
            if self._stop.is_set() and not self._drain:
                self._cancel(tickets)
                continue  # keep looping: cancel whatever else is queued
            for group in self._group(tickets):
                if self._stop.is_set() and not self._drain:
                    self._cancel(group)
                    continue
                self._execute(group)

    @staticmethod
    def _group(tickets: List[Ticket]) -> List[List[Ticket]]:
        """Split one drain pass by suite signature, arrival order."""
        groups: Dict[Tuple[str, ...], List[Ticket]] = {}
        for ticket in tickets:
            groups.setdefault(ticket.query.signature, []).append(ticket)
        return list(groups.values())

    def _execute(self, tickets: List[Ticket]) -> None:
        """Run one signature group through the campaign executor."""
        spec = tickets[0].query.campaign
        suite = MicroBenchmarkSuite(
            cluster=spec.cluster_spec(),
            jobconf=spec.jobconf(),
            fault_plan=spec.fault_plan,
            store=self.store,
        )
        executor = CampaignExecutor(
            suite,
            policy=self.policy,
            jobs=self.jobs,
            batch=self.batch,
            campaign="",            # no checkpoint churn per drain pass
            handle_signals=False,   # the service owns signal handling
            backend=self.execution_backend,
        )
        with self._lock:
            self._executor = executor
            self._running = len(tickets)
        for ticket in tickets:
            ticket.state = RUNNING
        try:
            report = executor.execute(
                [t.query.config for t in tickets],
                labels=[t.query.label for t in tickets])
        except Exception as exc:  # never kill the worker thread
            for ticket in tickets:
                self._resolve(ticket, FAILED,
                              f"{type(exc).__name__}: {exc}")
            return
        finally:
            with self._lock:
                self._executor = None
                self._running = 0
        self.cold_units += report.unique_simulations
        for ticket, outcome in zip(tickets, report.outcomes):
            if outcome.succeeded:
                self._resolve(ticket, DONE)
            elif outcome.status == STATUS_FAILED:
                self._resolve(ticket, FAILED, outcome.error)
            else:  # skipped: interrupted before this unit launched
                self._resolve(ticket, CANCELLED,
                              "service shut down before execution")

    def _cancel(self, tickets: List[Ticket]) -> None:
        for ticket in tickets:
            self._resolve(ticket, CANCELLED,
                          "service shut down before execution")

    def _resolve(self, ticket: Ticket, state: str,
                 error: Optional[str] = None) -> None:
        self.resolved[state] += 1
        self.flight.resolve(ticket, state, error)
