"""Single-flight coalescing for in-flight cold points.

Many clients asking for the same cold point must cost one simulation,
not N: the first request *creates* a :class:`Ticket` (and enqueues the
point), every duplicate that arrives while the ticket is in flight
*joins* it. All of them wait on the same :class:`threading.Event`; the
scheduler resolves the ticket once and everyone re-reads the (single)
store record — so the 32-client acceptance check ends with store
``puts == 1`` and hex-identical job times.

Ticket lifecycle::

    queued ──> running ──> done       (dropped from the table;
        │          │                   the store record answers now)
        │          └─────> failed     (kept: the point is quarantined,
        │                              later queries get the 5xx)
        └──────────┴─────> cancelled  (dropped: shutdown/overflow —
                                       a re-query starts fresh)

``failed`` tickets are deliberately sticky: the executor already
retried per its :class:`~repro.campaign.executor.RetryPolicy` and
quarantined the point, so hammering POST must not re-simulate a known-
bad point. ``repro campaign resume`` (or a fresh service) clears it.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional, Tuple

from repro.service.query import PointQuery

#: Ticket states.
QUEUED = "queued"        #: admitted, waiting for the scheduler
RUNNING = "running"      #: handed to the campaign executor
DONE = "done"            #: resolved; the store record is the answer
FAILED = "failed"        #: exhausted retries; point is quarantined
CANCELLED = "cancelled"  #: dropped before execution (shutdown/overflow)

#: States a ticket can never leave.
TERMINAL_STATES = (DONE, FAILED, CANCELLED)


class Ticket:
    """One in-flight (or failed) cold point, shared by its waiters."""

    def __init__(self, key: str, query: PointQuery):
        """A fresh ``queued`` ticket for one admitted cold point."""
        self.key = key
        self.query = query
        self.state = QUEUED
        self.error: Optional[str] = None
        self.created_at = time.time()
        #: Requests answered by this ticket (1 creator + joiners).
        self.waiters = 1
        self._event = threading.Event()

    @property
    def resolved(self) -> bool:
        """Whether the ticket reached a terminal state."""
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the ticket resolves; False on timeout."""
        return self._event.wait(timeout)

    def snapshot(self) -> Dict[str, object]:
        """JSON-shaped view of the ticket (202/5xx response bodies)."""
        out: Dict[str, object] = {
            "key": self.key,
            "state": self.state,
            "point": self.query.describe(),
            "coalesced": self.waiters - 1,
        }
        if self.error is not None:
            out["error"] = self.error
        return out


class SingleFlight:
    """The in-flight ticket table, keyed by store key (thread-safe)."""

    def __init__(self) -> None:
        """An empty table."""
        self._lock = threading.Lock()
        self._tickets: Dict[str, Ticket] = {}

    def admit(self, key: str, query: PointQuery) -> Tuple[Ticket, bool]:
        """Join the key's live ticket, or create one.

        Returns ``(ticket, created)``; only the creator enqueues the
        point. A live ticket is anything still in the table — in-flight
        work *or* a sticky ``failed`` verdict.
        """
        with self._lock:
            ticket = self._tickets.get(key)
            if ticket is not None:
                ticket.waiters += 1
                return ticket, False
            ticket = Ticket(key, query)
            self._tickets[key] = ticket
            return ticket, True

    def get(self, key: str) -> Optional[Ticket]:
        """The key's current ticket, if any."""
        with self._lock:
            return self._tickets.get(key)

    def resolve(self, ticket: Ticket, state: str,
                error: Optional[str] = None) -> None:
        """Seal a ticket and wake its waiters.

        ``done``/``cancelled`` tickets leave the table (the store — or
        a fresh query — answers from here on); ``failed`` stays so the
        quarantine verdict keeps answering.
        """
        if state not in TERMINAL_STATES:
            raise ValueError(f"not a terminal ticket state: {state!r}")
        with self._lock:
            ticket.state = state
            ticket.error = error
            if state != FAILED and self._tickets.get(ticket.key) is ticket:
                del self._tickets[ticket.key]
        ticket._event.set()

    def in_flight(self) -> int:
        """Tickets currently queued or running."""
        with self._lock:
            return sum(1 for t in self._tickets.values()
                       if t.state not in TERMINAL_STATES)

    def failed(self) -> int:
        """Sticky failed tickets currently held."""
        with self._lock:
            return sum(1 for t in self._tickets.values()
                       if t.state == FAILED)
