"""The asyncio HTTP/1.1 front end over :class:`BenchmarkService`.

Stdlib-only by design (the container bakes no web framework): a
hand-rolled, keep-alive-capable HTTP/1.1 server on
``asyncio.start_server``. The event loop only parses requests and
writes responses; every service call — store reads, ticket waits —
runs in a worker thread via ``asyncio.to_thread`` so a blocked
``wait=true`` query never stalls other clients.

Routes::

    POST /v1/points         query/enqueue one benchmark point
    GET  /v1/points/<key>   poll one point by store key
    GET  /v1/stats          store stats + service counters
                            (?refresh=1 re-reads the store footprint)
    GET  /healthz           liveness

Two entry points: :func:`run_server` is the blocking CLI path
(``repro serve``) with SIGINT/SIGTERM mapped to a graceful shutdown
and exit code 130, matching ``repro campaign run``;
:class:`BackgroundServer` runs the same app on a background thread for
tests and the traffic benchmark.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from typing import Callable, Dict, Optional, Set, Tuple

from repro.service.core import BenchmarkService, ServiceResponse

#: Upper bound on request head (request line + headers) bytes.
MAX_HEAD_BYTES = 16 * 1024

#: Upper bound on request body bytes (point queries are tiny).
MAX_BODY_BYTES = 256 * 1024

#: Reason phrases for the statuses the service emits.
REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    500: "Internal Server Error", 503: "Service Unavailable",
}


def _encode(response: ServiceResponse, keep_alive: bool) -> bytes:
    """Serialize one response (payload bytes pass through verbatim)."""
    if isinstance(response.payload, bytes):
        body = response.payload
    else:
        body = (json.dumps(response.payload, indent=1, sort_keys=True)
                + "\n").encode("utf-8")
    reason = REASONS.get(response.status, "Unknown")
    head = (
        f"HTTP/1.1 {response.status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        f"\r\n"
    )
    return head.encode("latin-1") + body


def dispatch(service: BenchmarkService, method: str, target: str,
             body: bytes) -> ServiceResponse:
    """Route one parsed request (synchronous; runs in a worker thread)."""
    path, _, query_string = target.partition("?")
    if path == "/healthz":
        if method != "GET":
            return ServiceResponse(405, {"error": "use GET"})
        return ServiceResponse(200, service.healthz())
    if path == "/v1/stats":
        if method != "GET":
            return ServiceResponse(405, {"error": "use GET"})
        refresh = "refresh=1" in query_string.split("&")
        return ServiceResponse(200, service.stats(refresh=refresh))
    if path == "/v1/points":
        if method != "POST":
            return ServiceResponse(405, {"error": "use POST"})
        try:
            data = json.loads(body.decode("utf-8") or "null")
        except (ValueError, UnicodeDecodeError) as exc:
            return ServiceResponse(400, {"error": f"invalid JSON: {exc}"})
        return service.query_point(data)
    if path.startswith("/v1/points/"):
        if method != "GET":
            return ServiceResponse(405, {"error": "use GET"})
        return service.lookup(path[len("/v1/points/"):])
    return ServiceResponse(404, {"error": f"no route for {path}"})


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """Parse one request; None on clean EOF, ValueError on bad input."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean keep-alive close
        raise ValueError("truncated request head") from None
    except asyncio.LimitOverrunError:
        raise ValueError("request head too large") from None
    if len(head) > MAX_HEAD_BYTES:
        raise ValueError("request head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ValueError(f"malformed request line: {lines[0]!r}")
    method, target = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ValueError(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise ValueError("malformed Content-Length") from None
    if length < 0 or length > MAX_BODY_BYTES:
        raise ValueError("request body too large")
    body = await reader.readexactly(length) if length else b""
    return method, target, headers, body


async def _serve_connection(service: BenchmarkService,
                            reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
    """One client connection: keep-alive request/response loop."""
    try:
        while True:
            try:
                request = await _read_request(reader)
            except (ValueError, asyncio.IncompleteReadError):
                writer.write(_encode(
                    ServiceResponse(400, {"error": "malformed request"}),
                    keep_alive=False))
                await writer.drain()
                return
            if request is None:
                return
            method, target, headers, body = request
            keep_alive = headers.get("connection", "").lower() != "close"
            response = await asyncio.to_thread(
                dispatch, service, method, target, body)
            writer.write(_encode(response, keep_alive=keep_alive))
            await writer.drain()
            if not keep_alive:
                return
    except (ConnectionError, asyncio.CancelledError):
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover
            pass


class _App:
    """The app's asyncio plumbing: server + live-connection registry."""

    def __init__(self, service: BenchmarkService):
        """Wrap one service; nothing is bound until :meth:`start`."""
        self.service = service
        self.server: Optional[asyncio.AbstractServer] = None
        self._connections: Set[asyncio.Task] = set()

    async def _on_client(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        await _serve_connection(self.service, reader, writer)

    async def start(self, host: str, port: int) -> Tuple[str, int]:
        """Bind and listen; returns the actual (host, port)."""
        self.server = await asyncio.start_server(
            self._on_client, host, port)
        sockname = self.server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def close(self) -> None:
        """Stop accepting and tear down live connections."""
        if self.server is not None:
            self.server.close()
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections,
                                 return_exceptions=True)


def run_server(
    service: BenchmarkService,
    host: str = "127.0.0.1",
    port: int = 8713,
    ready: Optional[Callable[[str, int], None]] = None,
) -> int:
    """Serve until SIGINT/SIGTERM; the blocking ``repro serve`` path.

    ``ready(host, port)`` fires once the socket is bound (with the
    real port when ``port=0``). On a signal the server stops accepting,
    the scheduler finishes its in-flight unit and cancels the rest
    (completed points are already durable), and the exit code is 130 —
    parity with an interrupted ``repro campaign run``. A clean external
    stop returns 0.
    """
    stop_signal: Dict[str, Optional[int]] = {"signum": None}

    async def main() -> None:
        """Bind, serve until the stop event, tear down gracefully."""
        app = _App(service)
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()

        def on_signal(signum: int) -> None:
            """Record the signal and trip the stop event."""
            stop_signal["signum"] = signum
            stop.set()

        installed = []
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, on_signal, signum)
                installed.append(signum)
            except (ValueError, OSError,  # pragma: no cover - non-Unix
                    NotImplementedError):
                pass
        bound_host, bound_port = await app.start(host, port)
        service.start()
        if ready is not None:
            ready(bound_host, bound_port)
        try:
            await stop.wait()
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)
            await app.close()
            # Drop the rest of the queue; the in-flight unit completes
            # and is durable. Runs in a thread: stop() joins the
            # scheduler thread, which must keep making progress.
            await asyncio.to_thread(service.stop, False)

    asyncio.run(main())
    return 130 if stop_signal["signum"] is not None else 0


class BackgroundServer:
    """The same app on a daemon thread — for tests and benchmarks.

    Use as a context manager::

        service = BenchmarkService("file:/tmp/store")
        with BackgroundServer(service) as server:
            http.client.HTTPConnection(*server.address) ...

    Startup is synchronous (the socket is bound when ``__enter__``
    returns); teardown closes connections, stops the loop and shuts
    the service down (draining by default).
    """

    def __init__(self, service: BenchmarkService, host: str = "127.0.0.1",
                 port: int = 0, drain: bool = True):
        """Prepare a server; ``port=0`` binds an ephemeral port."""
        self.service = service
        self.host = host
        self.port = port
        self.drain = drain
        self._app = _App(service)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port)."""
        return self.host, self.port

    @property
    def base_url(self) -> str:
        """``http://host:port`` of the running server."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "BackgroundServer":
        """Bind the socket, start the loop thread and the service."""
        self._loop = asyncio.new_event_loop()
        started = threading.Event()

        def run() -> None:
            """The loop thread's body."""
            asyncio.set_event_loop(self._loop)
            started.set()
            self._loop.run_forever()

        self._thread = threading.Thread(
            target=run, name="repro-service-http", daemon=True)
        self._thread.start()
        started.wait(5.0)
        future = asyncio.run_coroutine_threadsafe(
            self._app.start(self.host, self.port), self._loop)
        self.host, self.port = future.result(timeout=10.0)
        self.service.start()
        return self

    def stop(self) -> None:
        """Tear down the HTTP layer, then stop the service."""
        if self._loop is not None:
            asyncio.run_coroutine_threadsafe(
                self._app.close(), self._loop).result(timeout=10.0)
            self._loop.call_soon_threadsafe(self._loop.stop)
            if self._thread is not None:
                self._thread.join(timeout=10.0)
            self._loop.close()
            self._loop = None
            self._thread = None
        self.service.stop(drain=self.drain)

    def __enter__(self) -> "BackgroundServer":
        """Start the server and enter the context."""
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        """Stop the server on context exit."""
        self.stop()
