"""Benchmark-as-a-service: a query front end over the result store.

ROADMAP item 1's "millions of users" shape: a long-running process
that answers benchmark-point queries — (benchmark, size, network,
runtime, ...) coordinates, the same vocabulary campaign specs use —
warm from the :class:`~repro.store.ResultStore` and cold through the
hardened :class:`~repro.campaign.executor.CampaignExecutor`, so many
consumers amortize one shared grid of measurements.

The layers, bottom up:

* :mod:`repro.service.query` — request parsing; a query is a
  degenerate one-point :class:`~repro.campaign.spec.Campaign`, so
  validation, seeds and store keys match campaign runs exactly.
* :mod:`repro.service.singleflight` — the in-flight ticket table; N
  concurrent queries for one cold point cost one simulation.
* :mod:`repro.service.scheduler` — the background worker batching
  cold tickets onto the campaign executor (retry/timeout/quarantine
  and equivalence-class batching reused).
* :mod:`repro.service.core` — :class:`BenchmarkService`, the
  transport-independent synchronous core (what the tests drive).
* :mod:`repro.service.app` — the stdlib asyncio HTTP/1.1 front end:
  ``repro serve`` (:func:`run_server`) and the in-process
  :class:`BackgroundServer` for tests/benchmarks.

Warm responses are the record's canonical bytes
(:func:`~repro.store.dump_record_text`) — byte-identical to
``repro store export`` — and cold points land in the store exactly as
a campaign run would write them. See ``docs/SERVICE.md``.
"""

from repro.service.app import BackgroundServer, run_server
from repro.service.core import BenchmarkService, ServiceResponse
from repro.service.query import PointQuery, parse_point_query
from repro.service.scheduler import DEFAULT_MAX_QUEUE, ColdScheduler
from repro.service.singleflight import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    SingleFlight,
    Ticket,
)

__all__ = [
    "BackgroundServer",
    "BenchmarkService",
    "CANCELLED",
    "ColdScheduler",
    "DEFAULT_MAX_QUEUE",
    "DONE",
    "FAILED",
    "PointQuery",
    "QUEUED",
    "RUNNING",
    "ServiceResponse",
    "SingleFlight",
    "Ticket",
    "parse_point_query",
    "run_server",
]
